"""Universal Search (Fig. 1 of the paper).

"A web-server/front-end service receives the search query and distributes
it to many hundreds of query servers, each searching within its own
partition/shard of the web index.  The query is also sent to a number of
other sub-systems that process advertisements, check spelling, or look
for specialized results … Results from all of these services are then
aggregated by a separate service, and ranked …"

Causal paths (request classes):

* ``web`` queries: the blue S1…S9 path — frontend fans out to the query
  index (one message per shard), ads and spell-check; results flow into
  the aggregator, then the ranker, then back to the client.
* ``news`` queries: the red R1…R7 path — frontend routes to the news
  service and a narrower index scan, then aggregator → ranker → client.
* ``image`` queries: a third, lighter specialised path.

A workload spike on one class (e.g. an election spikes ``news``) loads a
different subset of components — the paper's motivating argument for
selective, causality-driven scaling.
"""

from __future__ import annotations

from typing import List

from repro.lang.builder import AppBuilder, ComponentBuilder, call, field, var
from repro.lang.ir import CLIENT, Application
from repro.workloads.generator import RequestClass

#: Shard fan-out of a full web search (the paper's "many hundreds" scaled
#: down so message-level traces stay cheap).
WEB_SHARDS = 12
#: Narrower index scan used by news queries.
NEWS_SHARDS = 3


def build() -> Application:
    """Build the universal-search application."""
    frontend = (
        ComponentBuilder("frontend", service_cost=8.0)
        .state("queries_served", 0)
        .state("shard_count", WEB_SHARDS)
        .state("news_shards", NEWS_SHARDS)
    )
    with frontend.on("search", "m") as h:
        h.assign("queries_served", var("queries_served") + 1)
        with h.if_(field("m", "kind").eq("web")) as web:
            web.then.assign("i", 0)
            with web.then.while_(var("i") < var("shard_count")) as loop:
                loop.body.send("shard_query", "query-index", {"terms": field("m", "terms"), "shard": var("i")})
                loop.body.assign("i", var("i") + 1)
            web.then.send("ad_lookup", "ad-system", {"terms": field("m", "terms")})
            web.then.send("spell_check", "spell-checker", {"terms": field("m", "terms")})
            with web.orelse.if_(field("m", "kind").eq("news")) as news:
                news.then.assign("j", 0)
                with news.then.while_(var("j") < var("news_shards")) as loop:
                    loop.body.send("shard_query", "query-index", {"terms": field("m", "terms"), "shard": var("j")})
                    loop.body.assign("j", var("j") + 1)
                news.then.send("news_scan", "news-service", {"terms": field("m", "terms")})
                news.orelse.send("image_scan", "image-service", {"terms": field("m", "terms")})

    query_index = (
        ComponentBuilder("query-index", service_cost=22.0)
        .state("index_version", 1)
        .state("hits_total", 0)
    )
    with query_index.on("shard_query", "m") as h:
        h.assign("score", call("hash_bucket", field("m", "terms"), 100) + var("index_version"))
        h.assign("hits_total", var("hits_total") + 1)
        h.send("shard_result", "aggregator", {"score": var("score"), "shard": field("m", "shard")})

    ad_system = (
        ComponentBuilder("ad-system", service_cost=15.0)
        .state("revenue_bias", 3)
    )
    with ad_system.on("ad_lookup", "m") as h:
        h.assign("bid", call("hash_bucket", field("m", "terms"), 50) + var("revenue_bias"))
        h.send("ad_result", "aggregator", {"bid": var("bid")})

    spell = ComponentBuilder("spell-checker", service_cost=6.0).state("dictionary_version", 2)
    with spell.on("spell_check", "m") as h:
        h.assign("suggestion", call("concat", field("m", "terms"), "?"))
        h.send("spell_result", "aggregator", {"suggestion": var("suggestion")})

    news = ComponentBuilder("news-service", service_cost=18.0).state("freshness", 5)
    with news.on("news_scan", "m") as h:
        h.assign("story_score", call("hash_bucket", field("m", "terms"), 30) + var("freshness"))
        h.send("news_result", "aggregator", {"score": var("story_score")})

    images = ComponentBuilder("image-service", service_cost=25.0).state("thumb_cache", 0)
    with images.on("image_scan", "m") as h:
        h.assign("thumb_cache", var("thumb_cache") + 1)
        h.send("image_result", "aggregator", {"count": var("thumb_cache")})

    aggregator = (
        ComponentBuilder("aggregator", service_cost=12.0)
        .state("partial_sum", 0)
        .state("results_seen", 0)
    )
    # Partial results fold into the running sum; the per-class "last"
    # result type (ads for web, the specialised service for news/image)
    # triggers the single ranked-candidates emission — one response per
    # request, as in the real system's gather phase.
    with aggregator.on("shard_result", "m") as h:
        h.assign("results_seen", var("results_seen") + 1)
        h.assign("partial_sum", var("partial_sum") + field("m", "score"))
    with aggregator.on("spell_result", "m") as h:
        h.assign("results_seen", var("results_seen") + 1)
    with aggregator.on("ad_result", "m") as h:
        h.assign("results_seen", var("results_seen") + 1)
        h.assign("partial_sum", var("partial_sum") + field("m", "bid"))
        h.send("ranked_candidates", "ranker", {"sum": var("partial_sum")})
    with aggregator.on("news_result", "m") as h:
        h.assign("results_seen", var("results_seen") + 1)
        h.assign("partial_sum", var("partial_sum") + field("m", "score"))
        h.send("ranked_candidates", "ranker", {"sum": var("partial_sum")})
    with aggregator.on("image_result", "m") as h:
        h.assign("results_seen", var("results_seen") + 1)
        h.assign("partial_sum", var("partial_sum") + field("m", "count"))
        h.send("ranked_candidates", "ranker", {"sum": var("partial_sum")})

    ranker = ComponentBuilder("ranker", service_cost=10.0).state("model_version", 7)
    with ranker.on("ranked_candidates", "m") as h:
        h.assign("final_score", field("m", "sum") * var("model_version"))
        h.send("results_page", CLIENT, {"score": var("final_score")})

    return (
        AppBuilder("universal-search")
        .component(frontend)
        .component(query_index)
        .component(ad_system)
        .component(spell)
        .component(news)
        .component(images)
        .component(aggregator)
        .component(ranker)
        .entry("search", "frontend")
        .build()
    )


def request_classes() -> List[RequestClass]:
    """The three query classes (web / news / image)."""
    return [
        RequestClass("web_search", "search", {"kind": "web", "terms": "apple watch"}),
        RequestClass("news_search", "search", {"kind": "news", "terms": "election"}),
        RequestClass("image_search", "search", {"kind": "image", "terms": "hurricane"}),
    ]
