"""Marketcetera-like algorithmic trading platform (Section V of the paper).

Marketcetera is "an NYSE-recommended fault-tolerant algorithmic trading
platform".  The reproduction models its tier structure as eight
components behind a FIX gateway front end:

* ``fix-gateway``      — parses FIX requests, dispatches by kind;
* ``risk-engine``      — pre-trade limit checks (exposure ∈ V_tr: the
  running exposure influences whether orders are routed);
* ``order-router``     — venue selection;
* ``matching-engine``  — order matching / execution;
* ``market-data``      — quote snapshots and trade ticks;
* ``position-tracker`` — post-trade position updates;
* ``settlement``       — clearing and confirmation to the client;
* ``strategy-engine``  — algorithmic strategies that themselves emit
  orders (a *conditional*, state-dependent causal path).

Request classes: ``order_submit``, ``order_cancel``,
``market_data_request``, ``strategy_eval`` — each inducing a different
causal path, so a trading surge loads a very different component subset
than a market-data storm.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.lang.builder import AppBuilder, ComponentBuilder, call, field, var
from repro.lang.ir import CLIENT, Application
from repro.sim.cluster import DeploymentSpec
from repro.workloads.generator import RequestClass
from repro.workloads.patterns import MixPhase, StepMixSchedule

#: Market-data snapshot chunks streamed per request.
SNAPSHOT_CHUNKS = 4


def build() -> Application:
    """Build the trading-platform application."""
    gateway = (
        ComponentBuilder("fix-gateway", service_cost=8.0)
        .state("session_seq", 0)
    )
    with gateway.on("fix_request", "m") as h:
        h.assign("session_seq", var("session_seq") + 1)
        with h.if_(field("m", "kind").eq("submit")) as submit:
            submit.then.send(
                "check_risk",
                "risk-engine",
                {"symbol": field("m", "symbol"), "qty": field("m", "qty"), "origin": "client"},
            )
            with submit.orelse.if_(field("m", "kind").eq("cancel")) as cancel:
                cancel.then.send("route_cancel", "order-router", {"order_id": field("m", "order_id")})
                with cancel.orelse.if_(field("m", "kind").eq("mdata")) as mdata:
                    mdata.then.send("md_request", "market-data", {"symbol": field("m", "symbol")})
                    mdata.orelse.send(
                        "evaluate", "strategy-engine", {"signal": field("m", "signal")}
                    )

    risk = (
        ComponentBuilder("risk-engine", service_cost=26.0)
        .state("exposure", 0)
        .state("exposure_limit", 1_000_000)
        .state("checks_done", 0)
    )
    with risk.on("check_risk", "m") as h:
        h.assign("checks_done", var("checks_done") + 1)
        h.assign("exposure", var("exposure") % 900_000 + field("m", "qty"))
        with h.if_(var("exposure") < var("exposure_limit")) as ok:
            ok.then.send(
                "route_order",
                "order-router",
                {"symbol": field("m", "symbol"), "qty": field("m", "qty")},
            )
            ok.orelse.send("order_rejected", CLIENT, {"reason": "risk-limit"})

    router = (
        ComponentBuilder("order-router", service_cost=14.0)
        .state("venue_cursor", 0)
    )
    with router.on("route_order", "m") as h:
        h.assign("venue_cursor", (var("venue_cursor") + 1) % 4)
        h.send(
            "match_order",
            "matching-engine",
            {"symbol": field("m", "symbol"), "qty": field("m", "qty"), "venue": var("venue_cursor")},
        )
    with router.on("route_cancel", "m") as h:
        h.send("cancel_order", "matching-engine", {"order_id": field("m", "order_id")})

    matching = (
        ComponentBuilder("matching-engine", service_cost=38.0)
        .state("book_depth", 100)
        .state("fills", 0)
    )
    with matching.on("match_order", "m") as h:
        h.assign("fills", var("fills") + 1)
        h.assign("book_depth", call("max", 1, var("book_depth") - 1))
        h.send(
            "update_position",
            "position-tracker",
            {"symbol": field("m", "symbol"), "qty": field("m", "qty")},
        )
        h.send("trade_tick", "market-data", {"symbol": field("m", "symbol"), "qty": field("m", "qty")})
    with matching.on("cancel_order", "m") as h:
        h.assign("book_depth", var("book_depth") + 1)
        h.send("cancel_ack", CLIENT, {"order_id": field("m", "order_id")})

    market_data = (
        ComponentBuilder("market-data", service_cost=10.0)
        .state("last_price", 100)
        .state("tick_count", 0)
    )
    with market_data.on("md_request", "m") as h:
        h.assign("chunk", 0)
        with h.while_(var("chunk") < SNAPSHOT_CHUNKS) as loop:
            loop.body.send(
                "md_snapshot",
                CLIENT,
                {"symbol": field("m", "symbol"), "price": var("last_price"), "chunk": var("chunk")},
            )
            loop.body.assign("chunk", var("chunk") + 1)
    with market_data.on("trade_tick", "m") as h:
        h.assign("tick_count", var("tick_count") + 1)
        h.assign("last_price", call("max", 1, var("last_price") + field("m", "qty") % 3 - 1))

    position = (
        ComponentBuilder("position-tracker", service_cost=12.0)
        .state("net_position", 0)
    )
    with position.on("update_position", "m") as h:
        h.assign("net_position", var("net_position") + field("m", "qty"))
        h.send("settle_trade", "settlement", {"symbol": field("m", "symbol"), "qty": field("m", "qty")})

    settlement = (
        ComponentBuilder("settlement", service_cost=22.0)
        .state("settled", 0)
    )
    with settlement.on("settle_trade", "m") as h:
        h.assign("settled", var("settled") + 1)
        h.send("execution_report", CLIENT, {"symbol": field("m", "symbol"), "qty": field("m", "qty")})

    strategy = (
        ComponentBuilder("strategy-engine", service_cost=30.0)
        .state("momentum", 0)
        .state("eval_count", 0)
    )
    with strategy.on("evaluate", "m") as h:
        h.assign("eval_count", var("eval_count") + 1)
        h.assign("momentum", var("momentum") % 7 + field("m", "signal"))
        with h.if_(var("momentum") > 2) as hot:
            hot.then.send(
                "check_risk",
                "risk-engine",
                {"symbol": "ALGO", "qty": var("momentum") * 10, "origin": "strategy"},
            )
            hot.orelse.send("eval_report", CLIENT, {"decision": "hold"})

    return (
        AppBuilder("marketcetera")
        .component(gateway)
        .component(risk)
        .component(router)
        .component(matching)
        .component(market_data)
        .component(position)
        .component(settlement)
        .component(strategy)
        .entry("fix_request", "fix-gateway")
        .build()
    )


def request_classes() -> List[RequestClass]:
    """The four FIX request classes."""
    return [
        RequestClass(
            "order_submit",
            "fix_request",
            {"kind": "submit", "symbol": "IBM", "qty": 100, "order_id": 0, "signal": 0},
        ),
        RequestClass(
            "order_cancel",
            "fix_request",
            {"kind": "cancel", "symbol": "IBM", "qty": 0, "order_id": 17, "signal": 0},
        ),
        RequestClass(
            "market_data_request",
            "fix_request",
            {"kind": "mdata", "symbol": "AAPL", "qty": 0, "order_id": 0, "signal": 0},
        ),
        RequestClass(
            "strategy_eval",
            "fix_request",
            {"kind": "algo", "symbol": "ALGO", "qty": 0, "order_id": 0, "signal": 5},
        ),
    ]


def deployments() -> Dict[str, DeploymentSpec]:
    """Initial replica-group sizing (mid-load operating point)."""
    return {
        "fix-gateway": DeploymentSpec(initial_nodes=3),
        "risk-engine": DeploymentSpec(initial_nodes=6),
        "order-router": DeploymentSpec(initial_nodes=3),
        "matching-engine": DeploymentSpec(initial_nodes=8),
        "market-data": DeploymentSpec(initial_nodes=3),
        "position-tracker": DeploymentSpec(initial_nodes=3),
        "settlement": DeploymentSpec(initial_nodes=5),
        "strategy-engine": DeploymentSpec(initial_nodes=4),
    }


def mix_schedule() -> StepMixSchedule:
    """Hot causal paths shift across the 450-minute run.

    Phase 2 is a market-data storm, phase 3 a trading surge (heavy
    ``order_submit``, analogous to the Thanksgiving purchase surge of
    Fig. 2), phase 4 algorithmic-strategy-heavy.
    """
    return StepMixSchedule(
        [
            MixPhase(0.0, {"order_submit": 3, "order_cancel": 1, "market_data_request": 4, "strategy_eval": 2}),
            MixPhase(75.0, {"order_submit": 1.5, "order_cancel": 1, "market_data_request": 7, "strategy_eval": 1}),
            MixPhase(150.0, {"order_submit": 7, "order_cancel": 2, "market_data_request": 1.5, "strategy_eval": 1}),
            MixPhase(225.0, {"order_submit": 2, "order_cancel": 1, "market_data_request": 2, "strategy_eval": 6}),
            MixPhase(300.0, {"order_submit": 6, "order_cancel": 1, "market_data_request": 3, "strategy_eval": 1}),
            MixPhase(375.0, {"order_submit": 1.5, "order_cancel": 1, "market_data_request": 6, "strategy_eval": 2}),
        ]
    )


def magnitudes() -> Tuple[float, float]:
    """Points A and B of Fig. 7 for this benchmark (requests/min)."""
    return (210.0, 840.0)
