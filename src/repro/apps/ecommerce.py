"""Multi-tiered e-commerce store (Fig. 2 of the paper).

"A simple visit to the store will impact the web front-end, product
database, customer tracking and ad serving components.  However, a
purchase will impact the payment processing and order fulfillment
components."  The two request classes exercise the two conditional
flows:

* ``Simple``:   frontend → customer-tracking → ad-serving → price-db
* ``Purchase``: frontend → payment → fulfillment → inventory → price-db

During a sale the ``Purchase`` path is exercised heavily, and
"components serving that path should be scaled proportionally more …
without worrying much about customer tracking or ad serving" — the
paper's worked causal-probability example (0.69 / 0.31 → 1.69× / 1.31×).
"""

from __future__ import annotations

from typing import List

from repro.lang.builder import AppBuilder, ComponentBuilder, call, field, var
from repro.lang.ir import CLIENT, Application
from repro.workloads.generator import RequestClass


def build() -> Application:
    """Build the e-commerce application."""
    frontend = (
        ComponentBuilder("web-frontend", service_cost=10.0)
        .state("sessions", 0)
    )
    with frontend.on("visit", "m") as h:
        h.assign("sessions", var("sessions") + 1)
        with h.if_(field("m", "kind").eq("purchase")) as branch:
            branch.then.send(
                "charge_card", "payment", {"amount": field("m", "amount"), "sku": field("m", "sku")}
            )
            branch.orelse.send("track_visit", "customer-tracking", {"page": field("m", "page")})

    payment = (
        ComponentBuilder("payment", service_cost=35.0)
        .state("charged_total", 0)
        .state("fraud_threshold", 5_000)
    )
    with payment.on("charge_card", "m") as h:
        h.assign("charged_total", var("charged_total") + field("m", "amount"))
        with h.if_(field("m", "amount") < var("fraud_threshold")) as ok:
            ok.then.send("fulfill_order", "fulfillment", {"sku": field("m", "sku")})
            ok.orelse.send("declined", CLIENT, {"reason": "fraud-review"})

    fulfillment = (
        ComponentBuilder("fulfillment", service_cost=28.0)
        .state("orders_open", 0)
    )
    with fulfillment.on("fulfill_order", "m") as h:
        h.assign("orders_open", var("orders_open") + 1)
        h.send("reserve_stock", "inventory", {"sku": field("m", "sku")})

    inventory = (
        ComponentBuilder("inventory", service_cost=20.0)
        .state("stock_delta", 0)
    )
    with inventory.on("reserve_stock", "m") as h:
        h.assign("stock_delta", var("stock_delta") - 1)
        h.send("price_lookup", "price-db", {"sku": field("m", "sku"), "purpose": "invoice"})

    tracking = (
        ComponentBuilder("customer-tracking", service_cost=9.0)
        .state("events", 0)
    )
    with tracking.on("track_visit", "m") as h:
        h.assign("events", var("events") + 1)
        h.send("serve_ads", "ad-serving", {"page": field("m", "page")})

    ads = (
        ComponentBuilder("ad-serving", service_cost=14.0)
        .state("impressions", 0)
    )
    with ads.on("serve_ads", "m") as h:
        h.assign("impressions", var("impressions") + 1)
        h.send("price_lookup", "price-db", {"sku": field("m", "page"), "purpose": "display"})

    price_db = (
        ComponentBuilder("price-db", service_cost=16.0)
        .state("lookups", 0)
    )
    with price_db.on("price_lookup", "m") as h:
        h.assign("lookups", var("lookups") + 1)
        h.assign("price", call("hash_bucket", field("m", "sku"), 500) + 1)
        h.send("page_response", CLIENT, {"price": var("price"), "purpose": field("m", "purpose")})

    return (
        AppBuilder("ecommerce")
        .component(frontend)
        .component(payment)
        .component(fulfillment)
        .component(inventory)
        .component(tracking)
        .component(ads)
        .component(price_db)
        .entry("visit", "web-frontend")
        .build()
    )


def request_classes() -> List[RequestClass]:
    """The two visit classes of Fig. 2."""
    return [
        RequestClass("simple", "visit", {"kind": "simple", "page": "landing", "amount": 0, "sku": "none"}),
        RequestClass("purchase", "visit", {"kind": "purchase", "page": "checkout", "amount": 120, "sku": "watch-42"}),
    ]
