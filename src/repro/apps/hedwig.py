"""Apache Hedwig-like topic-based publish/subscribe system (Section V).

Hedwig "is a topic-based publish-subscribe system designed for reliable
and guaranteed at-most once delivery of messages from publishers to
subscribers".  The reproduction models its tiers as six components:

* ``hub``                  — front end terminating client connections;
* ``topic-manager``        — topic ownership / routing;
* ``persistence``          — write-ahead log of published messages (the
  BookKeeper analogue; the most expensive tier);
* ``delivery``             — pushes messages to subscribers (fan-out);
* ``subscription-manager`` — subscribe/unsubscribe bookkeeping;
* ``metadata-store``       — topic/subscription metadata.

Request classes: ``publish`` (hot path through persistence + delivery
fan-out), ``subscribe`` / ``unsubscribe`` (metadata path), and
``consume`` (backlog fetch through persistence).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.lang.builder import AppBuilder, ComponentBuilder, call, field, var
from repro.lang.ir import CLIENT, Application
from repro.sim.cluster import DeploymentSpec
from repro.workloads.generator import RequestClass
from repro.workloads.patterns import MixPhase, StepMixSchedule

#: Subscriber fan-out per published message (scaled-down).
DELIVERY_FANOUT = 5


def build() -> Application:
    """Build the pub/sub application."""
    hub = (
        ComponentBuilder("hub", service_cost=7.0)
        .state("connections", 0)
    )
    with hub.on("pub_request", "m") as h:
        h.assign("connections", var("connections") + 1)
        h.send("own_topic", "topic-manager", {"topic": field("m", "topic"), "payload": field("m", "payload")})
    with hub.on("sub_request", "m") as h:
        h.assign("connections", var("connections") + 1)
        with h.if_(field("m", "action").eq("subscribe")) as sub:
            sub.then.send("add_subscription", "subscription-manager", {"topic": field("m", "topic")})
            sub.orelse.send("drop_subscription", "subscription-manager", {"topic": field("m", "topic")})
    with hub.on("consume_request", "m") as h:
        h.send("fetch_backlog", "delivery", {"topic": field("m", "topic"), "cursor": field("m", "cursor")})

    topic_manager = (
        ComponentBuilder("topic-manager", service_cost=12.0)
        .state("owned_topics", 0)
    )
    with topic_manager.on("own_topic", "m") as h:
        h.assign("owned_topics", var("owned_topics") % 1_000 + 1)
        h.send(
            "persist_message",
            "persistence",
            {"topic": field("m", "topic"), "payload": field("m", "payload")},
        )

    persistence = (
        ComponentBuilder("persistence", service_cost=42.0)
        .state("log_offset", 0)
    )
    with persistence.on("persist_message", "m") as h:
        h.assign("log_offset", var("log_offset") + 1)
        h.send(
            "deliver_message",
            "delivery",
            {"topic": field("m", "topic"), "payload": field("m", "payload"), "offset": var("log_offset")},
        )
    with persistence.on("read_backlog", "m") as h:
        h.assign("entries", call("min", 10, field("m", "cursor") + 1))
        h.send("backlog_page", CLIENT, {"topic": field("m", "topic"), "entries": var("entries")})

    delivery = (
        ComponentBuilder("delivery", service_cost=18.0)
        .state("delivered", 0)
        .state("fanout", DELIVERY_FANOUT)
    )
    with delivery.on("deliver_message", "m") as h:
        h.assign("k", 0)
        with h.while_(var("k") < var("fanout")) as loop:
            loop.body.send(
                "push_message",
                CLIENT,
                {"topic": field("m", "topic"), "offset": field("m", "offset"), "subscriber": var("k")},
            )
            loop.body.assign("k", var("k") + 1)
        h.assign("delivered", var("delivered") + var("fanout"))
    with delivery.on("fetch_backlog", "m") as h:
        h.send("read_backlog", "persistence", {"topic": field("m", "topic"), "cursor": field("m", "cursor")})

    sub_manager = (
        ComponentBuilder("subscription-manager", service_cost=14.0)
        .state("active_subs", 0)
    )
    with sub_manager.on("add_subscription", "m") as h:
        h.assign("active_subs", var("active_subs") + 1)
        h.send("write_meta", "metadata-store", {"topic": field("m", "topic"), "op": "add"})
    with sub_manager.on("drop_subscription", "m") as h:
        h.assign("active_subs", call("max", 0, var("active_subs") - 1))
        h.send("write_meta", "metadata-store", {"topic": field("m", "topic"), "op": "drop"})

    metadata = (
        ComponentBuilder("metadata-store", service_cost=10.0)
        .state("version", 0)
    )
    with metadata.on("write_meta", "m") as h:
        h.assign("version", var("version") + 1)
        h.send("meta_ack", CLIENT, {"topic": field("m", "topic"), "version": var("version")})

    return (
        AppBuilder("hedwig")
        .component(hub)
        .component(topic_manager)
        .component(persistence)
        .component(delivery)
        .component(sub_manager)
        .component(metadata)
        .entry("pub_request", "hub")
        .entry("sub_request", "hub")
        .entry("consume_request", "hub")
        .build()
    )


def request_classes() -> List[RequestClass]:
    """Publish / subscribe / unsubscribe / consume request classes."""
    return [
        RequestClass("publish", "pub_request", {"topic": "alerts", "payload": "hello"}),
        RequestClass("subscribe", "sub_request", {"topic": "alerts", "action": "subscribe"}),
        RequestClass("unsubscribe", "sub_request", {"topic": "alerts", "action": "unsubscribe"}),
        RequestClass("consume", "consume_request", {"topic": "alerts", "cursor": 3}),
    ]


def deployments() -> Dict[str, DeploymentSpec]:
    """Initial replica-group sizing (mid-load operating point)."""
    return {
        "hub": DeploymentSpec(initial_nodes=3),
        "topic-manager": DeploymentSpec(initial_nodes=3),
        "persistence": DeploymentSpec(initial_nodes=9),
        "delivery": DeploymentSpec(initial_nodes=5),
        "subscription-manager": DeploymentSpec(initial_nodes=2),
        "metadata-store": DeploymentSpec(initial_nodes=2),
    }


def mix_schedule() -> StepMixSchedule:
    """Hot-path shifts: publish storm, churn phase, consume-heavy tail."""
    return StepMixSchedule(
        [
            MixPhase(0.0, {"publish": 5, "subscribe": 2, "unsubscribe": 1, "consume": 2}),
            MixPhase(75.0, {"publish": 2, "subscribe": 4, "unsubscribe": 3, "consume": 1}),
            MixPhase(150.0, {"publish": 7, "subscribe": 1, "unsubscribe": 1, "consume": 1}),
            MixPhase(225.0, {"publish": 3, "subscribe": 1, "unsubscribe": 1, "consume": 5}),
            MixPhase(300.0, {"publish": 6, "subscribe": 2, "unsubscribe": 1, "consume": 1}),
            MixPhase(375.0, {"publish": 2, "subscribe": 3, "unsubscribe": 2, "consume": 3}),
        ]
    )


def magnitudes() -> Tuple[float, float]:
    """Points A and B of Fig. 7 for this benchmark (requests/min)."""
    return (234.0, 940.0)
