"""ZooKeeper-like coordination service (companion-TR experiment).

ZooKeeper "is a distributed co-ordination service for datacenter
applications, similar to Google's Chubby".  The reproduction models the
coordination tiers as six components:

* ``request-processor`` — front end; routes reads to local replicas and
  writes to the leader;
* ``replica-reader``    — serves linearisable-enough local reads;
* ``leader``            — orders write transactions;
* ``quorum-log``        — the replicated transaction log.  This is the
  paper's Section II-C *concurrency* scenario: appends are serialised by
  the quorum protocol, so the component has many causal paths **in** but
  none out to other components, and elastic scaling beyond the quorum
  size cannot improve throughput.  Its deployment carries
  ``serial_limit=3``; DCA's structural rule
  (:func:`repro.core.elasticity.detect_serialization_suspects`) flags it
  and refuses to scale it, while CloudWatch pours machines into it.
* ``watch-manager``     — fires data watches after commits;
* ``session-manager``   — session lifecycle, snapshots to the log.

Request classes: ``read`` (cheap, hot by default), ``write`` (quorum
path), ``create_session``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.lang.builder import AppBuilder, ComponentBuilder, call, field, var
from repro.lang.ir import CLIENT, Application
from repro.sim.cluster import DeploymentSpec
from repro.workloads.generator import RequestClass
from repro.workloads.patterns import MixPhase, StepMixSchedule

#: Quorum size: appends per committed write.
QUORUM = 3


def build() -> Application:
    """Build the coordination-service application."""
    processor = (
        ComponentBuilder("request-processor", service_cost=15.0)
        .state("requests", 0)
    )
    with processor.on("zk_read", "m") as h:
        h.assign("requests", var("requests") + 1)
        h.send("serve_read", "replica-reader", {"path": field("m", "path")})
    with processor.on("zk_write", "m") as h:
        h.assign("requests", var("requests") + 1)
        h.send("order_write", "leader", {"path": field("m", "path"), "data": field("m", "data")})
    with processor.on("zk_session", "m") as h:
        h.assign("requests", var("requests") + 1)
        h.send("open_session", "session-manager", {"client_id": field("m", "client_id")})

    reader = (
        ComponentBuilder("replica-reader", service_cost=25.0)
        .state("cache_version", 1)
    )
    with reader.on("serve_read", "m") as h:
        h.assign("value", call("hash_bucket", field("m", "path"), 1_000) + var("cache_version"))
        h.send("read_response", CLIENT, {"path": field("m", "path"), "value": var("value")})

    leader = (
        ComponentBuilder("leader", service_cost=50.0)
        .state("zxid", 0)
    )
    with leader.on("order_write", "m") as h:
        h.assign("zxid", var("zxid") + 1)
        h.assign("r", 0)
        with h.while_(var("r") < QUORUM) as loop:
            loop.body.send(
                "append_txn",
                "quorum-log",
                {"zxid": var("zxid"), "path": field("m", "path"), "replica": var("r")},
            )
            loop.body.assign("r", var("r") + 1)
        h.send("commit_txn", "quorum-log", {"zxid": var("zxid")})
        h.send("fire_watches", "watch-manager", {"path": field("m", "path"), "zxid": var("zxid")})
        h.send("write_response", CLIENT, {"path": field("m", "path"), "zxid": var("zxid")})

    quorum_log = (
        ComponentBuilder("quorum-log", service_cost=2.5)
        .state("last_zxid", 0)
        .state("log_size", 0)
    )
    # The quorum log is a causal sink: appends and snapshots come in from
    # the leader and the session manager, but nothing flows out to other
    # components — the Section II-C signature of a serialised bottleneck.
    with quorum_log.on("append_txn", "m") as h:
        h.assign("last_zxid", call("max", var("last_zxid"), field("m", "zxid")))
        h.assign("log_size", var("log_size") + 1)
    with quorum_log.on("commit_txn", "m") as h:
        h.assign("last_zxid", call("max", var("last_zxid"), field("m", "zxid")))
    with quorum_log.on("log_snapshot", "m") as h:
        h.assign("log_size", var("log_size") + 1)

    watches = (
        ComponentBuilder("watch-manager", service_cost=30.0)
        .state("watch_count", 0)
    )
    with watches.on("fire_watches", "m") as h:
        h.assign("watch_count", var("watch_count") % 10_000 + 1)
        h.send("watch_event", CLIENT, {"path": field("m", "path"), "zxid": field("m", "zxid")})

    sessions = (
        ComponentBuilder("session-manager", service_cost=22.0)
        .state("open_sessions", 0)
    )
    with sessions.on("open_session", "m") as h:
        h.assign("open_sessions", var("open_sessions") + 1)
        h.send("log_snapshot", "quorum-log", {"client_id": field("m", "client_id")})
        h.send("session_response", CLIENT, {"client_id": field("m", "client_id")})

    return (
        AppBuilder("zookeeper")
        .component(processor)
        .component(reader)
        .component(leader)
        .component(quorum_log)
        .component(watches)
        .component(sessions)
        .entry("zk_read", "request-processor")
        .entry("zk_write", "request-processor")
        .entry("zk_session", "request-processor")
        .build()
    )


def request_classes() -> List[RequestClass]:
    """Read / write / session request classes."""
    return [
        RequestClass("read", "zk_read", {"path": "/config/app1"}),
        RequestClass("write", "zk_write", {"path": "/locks/job7", "data": "owner=w3"}),
        RequestClass("create_session", "zk_session", {"client_id": 42}),
    ]


def deployments() -> Dict[str, DeploymentSpec]:
    """Initial sizing; the quorum log is capped at the quorum size."""
    return {
        "request-processor": DeploymentSpec(initial_nodes=4, max_nodes=80),
        "replica-reader": DeploymentSpec(initial_nodes=8, max_nodes=80),
        "leader": DeploymentSpec(initial_nodes=6, max_nodes=80),
        "quorum-log": DeploymentSpec(initial_nodes=5, serial_limit=5, max_nodes=80),
        "watch-manager": DeploymentSpec(initial_nodes=4, max_nodes=80),
        "session-manager": DeploymentSpec(initial_nodes=2, max_nodes=80),
    }


def mix_schedule() -> StepMixSchedule:
    """Read-heavy baseline with a write surge (contention phase)."""
    return StepMixSchedule(
        [
            MixPhase(0.0, {"read": 8, "write": 2, "create_session": 1}),
            MixPhase(75.0, {"read": 5, "write": 5, "create_session": 1}),
            MixPhase(150.0, {"read": 3, "write": 7, "create_session": 1}),
            MixPhase(225.0, {"read": 7, "write": 2, "create_session": 2}),
            MixPhase(300.0, {"read": 4, "write": 6, "create_session": 1}),
            MixPhase(375.0, {"read": 8, "write": 1, "create_session": 2}),
        ]
    )


def magnitudes() -> Tuple[float, float]:
    """Points A and B of Fig. 7 for this benchmark (requests/min)."""
    return (280.0, 1_125.0)
