"""Scenario catalog: everything needed to run one application's evaluation.

An :class:`AppScenario` bundles an application with its request classes,
deployment, Fig. 7 magnitudes (points A/B), mix schedule, and a
*calibrated* instrumentation-overhead model.

Calibration (:func:`calibrate_overhead_model`) anchors the per-operation
and fixed costs of DCA instrumentation to the paper's Fig. 5 measurements
for each application: the model's two free intensity parameters are
solved so that, for this application's actual instruction mix (measured
by executing each request class through the instrumented interpreters),
the aggregate overhead hits the paper's DCA-100% figure and its DCA-5%
marginal figure; the amortisation parameter falls out of the same two
equations.  This plays the role of the per-application constant factors
(JIT, hash-table, Titan-client costs) that we cannot measure without the
original Java testbed — see DESIGN.md §4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.dca import DCAResult, analyze_application
from repro.core.instrument import OverheadModel
from repro.core.regression import MachineSpec
from repro.errors import SimulationError
from repro.lang.ir import Application
from repro.sim.cluster import DeploymentSpec
from repro.sim.runtime import ApplicationRuntime
from repro.workloads.generator import RequestClass
from repro.workloads.patterns import StepMixSchedule

from repro.apps import hedwig, marketcetera, zookeeper


@dataclass
class AppScenario:
    """One application plus its full experimental configuration."""

    name: str
    app: Application
    classes: List[RequestClass]
    deployments: Dict[str, DeploymentSpec]
    magnitudes: Tuple[float, float]
    mix: StepMixSchedule
    overhead_model: OverheadModel
    machine: MachineSpec = field(
        default_factory=lambda: MachineSpec(capacity_ms_per_minute=1_875.0)
    )
    num_front_ends: int = 4

    def request_class(self, name: str) -> RequestClass:
        for cls in self.classes:
            if cls.name == name:
                return cls
        raise SimulationError(f"scenario {self.name!r} has no request class {name!r}")


def average_mix(mix: StepMixSchedule, duration_minutes: float = 450.0) -> Dict[str, float]:
    """Time-averaged class weights of a mix schedule over ``duration_minutes``."""
    if duration_minutes <= 0:
        raise SimulationError(f"duration must be positive, got {duration_minutes}")
    totals: Dict[str, float] = {}
    steps = int(duration_minutes)
    for minute in range(steps):
        for name, weight in mix.mix(float(minute)).items():
            totals[name] = totals.get(name, 0.0) + weight
    return {name: w / steps for name, w in totals.items()}


def calibrate_overhead_model(
    app: Application,
    classes: List[RequestClass],
    full_overhead: float,
    marginal_overhead_at_5pct: float,
    fixed_fraction: float = 0.03,
    dca_result: Optional[DCAResult] = None,
    class_weights: Optional[Mapping[str, float]] = None,
) -> OverheadModel:
    """Solve the overhead model against the paper's Fig. 5 anchors.

    Parameters
    ----------
    full_overhead:
        Target aggregate overhead fraction at 100% sampling (e.g. 0.378
        for Marketcetera).
    marginal_overhead_at_5pct:
        Target overhead divided by the sampling rate at 5% sampling
        (e.g. 0.0289 / 0.05 = 0.578 for Marketcetera).
    fixed_fraction:
        Portion of the 100%-sampling overhead attributed to fixed
        per-message costs (uid bookkeeping + the graph-store write).

    The linear-amortisation model ``cost = fixed + ops·per_op·(1 − a·r)``
    has closed-form parameters given the two anchors; instruction counts
    (``ops``) and base CPU cost are measured by executing every request
    class once through DCA-instrumented interpreters.
    """
    if not 0 < full_overhead < marginal_overhead_at_5pct:
        raise SimulationError(
            "expected 0 < full_overhead < marginal@5% (sampling amortises costs); got "
            f"{full_overhead} vs {marginal_overhead_at_5pct}"
        )
    if not 0 <= fixed_fraction < full_overhead:
        raise SimulationError(f"fixed_fraction {fixed_fraction} must be < full_overhead")
    analysis = dca_result or analyze_application(app)
    # Measure the instruction mix with a unit-cost model.
    probe = ApplicationRuntime(
        app,
        dca_result=analysis,
        overhead_model=OverheadModel(per_op_ms=1.0, fixed_ms=0.0, amortization=0.0),
        sampling_rate=1.0,
    )
    total_base = 0.0
    total_ops = 0.0
    total_msgs = 0.0
    for request in classes:
        weight = class_weights.get(request.name, 0.0) if class_weights is not None else 1.0
        if weight <= 0:
            continue
        trace = probe.execute_request(request, sampled=True)
        for comp, msgs in trace.component_messages.items():
            total_base += weight * msgs * app.components[comp].service_cost
            total_msgs += weight * msgs
        total_ops += weight * sum(trace.component_instr_ops.values())
    if total_base <= 0 or total_msgs <= 0:
        raise SimulationError("calibration traces produced no work")
    if total_ops <= 0:
        raise SimulationError(
            "DCA found nothing to track (all V_tr empty); cannot calibrate overhead"
        )
    f = fixed_fraction
    m5 = marginal_overhead_at_5pct
    # Solve f + O(1 - 0.05 a) = m5 and f + O(1 - a) = full for O and a.
    o_frac = (m5 - 0.95 * f - 0.05 * full_overhead) / 0.95
    if o_frac <= 0:
        raise SimulationError("calibration infeasible: per-op fraction is non-positive")
    amort = (o_frac - (full_overhead - f)) / o_frac
    amort = max(0.0, min(0.95, amort))
    per_op_ms = o_frac * total_base / total_ops
    fixed_ms = f * total_base / total_msgs
    return OverheadModel(per_op_ms=per_op_ms, fixed_ms=fixed_ms, amortization=amort)


def marketcetera_scenario() -> AppScenario:
    """Marketcetera scenario with Fig. 5 anchors 37.8% / 2.89%@5%."""
    app = marketcetera.build()
    classes = marketcetera.request_classes()
    model = calibrate_overhead_model(
        app,
        classes,
        class_weights=average_mix(marketcetera.mix_schedule()),
        full_overhead=0.378, marginal_overhead_at_5pct=0.0289 / 0.05
    )
    return AppScenario(
        name="marketcetera",
        app=app,
        classes=classes,
        deployments=marketcetera.deployments(),
        magnitudes=marketcetera.magnitudes(),
        mix=marketcetera.mix_schedule(),
        overhead_model=model,
    )


def hedwig_scenario() -> AppScenario:
    """Hedwig scenario with Fig. 5 anchors 27.5% / 3.38%@5%."""
    app = hedwig.build()
    classes = hedwig.request_classes()
    model = calibrate_overhead_model(
        app,
        classes,
        class_weights=average_mix(hedwig.mix_schedule()),
        full_overhead=0.275, marginal_overhead_at_5pct=0.0338 / 0.05
    )
    return AppScenario(
        name="hedwig",
        app=app,
        classes=classes,
        deployments=hedwig.deployments(),
        magnitudes=hedwig.magnitudes(),
        mix=hedwig.mix_schedule(),
        overhead_model=model,
    )


def zookeeper_scenario() -> AppScenario:
    """Zookeeper scenario (companion TR; anchors interpolated from Fig. 5)."""
    app = zookeeper.build()
    classes = zookeeper.request_classes()
    model = calibrate_overhead_model(
        app,
        classes,
        class_weights=average_mix(zookeeper.mix_schedule()),
        full_overhead=0.30, marginal_overhead_at_5pct=0.60
    )
    return AppScenario(
        name="zookeeper",
        app=app,
        classes=classes,
        deployments=zookeeper.deployments(),
        magnitudes=zookeeper.magnitudes(),
        mix=zookeeper.mix_schedule(),
        overhead_model=model,
    )


#: Scenario factories by name (lazy: building a scenario runs calibration).
SCENARIOS: Dict[str, Callable[[], AppScenario]] = {
    "marketcetera": marketcetera_scenario,
    "hedwig": hedwig_scenario,
    "zookeeper": zookeeper_scenario,
}


def load_scenario(name: str) -> AppScenario:
    """Build the named scenario; raises on unknown names."""
    factory = SCENARIOS.get(name)
    if factory is None:
        raise SimulationError(f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}")
    return factory()
