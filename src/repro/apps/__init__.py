"""Synthetic applications modelling the paper's evaluation subjects."""

from repro.apps import ecommerce, fig4, hedwig, marketcetera, universal_search, zookeeper

__all__ = [
    "ecommerce",
    "fig4",
    "hedwig",
    "marketcetera",
    "universal_search",
    "zookeeper",
]
