"""The paper's Fig. 4 running example, reproduced statement-for-statement.

``Comp1`` receives ``msg1`` and ``msg2``:

* ``msg1`` writes ``z`` (from ``msg1.x``) and ``p`` — but ``p`` never
  influences any emission, so DCA ignores it;
* ``msg2`` controls the emission of ``msg3`` (whose payload ``s`` is
  computed from ``z``) and writes ``q`` — again ignored, ``q ∉ V_out``.

Hence ``V_out(Comp1) = {z}`` and ``V_tr(Comp1) = {z}``: the paper's
worked example of why DCA's instrumentation is far cheaper than
whole-program dynamic slicing.  ``msg1[x:150]`` and ``msg2[y:200]``
together cause ``msg3[s:22500]`` (150² = 22500).

``Comp2`` consumes ``msg3`` through the pre-analysed pure library
(``sqrt``/``log``, the paper's ``Math.sqrt``/``Math.log``) and responds
to the client, closing the causal path.
"""

from __future__ import annotations

from repro.lang.builder import AppBuilder, ComponentBuilder, call, field, var
from repro.lang.ir import CLIENT, Application


def build() -> Application:
    """Build the two-component Fig. 4 application."""
    comp1 = (
        ComponentBuilder("Comp1", service_cost=20.0)
        .state("z", 0)
        .state("p", 0)
        .state("q", 0)
    )
    with comp1.on("msg1", "m") as h:
        h.assign("z", field("m", "x"))
        h.assign("p", field("m", "x") * 2)
    with comp1.on("msg2", "m") as h:
        h.assign("q", field("m", "y") - 200)
        with h.if_(field("m", "y") > 0) as branch:
            branch.then.send("msg3", "Comp2", {"s": var("z") * var("z")})

    comp2 = ComponentBuilder("Comp2", service_cost=15.0)
    with comp2.on("msg3", "m") as h:
        h.assign("root", call("sqrt", field("m", "s")))
        h.send("done", CLIENT, {"v": var("root"), "lg": call("log", field("m", "s"))})

    return (
        AppBuilder("fig4")
        .component(comp1)
        .component(comp2)
        .entry("msg1", "Comp1")
        .entry("msg2", "Comp1")
        .build()
    )
