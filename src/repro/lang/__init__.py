"""Component IR, static analyses, and interpreter for distributed programs.

This package is the "analysable language" substrate of the reproduction:
the paper runs Direct Causality Analysis over Java bytecode with WALA; we
run the identical analyses (CFG construction, reaching definitions,
control dependence, forward/backward slicing) over the explicit IR defined
here, and execute instrumented components with the provenance-tracking
interpreter.
"""

from repro.lang.builder import (
    AppBuilder,
    BlockBuilder,
    ComponentBuilder,
    call,
    const,
    field,
    var,
)
from repro.lang.cfg import CFG, ENTRY, EXIT, build_cfg, control_dependences, postdominators
from repro.lang.dependence import (
    MSG_PARAM,
    HandlerPDG,
    SendSummary,
    SliceResult,
    WriteSummary,
    build_pdgs,
    reaching_definitions,
)
from repro.lang.interpreter import HandlerOutcome, Interpreter, ReplicaState
from repro.lang.ir import (
    CLIENT,
    EXTERNAL,
    Application,
    Assign,
    BinOp,
    Call,
    Component,
    Const,
    Expr,
    Field,
    Handler,
    If,
    LibraryRegistry,
    Send,
    Skip,
    Stmt,
    UnaryOp,
    Var,
    While,
    as_expr,
    default_library,
)
from repro.lang.message import Message, MessageUid, UidFactory

__all__ = [
    "CFG",
    "CLIENT",
    "ENTRY",
    "EXIT",
    "EXTERNAL",
    "MSG_PARAM",
    "AppBuilder",
    "Application",
    "Assign",
    "BinOp",
    "BlockBuilder",
    "Call",
    "Component",
    "ComponentBuilder",
    "Const",
    "Expr",
    "Field",
    "Handler",
    "HandlerOutcome",
    "HandlerPDG",
    "If",
    "Interpreter",
    "LibraryRegistry",
    "Message",
    "MessageUid",
    "ReplicaState",
    "Send",
    "SendSummary",
    "Skip",
    "SliceResult",
    "Stmt",
    "UidFactory",
    "UnaryOp",
    "Var",
    "While",
    "WriteSummary",
    "as_expr",
    "build_cfg",
    "build_pdgs",
    "call",
    "const",
    "control_dependences",
    "default_library",
    "field",
    "postdominators",
    "reaching_definitions",
    "var",
]
