"""Runtime message model.

The paper uniquely identifies each message by the tuple
``<IPAddress, ProcessId, PerProcessSequenceNumber>`` (Section IV-A).
:class:`MessageUid` reproduces that scheme; :class:`UidFactory` hands out
per-process sequence numbers deterministically so simulations are
repeatable.

Both :class:`MessageUid` and :class:`Message` sit on the DCA hot path —
every observed message allocates one of each, and every uid is hashed
many times (graph-store dicts, edge sets, taint sets).  They are
hand-rolled ``__slots__`` classes rather than dataclasses: the uid
computes its hash once at construction, and equality short-circuits on
identity, which the interpreter's taint sets and the store's hash index
hit constantly.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Mapping, Optional

from repro.errors import IRError


class MessageUid:
    """Globally unique message identifier.

    Mirrors the paper's ``〈IPAddress, ProcessId, PerProcessSequenceNumber〉``
    triple.  ``address`` is a simulated host address, ``process_id`` the
    simulated process, and ``seq`` a per-process counter.

    Instances are immutable; ``_hash`` is computed once at construction
    (uids are hashed on every graph-store and taint-set operation) and
    ``_crc`` lazily caches the stable partition hash the
    :class:`~repro.graphstore.partition.HashPartitioner` derives from the
    triple.
    """

    __slots__ = ("address", "process_id", "seq", "_hash", "_crc")

    def __init__(self, address: str, process_id: int, seq: int) -> None:
        object.__setattr__(self, "address", address)
        object.__setattr__(self, "process_id", process_id)
        object.__setattr__(self, "seq", seq)
        object.__setattr__(self, "_hash", hash((address, process_id, seq)))
        object.__setattr__(self, "_crc", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"MessageUid is immutable (cannot set {name!r})")

    def __reduce__(self):
        # The immutable __setattr__ breaks the default slot-state
        # unpickling; rebuild through __init__ instead (the shared-store
        # backend ships uids across a multiprocessing proxy boundary).
        return (MessageUid, (self.address, self.process_id, self.seq))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if not isinstance(other, MessageUid):
            return NotImplemented
        return (
            self.seq == other.seq
            and self.process_id == other.process_id
            and self.address == other.address
        )

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def _key(self):
        return (self.address, self.process_id, self.seq)

    def __lt__(self, other: "MessageUid") -> bool:
        return self._key() < other._key()

    def __le__(self, other: "MessageUid") -> bool:
        return self._key() <= other._key()

    def __gt__(self, other: "MessageUid") -> bool:
        return self._key() > other._key()

    def __ge__(self, other: "MessageUid") -> bool:
        return self._key() >= other._key()

    def __repr__(self) -> str:
        return f"MessageUid(address={self.address!r}, process_id={self.process_id!r}, seq={self.seq!r})"

    def __str__(self) -> str:
        return f"{self.address}/{self.process_id}#{self.seq}"


class UidFactory:
    """Deterministic producer of per-process message uids."""

    __slots__ = ("address", "process_id", "_seq")

    def __init__(self, address: str, process_id: int) -> None:
        if not address:
            raise IRError("UidFactory requires a non-empty address")
        self.address = address
        self.process_id = int(process_id)
        self._seq = itertools.count(1)

    def next_uid(self) -> MessageUid:
        return MessageUid(self.address, self.process_id, next(self._seq))


_EMPTY_FIELDS: Mapping[str, object] = {}
_EMPTY_CAUSES: FrozenSet[MessageUid] = frozenset()


class Message:
    """A message instance flowing between components.

    Attributes
    ----------
    uid:
        Unique identifier (see :class:`MessageUid`).
    msg_type:
        The message type; selects the destination handler.
    src / dest:
        Component names; ``src`` is :data:`~repro.lang.ir.EXTERNAL` for
        customer requests and ``dest`` is :data:`~repro.lang.ir.CLIENT`
        for responses.
    fields:
        Payload values by field name.
    cause_uids:
        Uids of the messages that *directly caused* this one (dynamic
        control/data flow, Section III).  Empty for external requests and
        for messages emitted by uninstrumented components.
    root_uid:
        Uid of the external request at the head of this message's causal
        path, when known (propagated by the runtime for bookkeeping; DCA
        itself reconstructs paths from ``cause_uids`` via the graph store).
    sampled:
        Whether this message belongs to a causal path selected for DCA
        tracking (the sampling decision is made once, at the front end,
        and inherited by all downstream messages — Section IV-D).
    """

    __slots__ = ("uid", "msg_type", "src", "dest", "fields", "cause_uids", "root_uid", "sampled")

    def __init__(
        self,
        uid: MessageUid,
        msg_type: str,
        src: str,
        dest: str,
        fields: Optional[Mapping[str, object]] = None,
        cause_uids: FrozenSet[MessageUid] = _EMPTY_CAUSES,
        root_uid: Optional[MessageUid] = None,
        sampled: bool = True,
    ) -> None:
        self.uid = uid
        self.msg_type = msg_type
        self.src = src
        self.dest = dest
        self.fields = _EMPTY_FIELDS if fields is None else fields
        self.cause_uids = cause_uids
        self.root_uid = root_uid
        self.sampled = sampled

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if not isinstance(other, Message):
            return NotImplemented
        return (
            self.uid == other.uid
            and self.msg_type == other.msg_type
            and self.src == other.src
            and self.dest == other.dest
            and dict(self.fields) == dict(other.fields)
            and self.cause_uids == other.cause_uids
            and self.root_uid == other.root_uid
            and self.sampled == other.sampled
        )

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def with_causes(self, causes: FrozenSet[MessageUid]) -> "Message":
        """Copy of this message with ``cause_uids`` replaced."""
        return Message(
            uid=self.uid,
            msg_type=self.msg_type,
            src=self.src,
            dest=self.dest,
            fields=dict(self.fields),
            cause_uids=causes,
            root_uid=self.root_uid,
            sampled=self.sampled,
        )

    def __repr__(self) -> str:
        return (
            f"Message(uid={self.uid!r}, msg_type={self.msg_type!r}, src={self.src!r}, "
            f"dest={self.dest!r}, fields={self.fields!r}, cause_uids={self.cause_uids!r}, "
            f"root_uid={self.root_uid!r}, sampled={self.sampled!r})"
        )

    def __str__(self) -> str:
        return f"{self.msg_type}[{self.uid}] {self.src}->{self.dest}"
