"""Runtime message model.

The paper uniquely identifies each message by the tuple
``<IPAddress, ProcessId, PerProcessSequenceNumber>`` (Section IV-A).
:class:`MessageUid` reproduces that scheme; :class:`UidFactory` hands out
per-process sequence numbers deterministically so simulations are
repeatable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import FrozenSet, Mapping, Optional

from repro.errors import IRError


@dataclass(frozen=True, order=True)
class MessageUid:
    """Globally unique message identifier.

    Mirrors the paper's ``〈IPAddress, ProcessId, PerProcessSequenceNumber〉``
    triple.  ``address`` is a simulated host address, ``process_id`` the
    simulated process, and ``seq`` a per-process counter.
    """

    address: str
    process_id: int
    seq: int

    def __str__(self) -> str:
        return f"{self.address}/{self.process_id}#{self.seq}"


class UidFactory:
    """Deterministic producer of per-process message uids."""

    def __init__(self, address: str, process_id: int) -> None:
        if not address:
            raise IRError("UidFactory requires a non-empty address")
        self.address = address
        self.process_id = int(process_id)
        self._seq = itertools.count(1)

    def next_uid(self) -> MessageUid:
        return MessageUid(self.address, self.process_id, next(self._seq))


@dataclass(frozen=True)
class Message:
    """A message instance flowing between components.

    Attributes
    ----------
    uid:
        Unique identifier (see :class:`MessageUid`).
    msg_type:
        The message type; selects the destination handler.
    src / dest:
        Component names; ``src`` is :data:`~repro.lang.ir.EXTERNAL` for
        customer requests and ``dest`` is :data:`~repro.lang.ir.CLIENT`
        for responses.
    fields:
        Payload values by field name.
    cause_uids:
        Uids of the messages that *directly caused* this one (dynamic
        control/data flow, Section III).  Empty for external requests and
        for messages emitted by uninstrumented components.
    root_uid:
        Uid of the external request at the head of this message's causal
        path, when known (propagated by the runtime for bookkeeping; DCA
        itself reconstructs paths from ``cause_uids`` via the graph store).
    sampled:
        Whether this message belongs to a causal path selected for DCA
        tracking (the sampling decision is made once, at the front end,
        and inherited by all downstream messages — Section IV-D).
    """

    uid: MessageUid
    msg_type: str
    src: str
    dest: str
    fields: Mapping[str, object] = field(default_factory=dict)
    cause_uids: FrozenSet[MessageUid] = frozenset()
    root_uid: Optional[MessageUid] = None
    sampled: bool = True

    def with_causes(self, causes: FrozenSet[MessageUid]) -> "Message":
        """Copy of this message with ``cause_uids`` replaced."""
        return Message(
            uid=self.uid,
            msg_type=self.msg_type,
            src=self.src,
            dest=self.dest,
            fields=dict(self.fields),
            cause_uids=causes,
            root_uid=self.root_uid,
            sampled=self.sampled,
        )

    def __str__(self) -> str:
        return f"{self.msg_type}[{self.uid}] {self.src}->{self.dest}"
