"""Intermediate representation (IR) for distributed component programs.

The paper's Direct Causality Analysis (DCA) statically analyses the source
of each component of a distributed application: it slices backward from
every ``send`` site and forward from every ``recv`` site to discover which
state variables can carry information from incoming messages to outgoing
messages (Section IV-A of the paper).  The paper performs this on Java
bytecode with WALA; this reproduction performs the same analyses on a
small, explicit IR defined in this module.

A *component* is a named unit of the application (e.g. ``web-frontend``,
``price-db``) with:

* typed *state variables* with initial values, and
* one *handler* per incoming message type; a handler body is a list of
  statements that may read/write state, perform local computation, branch,
  loop, and ``send`` messages to other components (or reply to the external
  client via the reserved destination :data:`CLIENT`).

Expressions support operator overloading, so handler bodies read naturally::

    Assign("z", Var("z") + Field("m", "x"))

The IR is deliberately side-effect-explicit: the only statements that
mutate component state are :class:`Assign` (and the compound statements
that contain assignments), and the only inter-component effect is
:class:`Send`.  This is what makes the static slicing in
``repro.core.slicing`` exact rather than conservative.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.errors import IRError

#: Reserved destination name for replying to the external client.  A
#: message sent to :data:`CLIENT` terminates a causal path (it is the
#: "response from the application" in the paper's BFS termination rule).
CLIENT = "__client__"

#: Reserved source name for messages arriving from outside the application
#: (external customer requests, Section II of the paper).
EXTERNAL = "__external__"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class of all IR expressions.

    Operator overloading builds :class:`BinOp` nodes so handler bodies can
    be written with ordinary Python operators.
    """

    def free_vars(self) -> Set[str]:
        """Names of state variables read by this expression."""
        raise NotImplementedError

    def message_fields(self) -> Set[Tuple[str, str]]:
        """``(param, field)`` pairs of message fields read by this expression."""
        raise NotImplementedError

    # -- operator sugar ----------------------------------------------------

    def _binop(self, op: str, other: "ExprLike", reflected: bool = False) -> "BinOp":
        other_expr = as_expr(other)
        if reflected:
            return BinOp(op, other_expr, self)
        return BinOp(op, self, other_expr)

    def __add__(self, other: "ExprLike") -> "BinOp":
        return self._binop("+", other)

    def __radd__(self, other: "ExprLike") -> "BinOp":
        return self._binop("+", other, reflected=True)

    def __sub__(self, other: "ExprLike") -> "BinOp":
        return self._binop("-", other)

    def __rsub__(self, other: "ExprLike") -> "BinOp":
        return self._binop("-", other, reflected=True)

    def __mul__(self, other: "ExprLike") -> "BinOp":
        return self._binop("*", other)

    def __rmul__(self, other: "ExprLike") -> "BinOp":
        return self._binop("*", other, reflected=True)

    def __truediv__(self, other: "ExprLike") -> "BinOp":
        return self._binop("/", other)

    def __rtruediv__(self, other: "ExprLike") -> "BinOp":
        return self._binop("/", other, reflected=True)

    def __mod__(self, other: "ExprLike") -> "BinOp":
        return self._binop("%", other)

    def __gt__(self, other: "ExprLike") -> "BinOp":
        return self._binop(">", other)

    def __ge__(self, other: "ExprLike") -> "BinOp":
        return self._binop(">=", other)

    def __lt__(self, other: "ExprLike") -> "BinOp":
        return self._binop("<", other)

    def __le__(self, other: "ExprLike") -> "BinOp":
        return self._binop("<=", other)

    def eq(self, other: "ExprLike") -> "BinOp":
        """Equality comparison node (``==`` is kept for identity use in sets)."""
        return self._binop("==", other)

    def ne(self, other: "ExprLike") -> "BinOp":
        return self._binop("!=", other)

    def and_(self, other: "ExprLike") -> "BinOp":
        return self._binop("and", other)

    def or_(self, other: "ExprLike") -> "BinOp":
        return self._binop("or", other)


ExprLike = Union[Expr, int, float, str, bool]


def as_expr(value: ExprLike) -> Expr:
    """Coerce a Python literal into a :class:`Const`; pass exprs through."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float, str, bool)):
        return Const(value)
    raise IRError(f"cannot coerce {value!r} of type {type(value).__name__} to an IR expression")


@dataclass(frozen=True)
class Const(Expr):
    """A literal constant."""

    value: Union[int, float, str, bool]

    def free_vars(self) -> Set[str]:
        return set()

    def message_fields(self) -> Set[Tuple[str, str]]:
        return set()

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


@dataclass(frozen=True)
class Var(Expr):
    """A read of a component state variable (or handler-local variable)."""

    name: str

    def free_vars(self) -> Set[str]:
        return {self.name}

    def message_fields(self) -> Set[Tuple[str, str]]:
        return set()

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


@dataclass(frozen=True)
class Field(Expr):
    """A read of a field of the handler's bound message parameter.

    ``Field("m", "x")`` reads field ``x`` of the message bound to handler
    parameter ``m`` — the IR analogue of ``msg1.x`` in the paper's Fig. 4.
    """

    param: str
    name: str

    def free_vars(self) -> Set[str]:
        return set()

    def message_fields(self) -> Set[Tuple[str, str]]:
        return {(self.param, self.name)}

    def __repr__(self) -> str:
        return f"Field({self.param!r}, {self.name!r})"


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary operation; ``op`` is one of the arithmetic/comparison/logic ops."""

    op: str
    left: Expr
    right: Expr

    _OPS: "frozenset[str]" = frozenset(
        {"+", "-", "*", "/", "%", "//", ">", ">=", "<", "<=", "==", "!=", "and", "or", "min", "max"}
    )

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise IRError(f"unknown binary operator {self.op!r}")

    def free_vars(self) -> Set[str]:
        return self.left.free_vars() | self.right.free_vars()

    def message_fields(self) -> Set[Tuple[str, str]]:
        return self.left.message_fields() | self.right.message_fields()

    def __repr__(self) -> str:
        return f"BinOp({self.op!r}, {self.left!r}, {self.right!r})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    """A unary operation: ``-`` or ``not``."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in ("-", "not"):
            raise IRError(f"unknown unary operator {self.op!r}")

    def free_vars(self) -> Set[str]:
        return self.operand.free_vars()

    def message_fields(self) -> Set[Tuple[str, str]]:
        return self.operand.message_fields()

    def __repr__(self) -> str:
        return f"UnaryOp({self.op!r}, {self.operand!r})"


@dataclass(frozen=True)
class Call(Expr):
    """A call to a registered library function.

    The paper pre-analyses the Java standard library to find side-effect
    free APIs (``Math.sqrt``, ``Math.log`` in Fig. 4) so they need not be
    re-analysed.  Our analogue is :class:`LibraryRegistry`: calls to *pure*
    registered functions propagate dependence only through their arguments;
    calls to functions not registered as pure are rejected at validation
    time, mirroring the paper's requirement that unknown library code be
    analysed before DCA can run.
    """

    func: str
    args: Tuple[Expr, ...]

    def __init__(self, func: str, *args: ExprLike) -> None:
        object.__setattr__(self, "func", func)
        object.__setattr__(self, "args", tuple(as_expr(a) for a in args))

    def free_vars(self) -> Set[str]:
        out: Set[str] = set()
        for arg in self.args:
            out |= arg.free_vars()
        return out

    def message_fields(self) -> Set[Tuple[str, str]]:
        out: Set[Tuple[str, str]] = set()
        for arg in self.args:
            out |= arg.message_fields()
        return out

    def __repr__(self) -> str:
        args = ", ".join(repr(a) for a in self.args)
        return f"Call({self.func!r}, {args})"


class LibraryRegistry:
    """Registry of library functions callable from IR expressions.

    Mirrors the paper's pre-analysis of ``java.*``: a function registered
    here with ``pure=True`` is known to have no side effects and no hidden
    control/data flow, so DCA treats it as a pure dependence conduit from
    arguments to result.
    """

    def __init__(self) -> None:
        self._functions: Dict[str, Callable[..., object]] = {}
        self._pure: Set[str] = set()

    def register(self, name: str, fn: Callable[..., object], pure: bool = True) -> None:
        """Register ``fn`` under ``name``.  Re-registration overwrites."""
        self._functions[name] = fn
        if pure:
            self._pure.add(name)
        else:
            self._pure.discard(name)

    def is_registered(self, name: str) -> bool:
        return name in self._functions

    def is_pure(self, name: str) -> bool:
        return name in self._pure

    def lookup(self, name: str) -> Callable[..., object]:
        try:
            return self._functions[name]
        except KeyError:
            raise IRError(f"library function {name!r} is not registered") from None

    def names(self) -> Set[str]:
        return set(self._functions)


def default_library() -> LibraryRegistry:
    """The standard library available to component programs.

    All functions are pure, matching the paper's pre-analysed ``Math.*``
    APIs ("pure functions with neither any side-effects, nor any indirect
    data/control flow", Section IV-A).
    """
    import math

    lib = LibraryRegistry()
    lib.register("sqrt", lambda x: math.sqrt(max(0.0, float(x))))
    lib.register("log", lambda x: math.log(max(1e-12, float(x))))
    lib.register("exp", lambda x: math.exp(min(700.0, float(x))))
    lib.register("abs", lambda x: abs(x))
    lib.register("floor", lambda x: math.floor(x))
    lib.register("ceil", lambda x: math.ceil(x))
    lib.register("min", lambda a, b: min(a, b))
    lib.register("max", lambda a, b: max(a, b))
    lib.register("hash_bucket", lambda x, n: hash(str(x)) % max(1, int(n)))
    lib.register("len", lambda s: len(str(s)))
    lib.register("concat", lambda a, b: f"{a}{b}")
    return lib


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

_STMT_IDS = itertools.count(1)


class Stmt:
    """Base class of IR statements.

    Each statement instance carries a unique ``sid`` used as its node id in
    the CFG/PDG; statement objects must therefore not be shared between
    handler bodies.
    """

    def __init__(self) -> None:
        self.sid: int = next(_STMT_IDS)

    def defs(self) -> Set[str]:
        """State/local variables written by this statement (non-compound part)."""
        return set()

    def uses(self) -> Set[str]:
        """Variables read directly by this statement (non-compound part)."""
        return set()

    def message_fields(self) -> Set[Tuple[str, str]]:
        """Message fields read directly by this statement."""
        return set()

    def children(self) -> Sequence[Sequence["Stmt"]]:
        """Nested statement blocks (for compound statements)."""
        return ()

    def walk(self) -> Iterator["Stmt"]:
        """Yield this statement and all statements nested within it."""
        yield self
        for block in self.children():
            for stmt in block:
                yield from stmt.walk()


class Assign(Stmt):
    """``target = expr`` — the only state-mutating statement."""

    def __init__(self, target: str, expr: ExprLike) -> None:
        super().__init__()
        if not isinstance(target, str) or not target:
            raise IRError(f"assignment target must be a non-empty string, got {target!r}")
        self.target = target
        self.expr = as_expr(expr)

    def defs(self) -> Set[str]:
        return {self.target}

    def uses(self) -> Set[str]:
        return self.expr.free_vars()

    def message_fields(self) -> Set[Tuple[str, str]]:
        return self.expr.message_fields()

    def __repr__(self) -> str:
        return f"Assign({self.target!r}, {self.expr!r})"


class If(Stmt):
    """``if cond: then_body else: else_body``."""

    def __init__(self, cond: ExprLike, then_body: Sequence[Stmt], else_body: Sequence[Stmt] = ()) -> None:
        super().__init__()
        self.cond = as_expr(cond)
        self.then_body: List[Stmt] = list(then_body)
        self.else_body: List[Stmt] = list(else_body)

    def uses(self) -> Set[str]:
        return self.cond.free_vars()

    def message_fields(self) -> Set[Tuple[str, str]]:
        return self.cond.message_fields()

    def children(self) -> Sequence[Sequence[Stmt]]:
        return (self.then_body, self.else_body)

    def __repr__(self) -> str:
        return f"If({self.cond!r}, then={len(self.then_body)} stmts, else={len(self.else_body)} stmts)"


class While(Stmt):
    """``while cond: body`` — iterations are bounded at runtime.

    The interpreter enforces :attr:`Interpreter.max_loop_iterations`
    (default 10⁴) so that analysis examples cannot hang the simulator.
    """

    def __init__(self, cond: ExprLike, body: Sequence[Stmt]) -> None:
        super().__init__()
        self.cond = as_expr(cond)
        self.body: List[Stmt] = list(body)

    def uses(self) -> Set[str]:
        return self.cond.free_vars()

    def message_fields(self) -> Set[Tuple[str, str]]:
        return self.cond.message_fields()

    def children(self) -> Sequence[Sequence[Stmt]]:
        return (self.body,)

    def __repr__(self) -> str:
        return f"While({self.cond!r}, body={len(self.body)} stmts)"


class Send(Stmt):
    """Emit a message of type ``msg_type`` to component ``dest``.

    ``fields`` maps field names to expressions; the values (and their
    provenance, when instrumented) are evaluated at emission time.  ``dest``
    may be :data:`CLIENT` to respond to the external caller, terminating
    the causal path.
    """

    def __init__(self, msg_type: str, dest: str, fields: Optional[Mapping[str, ExprLike]] = None) -> None:
        super().__init__()
        if not msg_type:
            raise IRError("Send requires a non-empty message type")
        if not dest:
            raise IRError("Send requires a non-empty destination component")
        self.msg_type = msg_type
        self.dest = dest
        self.fields: Dict[str, Expr] = {k: as_expr(v) for k, v in (fields or {}).items()}

    def uses(self) -> Set[str]:
        out: Set[str] = set()
        for expr in self.fields.values():
            out |= expr.free_vars()
        return out

    def message_fields(self) -> Set[Tuple[str, str]]:
        out: Set[Tuple[str, str]] = set()
        for expr in self.fields.values():
            out |= expr.message_fields()
        return out

    def __repr__(self) -> str:
        return f"Send({self.msg_type!r} -> {self.dest!r}, fields={sorted(self.fields)})"


class Skip(Stmt):
    """A no-op statement (useful as an empty branch placeholder)."""

    def __repr__(self) -> str:
        return "Skip()"


# ---------------------------------------------------------------------------
# Handlers, components, applications
# ---------------------------------------------------------------------------


@dataclass
class Handler:
    """A message handler: ``on <msg_type>(<param>): body``."""

    msg_type: str
    param: str
    body: List[Stmt] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.msg_type:
            raise IRError("handler requires a non-empty message type")
        if not self.param:
            raise IRError("handler requires a non-empty parameter name")
        self.body = list(self.body)

    def walk(self) -> Iterator[Stmt]:
        """Yield every statement in the handler body, including nested ones."""
        for stmt in self.body:
            yield from stmt.walk()

    def sends(self) -> List[Send]:
        """All :class:`Send` statements anywhere in the body."""
        return [s for s in self.walk() if isinstance(s, Send)]

    def assigned_vars(self) -> Set[str]:
        """All variables assigned anywhere in the body."""
        return {s.target for s in self.walk() if isinstance(s, Assign)}


class Component:
    """A component of the distributed application.

    Parameters
    ----------
    name:
        Component name, unique within an :class:`Application`.
    state:
        Mapping of state-variable name to initial value.
    handlers:
        The component's message handlers (at most one per message type).
    service_cost:
        Abstract per-message processing cost in milliseconds of CPU time
        on a reference node; drives the cluster simulator's capacity
        model.
    """

    def __init__(
        self,
        name: str,
        state: Optional[Mapping[str, object]] = None,
        handlers: Optional[Iterable[Handler]] = None,
        service_cost: float = 1.0,
    ) -> None:
        if not name:
            raise IRError("component requires a non-empty name")
        if name in (CLIENT, EXTERNAL):
            raise IRError(f"component name {name!r} is reserved")
        if service_cost <= 0:
            raise IRError(f"service_cost must be positive, got {service_cost}")
        self.name = name
        self.state: Dict[str, object] = dict(state or {})
        self.service_cost = float(service_cost)
        self._handlers: Dict[str, Handler] = {}
        for handler in handlers or ():
            self.add_handler(handler)

    def add_handler(self, handler: Handler) -> None:
        """Attach ``handler``; rejects duplicate message types."""
        if handler.msg_type in self._handlers:
            raise IRError(f"component {self.name!r} already handles message type {handler.msg_type!r}")
        self._handlers[handler.msg_type] = handler

    @property
    def handlers(self) -> Dict[str, Handler]:
        """Message type → handler (read-only view by convention)."""
        return self._handlers

    def handler_for(self, msg_type: str) -> Handler:
        try:
            return self._handlers[msg_type]
        except KeyError:
            raise IRError(f"component {self.name!r} has no handler for message type {msg_type!r}") from None

    def handled_types(self) -> Set[str]:
        return set(self._handlers)

    def emitted_types(self) -> Set[str]:
        """Message types this component can send (across all handlers)."""
        return {send.msg_type for handler in self._handlers.values() for send in handler.sends()}

    def state_vars(self) -> Set[str]:
        return set(self.state)

    def __repr__(self) -> str:
        return f"Component({self.name!r}, handlers={sorted(self._handlers)}, state={sorted(self.state)})"


class Application:
    """A distributed application: a set of components plus entry points.

    ``entry_points`` maps an external request type to the component that
    receives it (the front-end in the paper's terminology).  Validation
    checks that every :class:`Send` destination exists and has a handler
    for the sent message type, and that every :class:`Call` in every
    expression refers to a registered pure library function.
    """

    def __init__(
        self,
        name: str,
        components: Iterable[Component],
        entry_points: Mapping[str, str],
        library: Optional[LibraryRegistry] = None,
    ) -> None:
        if not name:
            raise IRError("application requires a non-empty name")
        self.name = name
        self.components: Dict[str, Component] = {}
        for comp in components:
            if comp.name in self.components:
                raise IRError(f"duplicate component name {comp.name!r}")
            self.components[comp.name] = comp
        if not self.components:
            raise IRError(f"application {name!r} has no components")
        self.entry_points: Dict[str, str] = dict(entry_points)
        if not self.entry_points:
            raise IRError(f"application {name!r} has no entry points")
        self.library = library or default_library()
        self.validate()

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        """Check structural well-formedness; raise :class:`IRError` on failure."""
        for req_type, comp_name in self.entry_points.items():
            comp = self.components.get(comp_name)
            if comp is None:
                raise IRError(f"entry point {req_type!r} targets unknown component {comp_name!r}")
            if req_type not in comp.handlers:
                raise IRError(
                    f"entry point component {comp_name!r} has no handler for external request type {req_type!r}"
                )
        for comp in self.components.values():
            for handler in comp.handlers.values():
                self._validate_handler(comp, handler)

    def _validate_handler(self, comp: Component, handler: Handler) -> None:
        for stmt in handler.walk():
            for param, _ in stmt.message_fields():
                if param != handler.param:
                    raise IRError(
                        f"{comp.name}.{handler.msg_type}: expression reads field of unknown "
                        f"message parameter {param!r} (handler parameter is {handler.param!r})"
                    )
            self._validate_calls(comp, handler, stmt)
            if isinstance(stmt, Send):
                self._validate_send(comp, handler, stmt)

    def _validate_calls(self, comp: Component, handler: Handler, stmt: Stmt) -> None:
        for expr in _stmt_exprs(stmt):
            for call in _walk_calls(expr):
                if not self.library.is_registered(call.func):
                    raise IRError(
                        f"{comp.name}.{handler.msg_type}: call to unregistered library function {call.func!r}"
                    )
                if not self.library.is_pure(call.func):
                    raise IRError(
                        f"{comp.name}.{handler.msg_type}: call to impure library function {call.func!r}; "
                        "DCA requires library code to be analysed (registered pure) before use"
                    )

    def _validate_send(self, comp: Component, handler: Handler, send: Send) -> None:
        if send.dest == CLIENT:
            return
        dest = self.components.get(send.dest)
        if dest is None:
            raise IRError(f"{comp.name}.{handler.msg_type}: send to unknown component {send.dest!r}")
        if send.msg_type not in dest.handlers:
            raise IRError(
                f"{comp.name}.{handler.msg_type}: destination {send.dest!r} has no handler "
                f"for message type {send.msg_type!r}"
            )

    # -- structure queries ---------------------------------------------------

    def component(self, name: str) -> Component:
        try:
            return self.components[name]
        except KeyError:
            raise IRError(f"application {self.name!r} has no component {name!r}") from None

    def entry_component(self, req_type: str) -> Component:
        try:
            return self.components[self.entry_points[req_type]]
        except KeyError:
            raise IRError(f"application {self.name!r} has no entry point {req_type!r}") from None

    def architectural_edges(self) -> Set[Tuple[str, str, str]]:
        """Static component graph: ``(src_component, msg_type, dst)`` triples.

        This is the "architectural graph" the paper constructs by static
        analysis (Section IV-B); ``dst`` may be :data:`CLIENT`.
        """
        edges: Set[Tuple[str, str, str]] = set()
        for comp in self.components.values():
            for handler in comp.handlers.values():
                for send in handler.sends():
                    edges.add((comp.name, send.msg_type, send.dest))
        return edges

    def front_end_components(self) -> Set[str]:
        """Components that receive external request types."""
        return set(self.entry_points.values())

    def __repr__(self) -> str:
        return (
            f"Application({self.name!r}, components={sorted(self.components)}, "
            f"entry_points={self.entry_points})"
        )


# ---------------------------------------------------------------------------
# Expression walking helpers
# ---------------------------------------------------------------------------


def _stmt_exprs(stmt: Stmt) -> List[Expr]:
    """Top-level expressions appearing directly in ``stmt`` (not nested blocks)."""
    if isinstance(stmt, Assign):
        return [stmt.expr]
    if isinstance(stmt, (If, While)):
        return [stmt.cond]
    if isinstance(stmt, Send):
        return list(stmt.fields.values())
    return []


def _walk_calls(expr: Expr) -> Iterator[Call]:
    """Yield every :class:`Call` node nested in ``expr``."""
    if isinstance(expr, Call):
        yield expr
        for arg in expr.args:
            yield from _walk_calls(arg)
    elif isinstance(expr, BinOp):
        yield from _walk_calls(expr.left)
        yield from _walk_calls(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from _walk_calls(expr.operand)


def walk_exprs(stmt: Stmt) -> Iterator[Expr]:
    """Yield every expression node directly attached to ``stmt``."""
    for expr in _stmt_exprs(stmt):
        yield from _walk_expr(expr)


def _walk_expr(expr: Expr) -> Iterator[Expr]:
    yield expr
    if isinstance(expr, BinOp):
        yield from _walk_expr(expr.left)
        yield from _walk_expr(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from _walk_expr(expr.operand)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from _walk_expr(arg)
