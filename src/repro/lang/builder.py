"""Fluent builder API for defining component programs.

Applications in :mod:`repro.apps` are written against this builder rather
than instantiating IR nodes directly::

    comp = (
        ComponentBuilder("Comp1")
        .state("z", 0)
        .state("p", 0)
    )
    with comp.on("msg1", "m") as h:
        h.assign("z", var("z") + field("m", "x"))
        h.assign("p", field("m", "x") * 2)
    app = (
        AppBuilder("demo")
        .component(comp)
        .entry("msg1", "Comp1")
        .build()
    )
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.errors import IRError
from repro.lang.ir import (
    Application,
    Assign,
    Call,
    Component,
    Const,
    ExprLike,
    Field,
    Handler,
    If,
    LibraryRegistry,
    Send,
    Skip,
    Stmt,
    Var,
    While,
)

__all__ = [
    "AppBuilder",
    "BlockBuilder",
    "ComponentBuilder",
    "call",
    "const",
    "field",
    "var",
]


def var(name: str) -> Var:
    """Shorthand for :class:`~repro.lang.ir.Var`."""
    return Var(name)


def field(param: str, name: str) -> Field:
    """Shorthand for :class:`~repro.lang.ir.Field`."""
    return Field(param, name)


def const(value: Union[int, float, str, bool]) -> Const:
    """Shorthand for :class:`~repro.lang.ir.Const`."""
    return Const(value)


def call(func: str, *args: ExprLike) -> Call:
    """Shorthand for :class:`~repro.lang.ir.Call`."""
    return Call(func, *args)


class BlockBuilder:
    """Accumulates statements for a handler body or a nested block.

    Usable as a context manager (``with comp.on(...) as h``) purely for
    readability; the statements are committed as they are added.
    """

    def __init__(self) -> None:
        self._stmts: List[Stmt] = []

    # -- statements ----------------------------------------------------------

    def assign(self, target: str, expr: ExprLike) -> "BlockBuilder":
        """Append ``target = expr``."""
        self._stmts.append(Assign(target, expr))
        return self

    def send(self, msg_type: str, dest: str, fields: Optional[Mapping[str, ExprLike]] = None) -> "BlockBuilder":
        """Append ``send msg_type -> dest`` with the given payload."""
        self._stmts.append(Send(msg_type, dest, fields))
        return self

    def skip(self) -> "BlockBuilder":
        """Append a no-op."""
        self._stmts.append(Skip())
        return self

    def if_(self, cond: ExprLike) -> "BranchBuilder":
        """Start an if/else; returns a :class:`BranchBuilder`."""
        return BranchBuilder(self, cond)

    def while_(self, cond: ExprLike) -> "LoopBuilder":
        """Start a bounded while loop; returns a :class:`LoopBuilder`."""
        return LoopBuilder(self, cond)

    # -- plumbing ------------------------------------------------------------

    def statements(self) -> List[Stmt]:
        return list(self._stmts)

    def _append(self, stmt: Stmt) -> None:
        self._stmts.append(stmt)

    def __enter__(self) -> "BlockBuilder":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


class BranchBuilder:
    """Builder for the two arms of an :class:`~repro.lang.ir.If`."""

    def __init__(self, parent: BlockBuilder, cond: ExprLike) -> None:
        self._parent = parent
        self._cond = cond
        self.then = BlockBuilder()
        self.orelse = BlockBuilder()
        self._committed = False

    def done(self) -> BlockBuilder:
        """Commit the branch to the parent block."""
        if self._committed:
            raise IRError("branch already committed")
        self._committed = True
        self._parent._append(If(self._cond, self.then.statements(), self.orelse.statements()))
        return self._parent

    def __enter__(self) -> "BranchBuilder":
        return self

    def __exit__(self, exc_type: object, *exc: object) -> None:
        if exc_type is None and not self._committed:
            self.done()


class LoopBuilder:
    """Builder for the body of a :class:`~repro.lang.ir.While`."""

    def __init__(self, parent: BlockBuilder, cond: ExprLike) -> None:
        self._parent = parent
        self._cond = cond
        self.body = BlockBuilder()
        self._committed = False

    def done(self) -> BlockBuilder:
        """Commit the loop to the parent block."""
        if self._committed:
            raise IRError("loop already committed")
        self._committed = True
        self._parent._append(While(self._cond, self.body.statements()))
        return self._parent

    def __enter__(self) -> "LoopBuilder":
        return self

    def __exit__(self, exc_type: object, *exc: object) -> None:
        if exc_type is None and not self._committed:
            self.done()


class _HandlerScope(BlockBuilder):
    """Block builder that attaches a handler to its component on exit."""

    def __init__(self, component_builder: "ComponentBuilder", msg_type: str, param: str) -> None:
        super().__init__()
        self._cb = component_builder
        self._msg_type = msg_type
        self._param = param
        self._attached = False

    def attach(self) -> None:
        if self._attached:
            return
        self._attached = True
        self._cb._add_handler(Handler(self._msg_type, self._param, self.statements()))

    def __exit__(self, exc_type: object, *exc: object) -> None:
        if exc_type is None:
            self.attach()


class ComponentBuilder:
    """Fluent construction of a :class:`~repro.lang.ir.Component`."""

    def __init__(self, name: str, service_cost: float = 1.0) -> None:
        self._name = name
        self._service_cost = service_cost
        self._state: Dict[str, object] = {}
        self._handlers: List[Handler] = []

    def state(self, name: str, initial: object = 0) -> "ComponentBuilder":
        """Declare a state variable with an initial value."""
        if name in self._state:
            raise IRError(f"component {self._name!r}: duplicate state variable {name!r}")
        self._state[name] = initial
        return self

    def service_cost(self, cost: float) -> "ComponentBuilder":
        """Set the per-message processing cost (ms on a reference node)."""
        self._service_cost = cost
        return self

    def on(self, msg_type: str, param: str = "m") -> _HandlerScope:
        """Open a handler scope for ``msg_type`` binding the message to ``param``."""
        return _HandlerScope(self, msg_type, param)

    def handler(self, msg_type: str, param: str, body: Sequence[Stmt]) -> "ComponentBuilder":
        """Attach a pre-built handler body."""
        self._add_handler(Handler(msg_type, param, list(body)))
        return self

    def _add_handler(self, handler: Handler) -> None:
        self._handlers.append(handler)

    def build(self) -> Component:
        """Materialise the component."""
        return Component(
            self._name,
            state=self._state,
            handlers=self._handlers,
            service_cost=self._service_cost,
        )


class AppBuilder:
    """Fluent construction of an :class:`~repro.lang.ir.Application`."""

    def __init__(self, name: str, library: Optional[LibraryRegistry] = None) -> None:
        self._name = name
        self._library = library
        self._components: List[Component] = []
        self._entries: Dict[str, str] = {}

    def component(self, comp: Union[Component, ComponentBuilder]) -> "AppBuilder":
        """Add a component (builders are built automatically)."""
        if isinstance(comp, ComponentBuilder):
            comp = comp.build()
        self._components.append(comp)
        return self

    def entry(self, req_type: str, component_name: str) -> "AppBuilder":
        """Declare that external requests of ``req_type`` enter at ``component_name``."""
        if req_type in self._entries:
            raise IRError(f"duplicate entry point {req_type!r}")
        self._entries[req_type] = component_name
        return self

    def build(self) -> Application:
        """Materialise and validate the application."""
        return Application(self._name, self._components, self._entries, library=self._library)
