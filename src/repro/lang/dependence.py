"""Data/control dependence analysis and program dependence graphs (PDGs).

This module supplies the machinery that ``repro.core.slicing`` builds on:

* reaching definitions over the handler CFG (iterative dataflow);
* flow (data) dependence edges def → use;
* control dependence edges (from :func:`repro.lang.cfg.control_dependences`);
* a :class:`HandlerPDG` supporting backward and forward slices.

Two pseudo-definitions anchor inter-procedural reasoning at the handler
boundary, mirroring the paper's treatment of ``recv(msgIn)`` as the source
of the forward slice and component state as the carrier between handlers:

* every component *state variable* is defined at :data:`~repro.lang.cfg.ENTRY`
  (its value at handler entry), and
* the handler's *message parameter* is defined at ENTRY under the pseudo
  variable :data:`MSG_PARAM`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import AnalysisError
from repro.lang.cfg import CFG, ENTRY, EXIT, build_cfg, control_dependences
from repro.lang.ir import Assign, Component, Handler, Send, Stmt

#: Pseudo variable name standing for the handler's bound message parameter.
MSG_PARAM = "@msg"

#: A definition: (cfg node id, variable name).
Definition = Tuple[int, str]


def _node_defs(stmt: Stmt) -> Set[str]:
    return stmt.defs()


def _node_uses(stmt: Stmt, param: str) -> Set[str]:
    """Variables used by ``stmt``, with message-field reads mapped to MSG_PARAM."""
    uses = set(stmt.uses())
    if any(p == param for p, _ in stmt.message_fields()):
        uses.add(MSG_PARAM)
    return uses


@dataclass
class ReachingDefinitions:
    """Result of the reaching-definitions dataflow analysis.

    ``in_sets[n]`` is the set of :data:`Definition` pairs reaching the
    start of node ``n``.
    """

    in_sets: Dict[int, Set[Definition]]
    out_sets: Dict[int, Set[Definition]]


def reaching_definitions(cfg: CFG, state_vars: Iterable[str], param: str) -> ReachingDefinitions:
    """Iterative reaching-definitions over ``cfg``.

    ENTRY generates a definition for every state variable and for
    :data:`MSG_PARAM`; each :class:`Assign` node generates a definition of
    its target and kills all other definitions of that target.
    """
    gen: Dict[int, Set[Definition]] = {}
    kill_var: Dict[int, Optional[str]] = {}
    entry_defs: Set[Definition] = {(ENTRY, v) for v in state_vars}
    entry_defs.add((ENTRY, MSG_PARAM))
    for node in cfg.nodes:
        if node == ENTRY:
            gen[node] = set(entry_defs)
            kill_var[node] = None
        elif node == EXIT:
            gen[node] = set()
            kill_var[node] = None
        else:
            stmt = cfg.stmt_of[node]
            defs = _node_defs(stmt)
            if defs:
                (var,) = defs  # Assign defines exactly one variable
                gen[node] = {(node, var)}
                kill_var[node] = var
            else:
                gen[node] = set()
                kill_var[node] = None

    in_sets: Dict[int, Set[Definition]] = {n: set() for n in cfg.nodes}
    out_sets: Dict[int, Set[Definition]] = {n: set(gen[n]) for n in cfg.nodes}

    order = cfg.reverse_postorder()
    # EXIT may be missing from RPO if unreachable (cannot happen for valid
    # handlers, but keep the analysis total).
    for node in cfg.nodes:
        if node not in order:
            order.append(node)

    changed = True
    while changed:
        changed = False
        for node in order:
            new_in: Set[Definition] = set()
            for p in cfg.pred[node]:
                new_in |= out_sets[p]
            killed = kill_var[node]
            if killed is None:
                new_out = new_in | gen[node]
            else:
                new_out = {(n, v) for (n, v) in new_in if v != killed} | gen[node]
            if new_in != in_sets[node] or new_out != out_sets[node]:
                in_sets[node] = new_in
                out_sets[node] = new_out
                changed = True
    return ReachingDefinitions(in_sets=in_sets, out_sets=out_sets)


class HandlerPDG:
    """Program dependence graph for one handler of one component.

    Edges run *from* a dependence source *to* the dependent node:

    * data edge ``d → u``: definition at node ``d`` reaches a use at ``u``;
    * control edge ``c → n``: ``n`` is control dependent on predicate ``c``.

    ENTRY acts as the definition site of state variables and of the
    message parameter, so a backward slice that reaches ``(ENTRY, v)``
    means "the value of ``v`` at handler entry influences the criterion".
    """

    def __init__(self, component: Component, handler: Handler) -> None:
        self.component = component
        self.handler = handler
        self.cfg = build_cfg(handler)
        self.param = handler.param
        self._state_vars = sorted(component.state_vars())
        rd = reaching_definitions(self.cfg, self._state_vars, handler.param)
        self._rd = rd
        self.control_deps: Dict[int, Set[int]] = control_dependences(self.cfg)
        # data_deps[u] = set of Definitions feeding node u's uses
        self.data_deps: Dict[int, Set[Definition]] = {}
        for node in self.cfg.statement_nodes():
            stmt = self.cfg.stmt_of[node]
            uses = _node_uses(stmt, handler.param)
            feeding = {(d, v) for (d, v) in rd.in_sets[node] if v in uses}
            self.data_deps[node] = feeding
        # forward adjacency: definition node -> dependent nodes
        self._fwd_data: Dict[int, Set[int]] = {}
        for use_node, defs in self.data_deps.items():
            for def_node, _ in defs:
                self._fwd_data.setdefault(def_node, set()).add(use_node)
        self._fwd_control: Dict[int, Set[int]] = {}
        for node, cdeps in self.control_deps.items():
            for c in cdeps:
                if c != node:
                    self._fwd_control.setdefault(c, set()).add(node)

    # -- slicing -----------------------------------------------------------

    def backward_slice(self, criterion: int) -> "SliceResult":
        """Backward slice from statement node ``criterion``.

        Follows data and control dependences transitively.  The result
        records which state variables' *entry values* and whether the
        *incoming message* are in the slice.
        """
        if criterion not in self.cfg.stmt_of:
            raise AnalysisError(f"slice criterion {criterion} is not a statement node")
        visited: Set[int] = set()
        entry_vars: Set[str] = set()
        uses_message = False
        stack: List[int] = [criterion]
        while stack:
            node = stack.pop()
            if node in visited:
                continue
            visited.add(node)
            for def_node, var in self.data_deps.get(node, ()):
                if def_node == ENTRY:
                    if var == MSG_PARAM:
                        uses_message = True
                    else:
                        entry_vars.add(var)
                elif def_node not in visited:
                    stack.append(def_node)
            for ctrl in self.control_deps.get(node, ()):
                if ctrl not in visited and ctrl != ENTRY:
                    stack.append(ctrl)
        return SliceResult(nodes=frozenset(visited), entry_state_vars=frozenset(entry_vars), uses_message=uses_message)

    def forward_slice_from_message(self) -> "SliceResult":
        """Forward slice from ``recv(msgIn)``: nodes influenced by the message.

        This is step 3(a) of DCA (Section IV-A): identify what the
        execution path from ``recv`` can write under the message's data or
        control influence.
        """
        seeds = set(self._fwd_data.get(ENTRY, set()))
        # Restrict ENTRY's fan-out to uses of the message parameter: the
        # other ENTRY definitions are state variables.
        seeds = {
            n
            for n in seeds
            if any(d == ENTRY and v == MSG_PARAM for (d, v) in self.data_deps.get(n, ()))
        }
        visited: Set[int] = set()
        stack = list(seeds)
        while stack:
            node = stack.pop()
            if node in visited:
                continue
            visited.add(node)
            for nxt in self._fwd_data.get(node, ()):
                if nxt not in visited:
                    stack.append(nxt)
            for nxt in self._fwd_control.get(node, ()):
                if nxt not in visited:
                    stack.append(nxt)
        return SliceResult(nodes=frozenset(visited), entry_state_vars=frozenset(), uses_message=bool(visited))

    # -- summaries used by DCA ----------------------------------------------

    def send_sites(self) -> List[int]:
        """Node ids of all :class:`Send` statements, in sid order."""
        return [n for n in self.cfg.statement_nodes() if isinstance(self.cfg.stmt_of[n], Send)]

    def written_vars(self) -> Set[str]:
        """All variables assigned anywhere in the handler (paper's V_in)."""
        return self.handler.assigned_vars()

    def message_written_vars(self) -> Set[str]:
        """Variables whose writes are data/control influenced by the message."""
        fwd = self.forward_slice_from_message()
        out: Set[str] = set()
        for node in fwd.nodes:
            stmt = self.cfg.stmt_of.get(node)
            if isinstance(stmt, Assign):
                out.add(stmt.target)
        return out

    def write_summaries(self) -> Dict[str, "WriteSummary"]:
        """Per written variable: which entry state vars / message influence it.

        For a variable written at several sites, the summary is the union
        over all its definition sites (any of them may be the dynamically
        executed one).
        """
        summaries: Dict[str, WriteSummary] = {}
        for node in self.cfg.statement_nodes():
            stmt = self.cfg.stmt_of[node]
            if not isinstance(stmt, Assign):
                continue
            sl = self.backward_slice(node)
            existing = summaries.get(stmt.target)
            if existing is None:
                summaries[stmt.target] = WriteSummary(
                    var=stmt.target,
                    influencing_state_vars=set(sl.entry_state_vars),
                    uses_message=sl.uses_message,
                )
            else:
                existing.influencing_state_vars |= sl.entry_state_vars
                existing.uses_message = existing.uses_message or sl.uses_message
        return summaries

    def send_summaries(self) -> List["SendSummary"]:
        """Per send site: influencing entry state vars and message usage."""
        out: List[SendSummary] = []
        for node in self.send_sites():
            stmt = self.cfg.stmt_of[node]
            assert isinstance(stmt, Send)
            sl = self.backward_slice(node)
            out.append(
                SendSummary(
                    node=node,
                    msg_type=stmt.msg_type,
                    dest=stmt.dest,
                    influencing_state_vars=set(sl.entry_state_vars),
                    uses_message=sl.uses_message,
                )
            )
        return out


@dataclass(frozen=True)
class SliceResult:
    """Outcome of a slice: member nodes plus boundary facts at ENTRY."""

    nodes: FrozenSet[int]
    entry_state_vars: FrozenSet[str]
    uses_message: bool


@dataclass
class WriteSummary:
    """How a handler's write to ``var`` is influenced at the handler boundary."""

    var: str
    influencing_state_vars: Set[str]
    uses_message: bool


@dataclass
class SendSummary:
    """How a handler's ``send`` is influenced at the handler boundary."""

    node: int
    msg_type: str
    dest: str
    influencing_state_vars: Set[str]
    uses_message: bool


def build_pdgs(component: Component) -> Dict[str, HandlerPDG]:
    """Build one :class:`HandlerPDG` per handler of ``component``."""
    return {msg_type: HandlerPDG(component, handler) for msg_type, handler in component.handlers.items()}
