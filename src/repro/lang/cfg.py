"""Control-flow graph construction for handler bodies.

DCA's slicing (Section IV-A of the paper) requires control dependences as
well as data dependences: an outgoing message is influenced by every
variable that decides *whether* the ``send`` executes, not only by the
variables flowing into its payload.  This module builds a classic CFG for
a handler body and computes post-dominators and control dependences with
the standard Ferrante–Ottenstein–Warren construction (control dependence =
post-dominance frontier).

Node ids are statement ``sid``s; two synthetic nodes :data:`ENTRY` and
:data:`EXIT` bracket the graph.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.errors import AnalysisError
from repro.lang.ir import Handler, If, Stmt, While

#: Synthetic entry node id (binds the message parameter and state vars).
ENTRY = 0
#: Synthetic exit node id.
EXIT = -1


class CFG:
    """A control-flow graph over handler statements.

    Attributes
    ----------
    nodes:
        All node ids, including :data:`ENTRY` and :data:`EXIT`.
    succ / pred:
        Adjacency maps.
    stmt_of:
        Node id → :class:`~repro.lang.ir.Stmt` (absent for ENTRY/EXIT).
    """

    def __init__(self) -> None:
        self.nodes: Set[int] = {ENTRY, EXIT}
        self.succ: Dict[int, Set[int]] = {ENTRY: set(), EXIT: set()}
        self.pred: Dict[int, Set[int]] = {ENTRY: set(), EXIT: set()}
        self.stmt_of: Dict[int, Stmt] = {}

    def add_node(self, stmt: Stmt) -> int:
        nid = stmt.sid
        if nid in self.nodes:
            raise AnalysisError(f"duplicate CFG node id {nid} (statement objects must not be reused)")
        self.nodes.add(nid)
        self.succ[nid] = set()
        self.pred[nid] = set()
        self.stmt_of[nid] = stmt
        return nid

    def add_edge(self, src: int, dst: int) -> None:
        if src not in self.nodes or dst not in self.nodes:
            raise AnalysisError(f"edge ({src}, {dst}) references unknown CFG node")
        self.succ[src].add(dst)
        self.pred[dst].add(src)

    def statement_nodes(self) -> List[int]:
        """All non-synthetic node ids, in deterministic (sid) order."""
        return sorted(self.stmt_of)

    def reverse_postorder(self) -> List[int]:
        """Reverse postorder over the CFG from ENTRY (deterministic)."""
        seen: Set[int] = set()
        order: List[int] = []

        def visit(node: int) -> None:
            stack: List[Tuple[int, Iterable[int]]] = [(node, iter(sorted(self.succ[node])))]
            seen.add(node)
            while stack:
                current, it = stack[-1]
                advanced = False
                for nxt in it:
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append((nxt, iter(sorted(self.succ[nxt]))))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(ENTRY)
        return list(reversed(order))


def build_cfg(handler: Handler) -> CFG:
    """Build the CFG of ``handler``'s body.

    Structured statements produce the usual diamond (``If``) and back-edge
    (``While``) shapes.  The final statement(s) fall through to EXIT.
    """
    cfg = CFG()
    for stmt in handler.walk():
        cfg.add_node(stmt)
    exits = _wire_block(cfg, handler.body, [ENTRY])
    for node in exits:
        cfg.add_edge(node, EXIT)
    return cfg


def _wire_block(cfg: CFG, block: Sequence[Stmt], incoming: List[int]) -> List[int]:
    """Wire ``block``'s statements after ``incoming`` nodes; return exit nodes."""
    current = list(incoming)
    for stmt in block:
        for src in current:
            cfg.add_edge(src, stmt.sid)
        if isinstance(stmt, If):
            then_exits = _wire_block(cfg, stmt.then_body, [stmt.sid])
            if stmt.else_body:
                else_exits = _wire_block(cfg, stmt.else_body, [stmt.sid])
            else:
                else_exits = [stmt.sid]
            current = then_exits + else_exits
        elif isinstance(stmt, While):
            body_exits = _wire_block(cfg, stmt.body, [stmt.sid])
            for src in body_exits:
                cfg.add_edge(src, stmt.sid)
            current = [stmt.sid]
        else:
            current = [stmt.sid]
    return current


# ---------------------------------------------------------------------------
# Dominance analyses
# ---------------------------------------------------------------------------


def postdominators(cfg: CFG) -> Dict[int, Set[int]]:
    """Post-dominator sets via the standard iterative dataflow algorithm.

    ``postdom[n]`` contains ``n`` itself and every node that post-dominates
    it.  EXIT post-dominates everything (every handler body terminates —
    loops are bounded at runtime, and the CFG's While node always has the
    fall-through edge).
    """
    nodes = set(cfg.nodes)
    postdom: Dict[int, Set[int]] = {n: set(nodes) for n in nodes}
    postdom[EXIT] = {EXIT}
    changed = True
    while changed:
        changed = False
        for node in sorted(nodes - {EXIT}, reverse=True):
            succs = cfg.succ[node]
            if succs:
                new: Set[int] = set.intersection(*(postdom[s] for s in succs))
            else:
                new = set()
            new = new | {node}
            if new != postdom[node]:
                postdom[node] = new
                changed = True
    return postdom


def control_dependences(cfg: CFG) -> Dict[int, Set[int]]:
    """Map each node to the set of nodes it is control dependent on.

    Ferrante–Ottenstein–Warren: ``b`` is control dependent on ``a`` iff
    there is an edge ``a → s`` such that ``b`` post-dominates ``s`` but
    ``b`` does not strictly post-dominate ``a``.
    """
    postdom = postdominators(cfg)
    deps: Dict[int, Set[int]] = {n: set() for n in cfg.nodes}
    for a in cfg.nodes:
        for s in cfg.succ[a]:
            for b in cfg.nodes:
                if b in (ENTRY, EXIT):
                    continue
                if b in postdom[s] and (b == a or b not in postdom[a]):
                    if b != a:
                        deps[b].add(a)
                    elif isinstance(cfg.stmt_of.get(a), While):
                        # A loop header is control dependent on itself
                        # (whether the next iteration runs depends on it);
                        # record it so slices through loop-carried control
                        # flow are closed.
                        deps[b].add(a)
    return deps
