"""Handler interpreter with dynamic provenance (taint) tracking.

This is the runtime half of DCA.  The static half
(:mod:`repro.core.dca`) computes, per component, the set ``V_tr`` of state
variables whose provenance must be tracked; the interpreter executes
handler bodies and maintains, for each tracked variable, the set of
message uids that contributed (by data *or dynamic control* flow) to its
current value — the hash-table scheme of Xin & Zhang's online dynamic
control-dependence algorithm that the paper builds on (Section IV-A).

Execution modes:

* **plain** (``tracked_vars=None`` and ``track_all=False``): no provenance
  work at all; emitted messages carry empty cause sets.  Used by the
  baseline managers and for requests the sampler did not select.
* **instrumented** (``tracked_vars`` = the component's ``V_tr``): taint is
  propagated through locals during the invocation, but only writes to
  variables in ``V_tr`` are persisted to the provenance table, and only
  those persisted operations count toward instrumentation cost — this is
  the paper's key overhead reduction over whole-program dynamic slicing.
* **full** (``track_all=True``): every state variable is persisted; used
  to model naive whole-program tracking in ablations.
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import InterpreterError
from repro.lang.ir import (
    Assign,
    BinOp,
    Call,
    Component,
    Const,
    Expr,
    Field,
    Handler,
    If,
    LibraryRegistry,
    Send,
    Skip,
    Stmt,
    UnaryOp,
    Var,
    While,
)
from repro.lang.message import Message, MessageUid, UidFactory

Taint = FrozenSet[MessageUid]
EMPTY_TAINT: Taint = frozenset()


def _cap_taint(taint: Taint, limit: int) -> Taint:
    """Bound a provenance set to its ``limit`` most recent uids.

    Accumulator variables (counters, running exposure) are causally
    influenced by *every* past message; an unbounded provenance set would
    grow for the lifetime of the replica.  Production tracing systems
    bound span/provenance fan-in the same way; recency is approximated by
    the total order on uids (per-process sequence numbers).
    """
    if len(taint) <= limit:
        return taint
    # nlargest avoids sorting the whole (potentially large) set just to
    # keep its tail.
    return frozenset(heapq.nlargest(limit, taint))


class ReplicaState:
    """Mutable per-replica component state plus its provenance table.

    ``provenance`` maps state-variable name → uids of messages that
    contributed to the variable's current value.  Only variables the
    interpreter persists (``V_tr`` under DCA instrumentation) appear here.

    One instance exists per simulated replica and both tables are read on
    every variable access, hence ``__slots__``.
    """

    __slots__ = ("values", "provenance")

    def __init__(
        self,
        values: Dict[str, object],
        provenance: Optional[Dict[str, Taint]] = None,
    ) -> None:
        self.values = values
        self.provenance: Dict[str, Taint] = {} if provenance is None else provenance

    @classmethod
    def from_component(cls, component: Component) -> "ReplicaState":
        return cls(values=dict(component.state))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReplicaState):
            return NotImplemented
        return self.values == other.values and self.provenance == other.provenance

    def __repr__(self) -> str:
        return f"ReplicaState(values={self.values!r}, provenance={self.provenance!r})"


class HandlerOutcome:
    """Result of executing one handler invocation.

    Attributes
    ----------
    emitted:
        Messages produced by ``send`` statements, in program order, with
        ``cause_uids`` filled in when provenance was tracked.
    tracked_writes:
        Number of provenance-table store operations performed (the
        paper's per-write hash-table instrumentation cost).
    total_writes:
        Number of variable writes executed (tracked or not).
    getinfo_ops:
        Number of ``getInfo`` calls (one per emitted message when
        provenance is on).
    statements_executed:
        Dynamic statement count (basis for the uninstrumented CPU cost).
    """

    __slots__ = ("emitted", "tracked_writes", "total_writes", "getinfo_ops", "statements_executed")

    def __init__(
        self,
        emitted: List[Message],
        tracked_writes: int = 0,
        total_writes: int = 0,
        getinfo_ops: int = 0,
        statements_executed: int = 0,
    ) -> None:
        self.emitted = emitted
        self.tracked_writes = tracked_writes
        self.total_writes = total_writes
        self.getinfo_ops = getinfo_ops
        self.statements_executed = statements_executed

    @property
    def instrumentation_ops(self) -> int:
        """Total instrumentation operations (store + getInfo)."""
        return self.tracked_writes + self.getinfo_ops

    def __repr__(self) -> str:
        return (
            f"HandlerOutcome(emitted={self.emitted!r}, tracked_writes={self.tracked_writes!r}, "
            f"total_writes={self.total_writes!r}, getinfo_ops={self.getinfo_ops!r}, "
            f"statements_executed={self.statements_executed!r})"
        )


class Interpreter:
    """Executes the handlers of one component, optionally instrumented.

    Parameters
    ----------
    component:
        The component whose handlers are executed.
    library:
        Registered library functions callable from expressions.
    tracked_vars:
        ``V_tr`` from DCA — the only state variables whose provenance is
        persisted across invocations.  ``None`` disables provenance.
    track_all:
        Persist provenance for *every* state variable (whole-program
        dynamic tracking; ablation baseline).
    max_loop_iterations:
        Safety bound on ``While`` loops.
    """

    def __init__(
        self,
        component: Component,
        library: LibraryRegistry,
        tracked_vars: Optional[Set[str]] = None,
        track_all: bool = False,
        max_loop_iterations: int = 10_000,
        max_provenance: int = 32,
    ) -> None:
        self.component = component
        self.library = library
        self.track_all = bool(track_all)
        self.tracked_vars: Set[str] = set(component.state_vars()) if track_all else set(tracked_vars or ())
        self.max_loop_iterations = int(max_loop_iterations)
        self.max_provenance = int(max_provenance)
        self._provenance_enabled = track_all or tracked_vars is not None

    # -- public API ----------------------------------------------------------

    def handle(
        self,
        state: ReplicaState,
        message: Message,
        uid_factory: UidFactory,
    ) -> HandlerOutcome:
        """Execute the handler for ``message`` against ``state``.

        Emitted messages carry fresh uids from ``uid_factory``.  When
        provenance is enabled and the message is sampled, each emitted
        message's ``cause_uids`` is the dynamic data/control-flow closure
        of incoming-message influences (getInfo in the paper's Fig. 4).
        """
        handler = self.component.handler_for(message.msg_type)
        track = self._provenance_enabled and message.sampled
        ctx = _InvocationContext(
            interpreter=self,
            state=state,
            message=message,
            handler=handler,
            uid_factory=uid_factory,
            provenance_on=track,
        )
        ctx.run_block(handler.body)
        return HandlerOutcome(
            emitted=ctx.emitted,
            tracked_writes=ctx.tracked_writes,
            total_writes=ctx.total_writes,
            getinfo_ops=ctx.getinfo_ops,
            statements_executed=ctx.statements_executed,
        )


class _InvocationContext:
    """One handler invocation: locals, control-taint stack, emission buffer."""

    __slots__ = (
        "interp",
        "state",
        "message",
        "handler",
        "uid_factory",
        "provenance_on",
        "locals",
        "local_taint",
        "state_taint_overlay",
        "control_stack",
        "emitted",
        "tracked_writes",
        "total_writes",
        "getinfo_ops",
        "statements_executed",
        "message_taint",
    )

    def __init__(
        self,
        interpreter: Interpreter,
        state: ReplicaState,
        message: Message,
        handler: Handler,
        uid_factory: UidFactory,
        provenance_on: bool,
    ) -> None:
        self.interp = interpreter
        self.state = state
        self.message = message
        self.handler = handler
        self.uid_factory = uid_factory
        self.provenance_on = provenance_on
        self.locals: Dict[str, object] = {}
        self.local_taint: Dict[str, Taint] = {}
        # Invocation-local overlay of state-variable taints: data flowing
        # through a state variable *within* one handler invocation is
        # ordinary local dataflow and is always tracked, whether or not
        # the variable is in V_tr (persistence across invocations is what
        # V_tr gates).
        self.state_taint_overlay: Dict[str, Taint] = {}
        self.control_stack: List[Taint] = []
        self.emitted: List[Message] = []
        self.tracked_writes = 0
        self.total_writes = 0
        self.getinfo_ops = 0
        self.statements_executed = 0
        # Reading a field of the incoming message taints with its uid.
        self.message_taint: Taint = frozenset({message.uid}) if provenance_on else EMPTY_TAINT

    # -- execution -----------------------------------------------------------

    def run_block(self, block: Sequence[Stmt]) -> None:
        for stmt in block:
            self.run_stmt(stmt)

    def run_stmt(self, stmt: Stmt) -> None:
        self.statements_executed += 1
        if isinstance(stmt, Assign):
            self._run_assign(stmt)
        elif isinstance(stmt, If):
            self._run_if(stmt)
        elif isinstance(stmt, While):
            self._run_while(stmt)
        elif isinstance(stmt, Send):
            self._run_send(stmt)
        elif isinstance(stmt, Skip):
            pass
        else:
            raise InterpreterError(f"unknown statement type {type(stmt).__name__}")

    def _control_taint(self) -> Taint:
        stack = self.control_stack
        if not stack:
            return EMPTY_TAINT
        if len(stack) == 1:
            return stack[0]
        out: Set[MessageUid] = set()
        for t in stack:
            out |= t
        return frozenset(out)

    def _run_assign(self, stmt: Assign) -> None:
        value, taint = self.eval_expr(stmt.expr)
        if self.provenance_on:
            control = self._control_taint()
            if control:
                taint = taint | control
        else:
            taint = EMPTY_TAINT
        self.total_writes += 1
        target = stmt.target
        if target in self.state.values:
            self.state.values[target] = value
            if self.provenance_on:
                self.state_taint_overlay[target] = taint
                if self.interp.track_all or target in self.interp.tracked_vars:
                    # Persist provenance: the paper's hash-table store of
                    # the messages that resulted in a write to the variable.
                    self.state.provenance[target] = _cap_taint(taint, self.interp.max_provenance)
                    self.tracked_writes += 1
        else:
            self.locals[target] = value
            if self.provenance_on:
                self.local_taint[target] = taint

    def _run_if(self, stmt: If) -> None:
        cond, taint = self.eval_expr(stmt.cond)
        self.control_stack.append(taint if self.provenance_on else EMPTY_TAINT)
        try:
            if cond:
                self.run_block(stmt.then_body)
            else:
                self.run_block(stmt.else_body)
        finally:
            self.control_stack.pop()

    def _run_while(self, stmt: While) -> None:
        iterations = 0
        while True:
            cond, taint = self.eval_expr(stmt.cond)
            if not cond:
                break
            iterations += 1
            if iterations > self.interp.max_loop_iterations:
                raise InterpreterError(
                    f"{self.interp.component.name}.{self.handler.msg_type}: loop exceeded "
                    f"{self.interp.max_loop_iterations} iterations"
                )
            self.control_stack.append(taint if self.provenance_on else EMPTY_TAINT)
            try:
                self.run_block(stmt.body)
            finally:
                self.control_stack.pop()

    def _run_send(self, stmt: Send) -> None:
        values: Dict[str, object] = {}
        taints: Set[MessageUid] = set()
        for name, expr in stmt.fields.items():
            value, taint = self.eval_expr(expr)
            values[name] = value
            taints |= taint
        causes: Taint = EMPTY_TAINT
        if self.provenance_on:
            # getInfo: the messages that directly caused this emission are
            # the data influences on the payload plus the dynamic control
            # influences on reaching this send, plus the triggering message.
            control = self._control_taint()
            if control:
                taints |= control
            taints |= self.message_taint
            causes = _cap_taint(frozenset(taints), self.interp.max_provenance)
            self.getinfo_ops += 1
        self.emitted.append(
            Message(
                uid=self.uid_factory.next_uid(),
                msg_type=stmt.msg_type,
                src=self.interp.component.name,
                dest=stmt.dest,
                fields=values,
                cause_uids=causes,
                root_uid=self.message.root_uid or self.message.uid,
                sampled=self.message.sampled,
            )
        )

    # -- expression evaluation -------------------------------------------------

    def eval_expr(self, expr: Expr) -> Tuple[object, Taint]:
        if isinstance(expr, Const):
            return expr.value, EMPTY_TAINT
        if isinstance(expr, Var):
            return self._eval_var(expr)
        if isinstance(expr, Field):
            return self._eval_field(expr)
        if isinstance(expr, BinOp):
            return self._eval_binop(expr)
        if isinstance(expr, UnaryOp):
            value, taint = self.eval_expr(expr.operand)
            if expr.op == "-":
                return -_as_number(value, expr), taint
            return (not value), taint
        if isinstance(expr, Call):
            return self._eval_call(expr)
        raise InterpreterError(f"unknown expression type {type(expr).__name__}")

    def _eval_var(self, expr: Var) -> Tuple[object, Taint]:
        name = expr.name
        if name in self.locals:
            return self.locals[name], self.local_taint.get(name, EMPTY_TAINT)
        if name in self.state.values:
            if not self.provenance_on:
                return self.state.values[name], EMPTY_TAINT
            taint = self.state_taint_overlay.get(name)
            if taint is None:
                taint = self.state.provenance.get(name, EMPTY_TAINT)
            return self.state.values[name], taint
        raise InterpreterError(
            f"{self.interp.component.name}.{self.handler.msg_type}: read of undefined variable {name!r}"
        )

    def _eval_field(self, expr: Field) -> Tuple[object, Taint]:
        if expr.param != self.handler.param:
            raise InterpreterError(
                f"{self.interp.component.name}.{self.handler.msg_type}: unknown message parameter {expr.param!r}"
            )
        try:
            value = self.message.fields[expr.name]
        except KeyError:
            raise InterpreterError(
                f"{self.interp.component.name}.{self.handler.msg_type}: message "
                f"{self.message.msg_type!r} has no field {expr.name!r}"
            ) from None
        return value, self.message_taint

    def _eval_binop(self, expr: BinOp) -> Tuple[object, Taint]:
        lval, ltaint = self.eval_expr(expr.left)
        op = expr.op
        # Short-circuit logic keeps taint precise for the evaluated side.
        if op == "and":
            if not lval:
                return False, ltaint
            rval, rtaint = self.eval_expr(expr.right)
            return bool(rval), ltaint | rtaint
        if op == "or":
            if lval:
                return True, ltaint
            rval, rtaint = self.eval_expr(expr.right)
            return bool(rval), ltaint | rtaint
        rval, rtaint = self.eval_expr(expr.right)
        taint = ltaint | rtaint
        return _apply_binop(op, lval, rval, expr), taint

    def _eval_call(self, expr: Call) -> Tuple[object, Taint]:
        fn = self.interp.library.lookup(expr.func)
        args: List[object] = []
        taint: Set[MessageUid] = set()
        for arg in expr.args:
            value, t = self.eval_expr(arg)
            args.append(value)
            taint |= t
        try:
            result = fn(*args)
        except Exception as exc:  # library function misuse is a program error
            raise InterpreterError(f"library call {expr.func}({args!r}) failed: {exc}") from exc
        return result, frozenset(taint)


def _as_number(value: object, expr: Expr) -> float:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return value
    raise InterpreterError(f"expected a number in {expr!r}, got {value!r}")


def _apply_binop(op: str, lval: object, rval: object, expr: BinOp) -> object:
    if op == "+":
        if isinstance(lval, str) or isinstance(rval, str):
            return f"{lval}{rval}"
        return _as_number(lval, expr) + _as_number(rval, expr)
    if op == "-":
        return _as_number(lval, expr) - _as_number(rval, expr)
    if op == "*":
        return _as_number(lval, expr) * _as_number(rval, expr)
    if op == "/":
        denom = _as_number(rval, expr)
        if denom == 0:
            raise InterpreterError(f"division by zero in {expr!r}")
        return _as_number(lval, expr) / denom
    if op == "//":
        denom = _as_number(rval, expr)
        if denom == 0:
            raise InterpreterError(f"division by zero in {expr!r}")
        return _as_number(lval, expr) // denom
    if op == "%":
        denom = _as_number(rval, expr)
        if denom == 0:
            raise InterpreterError(f"modulo by zero in {expr!r}")
        return _as_number(lval, expr) % denom
    if op == ">":
        return lval > rval  # type: ignore[operator]
    if op == ">=":
        return lval >= rval  # type: ignore[operator]
    if op == "<":
        return lval < rval  # type: ignore[operator]
    if op == "<=":
        return lval <= rval  # type: ignore[operator]
    if op == "==":
        return lval == rval
    if op == "!=":
        return lval != rval
    if op == "min":
        return min(lval, rval)  # type: ignore[type-var]
    if op == "max":
        return max(lval, rval)  # type: ignore[type-var]
    raise InterpreterError(f"unknown binary operator {op!r}")
