"""The chaos matrix: a deterministic seeded grid over the fault space.

PR 3's fault subsystem ships five hand-written scenarios; this module
grows that into systematic state-space exploration in the style of
Clotho's chaos matrix.  The grid is the cartesian product of

* **fault profiles** — named rate bundles for the injector's channels,
  including one (``late-delay``) whose delay exceeds the path timeout
  specifically to exercise the abandoned-root resurrection guard,
* **fault windows** — ``[start, end)`` pairs whose ends land exactly on
  interval boundaries (the half-open ``active_at`` contract),
* **crash schedules** — scheduled node-crash shapes,
* **store configurations** — (shards, batch size) pairs,
* **engines** — tick oracle and discrete-event fast path, and
* **profiler modes** — exact and topk precision tiers.

Every cell is fully determined by its **grid index** plus the run-level
parameters (app, manager, duration, base seed): the cell's RNG seed is
derived arithmetically from the base seed and the grid index, so any
cell can be regenerated — and re-run bit-identically — from its cell id
alone.  The cell id embeds a digest of the cell's canonical parameters;
:func:`cell_by_id` refuses an id whose digest does not match the
regenerated cell, which catches replaying against a drifted matrix
definition.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import EvaluationError
from repro.faults.plan import FaultPlan, NodeCrash

#: Fault profiles: name -> FaultPlan rate kwargs (window/seed added per
#: cell).  ``late-delay`` delays messages *past* the default path
#: timeout (5 minutes) so delayed deliveries arrive for already-abandoned
#: roots — the resurrection-guard stressor.
FAULT_PROFILES: Mapping[str, Mapping[str, float]] = {
    "drop-storm": {"message_drop_rate": 0.30, "edge_loss_rate": 0.10},
    "dup-delay": {
        "message_duplicate_rate": 0.20,
        "message_delay_rate": 0.15,
        "message_delay_minutes": 2.0,
    },
    "late-delay": {
        "message_delay_rate": 0.25,
        "message_delay_minutes": 8.0,
        "message_duplicate_rate": 0.05,
    },
    "store-brownout": {"store_write_failure_rate": 0.40},
    "flush-loss": {"profiler_flush_loss_rate": 0.30, "message_drop_rate": 0.05},
    "mixed": {
        "message_drop_rate": 0.10,
        "message_duplicate_rate": 0.05,
        "message_delay_rate": 0.05,
        "message_delay_minutes": 2.0,
        "edge_loss_rate": 0.05,
        "store_write_failure_rate": 0.15,
        "profiler_flush_loss_rate": 0.10,
    },
}

#: Fault windows: (start, end) minutes.  Both ends are exact interval
#: boundaries so the sweep continuously exercises the half-open
#: ``active_at`` edge in both engines.
FAULT_WINDOWS: Tuple[Tuple[float, float], ...] = ((4.0, 16.0), (10.0, 28.0))

#: Crash schedules: name -> ((minute, component, count), ...).
CRASH_SCHEDULES: Mapping[str, Tuple[Tuple[float, str, int], ...]] = {
    "none": (),
    "mid": ((12.0, "*", 2),),
}

#: (num_shards, write_batch_size) pairs.
STORE_CONFIGS: Tuple[Tuple[int, int], ...] = ((1, 1), (4, 32), (2, 8))

ENGINES: Tuple[str, ...] = ("tick", "event")
PROFILER_MODES: Tuple[str, ...] = ("exact", "topk")

#: Axis iteration order (outermost first); the grid index encodes a cell
#: position in this fixed order, so ids stay stable as long as the axis
#: definitions above do not change — and the id digest catches it when
#: they do.
_PROFILE_NAMES = tuple(FAULT_PROFILES)
_CRASH_NAMES = tuple(CRASH_SCHEDULES)


@dataclass(frozen=True)
class ChaosCell:
    """One fully-determined point of the chaos matrix."""

    grid_index: int
    fault_profile: str
    start_minute: float
    end_minute: float
    crash_schedule: str
    num_shards: int
    write_batch_size: int
    engine: str
    profiler_mode: str
    # Run-level parameters (shared by every cell of one matrix).
    app: str = "hedwig"
    manager: str = "DCA-10%"
    duration_minutes: int = 40
    base_seed: int = 7
    path_timeout_minutes: float = 5.0

    @property
    def seed(self) -> int:
        """The cell's injector/workload seed (derived, never stored)."""
        return (self.base_seed * 1_000_003 + self.grid_index * 101) % (2**31 - 1)

    def seed_for(self, repeat: int) -> int:
        """Seed of one repeated run of this cell (repeat 0 = the base)."""
        return (self.seed + repeat * 7919) % (2**31 - 1)

    def canonical(self) -> Dict[str, object]:
        """Stable, JSON-safe parameter dump (digest + bundle payload)."""
        return {
            "grid_index": self.grid_index,
            "fault_profile": self.fault_profile,
            "start_minute": self.start_minute,
            "end_minute": self.end_minute,
            "crash_schedule": self.crash_schedule,
            "num_shards": self.num_shards,
            "write_batch_size": self.write_batch_size,
            "engine": self.engine,
            "profiler_mode": self.profiler_mode,
            "app": self.app,
            "manager": self.manager,
            "duration_minutes": self.duration_minutes,
            "base_seed": self.base_seed,
            "path_timeout_minutes": self.path_timeout_minutes,
        }

    @property
    def cell_id(self) -> str:
        """``<grid_index>-<digest8>``: position plus a parameter digest."""
        blob = json.dumps(self.canonical(), sort_keys=True).encode("utf-8")
        return f"{self.grid_index:03d}-{hashlib.sha1(blob).hexdigest()[:8]}"

    def fault_plan(self, repeat: int = 0) -> FaultPlan:
        profile = FAULT_PROFILES[self.fault_profile]
        crashes = tuple(
            NodeCrash(minute=minute, component=component, count=count)
            for minute, component, count in CRASH_SCHEDULES[self.crash_schedule]
        )
        return FaultPlan(
            seed=self.seed_for(repeat),
            start_minute=self.start_minute,
            end_minute=self.end_minute,
            node_crashes=crashes,
            **profile,
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ChaosCell":
        try:
            return cls(**{k: data[k] for k in cls.__dataclass_fields__})
        except KeyError as exc:
            raise EvaluationError(f"chaos cell dict missing key {exc}") from exc


@dataclass(frozen=True)
class MatrixConfig:
    """Run-level knobs shared by every cell of one sweep."""

    app: str = "hedwig"
    manager: str = "DCA-10%"
    duration_minutes: int = 40
    base_seed: int = 7
    path_timeout_minutes: float = 5.0


class ChaosMatrix:
    """Deterministic enumeration of the fault-space grid.

    The full product currently spans ``len(FAULT_PROFILES) x
    len(FAULT_WINDOWS) x len(CRASH_SCHEDULES) x len(STORE_CONFIGS) x
    len(ENGINES) x len(PROFILER_MODES)`` cells; :meth:`select` returns a
    size-bounded, evenly-strided subset that still touches every axis —
    the stride keeps coverage broad instead of exhausting the first axis
    first.
    """

    def __init__(self, config: Optional[MatrixConfig] = None) -> None:
        self.config = config or MatrixConfig()

    @property
    def total_cells(self) -> int:
        return (
            len(_PROFILE_NAMES)
            * len(FAULT_WINDOWS)
            * len(_CRASH_NAMES)
            * len(STORE_CONFIGS)
            * len(ENGINES)
            * len(PROFILER_MODES)
        )

    def cell_at(self, grid_index: int) -> ChaosCell:
        """The cell at one grid position (axis order is fixed)."""
        total = self.total_cells
        if not 0 <= grid_index < total:
            raise EvaluationError(
                f"grid index {grid_index} outside [0, {total})"
            )
        idx = grid_index
        idx, mode_i = divmod(idx, len(PROFILER_MODES))
        idx, engine_i = divmod(idx, len(ENGINES))
        idx, store_i = divmod(idx, len(STORE_CONFIGS))
        idx, crash_i = divmod(idx, len(_CRASH_NAMES))
        idx, window_i = divmod(idx, len(FAULT_WINDOWS))
        profile_i = idx
        shards, batch = STORE_CONFIGS[store_i]
        start, end = FAULT_WINDOWS[window_i]
        cfg = self.config
        return ChaosCell(
            grid_index=grid_index,
            fault_profile=_PROFILE_NAMES[profile_i],
            start_minute=start,
            end_minute=end,
            crash_schedule=_CRASH_NAMES[crash_i],
            num_shards=shards,
            write_batch_size=batch,
            engine=ENGINES[engine_i],
            profiler_mode=PROFILER_MODES[mode_i],
            app=cfg.app,
            manager=cfg.manager,
            duration_minutes=cfg.duration_minutes,
            base_seed=cfg.base_seed,
            path_timeout_minutes=cfg.path_timeout_minutes,
        )

    def select(self, limit: Optional[int] = None) -> List[ChaosCell]:
        """Up to ``limit`` cells spread across *every* axis of the grid.

        A naive ``total // limit`` stride would walk only the outermost
        axis (the inner coordinates repeat with the stride's period), so
        the subset is generated with a golden-ratio step made coprime to
        the grid size: successive picks land far apart on every axis,
        and any ``limit`` up to ``total`` yields ``limit`` distinct
        cells.  Fully deterministic — same limit, same subset.
        """
        total = self.total_cells
        if limit is None or limit >= total:
            indices: List[int] = list(range(total))
        elif limit < 1:
            raise EvaluationError(f"cell limit must be >= 1, got {limit}")
        else:
            step = max(1, round(total * 0.6180339887))
            while math.gcd(step, total) != 1:
                step += 1
            indices = sorted((i * step) % total for i in range(limit))
        return [self.cell_at(i) for i in indices]

    def cell_by_id(self, cell_id: str) -> ChaosCell:
        """Regenerate a cell from its id, verifying the parameter digest.

        The digest check makes replay honest: an id minted by a sweep
        with different axis definitions or run-level parameters is
        rejected instead of silently replaying a *different* cell.
        """
        try:
            index_part, digest_part = cell_id.split("-", 1)
            grid_index = int(index_part)
        except ValueError:
            raise EvaluationError(
                f"malformed chaos cell id {cell_id!r} (expected '<index>-<digest>')"
            ) from None
        cell = self.cell_at(grid_index)
        expected = cell.cell_id
        if expected != f"{grid_index:03d}-{digest_part}":
            raise EvaluationError(
                f"cell id {cell_id!r} does not match this matrix (expected "
                f"{expected!r}); the id was minted with different matrix "
                "parameters (app/manager/duration/seed) or axis definitions"
            )
        return cell
