"""Confidence-aware reliability scoring for chaos cells.

A cell's repeated runs (different derived seeds, same fault shape) give
a raw pass frequency; with the handful of repeats a sweep can afford,
that frequency is a poor point estimate — a cell that passed 3/3 runs is
not "reliability 1.0".  Two standard corrections, following the
statistical-monitoring line of Bickson et al. (see PAPERS.md) and
Clotho's chaos-matrix scoring:

* **Good–Turing adjustment** — the probability mass of *unseen* outcome
  classes is estimated from the singleton count: ``p0 = N1 / N`` where
  ``N1`` is the number of distinct outcomes (violation signatures)
  observed exactly once, floored at ``1 / (2N)`` so a run set with no
  singletons still reserves some mass for surprises.  The adjusted
  score discounts the raw pass rate by ``(1 - p0)``: it is the
  probability that the next run both lands in a *seen* outcome class
  and that class is "pass".
* **Wilson interval** — a 95% score interval on the raw pass rate; at
  small ``N`` it is wide and asymmetric, which is exactly the honest
  answer ("3/3 passed" -> [0.44, 1.0], not [1.0, 1.0]).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, Sequence, Tuple


@dataclass(frozen=True)
class ReliabilityScore:
    """Good–Turing-adjusted pass frequency with a Wilson 95% interval."""

    runs: int
    passes: int
    raw_rate: float
    adjusted_rate: float
    ci_low: float
    ci_high: float
    #: Good–Turing unseen-outcome mass used for the adjustment.
    unseen_mass: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "runs": self.runs,
            "passes": self.passes,
            "raw_rate": self.raw_rate,
            "adjusted_rate": self.adjusted_rate,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "unseen_mass": self.unseen_mass,
        }


def wilson_interval(successes: int, n: int, z: float = 1.96) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion (default 95%)."""
    if n <= 0:
        return 0.0, 1.0
    if not 0 <= successes <= n:
        raise ValueError(f"successes {successes} outside [0, {n}]")
    p = successes / n
    denom = 1.0 + z * z / n
    centre = (p + z * z / (2 * n)) / denom
    margin = (z / denom) * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n))
    return max(0.0, centre - margin), min(1.0, centre + margin)


def good_turing_unseen_mass(outcomes: Sequence[FrozenSet[str]]) -> float:
    """Estimated probability of an outcome class not seen in ``outcomes``.

    ``outcomes`` are per-run violation signatures (frozensets of violated
    invariant names; the empty set is "pass").  The estimate is the
    Good–Turing singleton mass ``N1 / N`` with a ``1 / (2N)`` floor.
    """
    n = len(outcomes)
    if n == 0:
        return 1.0
    counts = Counter(outcomes)
    n1 = sum(1 for c in counts.values() if c == 1)
    return max(n1 / n, 1.0 / (2 * n))


def reliability_score(outcomes: Sequence[FrozenSet[str]]) -> ReliabilityScore:
    """Score one cell from its per-run violation signatures."""
    n = len(outcomes)
    passes = sum(1 for outcome in outcomes if not outcome)
    raw = passes / n if n else 0.0
    unseen = good_turing_unseen_mass(outcomes)
    low, high = wilson_interval(passes, n)
    return ReliabilityScore(
        runs=n,
        passes=passes,
        raw_rate=raw,
        adjusted_rate=raw * (1.0 - unseen),
        ci_low=low,
        ci_high=high,
        unseen_mass=unseen,
    )
