"""Chaos-matrix fault exploration with temporal invariant checking.

Systematic state-space exploration of the fault subsystem (Clotho-style):
:mod:`~repro.chaos.matrix` enumerates a deterministic seeded grid over
fault profiles x windows x crash schedules x store/engine/profiler
configurations; :mod:`~repro.chaos.runner` executes cells in parallel,
evaluates the temporal invariants of :mod:`~repro.chaos.invariants`
over each run's :class:`~repro.sim.tap.SimTap` event stream, and scores
cells with the confidence-aware statistics of
:mod:`~repro.chaos.reliability`.  Any failing cell replays
bit-identically from its cell id (``repro chaos --replay``).
"""

from repro.chaos.invariants import INVARIANT_NAMES, Violation, check_all
from repro.chaos.matrix import (
    ChaosCell,
    ChaosMatrix,
    FAULT_PROFILES,
    MatrixConfig,
)
from repro.chaos.reliability import ReliabilityScore, reliability_score
from repro.chaos.runner import (
    CellReport,
    CellRunResult,
    load_replay_bundle,
    replay_cell,
    run_cell,
    run_matrix,
    telemetry_digest,
    write_replay_bundle,
)

__all__ = [
    "INVARIANT_NAMES",
    "Violation",
    "check_all",
    "ChaosCell",
    "ChaosMatrix",
    "FAULT_PROFILES",
    "MatrixConfig",
    "ReliabilityScore",
    "reliability_score",
    "CellReport",
    "CellRunResult",
    "load_replay_bundle",
    "replay_cell",
    "run_cell",
    "run_matrix",
    "telemetry_digest",
    "write_replay_bundle",
]
