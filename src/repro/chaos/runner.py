"""Parallel chaos-matrix execution and deterministic failing-cell replay.

Each cell runs as one process-pool task (the PR 5 runner pattern: the
cell travels as a plain dict, the worker builds everything from scratch
with a private telemetry registry, and only small results ship back —
violations, event counts, and a telemetry digest, never the event stream
or the snapshot itself).  Invariants are evaluated *in-worker* right
after the simulation finishes, while the tap stream is still local.

The **telemetry digest** is the replay contract: a sha256 over the
canonical JSON of every non-volatile metric in the run's snapshot
(volatile keys — wall-clock timers and the uid-layout diagnostic — are
excluded exactly as in the engine-parity oracle).  Two runs of the same
cell id must produce byte-identical digests whether they execute in a
pool worker, serially, or in a later ``repro chaos --replay`` process;
``tests/chaos/test_replay_determinism.py`` pins this across 25 seeds.

Failing cells are written out as **replay bundles**
(``chaos-<cell_id>.json``) carrying the cell's canonical parameters,
repeat index, digest, and violations.  :func:`load_replay_bundle`
refuses empty/truncated/malformed bundles with
:class:`~repro.errors.ParityArtifactError` — a bad artifact must read as
"the run failed", never as "nothing to replay".
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence

from repro.chaos.invariants import Violation, check_all
from repro.chaos.matrix import ChaosCell, ChaosMatrix
from repro.chaos.reliability import ReliabilityScore, reliability_score
from repro.errors import EvaluationError, ParityArtifactError

#: Keys a replay bundle must carry to be loadable.
_BUNDLE_REQUIRED_KEYS = ("cell", "cell_id", "repeat", "telemetry_digest", "violations")


@dataclass
class CellRunResult:
    """Outcome of one run (cell x repeat): violations + replay digest."""

    cell_id: str
    repeat: int
    seed: int
    violations: List[Violation]
    telemetry_digest: str
    event_counts: Dict[str, int]
    headline: Dict[str, float]

    @property
    def passed(self) -> bool:
        return not self.violations

    @property
    def outcome(self) -> FrozenSet[str]:
        """Violation signature (empty = pass) for reliability scoring."""
        return frozenset(v.invariant for v in self.violations)


@dataclass
class CellReport:
    """One cell's aggregated sweep outcome."""

    cell: ChaosCell
    runs: List[CellRunResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(run.passed for run in self.runs)

    @property
    def score(self) -> ReliabilityScore:
        return reliability_score([run.outcome for run in self.runs])


def telemetry_digest(snapshot: Mapping[str, object]) -> str:
    """sha256 over the canonical JSON of the non-volatile snapshot metrics.

    Sorted keys + canonical separators make the digest independent of
    dict construction order; excluding volatile keys makes it
    process-stable (wall-clock timers measure the host, not the run).
    """
    from repro.sim.events import is_volatile_metric_key

    metrics = snapshot.get("metrics", {})
    stable = {
        key: value
        for key, value in metrics.items()
        if not is_volatile_metric_key(key)
    }
    blob = json.dumps(stable, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


#: Telemetry counters worth a headline in sweep output (cheap context for
#: a failing cell without shipping the whole snapshot back).
_HEADLINE_KEYS = (
    "tracker.dead_letters",
    "tracker.duplicate_dead_letters_suppressed",
    "tracker.paths_abandoned",
    "tracker.late_messages_discarded",
    "store.dead_letter_purged",
    "elasticity.fallback_engagements",
    "elasticity.fallback_recoveries",
)


def run_cell(
    cell: ChaosCell,
    repeat: int = 0,
    store_backend: str = "memory",
    store_dir: Optional[str] = None,
) -> CellRunResult:
    """Execute one cell run in-process and evaluate every invariant.

    Mirrors the ``repro faults`` wiring: DCA managers get the staleness
    fallback enabled (it is the subject of the re-engagement invariant)
    and a finite path timeout so abandonment machinery is live.

    ``store_backend``/``store_dir`` are sweep-level overrides, *not* a
    matrix axis (cell ids are digest-derived from the grid parameters
    and must stay stable across backends).  The telemetry digest is
    backend-independent by contract, so a sweep on the ``log`` backend
    must reproduce the memory sweep bit-for-bit.  With the log backend,
    each run journals into its own ``<cell_id>-r<repeat>`` subdirectory
    of ``store_dir``.
    """
    from repro.apps.catalog import load_scenario
    from repro.core.elasticity import DCAManagerConfig, StalenessPolicy
    from repro.evalx.experiment import DCA_RATES, ExperimentConfig, build_simulator
    from repro.sim.tap import SimTap
    from repro.telemetry import MetricsRegistry

    scenario = load_scenario(cell.app)
    if store_backend == "log" and store_dir is not None:
        store_dir = os.path.join(store_dir, f"{cell.cell_id}-r{repeat}")
    config = ExperimentConfig(
        duration_minutes=cell.duration_minutes,
        seed=cell.seed_for(repeat),
        num_shards=cell.num_shards,
        write_batch_size=cell.write_batch_size,
        engine=cell.engine,
        profiler_mode=cell.profiler_mode,
        store_backend=store_backend,
        store_dir=store_dir,
    )
    registry = MetricsRegistry()
    tap = SimTap()
    manager_config = None
    rate = DCA_RATES.get(cell.manager)
    if rate is not None:
        manager_config = DCAManagerConfig(
            sampling_rate=rate, staleness=StalenessPolicy()
        )
    simulator = build_simulator(
        scenario,
        cell.manager,
        config,
        registry=registry,
        fault_plan=cell.fault_plan(repeat),
        path_timeout_minutes=cell.path_timeout_minutes,
        manager_config=manager_config,
        tap=tap,
    )
    simulator.run()
    fresh_after = 2
    detector = getattr(simulator.manager, "staleness_detector", None)
    if detector is not None:
        fresh_after = detector.policy.fresh_after_intervals
    violations = check_all(tap, fresh_after_intervals=fresh_after)
    snapshot = registry.snapshot()
    headline: Dict[str, float] = {}
    for key in _HEADLINE_KEYS:
        metric = registry.get(key)
        if metric is not None and metric.value:
            headline[key] = float(metric.value)
    return CellRunResult(
        cell_id=cell.cell_id,
        repeat=repeat,
        seed=cell.seed_for(repeat),
        violations=violations,
        telemetry_digest=telemetry_digest(snapshot),
        event_counts=dict(tap.counts),
        headline=headline,
    )


def _run_cell_task(
    cell_data: Dict[str, object],
    repeat: int,
    store_backend: str = "memory",
    store_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Process-pool worker: rebuild the cell from its dict and run it.

    Top-level (picklable) on purpose; ships back a plain dict so the
    coordinator never unpickles custom classes from workers.
    """
    cell = ChaosCell.from_dict(cell_data)
    result = run_cell(cell, repeat=repeat, store_backend=store_backend, store_dir=store_dir)
    return {
        "cell_id": result.cell_id,
        "repeat": result.repeat,
        "seed": result.seed,
        "violations": [v.to_dict() for v in result.violations],
        "telemetry_digest": result.telemetry_digest,
        "event_counts": result.event_counts,
        "headline": result.headline,
    }


def _result_from_dict(data: Mapping[str, object]) -> CellRunResult:
    return CellRunResult(
        cell_id=data["cell_id"],
        repeat=data["repeat"],
        seed=data["seed"],
        violations=[
            Violation(v["invariant"], v["minute"], v["detail"])
            for v in data["violations"]
        ],
        telemetry_digest=data["telemetry_digest"],
        event_counts=dict(data["event_counts"]),
        headline=dict(data["headline"]),
    )


def run_matrix(
    cells: Sequence[ChaosCell],
    repeats: int = 2,
    workers: int = 1,
    bundle_dir: Optional[str] = None,
    store_backend: str = "memory",
    store_dir: Optional[str] = None,
) -> List[CellReport]:
    """Sweep ``cells`` (x ``repeats`` runs each), optionally in parallel.

    ``workers`` > 1 fans the (cell, repeat) tasks over a process pool —
    every run is independent (own simulator, registry, tap), so results
    are bit-identical to a serial sweep.  Failing runs are written as
    replay bundles into ``bundle_dir`` when given.  ``store_backend`` /
    ``store_dir`` apply to every run (see :func:`run_cell`) and do not
    change cell ids or digests.
    """
    if repeats < 1:
        raise EvaluationError(f"repeats must be >= 1, got {repeats}")
    tasks = [(cell, rep) for cell in cells for rep in range(repeats)]
    raw: Dict[tuple, Dict[str, object]] = {}
    if workers > 1 and len(tasks) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
            futures = {
                (cell.cell_id, rep): pool.submit(
                    _run_cell_task, cell.canonical(), rep, store_backend, store_dir
                )
                for cell, rep in tasks
            }
            for key, future in futures.items():
                raw[key] = future.result()
    else:
        for cell, rep in tasks:
            raw[(cell.cell_id, rep)] = _run_cell_task(
                cell.canonical(), rep, store_backend, store_dir
            )
    reports: List[CellReport] = []
    for cell in cells:
        report = CellReport(cell=cell)
        for rep in range(repeats):
            result = _result_from_dict(raw[(cell.cell_id, rep)])
            report.runs.append(result)
            if not result.passed and bundle_dir:
                write_replay_bundle(bundle_dir, cell, result)
        reports.append(report)
    return reports


# -- replay bundles ------------------------------------------------------------


def write_replay_bundle(
    bundle_dir: str, cell: ChaosCell, result: CellRunResult
) -> str:
    """Persist a failing run so ``repro chaos --replay`` can reproduce it."""
    os.makedirs(bundle_dir, exist_ok=True)
    path = os.path.join(bundle_dir, f"chaos-{cell.cell_id}-r{result.repeat}.json")
    payload = {
        "cell": cell.canonical(),
        "cell_id": cell.cell_id,
        "repeat": result.repeat,
        "seed": result.seed,
        "telemetry_digest": result.telemetry_digest,
        "violations": [v.to_dict() for v in result.violations],
        "event_counts": result.event_counts,
        "headline": result.headline,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    return path


def load_replay_bundle(path: str) -> Dict[str, object]:
    """Load one replay bundle, failing loudly on bad input.

    Mirrors :func:`repro.sim.parity.load_parity_report`: a missing,
    empty, or structurally wrong bundle raises
    :class:`~repro.errors.ParityArtifactError` with the exact reason.
    """
    if not os.path.exists(path):
        raise ParityArtifactError(f"replay bundle not found: {path}")
    with open(path, encoding="utf-8") as fh:
        raw = fh.read()
    if not raw.strip():
        raise ParityArtifactError(
            f"replay bundle {path} is empty (partially-written artifact) — "
            "re-run the sweep instead of trusting it"
        )
    try:
        data = json.loads(raw)
    except ValueError as exc:
        raise ParityArtifactError(
            f"replay bundle {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(data, dict):
        raise ParityArtifactError(
            f"replay bundle {path} must be a JSON object, got {type(data).__name__}"
        )
    missing = [key for key in _BUNDLE_REQUIRED_KEYS if key not in data]
    if missing:
        raise ParityArtifactError(
            f"replay bundle {path} is missing required keys {missing}"
        )
    return data


def replay_cell(
    matrix: ChaosMatrix,
    cell_id: str,
    repeat: int = 0,
    expected_digest: Optional[str] = None,
    store_backend: str = "memory",
    store_dir: Optional[str] = None,
) -> CellRunResult:
    """Re-run one cell bit-identically from its id.

    When ``expected_digest`` is given (from a sweep log or a replay
    bundle), a digest mismatch raises
    :class:`~repro.errors.EvaluationError` — the replay did *not*
    reproduce the original run, which is itself a determinism bug worth
    failing loudly over.
    """
    cell = matrix.cell_by_id(cell_id)
    result = run_cell(cell, repeat=repeat, store_backend=store_backend, store_dir=store_dir)
    if expected_digest is not None and result.telemetry_digest != expected_digest:
        raise EvaluationError(
            f"replay of cell {cell_id} (repeat {repeat}) produced telemetry "
            f"digest {result.telemetry_digest[:16]}… but the recorded run had "
            f"{expected_digest[:16]}… — the cell is not replaying "
            "bit-identically"
        )
    return result
