"""Temporal invariants over the simulation's semantic event stream.

Scalar counters can say *how many* dead letters a run produced; they
cannot say whether a dead-lettered uid later showed up inside a
completed path.  The checkers here consume the ordered
:class:`~repro.sim.tap.TapEvent` stream a chaos run records and evaluate
LTL-style safety properties:

``dead-letter-exclusion``
    A dead-lettered uid never appears among a completed path's members
    (G: dead_letter(u) -> not F: u in path_completed.members).  Purging
    a parked dead letter (its root was abandoned) does not lift the
    exclusion — the write was still lost.

``no-resurrection``
    An abandoned root is never completed afterwards, never abandoned a
    second time, and the tracker's defensive ``root_resurrected``
    emission never fires.

``fallback-reengagement``
    Once the staleness detector reports healthy profile flow after an
    engaged stretch, the fallback must release within
    ``fresh_after_intervals`` consecutive healthy observations (plus
    ``REENGAGE_SLACK`` for interval skew) — the elasticity-management
    contract of the Elastic Remote Methods line: degraded sizing is a
    *mode*, not a ratchet.

``replica-accounting``
    A group's ready-replica count observed by the engine only ever
    changes through an explicit lifecycle event (provision maturation,
    crash, drain start) — never silently while provisioning is in
    flight.  The checker replays the lifecycle events into a shadow
    ledger and compares it at every ``replica_observed``.

Checkers are pure functions of the event stream: they never touch the
simulation, so they can run in-worker right after a cell finishes and
ship only their violations back to the coordinator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set

#: Extra healthy intervals tolerated beyond the policy's
#: ``fresh_after_intervals`` before a stuck fallback is a violation.
REENGAGE_SLACK = 2

INVARIANT_NAMES = (
    "dead-letter-exclusion",
    "no-resurrection",
    "fallback-reengagement",
    "replica-accounting",
)


@dataclass(frozen=True)
class Violation:
    """One invariant breach, anchored to the stream position."""

    invariant: str
    minute: float
    detail: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "invariant": self.invariant,
            "minute": self.minute,
            "detail": self.detail,
        }


def check_dead_letter_exclusion(events: Iterable) -> List[Violation]:
    """A dead-lettered uid never appears in a completed path."""
    violations: List[Violation] = []
    dead: Set[str] = set()
    for event in events:
        if event.kind == "dead_letter":
            dead.add(event.data["uid"])
        elif event.kind == "path_completed" and dead:
            members = event.data.get("members", ())
            leaked = dead.intersection(members)
            for uid in sorted(leaked):
                violations.append(
                    Violation(
                        "dead-letter-exclusion",
                        event.minute,
                        f"dead-lettered uid {uid} is a member of completed "
                        f"path {event.data['root']}",
                    )
                )
    return violations


def check_no_resurrection(events: Iterable) -> List[Violation]:
    """Abandoned roots never complete, resurrect, or re-abandon."""
    violations: List[Violation] = []
    abandoned: Set[str] = set()
    for event in events:
        if event.kind == "path_abandoned":
            root = event.data["root"]
            if root in abandoned:
                violations.append(
                    Violation(
                        "no-resurrection",
                        event.minute,
                        f"root {root} abandoned twice",
                    )
                )
            abandoned.add(root)
        elif event.kind == "root_resurrected":
            violations.append(
                Violation(
                    "no-resurrection",
                    event.minute,
                    f"abandoned root {event.data['root']} re-entered the store",
                )
            )
        elif event.kind == "path_completed" and abandoned:
            root = event.data["root"]
            if root in abandoned:
                violations.append(
                    Violation(
                        "no-resurrection",
                        event.minute,
                        f"abandoned root {root} completed afterwards",
                    )
                )
    return violations


def check_fallback_reengagement(
    events: Iterable, fresh_after_intervals: int = 2
) -> List[Violation]:
    """The staleness fallback releases promptly once the profile recovers.

    The detector emits one ``staleness`` event per interval carrying the
    observation's health and the post-update engagement state.  While
    engaged, a streak of healthy observations longer than
    ``fresh_after_intervals + REENGAGE_SLACK`` with the fallback still
    held is a violation.  Runs without a detector (baseline managers)
    emit no ``staleness`` events and trivially pass.
    """
    violations: List[Violation] = []
    budget = fresh_after_intervals + REENGAGE_SLACK
    healthy_streak = 0
    reported = False
    for event in events:
        if event.kind != "staleness":
            continue
        healthy = event.data["healthy"]
        engaged = event.data["engaged"]
        if healthy and engaged:
            healthy_streak += 1
            if healthy_streak > budget and not reported:
                violations.append(
                    Violation(
                        "fallback-reengagement",
                        event.minute,
                        f"fallback still engaged after {healthy_streak} "
                        f"consecutive healthy intervals (budget {budget})",
                    )
                )
                reported = True
        else:
            healthy_streak = 0
            reported = False
    return violations


def check_replica_accounting(events: Iterable) -> List[Violation]:
    """Ready-replica counts only change through explicit lifecycle events."""
    violations: List[Violation] = []
    # component -> ready count according to the lifecycle ledger.
    ledger: Dict[str, int] = {}
    for event in events:
        kind = event.kind
        data = event.data
        if kind == "replica_init":
            ledger[data["component"]] = data["ready"]
        elif kind in ("provision_matured", "nodes_crashed", "drain_started"):
            # These events carry the authoritative post-transition count.
            ledger[data["component"]] = data["ready"]
        elif kind == "replica_observed":
            component = data["component"]
            expected = ledger.get(component)
            if expected is None:
                violations.append(
                    Violation(
                        "replica-accounting",
                        event.minute,
                        f"component {component} observed before replica_init",
                    )
                )
                ledger[component] = data["ready"]
            elif data["ready"] != expected:
                violations.append(
                    Violation(
                        "replica-accounting",
                        event.minute,
                        f"component {component} ready={data['ready']} but the "
                        f"lifecycle ledger says {expected} — the count moved "
                        "without a provision/crash/drain event",
                    )
                )
                ledger[component] = data["ready"]
    return violations


def check_all(events, fresh_after_intervals: int = 2) -> List[Violation]:
    """Run every invariant checker over one recorded event stream.

    ``events`` may be a :class:`~repro.sim.tap.SimTap` or any iterable of
    :class:`~repro.sim.tap.TapEvent`; the stream is materialised once and
    shared (checkers are independent single passes).
    """
    stream = list(events)
    violations: List[Violation] = []
    violations.extend(check_dead_letter_exclusion(stream))
    violations.extend(check_no_resurrection(stream))
    violations.extend(
        check_fallback_reengagement(stream, fresh_after_intervals=fresh_after_intervals)
    )
    violations.extend(check_replica_accounting(stream))
    return violations
