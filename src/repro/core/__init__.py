"""The paper's primary contribution: DCA, causal probability, elasticity."""

from repro.core.causal_graph import DirectCausalityTracker
from repro.core.dca import ComponentAnalysis, DCAResult, analyze_application, analyze_component
from repro.core.elasticity import (
    DCAElasticityManager,
    DCAManagerConfig,
    detect_serialization_suspects,
)
from repro.core.instrument import (
    InstrumentedComponent,
    InstrumentedOutcome,
    OverheadModel,
    instrument_application,
)
from repro.core.paths import (
    EmissionSet,
    PathSignature,
    enumerate_causal_paths,
    handler_emission_sets,
    signature_from_edges,
)
from repro.core.probability import (
    causal_probabilities,
    component_weights,
    proportional_allocation,
    request_weights,
)
from repro.core.regression import LinearCapacityModel, MachineSpec
from repro.core.sampling import (
    AdaptiveSamplingController,
    PreferentialPathSampler,
    RequestSampler,
)
from repro.core.shards import (
    ShardProfile,
    selective_shard_allocation,
    shard_allocation_agility,
    shard_weights,
    uniform_shard_allocation,
)
from repro.core.slicing import (
    RecvSlice,
    SendSlice,
    all_send_slices,
    backward_slice_from_send,
    forward_slice_from_recv,
)

__all__ = [
    "AdaptiveSamplingController",
    "ComponentAnalysis",
    "DCAElasticityManager",
    "DCAManagerConfig",
    "DCAResult",
    "DirectCausalityTracker",
    "EmissionSet",
    "InstrumentedComponent",
    "InstrumentedOutcome",
    "LinearCapacityModel",
    "MachineSpec",
    "OverheadModel",
    "PathSignature",
    "RecvSlice",
    "PreferentialPathSampler",
    "RequestSampler",
    "SendSlice",
    "ShardProfile",
    "all_send_slices",
    "analyze_application",
    "analyze_component",
    "backward_slice_from_send",
    "causal_probabilities",
    "component_weights",
    "detect_serialization_suspects",
    "enumerate_causal_paths",
    "forward_slice_from_recv",
    "handler_emission_sets",
    "instrument_application",
    "proportional_allocation",
    "request_weights",
    "selective_shard_allocation",
    "shard_allocation_agility",
    "shard_weights",
    "signature_from_edges",
    "uniform_shard_allocation",
]
