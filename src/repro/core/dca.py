"""Direct Causality Analysis (DCA) — the paper's core static analysis.

For each component ``C_i`` (Section IV-A):

1. for each outgoing message, backward static slicing yields ``S_out``,
   the variables influencing ``send(msgOut)``;
2. ``V_out = ∪ S_out`` over all sends of the component — closed
   transitively over intra-component writes, because a variable that
   influences a *write* to a member of ``V_out`` also (eventually)
   influences an emission;
3. for each incoming message, forward slicing yields ``V_in`` (writable
   variables), and ``V_tr = V_in ∩ V_out`` is the set whose provenance
   must be tracked at runtime.

The result is an :class:`InstrumentationPlan` per component, consumed by
:mod:`repro.core.instrument`.  No annotations or code changes are needed —
"DCA only requires the application to be re-compiled".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Set, Tuple

from repro.core.slicing import SendSlice, all_send_slices, forward_slice_from_recv
from repro.errors import AnalysisError
from repro.lang.dependence import HandlerPDG, build_pdgs
from repro.lang.ir import Application, Component


@dataclass(frozen=True)
class ComponentAnalysis:
    """DCA result for one component.

    Attributes
    ----------
    component:
        Component name.
    send_slices:
        Per-send ``S_out`` slices (paper step 1), keyed by handler message
        type, in program order within each handler.
    v_out:
        Variables that (transitively) influence some emission (step 2).
    v_in:
        Per incoming message type, the variables the handler may write
        (step 3a).
    v_tr:
        Variables whose provenance must be tracked (step 3b):
        ``(∪ V_in) ∩ V_out``.
    v_tr_by_msg:
        Per incoming message type, the tracked subset written by that
        handler (used to report per-handler instrumentation density).
    """

    component: str
    send_slices: Mapping[str, Tuple[SendSlice, ...]]
    v_out: FrozenSet[str]
    v_in: Mapping[str, FrozenSet[str]]
    v_tr: FrozenSet[str]
    v_tr_by_msg: Mapping[str, FrozenSet[str]]
    state_var_count: int = 0

    @property
    def tracked_fraction(self) -> float:
        """|V_tr| / |state vars| — how much of the state is instrumented."""
        if self.state_var_count <= 0:
            return 0.0
        return len(self.v_tr) / self.state_var_count


@dataclass(frozen=True)
class DCAResult:
    """Application-wide DCA result: one :class:`ComponentAnalysis` each."""

    application: str
    per_component: Mapping[str, ComponentAnalysis]

    def tracked_vars(self, component: str) -> FrozenSet[str]:
        """``V_tr`` for ``component`` (empty frozenset if unknown)."""
        analysis = self.per_component.get(component)
        if analysis is None:
            raise AnalysisError(f"no DCA analysis for component {component!r}")
        return analysis.v_tr

    def total_tracked_vars(self) -> int:
        return sum(len(a.v_tr) for a in self.per_component.values())


def analyze_component(component: Component) -> ComponentAnalysis:
    """Run DCA steps 1–3 on a single component."""
    pdgs: Dict[str, HandlerPDG] = build_pdgs(component)
    state_vars = component.state_vars()

    send_slices: Dict[str, Tuple[SendSlice, ...]] = {}
    direct_out: Set[str] = set()
    for msg_type, pdg in sorted(pdgs.items()):
        slices = tuple(all_send_slices(pdg))
        send_slices[msg_type] = slices
        for sl in slices:
            direct_out |= set(sl.s_out)

    # Transitive closure of "influences an emission" through intra-component
    # writes: if handler h writes w ∈ V_out and that write is influenced by
    # entry variable u, then u influences a (later) emission through w.
    write_summaries = {
        msg_type: pdg.write_summaries() for msg_type, pdg in sorted(pdgs.items())
    }
    v_out: Set[str] = set(direct_out)
    changed = True
    while changed:
        changed = False
        for summaries in write_summaries.values():
            for var_name, summary in summaries.items():
                if var_name in v_out:
                    new = summary.influencing_state_vars - v_out
                    if new:
                        v_out |= new
                        changed = True
    v_out &= state_vars

    v_in: Dict[str, FrozenSet[str]] = {}
    v_tr_by_msg: Dict[str, FrozenSet[str]] = {}
    for msg_type, pdg in sorted(pdgs.items()):
        recv = forward_slice_from_recv(pdg)
        v_in[msg_type] = recv.v_in
        v_tr_by_msg[msg_type] = frozenset(recv.v_in & v_out)

    all_in: Set[str] = set()
    for vin in v_in.values():
        all_in |= vin
    v_tr = frozenset(all_in & v_out)

    return ComponentAnalysis(
        component=component.name,
        send_slices=send_slices,
        v_out=frozenset(v_out),
        v_in=v_in,
        v_tr=v_tr,
        v_tr_by_msg=v_tr_by_msg,
        state_var_count=len(state_vars),
    )


def analyze_application(app: Application) -> DCAResult:
    """Run DCA on every component of ``app``."""
    per_component = {name: analyze_component(comp) for name, comp in sorted(app.components.items())}
    return DCAResult(application=app.name, per_component=per_component)
