"""Static enumeration of causal paths and the path-signature model.

The paper statically analyses the application to construct the
architectural graph and "statically identif[ies] all possible causal
paths in the application", seeding the profiler with zero counts
(Section IV-B).  A *causal path* induced by one external request is in
general a tree (fan-out, e.g. ``S1 → {S2, S3, S4}`` in Fig. 1), so we
canonicalise it as the sorted set of component-level hops
``(src, msg_type, dest)`` — the same canonical form
:func:`repro.graphstore.query.causal_graph_bfs` produces dynamically,
which is what lets the profiler match observed graphs to static paths.

Enumeration walks each handler body, treating each ``If`` as a choice
point and each ``While`` as executing zero or one time (a sound
abstraction for path *identity*: re-executions add no new hop triples to
the canonical edge set).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.errors import AnalysisError
from repro.graphstore.query import EdgeTriple
from repro.lang.ir import CLIENT, EXTERNAL, Application, Handler, If, Send, Stmt, While

#: A single emission option of a handler: the (msg_type, dest) pairs sent
#: on one execution path through the handler body.
EmissionSet = Tuple[Tuple[str, str], ...]


@dataclass(frozen=True)
class PathSignature:
    """Canonical identity of a causal path.

    ``edges`` is the sorted tuple of unique ``(src, msg_type, dest)``
    hops, including the external-request edge (src = ``EXTERNAL``) and any
    client-response edges (dest = ``CLIENT``).
    """

    request_type: str
    edges: Tuple[EdgeTriple, ...]

    @cached_property
    def path_id(self) -> str:
        """Stable short identifier (for reports and registry keys).

        Computed once per instance — profiler recording reads it on every
        path completion, and the sha1 is pure function of the (frozen)
        fields.
        """
        digest = hashlib.sha1(repr((self.request_type, self.edges)).encode("utf-8")).hexdigest()
        return f"{self.request_type}:{digest[:10]}"

    @property
    def components(self) -> FrozenSet[str]:
        """Application components appearing on this path."""
        names: Set[str] = set()
        for src, _, dest in self.edges:
            if src not in (EXTERNAL, CLIENT):
                names.add(src)
            if dest not in (EXTERNAL, CLIENT):
                names.add(dest)
        return frozenset(names)

    @property
    def length(self) -> int:
        return len(self.edges)

    def describe(self) -> str:
        """Human-readable rendering, e.g. for example scripts."""
        hops = ", ".join(f"{s}--{m}-->{d}" for s, m, d in self.edges)
        return f"{self.request_type}: [{hops}]"


def handler_emission_sets(handler: Handler, max_variants: int = 256) -> List[EmissionSet]:
    """All emission variants of ``handler`` (one per execution path shape).

    Deduplicated and deterministically ordered.  Raises
    :class:`~repro.errors.AnalysisError` if the handler has more than
    ``max_variants`` distinct variants (a sign the app model is too
    branchy for static path enumeration).
    """
    variants = _block_variants(handler.body, max_variants)
    unique = sorted(set(variants))
    if len(unique) > max_variants:
        raise AnalysisError(
            f"handler for {handler.msg_type!r} has {len(unique)} emission variants (max {max_variants})"
        )
    return unique


def _block_variants(block: Sequence[Stmt], limit: int) -> List[EmissionSet]:
    variants: List[EmissionSet] = [()]
    for stmt in block:
        stmt_variants = _stmt_variants(stmt, limit)
        merged: List[EmissionSet] = []
        for prefix in variants:
            for option in stmt_variants:
                merged.append(prefix + option)
                if len(merged) > limit * 4:
                    raise AnalysisError(
                        f"emission-variant explosion while enumerating block (limit {limit})"
                    )
        # Dedup eagerly to keep the working set small.
        variants = sorted(set(merged))
    return variants


def _stmt_variants(stmt: Stmt, limit: int) -> List[EmissionSet]:
    if isinstance(stmt, Send):
        return [((stmt.msg_type, stmt.dest),)]
    if isinstance(stmt, If):
        then_v = _block_variants(stmt.then_body, limit)
        else_v = _block_variants(stmt.else_body, limit)
        return sorted(set(then_v) | set(else_v))
    if isinstance(stmt, While):
        body_v = _block_variants(stmt.body, limit)
        # Zero or one execution: additional iterations repeat hop triples,
        # which the canonical (set-based) signature already contains.
        return sorted(set(body_v) | {()})
    return [()]


def enumerate_causal_paths(
    app: Application,
    max_paths_per_request: int = 4096,
    max_hops: int = 512,
    max_repeats: int = 2,
) -> Dict[str, List[PathSignature]]:
    """Statically enumerate the causal paths of every external request type.

    Returns request type → sorted list of :class:`PathSignature`.  The
    walk bounds re-expansion of the same ``(component, msg_type)`` pair to
    ``max_repeats`` per path so that architectures with message cycles
    (retries, heartbeats) terminate; beyond the bound the repeated hops
    add no new edges to the canonical signature.
    """
    emission_cache: Dict[Tuple[str, str], List[EmissionSet]] = {}

    def emissions(component: str, msg_type: str) -> List[EmissionSet]:
        key = (component, msg_type)
        if key not in emission_cache:
            handler = app.component(component).handler_for(msg_type)
            emission_cache[key] = handler_emission_sets(handler)
        return emission_cache[key]

    result: Dict[str, List[PathSignature]] = {}
    for req_type in sorted(app.entry_points):
        entry = app.entry_points[req_type]
        signatures: Set[Tuple[EdgeTriple, ...]] = set()
        initial_edge: EdgeTriple = (EXTERNAL, req_type, entry)
        _walk_paths(
            app,
            emissions,
            frontier=[(entry, req_type)],
            edges={initial_edge},
            signatures=signatures,
            expansions={},
            hops_left=max_hops,
            max_paths=max_paths_per_request,
            max_repeats=max_repeats,
        )
        result[req_type] = sorted(
            (PathSignature(req_type, tuple(sorted(sig))) for sig in signatures),
            key=lambda p: p.edges,
        )
        if not result[req_type]:
            raise AnalysisError(f"no causal paths enumerated for request type {req_type!r}")
    return result


def _walk_paths(
    app: Application,
    emissions,
    frontier: List[Tuple[str, str]],
    edges: Set[EdgeTriple],
    signatures: Set[Tuple[EdgeTriple, ...]],
    expansions: Dict[Tuple[str, str], int],
    hops_left: int,
    max_paths: int,
    max_repeats: int,
) -> None:
    if len(signatures) >= max_paths:
        return
    if not frontier or hops_left <= 0:
        signatures.add(tuple(sorted(edges)))
        return
    (component, msg_type), rest = frontier[0], frontier[1:]
    key = (component, msg_type)
    count = expansions.get(key, 0)
    if count >= max_repeats:
        # Bounded re-expansion: drop this message, continue with the rest.
        _walk_paths(app, emissions, rest, edges, signatures, expansions, hops_left - 1, max_paths, max_repeats)
        return
    expansions[key] = count + 1
    for option in emissions(component, msg_type):
        new_edges = set(edges)
        new_frontier = list(rest)
        for out_type, dest in option:
            new_edges.add((component, out_type, dest))
            if dest != CLIENT:
                new_frontier.append((dest, out_type))
        _walk_paths(
            app,
            emissions,
            new_frontier,
            new_edges,
            signatures,
            expansions,
            hops_left - 1,
            max_paths,
            max_repeats,
        )
    expansions[key] = count


def signature_from_edges(request_type: str, edges: Iterable[EdgeTriple]) -> PathSignature:
    """Build a canonical :class:`PathSignature` from observed edges."""
    return PathSignature(request_type, tuple(sorted(set(edges))))
