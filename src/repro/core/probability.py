"""Causal probability (Section IV-C of the paper).

``P_c(p) = count(p) / Σ_i count(p_i)`` over the profiler's sliding
window: the probability that a newly arriving external request induces
causal path ``p``.  From per-path probabilities we derive per-component
*causal weights* — the expected fraction of external requests that touch
each component — which is what the elasticity manager apportions
resources by (the paper's e-commerce example: Purchase 0.69 / Simple
0.31 ⇒ scale Price DB and Inventory by 1.69×, Customer Tracking and Ad
Serving by 1.31× when the front-end workload doubles).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from repro.core.paths import PathSignature
from repro.errors import ElasticityError


def causal_probabilities(counts: Mapping[str, int]) -> Dict[str, float]:
    """Normalise per-path counts into causal probabilities.

    Paths with zero counts get probability zero; if *all* counts are zero
    (cold start) the result is all zeros and callers should fall back to
    uniform scaling.
    """
    total = sum(counts.values())
    if total < 0:
        raise ElasticityError(f"negative total path count {total}")
    if total == 0:
        return {pid: 0.0 for pid in counts}
    return {pid: c / total for pid, c in counts.items()}


def component_weights(
    probabilities: Mapping[str, float],
    paths: Mapping[str, PathSignature],
) -> Dict[str, float]:
    """Per-component causal weight: Σ P_c(p) over paths containing it.

    A weight of 1.0 means every external request touches the component
    (e.g. the web front-end); 0.31 means 31% of requests do.  Unknown
    path ids in ``probabilities`` raise, to catch profiler/registry
    mismatches early.
    """
    weights: Dict[str, float] = {}
    for pid, prob in probabilities.items():
        if prob == 0.0:
            continue
        sig = paths.get(pid)
        if sig is None:
            raise ElasticityError(f"probability reported for unknown path id {pid!r}")
        for comp in sig.components:
            weights[comp] = weights.get(comp, 0.0) + prob
    return weights


def request_weights(
    probabilities: Mapping[str, float],
    paths: Mapping[str, PathSignature],
) -> Dict[str, float]:
    """Per request type, the total probability mass of its paths."""
    out: Dict[str, float] = {}
    for pid, prob in probabilities.items():
        sig = paths.get(pid)
        if sig is None:
            raise ElasticityError(f"probability reported for unknown path id {pid!r}")
        out[sig.request_type] = out.get(sig.request_type, 0.0) + prob
    return out


def proportional_allocation(
    total_machines: float,
    weights: Mapping[str, float],
    components: Iterable[str],
    minimum_per_component: int = 1,
) -> Dict[str, int]:
    """Split ``total_machines`` across components proportionally to weight.

    Machines are rounded "to the nearest whole number" (Section IV-C)
    with a floor of ``minimum_per_component``.  Components absent from
    ``weights`` (no observed path touches them) receive the minimum.
    """
    if total_machines < 0:
        raise ElasticityError(f"total_machines must be >= 0, got {total_machines}")
    component_list = sorted(components)
    weight_sum = sum(max(0.0, weights.get(c, 0.0)) for c in component_list)
    out: Dict[str, int] = {}
    for comp in component_list:
        if weight_sum <= 0:
            share = total_machines / max(1, len(component_list))
        else:
            share = total_machines * max(0.0, weights.get(comp, 0.0)) / weight_sum
        out[comp] = max(minimum_per_component, int(round(share)))
    return out
