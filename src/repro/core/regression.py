"""Linear-regression capacity model (Section IV-C of the paper).

"We use a linear regression model whose features are physical/virtual
machine characteristics (CPU clock speed, RAM, network bandwidth),
external workload and observed performance (throughput/latency) to …
predict the overall resource requirements of the application."

:class:`LinearCapacityModel` is a ridge-regularised least-squares
regressor (numpy, closed form) over exactly those features.  It learns
online from ``(features, machines_needed)`` observations collected while
the application runs, and is shared by the DCA manager and the
CloudWatch baseline (which regresses on utilisation metrics instead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ElasticityError


@dataclass(frozen=True)
class MachineSpec:
    """Characteristics of the (homogeneous) machines in the cluster.

    ``capacity_ms_per_minute`` is the abstract CPU budget one node can
    spend per simulated minute; the other fields are regression features
    per the paper.
    """

    cpu_ghz: float = 2.4
    ram_gb: float = 16.0
    network_gbps: float = 10.0
    capacity_ms_per_minute: float = 60_000.0

    def feature_vector(self) -> List[float]:
        return [self.cpu_ghz, self.ram_gb, self.network_gbps]


class LinearCapacityModel:
    """Online ridge regression predicting total machines required.

    Features: machine characteristics + external workload (requests/min)
    + observed throughput + observed latency (+ intercept).  The model
    refits lazily from a bounded history window, so early noisy samples
    age out as the workload evolves.
    """

    FEATURES = ("cpu_ghz", "ram_gb", "network_gbps", "workload", "throughput", "latency_ms")

    def __init__(self, ridge: float = 1e-3, max_history: int = 2_000) -> None:
        if ridge < 0:
            raise ElasticityError(f"ridge must be >= 0, got {ridge}")
        if max_history < 8:
            raise ElasticityError(f"max_history must be >= 8, got {max_history}")
        self.ridge = float(ridge)
        self.max_history = int(max_history)
        self._x: List[List[float]] = []
        self._y: List[float] = []
        self._coef: Optional[np.ndarray] = None
        self._dirty = False

    # -- training ------------------------------------------------------------

    def observe(
        self,
        machine: MachineSpec,
        workload: float,
        throughput: float,
        latency_ms: float,
        machines_needed: float,
    ) -> None:
        """Add one ``(features → machines_needed)`` training sample."""
        if machines_needed < 0:
            raise ElasticityError(f"machines_needed must be >= 0, got {machines_needed}")
        row = machine.feature_vector() + [float(workload), float(throughput), float(latency_ms)]
        self._x.append(row)
        self._y.append(float(machines_needed))
        if len(self._x) > self.max_history:
            self._x.pop(0)
            self._y.pop(0)
        self._dirty = True

    @property
    def sample_count(self) -> int:
        return len(self._y)

    def _fit(self) -> None:
        x = np.asarray(self._x, dtype=float)
        y = np.asarray(self._y, dtype=float)
        ones = np.ones((x.shape[0], 1))
        design = np.hstack([x, ones])
        gram = design.T @ design + self.ridge * np.eye(design.shape[1])
        self._coef = np.linalg.solve(gram, design.T @ y)
        self._dirty = False

    # -- prediction -----------------------------------------------------------

    def predict(
        self,
        machine: MachineSpec,
        workload: float,
        throughput: float,
        latency_ms: float,
    ) -> float:
        """Predicted total machines required (>= 0).

        Raises :class:`~repro.errors.ElasticityError` until at least 8
        samples have been observed — callers fall back to a reactive rule
        during cold start.
        """
        if len(self._y) < 8:
            raise ElasticityError(
                f"capacity model has only {len(self._y)} samples; needs >= 8 to predict"
            )
        if self._dirty or self._coef is None:
            self._fit()
        row = np.asarray(
            machine.feature_vector() + [float(workload), float(throughput), float(latency_ms), 1.0],
            dtype=float,
        )
        assert self._coef is not None
        return float(max(0.0, row @ self._coef))

    def ready(self) -> bool:
        """Whether the model has enough samples to predict."""
        return len(self._y) >= 8
