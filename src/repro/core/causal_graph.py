"""Wiring between the runtime, the graph store, and the profiler.

:class:`DirectCausalityTracker` is the "monitoring host" side of DCA:
instrumented components report every (sampled) message they emit; the
tracker stores nodes/edges in the graph store; when a response node
completes a causal graph, the tracker reads the signature the store has
been accumulating incrementally (O(1) in the graph size — no BFS on the
hot path; see :mod:`repro.graphstore.store`), increments the matching
path counter in the profiler, and evicts the graph to bound memory.

Completion is edge-triggered by the insertion of a response node (as in
the paper: the BFS "is triggered at the graph store when the edge
corresponding to [the] last message … is stored") but *processed* at
:meth:`DirectCausalityTracker.flush` time, so that a response arriving
before a sibling branch of the same request does not yield a truncated
path.  :meth:`observe_all` flushes automatically.

Failure semantics
-----------------
The tracker is the component that faces the unreliable substrate, so the
recovery mechanisms live here:

* **Retry + dead-letter** — a graph-store write that raises
  :class:`~repro.errors.TransientStoreError` is retried up to
  ``max_write_retries`` times with exponential (simulated) backoff;
  exhausted messages are *dead-lettered*: counted and dropped, never
  allowed to crash the pipeline.
* **Path-abandonment timeout** — a root whose causal path has not
  completed within ``path_timeout_minutes`` is abandoned: its partial
  graph is reclaimed from the store and counted, instead of pinning
  store memory (and the pending machinery) forever when a response
  message is lost.
* **Delayed delivery** — messages the fault injector holds back are
  queued and delivered when :meth:`advance_to` passes their due time.
* **Dangling-edge repair** — the maintenance pass asks the store to
  detach raw edges whose effect node never arrived, restoring the O(1)
  eviction path.

Accounting invariants (checked by the chaos harness, :mod:`repro.chaos`):

* A uid is *either* delivered (stored, possibly later completed or
  abandoned) *or* dead-lettered — never both.  When a duplicated
  message's second copy exhausts its write retries while the first copy
  already landed, the failure is counted as
  ``tracker.duplicate_dead_letters_suppressed`` instead of a dead
  letter (the uid *is* in the store).
* An abandoned root stays abandoned: late messages for it (typically
  fault-delayed deliveries due after the path timeout) are discarded
  and counted (``tracker.late_messages_discarded``) instead of
  re-registering the root — which would resurrect a partial graph and
  double-count ``tracker.paths_abandoned`` for the same root.
* Abandoning a root also purges its parked dead letters
  (``store.dead_letter_purged``), so a uid is never simultaneously
  "parked for replay" and "reclaimed by abandonment".
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.paths import signature_from_edges
from repro.errors import TransientStoreError
from repro.faults.injector import FaultInjector
from repro.graphstore.pipeline import BatchedWritePipeline, DeadLetterQueue
from repro.graphstore.sharded import ShardedGraphStore
from repro.graphstore.store import GraphStore
from repro.lang.message import Message, MessageUid
from repro.profiling.profiler import CausalPathProfiler
from repro.telemetry import MetricsRegistry

_NO_CAUSES = frozenset()


class DirectCausalityTracker:
    """Consumes sampled messages; produces causal-path counts.

    Parameters
    ----------
    profiler:
        The path profiler to increment on each completed causal graph.
    store:
        The causal-graph store (created here if not supplied).
    evict_completed:
        Whether to remove completed causal graphs from the store
        (production behaviour; tests may disable it to inspect graphs).
    registry:
        Telemetry registry; defaults to the store's, so one simulation's
        components share a single snapshot surface.
    fault_injector:
        Optional :class:`~repro.faults.injector.FaultInjector` rolled per
        message for the drop/duplicate/delay/edge-loss channels (the
        store consults the same injector for write failures).
    path_timeout_minutes:
        When set, roots first seen more than this many minutes ago that
        have not completed are abandoned during :meth:`advance_to`.
    max_write_retries:
        Transient store-write failures retried per message before the
        message is dead-lettered.
    retry_backoff_ms:
        Base of the exponential backoff schedule (doubles per retry);
        simulated time, accumulated in ``tracker.retry_backoff_ms``.
    write_batch_size:
        When > 1, store writes go through a
        :class:`~repro.graphstore.pipeline.BatchedWritePipeline`:
        per-shard buffers flushed when a buffer reaches this size, every
        ``flush_interval_minutes`` of simulated time, and always before
        completions are processed.  1 (the default) writes through
        unbatched, exactly as before.
    flush_interval_minutes:
        Tick-bound of the batched pipeline (ignored when unbatched).
    max_dead_letters:
        Capacity of the dead-letter queue holding messages that
        exhausted their write retries; beyond it the oldest parked
        message is dropped and counted (``store.dead_letter_dropped``).
    """

    def __init__(
        self,
        profiler: CausalPathProfiler,
        store: Optional[GraphStore] = None,
        evict_completed: bool = True,
        registry: Optional[MetricsRegistry] = None,
        fault_injector: Optional[FaultInjector] = None,
        path_timeout_minutes: Optional[float] = None,
        max_write_retries: int = 3,
        retry_backoff_ms: float = 5.0,
        write_batch_size: int = 1,
        flush_interval_minutes: float = 1.0,
        max_dead_letters: int = 256,
    ) -> None:
        self.profiler = profiler
        self.store = store if store is not None else GraphStore(registry=registry)
        self.evict_completed = evict_completed
        self.fault_injector = fault_injector
        self.path_timeout_minutes = (
            float(path_timeout_minutes) if path_timeout_minutes is not None else None
        )
        self.max_write_retries = int(max_write_retries)
        self.retry_backoff_ms = float(retry_backoff_ms)
        self.telemetry = registry if registry is not None else self.store.telemetry
        self._m_observed = self.telemetry.counter("tracker.messages_observed")
        self._m_sampled_away = self.telemetry.counter("tracker.messages_sampled_away")
        self._m_completed = self.telemetry.counter("tracker.paths_completed")
        self._m_discarded = self.telemetry.counter("tracker.completions_discarded")
        self._m_pending = self.telemetry.gauge("tracker.pending_completion_depth")
        self._m_retries = self.telemetry.counter("tracker.store_write_retries")
        self._m_backoff_ms = self.telemetry.counter("tracker.retry_backoff_ms")
        self._m_dead_letters = self.telemetry.counter("tracker.dead_letters")
        self._m_abandoned = self.telemetry.counter("tracker.paths_abandoned")
        self._m_abandoned_nodes = self.telemetry.counter("tracker.abandoned_nodes")
        self._m_dup_suppressed = self.telemetry.counter(
            "tracker.duplicate_dead_letters_suppressed"
        )
        self._m_late_discarded = self.telemetry.counter("tracker.late_messages_discarded")
        self._m_delivered_late = self.telemetry.counter("tracker.delayed_messages_delivered")
        self._m_records_lost = self.telemetry.counter("tracker.profiler_records_lost")
        self._flush_timer = self.telemetry.timer("tracker.flush_seconds")
        self._base_completed = self._m_completed.value
        # Insertion-ordered dict used as a set: completions are processed
        # in arrival order, which is deterministic without sorting.
        self._pending_completion: Dict[MessageUid, None] = {}
        # Root uid -> minute first observed (insertion order is time
        # order because the simulation clock is monotonic); only
        # maintained when a path timeout is configured.
        self._root_first_seen: Dict[MessageUid, float] = {}
        # Roots reclaimed by the abandonment sweep (insertion-ordered,
        # bounded): late messages for them are discarded so an abandoned
        # root can never resurrect or be abandoned twice.
        self._abandoned_roots: Dict[MessageUid, None] = {}
        self._max_abandoned_roots = 4096
        #: Optional :class:`~repro.sim.tap.SimTap`; emit-only, installed
        #: by the engine via :meth:`attach_tap` (chaos runs only).
        self.tap = None
        # (due_minute, message) queue of fault-delayed messages.
        self._delayed: List[Tuple[float, Message]] = []
        self._now_minutes = 0.0
        # Per-message fault rolls only when a message channel can fire;
        # the plain fast path additionally requires no injector at all
        # (an attached injector can fail store writes, which need the
        # retry wrapper) and no timeout bookkeeping.
        self._message_faults = (
            fault_injector is not None and fault_injector.plan.any_message_faults
        )
        self._plain_path = fault_injector is None and self.path_timeout_minutes is None
        # Dead letters are parked (bounded) rather than silently dropped.
        self.dead_letters = DeadLetterQueue(max_dead_letters, registry=self.telemetry)
        self.write_batch_size = int(write_batch_size)
        if self.write_batch_size > 1:
            self._pipeline: Optional[BatchedWritePipeline] = BatchedWritePipeline(
                self.store,
                batch_size=self.write_batch_size,
                flush_interval_minutes=flush_interval_minutes,
                registry=self.telemetry,
                fault_injector=fault_injector,
                max_write_retries=self.max_write_retries,
                retry_backoff_ms=self.retry_backoff_ms,
                dead_letters=self.dead_letters,
            )
            # The pipeline owns the write-fault roll and the retry/
            # dead-letter bookkeeping, so both observe paths route
            # through submit().
            self._write = self._pipeline.submit
            self._submit = self._pipeline.submit
        else:
            self._pipeline = None
            self._write = self.store.add_message
            self._submit = self._store_with_retry
        # Completion is edge-triggered by response-node insertion.
        self.store.subscribe_path_complete(self._mark_complete)

    @property
    def completed_paths(self) -> int:
        """Causal paths this tracker has closed (registry-backed)."""
        return int(self._m_completed.value - self._base_completed)

    def attach_tap(self, tap) -> None:
        """Install a :class:`~repro.sim.tap.SimTap` on the write path.

        Emit-only: a tapped tracker makes exactly the same decisions and
        RNG draws as an untapped one.  The pipeline shares the tap so
        dead letters are reported wherever the write-fault roll lives.
        """
        self.tap = tap
        if self._pipeline is not None:
            self._pipeline.tap = tap

    @property
    def supports_snapshot_replay(self) -> bool:
        """Whether the event engine may replay converged ingestion deltas.

        The replay fast path freezes a converged per-execution telemetry
        delta and stops feeding the store, so it is only sound when no
        per-message state can diverge from the frozen template: no fault
        injector (message channels and store-write rolls consume seeded
        RNG streams), no path timeout (per-root age bookkeeping), and a
        memory-backend store (a journaling backend must see every
        mutation; replay skips store writes entirely, so a frozen run
        would leave the durable log silently incomplete).

        Sharded stores and the batched write pipeline *are* eligible:
        :meth:`observe_all` ends every execution with :meth:`flush`,
        which drains the pipeline, so flush boundaries never straddle
        executions — per-execution batch telemetry (``write_batches``,
        ``batched_writes``, batch-size histograms) is a deterministic
        function of the converged trace shape, and the buffers are empty
        at the cutover.  Shard routing is uid-hash-dependent, but no
        non-volatile metric is keyed per shard: hash-variant aggregates
        (``cross_partition_edges``) are declared volatile, and anything
        else that failed to settle would merely hold the convergence
        streak at zero rather than diverge after a freeze.  The replay
        ingestor additionally fingerprints the pipeline/dead-letter
        residue each execution leaves behind and drains the pipeline
        (journal included) before freezing — see
        :meth:`drain_pipeline` and :mod:`repro.sim.events`.
        """
        if not self._plain_path:
            return False
        store = self.store
        if type(store) is ShardedGraphStore:
            if any(shard.backend_kind != "memory" for shard in store.shards):
                return False
        elif type(store) is not GraphStore:
            return False
        elif getattr(store, "backend_kind", "memory") != "memory":
            return False
        return True

    @property
    def buffered_writes(self) -> int:
        """Messages sitting in the batched write pipeline (0 if unbatched)."""
        if self._pipeline is None:
            return 0
        return self._pipeline.buffered

    @property
    def pending_completion_depth(self) -> int:
        """Completed roots awaiting :meth:`flush` processing."""
        return len(self._pending_completion)

    def drain_pipeline(self) -> int:
        """Flush buffered writes and the journal; return messages written.

        The replay cutover barrier: called by the event engine's
        :meth:`~repro.sim.events.ReplayIngestor._freeze_all` *before*
        any class delta is frozen, so every write submitted during
        warmup reaches the store — and, on journaling backends, the
        durable log's flush point — ahead of the moment ingestion stops
        feeding the store.  Deliberately leaves the pipeline's flush
        timer untouched (``flush(now_minutes=None)``) so the periodic
        tick schedule stays bit-identical to the tick engine's.
        """
        written = 0
        if self._pipeline is not None:
            written = self._pipeline.flush()
        else:
            flush_journal = getattr(self.store, "flush_journal", None)
            if flush_journal is not None:
                flush_journal()
        return written

    def next_delayed_due_minutes(self) -> Optional[float]:
        """Earliest due time among fault-delayed messages, or ``None``.

        The event engine polls this after each interval to schedule a
        delivery event at the interval boundary the due time lands on.
        """
        if not self._delayed:
            return None
        return min(eta for eta, _ in self._delayed)

    def deliver_delayed(self, now_minutes: float) -> None:
        """Deliver fault-delayed messages due at ``now_minutes``.

        Event-engine entry point: advances the tracker clock and runs
        only the delayed-delivery slice of the maintenance pass, so a
        delivery event at an interval boundary reproduces exactly what
        the tick loop's :meth:`advance_to` would have done there.
        """
        self._now_minutes = float(now_minutes)
        if self._delayed:
            self._deliver_due()

    def advance_to(self, time_minutes: float) -> None:
        """Advance the tracker clock and run the maintenance pass.

        Maintenance delivers fault-delayed messages that are now due,
        abandons roots older than the path timeout, and repairs raw
        dangling edges in the store.  All three are no-ops in a
        fault-free, timeout-free configuration.
        """
        self._now_minutes = float(time_minutes)
        if self._pipeline is not None:
            self._pipeline.tick(self._now_minutes)
        if self._plain_path:
            return
        if self._delayed:
            self._deliver_due()
        if self.path_timeout_minutes is not None:
            self._abandon_expired()
        self.store.repair_dangling_edges()

    def observe_message(self, message: Message) -> None:
        """Record one sampled message (node + causal edges) in the store.

        Call :meth:`flush` once the batch the message belongs to is fully
        recorded; :meth:`observe_all` does both.
        """
        if not message.sampled:
            self._m_sampled_away.inc()
            return
        self._m_observed.inc()
        if self._plain_path:
            self._write(message)
        else:
            self._admit(message)

    def observe_all(self, messages: Iterable[Message]) -> None:
        """Record a batch of messages, then process completed paths.

        Counter updates are batched per call rather than per message.
        """
        observed = 0
        sampled_away = 0
        if self._plain_path:
            add_message = self._write
            for message in messages:
                if message.sampled:
                    observed += 1
                    add_message(message)
                else:
                    sampled_away += 1
        else:
            for message in messages:
                if message.sampled:
                    observed += 1
                    self._admit(message)
                else:
                    sampled_away += 1
        if observed:
            self._m_observed.inc(observed)
        if sampled_away:
            self._m_sampled_away.inc(sampled_away)
        self.flush()

    # -- faulted admission --------------------------------------------------------

    def _admit(self, message: Message) -> None:
        """Roll the message fault channels, then store (with retry)."""
        copies = 1
        if self._message_faults:
            injector = self.fault_injector
            if injector.should_drop_message():
                return
            if message.cause_uids and injector.should_lose_edges():
                # Partial trace: the provenance batch for this message was
                # lost, the message itself still arrives.
                message = message.with_causes(_NO_CAUSES)
            delay = injector.message_delay()
            if delay is not None:
                self._delayed.append((self._now_minutes + delay, message))
                return
            if injector.should_duplicate_message():
                copies = 2
        if self._abandoned_roots and self._discard_if_abandoned(message):
            return
        for _ in range(copies):
            if not self._submit(message):
                return
        if self.path_timeout_minutes is not None:
            root = message.root_uid
            if root is None:
                root = message.uid
            if root not in self._root_first_seen:
                self._root_first_seen[root] = self._now_minutes

    def _discard_if_abandoned(self, message: Message) -> bool:
        """Drop a message whose root the abandonment sweep reclaimed.

        Without this guard a late message (typically a fault-delayed
        delivery due *after* the path timeout) re-registers the root,
        resurrects a partial graph in the store, and the root is
        eventually abandoned a second time — double-counting
        ``tracker.paths_abandoned`` and pinning store memory the sweep
        already reclaimed.
        """
        root = message.root_uid
        if root is None:
            root = message.uid
        if root not in self._abandoned_roots:
            return False
        self._m_late_discarded.inc()
        if self.tap is not None:
            self.tap.emit("late_message_discarded", root=repr(root), uid=repr(message.uid))
        return True

    def _store_with_retry(self, message: Message) -> bool:
        """Write with bounded retry; dead-letter on exhaustion.

        Returns whether the message made it into the store.  Backoff is
        simulated (counted, not slept): the monitoring host must keep
        draining its queue during a store brownout.

        A uid that is *already stored* (an earlier duplicate copy
        landed) is never dead-lettered: the message was delivered, so a
        permanent failure of the redundant copy is counted as
        ``tracker.duplicate_dead_letters_suppressed`` instead — without
        this, the same uid would be accounted as both stored (and so a
        member of a completable path) and dead-lettered.
        """
        for attempt in range(self.max_write_retries + 1):
            try:
                self.store.add_message(message)
                return True
            except TransientStoreError:
                if attempt == self.max_write_retries:
                    break
                self._m_retries.inc()
                self._m_backoff_ms.inc(self.retry_backoff_ms * (2 ** attempt))
        if self.store.contains(message.uid):
            self._m_dup_suppressed.inc()
            return True
        self._m_dead_letters.inc()
        self.dead_letters.append(message)
        if self.tap is not None:
            root = message.root_uid if message.root_uid is not None else message.uid
            self.tap.emit("dead_letter", uid=repr(message.uid), root=repr(root))
        return False

    def _deliver_due(self) -> None:
        """Deliver fault-delayed messages whose due time has passed.

        A delayed message is delivered exactly once — the fault channels
        are not re-rolled, so a finite delay can never become an
        infinite one.
        """
        now = self._now_minutes
        due = [m for eta, m in self._delayed if eta <= now]
        if not due:
            return
        self._delayed = [(eta, m) for eta, m in self._delayed if eta > now]
        for message in due:
            if self._abandoned_roots and self._discard_if_abandoned(message):
                continue
            if self._submit(message) and self.path_timeout_minutes is not None:
                root = message.root_uid
                if root is None:
                    root = message.uid
                if root not in self._root_first_seen:
                    self._root_first_seen[root] = now
        self._m_delivered_late.inc(len(due))
        self.flush()

    def _abandon_expired(self) -> None:
        """Abandon roots whose path has been open longer than the timeout."""
        horizon = self._now_minutes - self.path_timeout_minutes
        expired: List[MessageUid] = []
        for root, first_seen in self._root_first_seen.items():
            if first_seen <= horizon:
                expired.append(root)
            else:
                break  # insertion order is time order
        if not expired:
            return
        # Buffered writes must land before the sweep: a root whose
        # response is still sitting in a shard buffer is completed, not
        # abandoned.
        if self._pipeline is not None and self._pipeline.buffered:
            self._pipeline.flush()
        to_sweep: List[MessageUid] = []
        for root in expired:
            del self._root_first_seen[root]
            if root in self._pending_completion:
                # Completed, just not flushed yet — not abandoned.
                continue
            to_sweep.append(root)
        if not to_sweep:
            return
        abandon_many = getattr(self.store, "abandon_roots", None)
        if abandon_many is not None:
            removed = abandon_many(to_sweep)
        else:
            removed = 0
            for root in to_sweep:
                removed += self.store.abandon_root(root)
        self._m_abandoned.inc(len(to_sweep))
        self._m_abandoned_nodes.inc(removed)
        for root in to_sweep:
            self._abandoned_roots[root] = None
            if self.tap is not None:
                self.tap.emit("path_abandoned", root=repr(root))
        while len(self._abandoned_roots) > self._max_abandoned_roots:
            self._abandoned_roots.pop(next(iter(self._abandoned_roots)))
        # A parked dead letter whose root was just reclaimed must not
        # stay parked: replaying it later could only resurrect the
        # abandoned root, and until then the uid would be accounted as
        # both dead-lettered-pending and abandoned.
        if len(self.dead_letters):
            purged = self.dead_letters.purge_roots(to_sweep)
            if self.tap is not None:
                for message in purged:
                    root = message.root_uid if message.root_uid is not None else message.uid
                    self.tap.emit(
                        "dead_letter_purged", uid=repr(message.uid), root=repr(root)
                    )

    # -- completion --------------------------------------------------------------

    def _mark_complete(self, root: MessageUid) -> None:
        self._pending_completion[root] = None
        self._m_pending.set(len(self._pending_completion))

    def flush(self) -> int:
        """Process all pending completions; return how many paths closed."""
        if self._pipeline is not None and self._pipeline.buffered:
            # Drain buffered writes first so completions they trigger are
            # processed in this flush, not delayed to the next.
            self._pipeline.flush()
        closed = 0
        with self._flush_timer:
            for root in self._pending_completion:
                if self._finalize(root):
                    closed += 1
            self._pending_completion.clear()
            self._m_pending.set(0)
        return closed

    def _finalize(self, root: MessageUid) -> bool:
        if self._root_first_seen:
            self._root_first_seen.pop(root, None)
        completed = self.store.completed_signature(root)
        if completed is None:
            # Root sampled away (e.g. tracing began mid-path); ignore.
            self._m_discarded.inc()
            return False
        request_type, edges = completed
        if self.tap is not None:
            if root in self._abandoned_roots:
                # Unreachable by design (late messages for abandoned
                # roots are discarded before the store sees them); the
                # emission exists so the invariant checker fails loudly
                # if a future code path breaks that guarantee.
                self.tap.emit("root_resurrected", root=repr(root))
            self.tap.emit(
                "path_completed",
                root=repr(root),
                members=tuple(repr(uid) for uid in self.store.graph_members(root)),
            )
        injector = self.fault_injector
        if injector is not None and injector.should_lose_profiler_flush():
            # The path closed but its count never reached the profiler —
            # the causal profile silently under-counts (what the
            # staleness detector must survive).
            self._m_records_lost.inc()
        else:
            signature = signature_from_edges(request_type, edges)
            self.profiler.record(signature, self._now_minutes)
        self._m_completed.inc()
        if self.evict_completed:
            self.store.evict_graph(root)
        return True
