"""Wiring between the runtime, the graph store, and the profiler.

:class:`DirectCausalityTracker` is the "monitoring host" side of DCA:
instrumented components report every (sampled) message they emit; the
tracker stores nodes/edges in the graph store; when a response node
completes a causal graph, the tracker reads the signature the store has
been accumulating incrementally (O(1) in the graph size — no BFS on the
hot path; see :mod:`repro.graphstore.store`), increments the matching
path counter in the profiler, and evicts the graph to bound memory.

Completion is edge-triggered by the insertion of a response node (as in
the paper: the BFS "is triggered at the graph store when the edge
corresponding to [the] last message … is stored") but *processed* at
:meth:`DirectCausalityTracker.flush` time, so that a response arriving
before a sibling branch of the same request does not yield a truncated
path.  :meth:`observe_all` flushes automatically.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.core.paths import signature_from_edges
from repro.graphstore.store import GraphStore
from repro.lang.message import Message, MessageUid
from repro.profiling.profiler import CausalPathProfiler
from repro.telemetry import MetricsRegistry


class DirectCausalityTracker:
    """Consumes sampled messages; produces causal-path counts.

    Parameters
    ----------
    profiler:
        The path profiler to increment on each completed causal graph.
    store:
        The causal-graph store (created here if not supplied).
    evict_completed:
        Whether to remove completed causal graphs from the store
        (production behaviour; tests may disable it to inspect graphs).
    registry:
        Telemetry registry; defaults to the store's, so one simulation's
        components share a single snapshot surface.
    """

    def __init__(
        self,
        profiler: CausalPathProfiler,
        store: Optional[GraphStore] = None,
        evict_completed: bool = True,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.profiler = profiler
        self.store = store if store is not None else GraphStore(registry=registry)
        self.evict_completed = evict_completed
        self.telemetry = registry if registry is not None else self.store.telemetry
        self._m_observed = self.telemetry.counter("tracker.messages_observed")
        self._m_sampled_away = self.telemetry.counter("tracker.messages_sampled_away")
        self._m_completed = self.telemetry.counter("tracker.paths_completed")
        self._m_discarded = self.telemetry.counter("tracker.completions_discarded")
        self._m_pending = self.telemetry.gauge("tracker.pending_completion_depth")
        self._flush_timer = self.telemetry.timer("tracker.flush_seconds")
        self._base_completed = self._m_completed.value
        # Insertion-ordered dict used as a set: completions are processed
        # in arrival order, which is deterministic without sorting.
        self._pending_completion: Dict[MessageUid, None] = {}
        self._now_minutes = 0.0
        # Completion is edge-triggered by response-node insertion.
        self.store.subscribe_path_complete(self._mark_complete)

    @property
    def completed_paths(self) -> int:
        """Causal paths this tracker has closed (registry-backed)."""
        return int(self._m_completed.value - self._base_completed)

    def advance_to(self, time_minutes: float) -> None:
        """Set the profiler timestamp used for subsequent completions."""
        self._now_minutes = float(time_minutes)

    def observe_message(self, message: Message) -> None:
        """Record one sampled message (node + causal edges) in the store.

        Call :meth:`flush` once the batch the message belongs to is fully
        recorded; :meth:`observe_all` does both.
        """
        if not message.sampled:
            self._m_sampled_away.inc()
            return
        self._m_observed.inc()
        self.store.add_message(message)

    def observe_all(self, messages: Iterable[Message]) -> None:
        """Record a batch of messages, then process completed paths.

        Counter updates are batched per call rather than per message.
        """
        observed = 0
        sampled_away = 0
        add_message = self.store.add_message
        for message in messages:
            if message.sampled:
                observed += 1
                add_message(message)
            else:
                sampled_away += 1
        if observed:
            self._m_observed.inc(observed)
        if sampled_away:
            self._m_sampled_away.inc(sampled_away)
        self.flush()

    # -- completion --------------------------------------------------------------

    def _mark_complete(self, root: MessageUid) -> None:
        self._pending_completion[root] = None
        self._m_pending.set(len(self._pending_completion))

    def flush(self) -> int:
        """Process all pending completions; return how many paths closed."""
        closed = 0
        with self._flush_timer:
            for root in self._pending_completion:
                if self._finalize(root):
                    closed += 1
            self._pending_completion.clear()
            self._m_pending.set(0)
        return closed

    def _finalize(self, root: MessageUid) -> bool:
        completed = self.store.completed_signature(root)
        if completed is None:
            # Root sampled away (e.g. tracing began mid-path); ignore.
            self._m_discarded.inc()
            return False
        request_type, edges = completed
        signature = signature_from_edges(request_type, edges)
        self.profiler.record(signature, self._now_minutes)
        self._m_completed.inc()
        if self.evict_completed:
            self.store.evict_graph(root)
        return True
