"""Instrumentation of components per the DCA plan (Fig. 4 of the paper).

"DCA instruments the program to dynamically store information about the
messages that resulted in a write to the variable" — our instrumented
component wraps the provenance-tracking interpreter with exactly the
``V_tr`` variable set, and charges an explicit *instrumentation cost* per
provenance operation.  That cost is what inflates service time and drives
the runtime-overhead results (Fig. 5) and their knock-on effect on agility
(RQ3).

The cost model reflects two empirical properties of the paper's numbers:

* a small *fixed* tracing cost per sampled message (uid generation,
  getInfo, the graph-store write) — this is why DCA-5% still shows ~3%
  overhead rather than 1/20th of DCA-100%'s;
* *amortisation* at high sampling rates (batched graph-store writes),
  which is why DCA-100% overhead (~27–38%) is far below 20× the DCA-5%
  overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.dca import ComponentAnalysis, DCAResult
from repro.errors import AnalysisError
from repro.lang.interpreter import HandlerOutcome, Interpreter, ReplicaState
from repro.lang.ir import Application, Component, LibraryRegistry
from repro.lang.message import Message, UidFactory


@dataclass(frozen=True)
class OverheadModel:
    """Charges instrumentation time for provenance operations.

    Parameters
    ----------
    per_op_ms:
        Cost of one provenance-table store or ``getInfo`` call, in the
        same abstract milliseconds as ``Component.service_cost``.
    fixed_ms:
        Per-sampled-message fixed cost (uid bookkeeping + graph-store
        write of the emitted edges).
    amortization:
        Fraction of the per-op cost saved at 100% sampling via batching;
        effective per-op cost is ``per_op_ms * (1 - amortization * rate)``.
    """

    per_op_ms: float = 0.05
    fixed_ms: float = 0.02
    amortization: float = 0.5

    def cost_ms(self, ops: int, sampling_rate: float) -> float:
        """Instrumentation time for one handled message."""
        if ops <= 0 and self.fixed_ms <= 0:
            return 0.0
        rate = min(1.0, max(0.0, sampling_rate))
        effective = self.per_op_ms * (1.0 - self.amortization * rate)
        return self.fixed_ms + ops * max(0.0, effective)


@dataclass
class InstrumentedOutcome:
    """Handler outcome plus the instrumentation time charged for it."""

    outcome: HandlerOutcome
    instrumentation_ms: float
    base_ms: float

    @property
    def total_ms(self) -> float:
        return self.base_ms + self.instrumentation_ms

    @property
    def overhead_fraction(self) -> float:
        """Instrumentation time relative to the uninstrumented service time."""
        if self.base_ms <= 0:
            return 0.0
        return self.instrumentation_ms / self.base_ms


class InstrumentedComponent:
    """A component re-compiled with DCA instrumentation.

    Executes handlers through a provenance-tracking interpreter restricted
    to the component's ``V_tr``, and reports per-message instrumentation
    cost.  Messages with ``sampled=False`` run the plain (uninstrumented)
    path and incur no cost — the sampling decision is made at the front
    end and inherited along the causal path.
    """

    def __init__(
        self,
        component: Component,
        analysis: ComponentAnalysis,
        library: LibraryRegistry,
        overhead_model: Optional[OverheadModel] = None,
        sampling_rate: float = 1.0,
    ) -> None:
        if analysis.component != component.name:
            raise AnalysisError(
                f"analysis is for component {analysis.component!r}, not {component.name!r}"
            )
        self.component = component
        self.analysis = analysis
        self.sampling_rate = float(sampling_rate)
        self.overhead_model = overhead_model or OverheadModel()
        self._interpreter = Interpreter(component, library, tracked_vars=set(analysis.v_tr))

    def new_state(self) -> ReplicaState:
        """Fresh per-replica state (values + empty provenance table)."""
        return ReplicaState.from_component(self.component)

    def handle(
        self,
        state: ReplicaState,
        message: Message,
        uid_factory: UidFactory,
    ) -> InstrumentedOutcome:
        """Execute the handler for ``message``; charge instrumentation cost."""
        outcome = self._interpreter.handle(state, message, uid_factory)
        if message.sampled:
            cost = self.overhead_model.cost_ms(outcome.instrumentation_ops, self.sampling_rate)
        else:
            cost = 0.0
        return InstrumentedOutcome(
            outcome=outcome,
            instrumentation_ms=cost,
            base_ms=self.component.service_cost,
        )


def instrument_application(
    app: Application,
    dca: DCAResult,
    overhead_model: Optional[OverheadModel] = None,
    sampling_rate: float = 1.0,
) -> Dict[str, InstrumentedComponent]:
    """Instrument every component of ``app`` per the DCA result."""
    out: Dict[str, InstrumentedComponent] = {}
    for name, component in sorted(app.components.items()):
        analysis = dca.per_component.get(name)
        if analysis is None:
            raise AnalysisError(f"DCA result is missing component {name!r}")
        out[name] = InstrumentedComponent(
            component,
            analysis,
            app.library,
            overhead_model=overhead_model,
            sampling_rate=sampling_rate,
        )
    return out
