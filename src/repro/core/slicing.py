"""Static slicing API in the paper's vocabulary (Section IV-A).

Thin, documented wrappers over :class:`repro.lang.dependence.HandlerPDG`
exposing exactly the two slices DCA needs:

* :func:`backward_slice_from_send` — ``S_out``: the state variables that
  influence a given ``send(msgOut)``;
* :func:`forward_slice_from_recv` — ``V_in``: the variables that could be
  written by the execution path from ``recv(msgIn)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List

from repro.errors import AnalysisError
from repro.lang.dependence import HandlerPDG
from repro.lang.ir import Send


@dataclass(frozen=True)
class SendSlice:
    """Backward slice from one send site.

    ``s_out`` is the paper's per-send variable set: state variables whose
    entry value influences whether/what the send emits (data or control).
    """

    component: str
    handler_msg_type: str
    send_msg_type: str
    dest: str
    s_out: FrozenSet[str]
    uses_message: bool


@dataclass(frozen=True)
class RecvSlice:
    """Forward slice from one handler's ``recv``.

    ``v_in`` is every variable the handler may write; ``message_influenced``
    is the subset whose written value is data/control dependent on the
    incoming message.
    """

    component: str
    handler_msg_type: str
    v_in: FrozenSet[str]
    message_influenced: FrozenSet[str]


def backward_slice_from_send(pdg: HandlerPDG, send_node: int) -> SendSlice:
    """``S_out`` for the send statement at CFG node ``send_node``."""
    stmt = pdg.cfg.stmt_of.get(send_node)
    if not isinstance(stmt, Send):
        raise AnalysisError(f"node {send_node} is not a Send statement")
    sl = pdg.backward_slice(send_node)
    return SendSlice(
        component=pdg.component.name,
        handler_msg_type=pdg.handler.msg_type,
        send_msg_type=stmt.msg_type,
        dest=stmt.dest,
        s_out=sl.entry_state_vars,
        uses_message=sl.uses_message,
    )


def all_send_slices(pdg: HandlerPDG) -> List[SendSlice]:
    """Backward slices for every send site of the handler, in program order."""
    return [backward_slice_from_send(pdg, node) for node in pdg.send_sites()]


def forward_slice_from_recv(pdg: HandlerPDG) -> RecvSlice:
    """``V_in`` for the handler: variables writable from ``recv(msgIn)``."""
    state_vars = pdg.component.state_vars()
    return RecvSlice(
        component=pdg.component.name,
        handler_msg_type=pdg.handler.msg_type,
        v_in=frozenset(pdg.written_vars() & state_vars),
        message_influenced=frozenset(pdg.message_written_vars() & state_vars),
    )
