"""Request sampling for DCA (Sections IV-D and RQ4 of the paper).

DCA-100% tracks every external request; DCA-5/10/20% randomly sample.
Sampling must be "uniformly random across the workload", which the paper
achieves by examining the front-end tier: "for x% sampling with k
front-end servers, we randomly chose x/k% of user-requests at each
server".

Reconciling that sentence with this implementation: the paper's "x/k%"
reads as each of the k front ends sampling at rate x/k, but that would
make the *global* traced fraction x/k (each server sees ~1/k of the
traffic and contributes (1/k)·(x/k) of it), not x.  What makes the
global rate come out at x — and what "each server contributes the same
share" requires — is every front end sampling at rate x over its own
slice of the traffic.  :class:`RequestSampler` therefore applies ``rate``
(= x) at every front end, with an independent deterministic RNG per
server; the division by k describes how the *budget* splits across
servers (each contributes x·s_i of the traced traffic for its traffic
share s_i), not the per-server Bernoulli probability.  An earlier
``per_server_budget`` property exposed the literal x/k quotient; it was
unused outside its own test and contradicted the behaviour above, so it
was removed.

The sampling decision is made once, when the external request arrives,
and is inherited by every message on its causal path (a partially traced
path would be unusable for path counting).
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping

from repro.errors import ElasticityError


class RequestSampler:
    """Per-front-end uniform random sampler with a global target rate.

    Parameters
    ----------
    rate:
        Global fraction of external requests to trace, in [0, 1].
    num_front_ends:
        Number of front-end servers ``k``; each gets an independent,
        deterministically seeded RNG so per-server decisions are
        reproducible and uncorrelated.
    seed:
        Base seed for determinism.
    """

    def __init__(self, rate: float, num_front_ends: int = 1, seed: int = 0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ElasticityError(f"sampling rate must be in [0, 1], got {rate}")
        if num_front_ends < 1:
            raise ElasticityError(f"num_front_ends must be >= 1, got {num_front_ends}")
        self.rate = float(rate)
        self.num_front_ends = int(num_front_ends)
        self._rngs: List[random.Random] = [
            random.Random(seed * 1_000_003 + 7919 * i + 1) for i in range(num_front_ends)
        ]
        self.decisions = 0
        self.sampled = 0

    def should_sample(self, front_end_index: int = 0) -> bool:
        """Decide whether the next request at this front end is traced."""
        if not 0 <= front_end_index < self.num_front_ends:
            raise ElasticityError(
                f"front_end_index {front_end_index} out of range [0, {self.num_front_ends})"
            )
        self.decisions += 1
        if self.rate >= 1.0:
            self.sampled += 1
            return True
        if self.rate <= 0.0:
            return False
        hit = self._rngs[front_end_index].random() < self.rate
        if hit:
            self.sampled += 1
        return hit

    def sample_count(self, arrivals: int, front_end_index: int = 0) -> int:
        """Binomial draw: how many of ``arrivals`` requests get traced.

        Used by the mesoscale simulator, which aggregates per-minute
        arrivals instead of iterating requests one by one.
        """
        if arrivals < 0:
            raise ElasticityError(f"arrivals must be >= 0, got {arrivals}")
        if not 0 <= front_end_index < self.num_front_ends:
            raise ElasticityError(
                f"front_end_index {front_end_index} out of range [0, {self.num_front_ends})"
            )
        self.decisions += arrivals
        if self.rate >= 1.0:
            self.sampled += arrivals
            return arrivals
        if self.rate <= 0.0 or arrivals == 0:
            return 0
        rng = self._rngs[front_end_index]
        hits = sum(1 for _ in range(arrivals) if rng.random() < self.rate) if arrivals <= 64 else None
        if hits is None:
            # Normal approximation for large counts keeps the simulator fast
            # while preserving binomial variance (what makes DCA-5% noisier
            # than DCA-10%).
            mean = arrivals * self.rate
            var = arrivals * self.rate * (1.0 - self.rate)
            hits = int(round(rng.gauss(mean, var ** 0.5)))
            hits = max(0, min(arrivals, hits))
        self.sampled += hits
        return hits

    @property
    def observed_rate(self) -> float:
        """Empirical sampling rate so far (0 when no decisions yet)."""
        if self.decisions == 0:
            return 0.0
        return self.sampled / self.decisions


class AdaptiveSamplingController:
    """Closed-loop control of the sampling rate against an overhead budget.

    RQ4 finds a static sweet spot (~10%) for the paper's workloads, but
    the right rate depends on the instruction mix, which shifts with the
    hot paths.  This extension (the natural "future work" of RQ4) holds
    the *measured* instrumentation overhead at a target by multiplicative
    feedback on the rate, instead of pinning the rate itself.

    The controller is deliberately slow (bounded step per update) so the
    profiler's window statistics stay interpretable.
    """

    def __init__(
        self,
        target_overhead: float = 0.05,
        min_rate: float = 0.01,
        max_rate: float = 1.0,
        gain: float = 0.5,
        max_step_ratio: float = 1.5,
    ) -> None:
        if not 0.0 < target_overhead < 1.0:
            raise ElasticityError(f"target_overhead must be in (0, 1), got {target_overhead}")
        if not 0.0 < min_rate <= max_rate <= 1.0:
            raise ElasticityError(f"invalid rate bounds [{min_rate}, {max_rate}]")
        if not 0.0 < gain <= 1.0:
            raise ElasticityError(f"gain must be in (0, 1], got {gain}")
        if max_step_ratio <= 1.0:
            raise ElasticityError(f"max_step_ratio must be > 1, got {max_step_ratio}")
        self.target_overhead = float(target_overhead)
        self.min_rate = float(min_rate)
        self.max_rate = float(max_rate)
        self.gain = float(gain)
        self.max_step_ratio = float(max_step_ratio)
        self.updates = 0

    def update(self, current_rate: float, measured_overhead: float) -> float:
        """Return the next sampling rate given the last interval's overhead."""
        if not 0.0 < current_rate <= 1.0:
            raise ElasticityError(f"current_rate must be in (0, 1], got {current_rate}")
        if measured_overhead < 0:
            raise ElasticityError(f"measured_overhead must be >= 0, got {measured_overhead}")
        self.updates += 1
        if measured_overhead <= 0:
            # No overhead signal yet (cold start): probe upward gently.
            proposed = current_rate * self.max_step_ratio
        else:
            # Overhead is ≈ proportional to the rate: the fixed point is
            # rate × target/measured; the gain damps the approach.
            correction = (self.target_overhead / measured_overhead) ** self.gain
            proposed = current_rate * correction
        lo = current_rate / self.max_step_ratio
        hi = current_rate * self.max_step_ratio
        proposed = max(lo, min(hi, proposed))
        return max(self.min_rate, min(self.max_rate, proposed))


class PreferentialPathSampler:
    """Stratified sampling: rare request types get higher sampling rates.

    Built on the insight of preferential path profiling (Vaswani et al.,
    POPL'07, cited in Section VI): the statistic that starves first under
    uniform sampling is the *rare* path's count.  Given a global tracing
    budget ``b`` (expected fraction of all requests traced), allocate
    per-type rates ``r_t ∝ 1/√s_t`` (Neyman-style) subject to
    ``Σ_t s_t · r_t = b`` and ``r_t ≤ 1``, where ``s_t`` is the type's
    observed traffic share.  Per-type sample counts then scale with
    ``√s_t`` instead of ``s_t`` — the rare paths keep usable counts.
    """

    def __init__(self, budget_rate: float, num_front_ends: int = 1, seed: int = 0) -> None:
        if not 0.0 < budget_rate <= 1.0:
            raise ElasticityError(f"budget_rate must be in (0, 1], got {budget_rate}")
        self.budget_rate = float(budget_rate)
        self.num_front_ends = int(num_front_ends)
        self._seed = seed
        self._samplers: Dict[str, RequestSampler] = {}
        self._rates: Dict[str, float] = {}

    def update_rates(self, type_shares: Mapping[str, float]) -> Dict[str, float]:
        """Recompute per-type rates from observed traffic shares."""
        shares = {t: s for t, s in type_shares.items() if s > 0}
        if not shares:
            return dict(self._rates)
        total = sum(shares.values())
        shares = {t: s / total for t, s in shares.items()}
        # r_t = k / sqrt(s_t), with k set by the budget; cap at 1 and
        # redistribute the clipped budget over the uncapped types.
        uncapped = dict(shares)
        budget = self.budget_rate
        rates: Dict[str, float] = {}
        for _ in range(len(shares) + 1):
            denom = sum(s ** 0.5 for s in uncapped.values())
            if denom <= 0 or budget <= 0:
                break
            k = budget / denom
            overflow = {t for t, s in uncapped.items() if k / (s ** 0.5) > 1.0}
            if not overflow:
                for t, s in uncapped.items():
                    rates[t] = k / (s ** 0.5)
                break
            for t in overflow:
                rates[t] = 1.0
                budget -= uncapped.pop(t)
        for t in shares:
            rates.setdefault(t, self.budget_rate)
        self._rates = rates
        for t, rate in rates.items():
            sampler = self._samplers.get(t)
            if sampler is None or abs(sampler.rate - rate) > 1e-12:
                self._samplers[t] = RequestSampler(
                    min(1.0, rate),
                    num_front_ends=self.num_front_ends,
                    seed=self._seed + (zlib_crc(t) % 65_536),
                )
        return dict(rates)

    def rate_for(self, request_type: str) -> float:
        """Current rate for a type (the flat budget before any update)."""
        return self._rates.get(request_type, self.budget_rate)

    def sample_count(self, request_type: str, arrivals: int, front_end_index: int = 0) -> int:
        """How many of ``arrivals`` requests of this type get traced."""
        sampler = self._samplers.get(request_type)
        if sampler is None:
            sampler = RequestSampler(
                self.budget_rate,
                num_front_ends=self.num_front_ends,
                seed=self._seed + (zlib_crc(request_type) % 65_536),
            )
            self._samplers[request_type] = sampler
        return sampler.sample_count(arrivals, front_end_index=front_end_index)

    def effective_budget(self, type_shares: Mapping[str, float]) -> float:
        """Σ s_t · r_t for the current rates (should ≈ the budget)."""
        total = sum(type_shares.values())
        if total <= 0:
            return 0.0
        return sum(
            (s / total) * self._rates.get(t, self.budget_rate)
            for t, s in type_shares.items()
        )


def zlib_crc(text: str) -> int:
    """Stable cross-process hash for seeding per-type samplers."""
    import zlib

    return zlib.crc32(text.encode("utf-8"))
