"""Selective scaling of *parts* of components (Section II-A of the paper).

The paper's core promise is "selective elastic scaling of (parts of)
components along hot causal paths": a hurricane spikes specific search
terms, which load *specific shards* of the query-index component, and
"resources added are not going where they are needed most" if the whole
component is scaled uniformly.

This module provides the shard-level half of that story:

* :class:`ShardProfile` — per-(component, shard) message counts built
  from replica-routed traces (:mod:`repro.sim.replicas`), the shard
  analogue of the causal-path profile;
* :func:`shard_weights` — normalised per-shard causal weights;
* :func:`selective_shard_allocation` — apportion a component's node
  budget across its shards proportionally to those weights;
* :func:`shard_allocation_agility` — the SPEC-style excess+shortage of a
  per-shard allocation against per-shard demand, used to compare
  selective vs uniform shard scaling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.errors import ElasticityError
from repro.sim.replicas import ReplicatedTrace


@dataclass
class ShardProfile:
    """Sliding tally of messages per (component, shard index).

    Fed from :class:`~repro.sim.replicas.ReplicatedTrace` objects (each
    one request, traced through hash-partitioned replicas); the counts
    play the same role per shard that causal-path counts play per path.
    """

    counts: Dict[str, List[int]] = field(default_factory=dict)
    requests_observed: int = 0

    def observe(self, trace: ReplicatedTrace, weight: int = 1) -> None:
        """Fold one traced request into the profile."""
        if weight < 1:
            raise ElasticityError(f"weight must be >= 1, got {weight}")
        for component, per_shard in trace.replica_messages.items():
            existing = self.counts.setdefault(component, [0] * len(per_shard))
            if len(existing) != len(per_shard):
                raise ElasticityError(
                    f"shard count changed for {component!r}: "
                    f"{len(existing)} != {len(per_shard)}"
                )
            for idx, count in enumerate(per_shard):
                existing[idx] += count * weight
        self.requests_observed += weight

    def component_total(self, component: str) -> int:
        return sum(self.counts.get(component, ()))


def shard_weights(profile: ShardProfile, component: str) -> List[float]:
    """Normalised per-shard weights for one component.

    A uniform vector when the component has seen no traffic (cold start
    degrades to uniform scaling, like the path-level manager).
    """
    counts = profile.counts.get(component)
    if not counts:
        raise ElasticityError(f"no shard profile for component {component!r}")
    total = sum(counts)
    if total == 0:
        return [1.0 / len(counts)] * len(counts)
    return [c / total for c in counts]


def selective_shard_allocation(
    total_nodes: int,
    weights: Iterable[float],
    min_per_shard: int = 1,
) -> List[int]:
    """Split a component's node budget across shards by causal weight.

    Largest-remainder rounding keeps the total exactly ``total_nodes``
    (subject to the per-shard minimum).
    """
    weight_list = list(weights)
    if total_nodes < 0:
        raise ElasticityError(f"total_nodes must be >= 0, got {total_nodes}")
    if not weight_list or any(w < 0 for w in weight_list):
        raise ElasticityError("weights must be a non-empty list of non-negatives")
    n = len(weight_list)
    floor_total = min_per_shard * n
    budget = max(total_nodes, floor_total)
    weight_sum = sum(weight_list)
    if weight_sum <= 0:
        weight_list = [1.0] * n
        weight_sum = float(n)
    spare = budget - floor_total
    raw = [min_per_shard + spare * w / weight_sum for w in weight_list]
    alloc = [int(math.floor(x)) for x in raw]
    remainders = sorted(
        range(n), key=lambda i: (raw[i] - alloc[i], weight_list[i]), reverse=True
    )
    shortfall = budget - sum(alloc)
    for i in range(shortfall):
        alloc[remainders[i % n]] += 1
    return alloc


def uniform_shard_allocation(total_nodes: int, num_shards: int, min_per_shard: int = 1) -> List[int]:
    """The baseline: spread the budget evenly across shards."""
    if num_shards < 1:
        raise ElasticityError(f"num_shards must be >= 1, got {num_shards}")
    return selective_shard_allocation(total_nodes, [1.0] * num_shards, min_per_shard)


def shard_allocation_agility(
    allocation: Iterable[int],
    demand_per_shard: Iterable[float],
    node_capacity: float,
    target_utilization: float = 0.75,
) -> Tuple[float, float]:
    """(excess, shortage) of a per-shard allocation, in node units.

    The per-shard requirement is ``ceil(demand / (capacity · ρ_target))``
    — the same SPEC-style accounting the component-level Agility metric
    uses, applied one level down.
    """
    if node_capacity <= 0:
        raise ElasticityError(f"node_capacity must be > 0, got {node_capacity}")
    if not 0 < target_utilization <= 1:
        raise ElasticityError(
            f"target_utilization must be in (0, 1], got {target_utilization}"
        )
    excess = 0.0
    shortage = 0.0
    for nodes, demand in zip(allocation, demand_per_shard):
        if demand < 0 or nodes < 0:
            raise ElasticityError("allocation and demand must be >= 0")
        required = math.ceil(demand / (node_capacity * target_utilization)) if demand > 0 else 0
        if nodes > required:
            excess += nodes - required
        else:
            shortage += required - nodes
    return excess, shortage
