"""The DCA elasticity manager (Section IV-C of the paper).

Decision procedure, per monitoring interval:

1. Read recent causal-path counts from the profiler and normalise them
   into causal probabilities; derive per-component causal weights ``w_c``
   (the probability that an external request touches the component).
   When the recent horizon holds too few sampled paths to be trusted, the
   manager falls back to the full 60-minute window — the mechanism behind
   RQ4's sampling sweet spot.
2. Size each component directly from its causally predicted message
   frequency: ``target_c = w_c · λ_forecast · κ_c / (capacity · ρ_target)``,
   where ``κ_c`` (CPU-ms per weighted request) is learned *slowly* from
   observable utilisation, so it cannot chase profile noise and mask the
   profile-quality effects the paper measures.  Instrumentation overhead
   enters naturally: the instrumented app is slower, κ absorbs it, and the
   manager provisions for it (RQ3).
3. Apply slow utilisation-band corrections (the S1/S4 monitoring
   feedback): saturation triggers an immediate jump, sustained
   under-utilisation a proportional release.
4. Enforce the paper's linear-regression capacity model as an
   overall-requirement floor; any deficit is apportioned by causal
   probability ("we use causal probability for proportional allocation of
   resources").
5. Charge the tracking infrastructure (graph-store + profiler hosts,
   which scale with the sampled message volume) as provisioned capacity.

Components flagged as *serialisation suspects* by the structural rule of
Section II-C (many causal paths in, few out to other components) are
never scaled beyond their configured ceiling: "elastic scaling of said
component can be prevented because it is unlikely to change application
performance".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Set

from repro.autoscale.manager import (
    ClusterObservation,
    ElasticityManager,
    ScalingDecision,
    clamp_targets,
)
from repro.core.probability import causal_probabilities, component_weights
from repro.core.regression import LinearCapacityModel, MachineSpec
from repro.errors import ElasticityError
from repro.lang.ir import CLIENT, Application
from repro.profiling.profiler import CausalPathProfiler
from repro.telemetry import MetricsRegistry


def detect_serialization_suspects(app: Application, in_out_ratio: float = 3.0) -> Set[str]:
    """Structural rule of Section II-C: components with many architectural
    in-edges but few out-edges to *other components* are likely serialised
    (lock-contended), and scaling them out is unlikely to help.
    """
    in_degree: Dict[str, int] = {name: 0 for name in app.components}
    out_degree: Dict[str, int] = {name: 0 for name in app.components}
    for src, _, dest in app.architectural_edges():
        if dest != CLIENT and dest in in_degree:
            in_degree[dest] += 1
        if dest != CLIENT and src in out_degree:
            out_degree[src] += 1
    suspects: Set[str] = set()
    for name in app.components:
        if in_degree[name] >= max(2.0, in_out_ratio * max(1, out_degree[name])) and out_degree[name] == 0:
            suspects.add(name)
    return suspects


@dataclass(frozen=True)
class StalenessPolicy:
    """When to distrust the causal profile and fall back to reactive sizing.

    The causal profile degrades silently: dropped messages, dead-lettered
    store writes, or lost profiler flushes simply make the recent window
    *sparse*, and the weights computed from it swing wildly.  The policy
    defines "too sparse / too old" and adds hysteresis (engage after
    ``stale_after_intervals`` bad intervals, re-engage the causal model
    only after ``fresh_after_intervals`` good ones) so the manager does
    not flap between models at the edge of an outage.
    """

    min_recent_samples: int = 40
    recent_horizon_minutes: float = 5.0
    max_record_age_minutes: Optional[float] = None
    stale_after_intervals: int = 2
    fresh_after_intervals: int = 2
    #: When set (``"topk"`` or ``"component"``), the detector also drops
    #: the profiler to that precision tier while the fallback is engaged
    #: and restores ``exact`` tracking on release — shedding profiler
    #: cost exactly when the profile is distrusted anyway.  ``None``
    #: keeps the profiler's mode untouched.
    downshift_mode: Optional[str] = None

    def __post_init__(self) -> None:
        if self.min_recent_samples < 1:
            raise ElasticityError(
                f"min_recent_samples must be >= 1, got {self.min_recent_samples}"
            )
        if self.recent_horizon_minutes <= 0:
            raise ElasticityError("recent_horizon_minutes must be positive")
        if self.max_record_age_minutes is not None and self.max_record_age_minutes <= 0:
            raise ElasticityError("max_record_age_minutes must be positive")
        if self.stale_after_intervals < 1 or self.fresh_after_intervals < 1:
            raise ElasticityError("hysteresis interval counts must be >= 1")
        if self.downshift_mode is not None and self.downshift_mode not in ("topk", "component"):
            raise ElasticityError(
                f"downshift_mode must be 'topk' or 'component', got {self.downshift_mode!r}"
            )


class ProfileStalenessDetector:
    """Hysteretic health check over the profiler's recent sample flow.

    :meth:`update` is called once per monitoring interval and returns
    whether the regression/utilisation fallback is currently engaged.
    State transitions and per-interval health are all counted, so a
    fault scenario can assert the fallback engaged within a bounded
    number of intervals of the outage and released after recovery.
    """

    def __init__(
        self,
        profiler: CausalPathProfiler,
        policy: StalenessPolicy,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.profiler = profiler
        self.policy = policy
        self.telemetry = registry if registry is not None else profiler.telemetry
        self.engaged = False
        #: Precision tier the profiler is dropped to while engaged
        #: (``None`` = never touch the profiler's mode).  The event
        #: engine checks this when deciding replay eligibility.
        self.downshift_mode = policy.downshift_mode
        self._downshifted = False
        self._stale_streak = 0
        self._fresh_streak = 0
        self._m_stale = self.telemetry.counter("elasticity.stale_intervals")
        self._m_engagements = self.telemetry.counter("elasticity.fallback_engagements")
        self._m_recoveries = self.telemetry.counter("elasticity.fallback_recoveries")
        self._m_active = self.telemetry.gauge("elasticity.fallback_active")
        self._m_downshifts = self.telemetry.counter("elasticity.precision_downshifts")
        self._m_restores = self.telemetry.counter("elasticity.precision_restores")
        self._m_active.set(0.0)
        #: Optional :class:`~repro.sim.tap.SimTap`; when set, every
        #: :meth:`update` emits one ``staleness`` event so the chaos
        #: invariant checker can bound the re-engagement lag.  Emit-only.
        self.tap = None

    def update(self, now_minutes: float) -> bool:
        policy = self.policy
        # The exact scalar sample flow — maintained in every profiler
        # precision mode, so downshifting never blinds the detector.
        recent_total = self.profiler.sample_total_between(
            now_minutes - policy.recent_horizon_minutes, now_minutes
        )
        sparse = recent_total < policy.min_recent_samples
        too_old = False
        if policy.max_record_age_minutes is not None:
            last = self.profiler.last_record_minutes
            too_old = last is None or now_minutes - last > policy.max_record_age_minutes
        if sparse or too_old:
            self._m_stale.inc()
            self._stale_streak += 1
            self._fresh_streak = 0
            if not self.engaged and self._stale_streak >= policy.stale_after_intervals:
                self.engaged = True
                self._m_engagements.inc()
                self._maybe_downshift()
        else:
            self._fresh_streak += 1
            self._stale_streak = 0
            if self.engaged and self._fresh_streak >= policy.fresh_after_intervals:
                self.engaged = False
                self._m_recoveries.inc()
                self._maybe_restore()
        self._m_active.set(1.0 if self.engaged else 0.0)
        if self.tap is not None:
            self.tap.emit(
                "staleness", healthy=not (sparse or too_old), engaged=self.engaged
            )
        return self.engaged

    def _maybe_downshift(self) -> None:
        if self.downshift_mode is None or self._downshifted:
            return
        if self.profiler.mode == "exact":
            self.profiler.set_mode(self.downshift_mode)
            self._downshifted = True
            self._m_downshifts.inc()

    def _maybe_restore(self) -> None:
        if self._downshifted:
            self.profiler.set_mode("exact")
            self._downshifted = False
            self._m_restores.inc()


@dataclass
class DCAManagerConfig:
    """Tunables of the DCA elasticity manager."""

    sampling_rate: float = 0.10
    mix_horizon_minutes: float = 2.0
    target_utilization: float = 0.73
    forecast_gain: float = 1.5
    kappa_alpha: float = 0.04
    max_forecast_ratio: float = 1.6
    band_high: float = 0.84
    band_low: float = 0.72
    emergency_utilization: float = 0.95
    below_band_patience: int = 2
    infra_msgs_per_node_per_min: float = 2_500.0
    serial_node_cap: int = 5
    min_mix_samples: int = 70
    #: When set, the manager runs a :class:`ProfileStalenessDetector` and
    #: ignores causal weights (pure regression/utilisation sizing) while
    #: the fallback is engaged.  ``None`` (the default) preserves the
    #: paper's baseline behaviour: the causal model is always trusted.
    staleness: Optional[StalenessPolicy] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.sampling_rate <= 1.0:
            raise ElasticityError(f"sampling_rate must be in [0, 1], got {self.sampling_rate}")
        if not 0.0 < self.target_utilization < 1.0:
            raise ElasticityError(
                f"target_utilization must be in (0, 1), got {self.target_utilization}"
            )
        if self.mix_horizon_minutes <= 0:
            raise ElasticityError("mix_horizon_minutes must be positive")


class DCAElasticityManager(ElasticityManager):
    """Causal-probability-driven proportional autoscaler."""

    visibility = "paths"

    def __init__(
        self,
        profiler: CausalPathProfiler,
        machine: MachineSpec,
        config: Optional[DCAManagerConfig] = None,
        capacity_model: Optional[LinearCapacityModel] = None,
        serialization_suspects: Optional[Set[str]] = None,
        avg_messages_per_request: float = 8.0,
    ) -> None:
        self.profiler = profiler
        self.machine = machine
        self.config = config or DCAManagerConfig()
        self.capacity_model = capacity_model or LinearCapacityModel()
        self.serialization_suspects = set(serialization_suspects or ())
        self.avg_messages_per_request = float(avg_messages_per_request)
        self.name = f"DCA-{int(round(self.config.sampling_rate * 100))}%"
        self._below_count: Dict[str, int] = {}
        self._kappa: Dict[str, float] = {}
        self._prev_arrivals: Optional[float] = None
        self.staleness_detector = (
            ProfileStalenessDetector(profiler, self.config.staleness)
            if self.config.staleness is not None
            else None
        )

    # -- decision ---------------------------------------------------------------

    def decide(self, observation: ClusterObservation) -> ScalingDecision:
        """The paper's Section IV-C procedure, per interval.

        Causal probability predicts each component's message frequency as
        ``w_c · λ`` (the probability an external request touches the
        component, times the external rate).  A slowly learned
        nodes-per-weighted-request factor ``κ_c`` converts that frequency
        into machines, so the allocation is driven by the *causal
        profile*: a fresh profile tracks hot-path shifts immediately,
        while a stale one (low sampling, RQ4) mis-sizes every component
        until the band corrections — the slow S1/S4 monitoring feedback —
        catch up.  The linear-regression model supplies an
        overall-requirement floor whose deficit is apportioned by causal
        probability.
        """
        cfg = self.config
        now = observation.time_minutes
        if self.staleness_detector is not None and self.staleness_detector.update(now):
            # Profile too sparse/old to trust (e.g. a monitoring outage):
            # run pure regression/utilisation sizing.  Empty weights send
            # every component down the hold-current-allocation branch, let
            # the utilisation bands steer, and make the LR capacity floor
            # apportion its deficit uniformly; κ learning freezes so the
            # causal model resumes from its pre-outage calibration once
            # the detector releases.
            weights: Dict[str, float] = {}
        else:
            weights = self._current_weights(now, observation)
        arrivals = observation.external_arrivals_per_min
        forecast = self._forecast_arrivals(arrivals)
        self._learn_kappa(observation, weights)

        targets: Dict[str, int] = {}
        for comp, cobs in observation.components.items():
            alloc = max(1, cobs.nodes + cobs.pending_nodes)
            w = weights.get(comp, 0.0)
            kappa = self._kappa.get(comp)
            if kappa is None or w <= 0:
                target = float(alloc)
            else:
                demand_ms = w * forecast * kappa
                target = demand_ms / (
                    observation.machine.capacity_ms_per_minute * cfg.target_utilization
                )
            util = cobs.utilization
            if util > cfg.emergency_utilization:
                # Saturated: jump straight to the utilisation-implied size.
                target = max(target, alloc * util / cfg.target_utilization)
                self._below_count[comp] = 0
            elif util > cfg.band_high:
                target = max(target, alloc + max(1.0, math.ceil(alloc * 0.10)))
                self._below_count[comp] = 0
            elif util < cfg.band_low:
                # Only release capacity after sustained under-utilisation;
                # a single quiet interval may be noise.  The release is
                # proportional: shrink toward the size that puts
                # utilisation back at the bottom of the band.
                count = self._below_count.get(comp, 0) + 1
                self._below_count[comp] = count
                if count >= cfg.below_band_patience:
                    bound = max(1.0, round(alloc * util / cfg.band_low))
                    target = min(target, bound)
            else:
                self._below_count[comp] = 0
            targets[comp] = max(1, int(round(target)))

        targets = self._apply_capacity_floor(targets, weights, observation, forecast)
        targets = self._apply_serialization_caps(targets, observation)
        targets = clamp_targets(targets)

        infra = self._infrastructure_nodes(forecast)
        return ScalingDecision(targets=targets, infrastructure_nodes=infra)

    def _learn_kappa(self, observation: ClusterObservation, weights: Mapping[str, float]) -> None:
        """Slowly learn κ_c: CPU-ms of component work per weighted request.

        The learning rate is deliberately low — κ is a property of the
        *code* (how much work one request induces at the component), not
        of the workload, so it must not chase profile noise; if it did,
        the κ estimate would silently compensate for a stale or noisy
        causal profile and mask exactly the effect RQ4 measures.
        """
        arrivals = observation.external_arrivals_per_min
        if arrivals <= 0:
            return
        alpha = self.config.kappa_alpha
        for comp, cobs in observation.components.items():
            w = weights.get(comp, 0.0)
            if w <= 1e-6:
                continue
            demand_ms = cobs.utilization * cobs.nodes * observation.machine.capacity_ms_per_minute
            sample = demand_ms / (arrivals * w)
            prev = self._kappa.get(comp)
            self._kappa[comp] = sample if prev is None else (1 - alpha) * prev + alpha * sample

    def on_interval_end(self, observation: ClusterObservation) -> None:
        """Train the capacity model with this interval's observed need."""
        needed = self._reactive_total(observation)
        self.capacity_model.observe(
            machine=observation.machine,
            workload=observation.external_arrivals_per_min,
            throughput=observation.app_throughput_per_min,
            latency_ms=observation.app_latency_ms,
            machines_needed=needed,
        )
        self._prev_arrivals = observation.external_arrivals_per_min

    # -- pieces ------------------------------------------------------------------

    def _current_weights(self, now: float, observation: ClusterObservation) -> Dict[str, float]:
        if getattr(self.profiler, "mode", "exact") == "component":
            # Cheapest precision tier: the profiler already collapsed
            # counts to per-component touch fractions — exactly the w_c
            # this method derives from per-path causal probabilities, at
            # component (not path) resolution.  Estimates carry the same
            # ±ε contract as topk counts (see profiling.sketches).
            weights = self.profiler.component_weight_estimates(now)
            if not weights:
                return {comp: 1.0 for comp in observation.components}
            return weights
        counts = self.profiler.counts_between(now - self.config.mix_horizon_minutes, now)
        if sum(counts.values()) < self.config.min_mix_samples:
            # Too few sampled paths in the recent horizon to estimate the
            # mix with any confidence — fall back to the full
            # causal-probability window.  This is the mechanism behind
            # RQ4's sweet spot: at 5% sampling the recent horizon rarely
            # clears the confidence bar, so the manager works from a
            # stale (up to window-length old) picture of the workload and
            # lags every hot-path shift, while at 10% it usually has
            # enough fresh samples.
            counts = self.profiler.counts(now)
        probs = causal_probabilities(counts)
        weights = component_weights(probs, self.profiler.known_paths())
        if not weights:
            # Cold start: no completed paths yet; treat all components as
            # equally touched so allocation degrades to uniform.
            return {comp: 1.0 for comp in observation.components}
        return weights

    def _forecast_arrivals(self, arrivals: float) -> float:
        cfg = self.config
        if self._prev_arrivals is None:
            return arrivals
        trend = arrivals - self._prev_arrivals
        forecast = arrivals + cfg.forecast_gain * max(0.0, trend)
        return min(forecast, cfg.max_forecast_ratio * max(arrivals, 1e-9))

    def _reactive_total(self, observation: ClusterObservation) -> float:
        total = 0.0
        for obs in observation.components.values():
            demand_ms = obs.utilization * obs.nodes * observation.machine.capacity_ms_per_minute
            total += demand_ms / (
                observation.machine.capacity_ms_per_minute * self.config.target_utilization
            )
        return total

    def _predict_total_nodes(self, observation: ClusterObservation, forecast: float) -> float:
        reactive = self._reactive_total(observation)
        if not self.capacity_model.ready():
            return max(reactive, 1.0)
        predicted = self.capacity_model.predict(
            machine=observation.machine,
            workload=forecast,
            throughput=observation.app_throughput_per_min,
            latency_ms=observation.app_latency_ms,
        )
        # The regression extrapolates to the forecast workload; the reactive
        # estimate is a floor so the model can never starve the app.
        return max(predicted, reactive, 1.0)

    def _apply_capacity_floor(
        self,
        targets: Dict[str, int],
        weights: Mapping[str, float],
        observation: ClusterObservation,
        forecast: float,
    ) -> Dict[str, int]:
        """LR-model overall-requirement floor, apportioned causally.

        "Once a decision is made to increase … the amount of resources
        available to the application, we use causal probability for
        proportional allocation of resources."
        """
        if not self.capacity_model.ready():
            return targets
        total_pred = self._predict_total_nodes(observation, forecast)
        current_total = sum(targets.values())
        if current_total >= 0.85 * total_pred:
            return targets
        deficit = total_pred - current_total
        weight_sum = sum(weights.get(comp, 0.0) for comp in targets)
        out = dict(targets)
        if weight_sum <= 0:
            bump = deficit / max(1, len(targets))
            for comp in out:
                out[comp] += max(0, int(round(bump)))
            return out
        for comp in out:
            share = weights.get(comp, 0.0) / weight_sum
            out[comp] += max(0, int(round(deficit * share)))
        return out

    def _apply_serialization_caps(
        self,
        targets: Dict[str, int],
        observation: ClusterObservation,
    ) -> Dict[str, int]:
        capped = dict(targets)
        for comp in self.serialization_suspects:
            if comp in capped:
                capped[comp] = min(capped[comp], self.config.serial_node_cap)
        return capped

    def _infrastructure_nodes(self, forecast_arrivals: float) -> int:
        """Graph-store + profiler hosts, sized by sampled message volume."""
        rate = self.config.sampling_rate
        if rate <= 0:
            return 0
        sampled_msgs = forecast_arrivals * rate * self.avg_messages_per_request
        return 1 + int(math.ceil(sampled_msgs / self.config.infra_msgs_per_node_per_min))
