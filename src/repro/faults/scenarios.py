"""Named, scripted fault scenarios.

These are the shared vocabulary of the robustness story: the ``repro
faults`` CLI runs them, the fault-matrix benchmark sweeps them, and the
recovery tests assert on their telemetry.  Each scenario is a factory
``seed -> FaultPlan`` so runs stay deterministic per seed while the
*shape* of the fault (rates, windows, crash schedule) stays fixed.

Windows are sized for short (~40–60 minute) runs: faults switch on after
the pipeline has warmed up and switch off with enough run left to watch
the recovery mechanisms re-converge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.errors import FaultPlanError
from repro.faults.plan import FaultPlan, NodeCrash


@dataclass(frozen=True)
class FaultScenario:
    """A named fault shape with a human-readable description."""

    name: str
    description: str
    factory: Callable[[int], FaultPlan]

    def plan(self, seed: int = 0) -> FaultPlan:
        return self.factory(seed)


def _store_brownout(seed: int) -> FaultPlan:
    # Heavy but transient write failures: retries absorb most of it,
    # the rest dead-letters; the tracker must never crash.
    return FaultPlan(
        seed=seed,
        store_write_failure_rate=0.35,
        start_minute=10.0,
        end_minute=25.0,
    )


def _lossy_network(seed: int) -> FaultPlan:
    # Dropped/duplicated/delayed messages and partial traces: paths stop
    # completing, partial graphs must be abandoned by timeout and raw
    # dangling edges repaired, not accumulated.
    return FaultPlan(
        seed=seed,
        message_drop_rate=0.25,
        message_duplicate_rate=0.05,
        message_delay_rate=0.10,
        message_delay_minutes=2.0,
        edge_loss_rate=0.15,
        start_minute=10.0,
        end_minute=25.0,
    )


def _profile_outage(seed: int) -> FaultPlan:
    # Total loss of sampled traffic for a stretch: the profiler's recent
    # window empties, the DCA manager must fall back to the
    # regression/utilisation model and re-engage once paths flow again.
    return FaultPlan(
        seed=seed,
        message_drop_rate=1.0,
        start_minute=12.0,
        end_minute=28.0,
    )


def _node_churn(seed: int) -> FaultPlan:
    # Deterministic crash schedule on top of the pipeline: capacity is
    # lost instantly and only monitoring signals reveal it.
    return FaultPlan(
        seed=seed,
        node_crashes=(
            NodeCrash(minute=8.0, component="*", count=2),
            NodeCrash(minute=15.0, component="*", count=1),
            NodeCrash(minute=22.0, component="*", count=2),
        ),
    )


def _chaos(seed: int) -> FaultPlan:
    # Everything at once, at moderate rates: the integration smoke test.
    return FaultPlan(
        seed=seed,
        message_drop_rate=0.10,
        message_duplicate_rate=0.05,
        message_delay_rate=0.05,
        edge_loss_rate=0.05,
        store_write_failure_rate=0.15,
        profiler_flush_loss_rate=0.10,
        start_minute=8.0,
        end_minute=30.0,
    )


FAULT_SCENARIOS: Mapping[str, FaultScenario] = {
    s.name: s
    for s in (
        FaultScenario(
            "store-brownout",
            "transient graph-store write failures (retry + dead-letter path)",
            _store_brownout,
        ),
        FaultScenario(
            "lossy-network",
            "message drop/duplication/delay + partial traces (abandonment + repair)",
            _lossy_network,
        ),
        FaultScenario(
            "profile-outage",
            "total sampled-traffic loss (staleness fallback + re-engagement)",
            _profile_outage,
        ),
        FaultScenario(
            "node-churn",
            "scheduled node crashes (capacity loss visible only via monitoring)",
            _node_churn,
        ),
        FaultScenario(
            "chaos",
            "all fault channels at moderate rates",
            _chaos,
        ),
    )
}


def build_fault_plan(name: str, seed: int = 0) -> FaultPlan:
    """Look up a named scenario and instantiate its plan for ``seed``."""
    scenario = FAULT_SCENARIOS.get(name)
    if scenario is None:
        raise FaultPlanError(
            f"unknown fault scenario {name!r}; choose from {sorted(FAULT_SCENARIOS)}"
        )
    return scenario.plan(seed)
