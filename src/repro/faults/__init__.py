"""Deterministic fault injection for the DCA pipeline.

The paper's elasticity mechanisms assume a well-behaved substrate:
messages arrive once, graph-store writes succeed, the profiler sees
every completed path.  Real deployments violate all three — components
are replicated *because* nodes fail (Section II-A), and RQ4 shows the
causal profile must degrade gracefully when samples go missing.  This
package makes that half of the story testable:

* :class:`~repro.faults.plan.FaultPlan` — a declarative, seeded
  description of what misbehaves and when (message drop/duplication/
  delay, tracker edge loss, graph-store write failures, profiler-flush
  loss, scheduled node crashes);
* :class:`~repro.faults.injector.FaultInjector` — the runtime object the
  hook points consult; every decision comes from per-channel seeded RNGs
  so a scenario replays identically under the same seed;
* :mod:`~repro.faults.scenarios` — named, scripted scenarios the CLI
  (``repro faults``), the robustness benchmark, and the tests share.

The recovery mechanisms the faults exercise live with the components
they protect: retry-with-backoff and dead-lettering in the tracker,
path-abandonment timeouts in the tracker, dangling-edge repair in the
graph store, and the profile-staleness fallback in the DCA manager.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, NodeCrash
from repro.faults.scenarios import FAULT_SCENARIOS, build_fault_plan

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "NodeCrash",
    "FAULT_SCENARIOS",
    "build_fault_plan",
]
