"""The runtime fault injector the hook points consult.

One injector is shared by every layer of a simulation (tracker, graph
store, engine).  Each fault channel draws from its own deterministically
seeded RNG, so adding a new channel (or disabling one) never perturbs
the decision stream of the others — fault matrices stay comparable
across configurations.

Every fired fault is counted through the telemetry registry under
``faults.*``, so a scenario's blast radius is visible in the same
snapshot as the recovery counters (``tracker.dead_letters``,
``tracker.paths_abandoned``, ``elasticity.fallback_engaged`` …).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.faults.plan import FaultPlan
from repro.telemetry import MetricsRegistry, get_registry

#: Per-channel RNG seed offsets (stable: reordering code must not change
#: any channel's stream).
_CHANNEL_SEEDS = {
    "drop": 11,
    "duplicate": 23,
    "delay": 37,
    "edge_loss": 53,
    "store_write": 71,
    "profiler_flush": 89,
}


class FaultInjector:
    """Seeded, clocked decision source for every fault channel.

    The simulation advances the injector's clock once per interval
    (:meth:`advance_to`); decisions made outside the plan's active
    window never fire.  All ``should_*`` methods are cheap enough for
    per-message hot paths: one float compare when the channel is
    disabled, one RNG draw when enabled.
    """

    def __init__(self, plan: FaultPlan, registry: Optional[MetricsRegistry] = None) -> None:
        self.plan = plan
        self.telemetry = registry if registry is not None else get_registry()
        base = plan.seed * 1_000_003
        self._rngs: Dict[str, random.Random] = {
            name: random.Random(base + offset) for name, offset in _CHANNEL_SEEDS.items()
        }
        self._now = 0.0
        self._active = plan.active_at(0.0)
        self._crash_cursor = 0
        self._m_dropped = self.telemetry.counter("faults.messages_dropped")
        self._m_duplicated = self.telemetry.counter("faults.messages_duplicated")
        self._m_delayed = self.telemetry.counter("faults.messages_delayed")
        self._m_edges_lost = self.telemetry.counter("faults.edges_lost")
        self._m_write_failures = self.telemetry.counter("faults.store_write_failures")
        self._m_flush_lost = self.telemetry.counter("faults.profiler_flush_lost")
        self._m_node_crashes = self.telemetry.counter("faults.node_crashes")

    # -- clock -------------------------------------------------------------------

    @property
    def now_minutes(self) -> float:
        return self._now

    def advance_to(self, now_minutes: float) -> None:
        """Move the injector clock; the active window is evaluated here."""
        self._now = float(now_minutes)
        self._active = self.plan.active_at(self._now)

    # -- message channels (tracker hook) ----------------------------------------

    def should_drop_message(self) -> bool:
        rate = self.plan.message_drop_rate
        if not self._active or rate <= 0.0:
            return False
        if self._rngs["drop"].random() < rate:
            self._m_dropped.inc()
            return True
        return False

    def should_duplicate_message(self) -> bool:
        rate = self.plan.message_duplicate_rate
        if not self._active or rate <= 0.0:
            return False
        if self._rngs["duplicate"].random() < rate:
            self._m_duplicated.inc()
            return True
        return False

    def message_delay(self) -> Optional[float]:
        """Minutes to hold the message back, or ``None`` to deliver now."""
        rate = self.plan.message_delay_rate
        if not self._active or rate <= 0.0:
            return None
        if self._rngs["delay"].random() < rate:
            self._m_delayed.inc()
            return self.plan.message_delay_minutes
        return None

    def should_lose_edges(self) -> bool:
        """Whether to strip the message's cause uids (partial trace)."""
        rate = self.plan.edge_loss_rate
        if not self._active or rate <= 0.0:
            return False
        if self._rngs["edge_loss"].random() < rate:
            self._m_edges_lost.inc()
            return True
        return False

    # -- store / profiler channels ----------------------------------------------

    def should_fail_store_write(self) -> bool:
        rate = self.plan.store_write_failure_rate
        if not self._active or rate <= 0.0:
            return False
        if self._rngs["store_write"].random() < rate:
            self._m_write_failures.inc()
            return True
        return False

    def should_lose_profiler_flush(self) -> bool:
        rate = self.plan.profiler_flush_loss_rate
        if not self._active or rate <= 0.0:
            return False
        if self._rngs["profiler_flush"].random() < rate:
            self._m_flush_lost.inc()
            return True
        return False

    # -- scheduled node crashes (engine hook) ------------------------------------

    def pending_crash_minutes(self) -> List[float]:
        """Distinct minutes of not-yet-fired scheduled crashes, in order.

        The event engine schedules one crash event per distinct minute;
        :meth:`node_crashes_due` then consumes the schedule exactly as the
        tick loop would, so the monotonic cursor semantics are shared.
        """
        minutes: List[float] = []
        for crash in self.plan.node_crashes[self._crash_cursor:]:
            if not minutes or crash.minute != minutes[-1]:
                minutes.append(crash.minute)
        return minutes

    def node_crashes_due(self, now_minutes: float) -> Dict[str, int]:
        """Component → nodes to crash, for crashes scheduled at or before now.

        The schedule is consumed monotonically; each crash fires once.
        Scheduled crashes ignore the active window — an explicit schedule
        entry *is* its own window.
        """
        due: Dict[str, int] = {}
        crashes = self.plan.node_crashes
        while self._crash_cursor < len(crashes):
            crash = crashes[self._crash_cursor]
            if crash.minute > now_minutes:
                break
            due[crash.component] = due.get(crash.component, 0) + crash.count
            self._crash_cursor += 1
        if due:
            self._m_node_crashes.inc(sum(due.values()))
        return due
