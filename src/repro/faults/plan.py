"""Declarative fault plans.

A :class:`FaultPlan` is pure data: rates per fault channel, an active
window, and a schedule of node crashes.  It deliberately contains no
randomness — the :class:`~repro.faults.injector.FaultInjector` derives
per-channel RNGs from ``seed`` so that two injectors built from equal
plans make identical decisions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import FaultPlanError

#: Fault channels whose rates are plain probabilities in [0, 1].
_RATE_FIELDS = (
    "message_drop_rate",
    "message_duplicate_rate",
    "message_delay_rate",
    "edge_loss_rate",
    "store_write_failure_rate",
    "profiler_flush_loss_rate",
)


@dataclass(frozen=True)
class NodeCrash:
    """A scheduled crash: ``count`` ready nodes of ``component`` at ``minute``.

    ``component`` may be ``"*"`` to crash ``count`` nodes of *every*
    component group — the app-agnostic form the built-in scenarios use.
    """

    minute: float
    component: str
    count: int = 1

    def __post_init__(self) -> None:
        if self.minute < 0:
            raise FaultPlanError(f"crash minute must be >= 0, got {self.minute}")
        if not self.component:
            raise FaultPlanError("crash component must be non-empty")
        if self.count < 1:
            raise FaultPlanError(f"crash count must be >= 1, got {self.count}")


@dataclass(frozen=True)
class FaultPlan:
    """What goes wrong, how often, and when.

    Rates are per-event probabilities: each sampled message rolls the
    drop/duplicate/delay/edge-loss channels, each graph-store write rolls
    the write-failure channel, each completed path rolls the
    profiler-flush channel.  Faults only fire inside
    ``[start_minute, end_minute)`` — a finite window is how scenarios
    model an outage that *ends*, which is what the recovery paths
    (staleness re-engagement, retry success) need to be exercised.
    """

    seed: int = 0
    message_drop_rate: float = 0.0
    message_duplicate_rate: float = 0.0
    message_delay_rate: float = 0.0
    message_delay_minutes: float = 1.0
    edge_loss_rate: float = 0.0
    store_write_failure_rate: float = 0.0
    profiler_flush_loss_rate: float = 0.0
    node_crashes: Tuple[NodeCrash, ...] = field(default_factory=tuple)
    start_minute: float = 0.0
    end_minute: float = math.inf

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultPlanError(f"{name} must be in [0, 1], got {rate}")
        if self.message_delay_minutes <= 0:
            raise FaultPlanError(
                f"message_delay_minutes must be positive, got {self.message_delay_minutes}"
            )
        if self.start_minute < 0:
            raise FaultPlanError(f"start_minute must be >= 0, got {self.start_minute}")
        if self.end_minute <= self.start_minute:
            raise FaultPlanError(
                f"end_minute {self.end_minute} must be > start_minute {self.start_minute}"
            )
        # Freeze the crash schedule in time order so injector iteration
        # is deterministic regardless of how the plan was written.
        object.__setattr__(
            self,
            "node_crashes",
            tuple(sorted(self.node_crashes, key=lambda c: (c.minute, c.component))),
        )

    @property
    def any_message_faults(self) -> bool:
        """Whether the tracker-side message channels can ever fire."""
        return (
            self.message_drop_rate > 0
            or self.message_duplicate_rate > 0
            or self.message_delay_rate > 0
            or self.edge_loss_rate > 0
        )

    def active_at(self, minute: float) -> bool:
        """Whether the fault window covers ``minute``.

        **Pinned contract: the window is half-open,** ``[start_minute,
        end_minute)``.  A roll at exactly ``end_minute`` is *outside* the
        window — the outage has ended and recovery machinery (retry
        success, staleness re-engagement) must see a healthy system at
        that boundary.  Both engines evaluate this at the same clock
        values: the tick loop calls ``advance_to`` at interval
        boundaries, and the event engine snaps crash/delivery timestamps
        *up* to those same boundaries before rolling any channel
        (``EventDrivenRunner._snap_up``), so a window ending exactly on
        a boundary can neither double-fire nor silently skip faults at
        the edge.  ``tests/faults/test_window_boundaries.py`` pins this
        at exact boundary minutes under both engines.  Scheduled node
        crashes deliberately ignore the window (see
        :meth:`FaultInjector.node_crashes_due`).
        """
        return self.start_minute <= minute < self.end_minute
