"""repro — reproduction of "Exploiting Causality to Engineer Elastic
Distributed Software" (K. R. Jayaram, ICDCS 2016).

Top-level convenience re-exports; subpackages:

* :mod:`repro.lang`       — component IR, static analyses, interpreter;
* :mod:`repro.core`       — DCA, causal probability, the DCA autoscaler;
* :mod:`repro.graphstore` — the Titan-substitute causal-graph store;
* :mod:`repro.profiling`  — Ball–Larus numbering, the path profiler;
* :mod:`repro.tracing`    — temporal-causality substrate (baselines);
* :mod:`repro.sim`        — the cluster simulator (testbed substitute);
* :mod:`repro.autoscale`  — CloudWatch / ElasticRMI / HTrace baselines;
* :mod:`repro.workloads`  — Fig. 7 patterns and request generation;
* :mod:`repro.apps`       — Marketcetera / Hedwig / Zookeeper & co.;
* :mod:`repro.evalx`      — metrics, experiment runner, reporting.
"""

from repro.core.dca import analyze_application, analyze_component
from repro.core.elasticity import DCAElasticityManager, DCAManagerConfig
from repro.core.instrument import OverheadModel, instrument_application
from repro.core.paths import PathSignature, enumerate_causal_paths
from repro.core.probability import causal_probabilities, component_weights
from repro.core.sampling import RequestSampler
from repro.errors import ReproError
from repro.lang.builder import AppBuilder, ComponentBuilder, call, const, field, var
from repro.lang.ir import CLIENT, EXTERNAL, Application, Component

__version__ = "1.0.0"

__all__ = [
    "CLIENT",
    "EXTERNAL",
    "AppBuilder",
    "Application",
    "Component",
    "ComponentBuilder",
    "DCAElasticityManager",
    "DCAManagerConfig",
    "OverheadModel",
    "PathSignature",
    "ReproError",
    "RequestSampler",
    "__version__",
    "analyze_application",
    "analyze_component",
    "call",
    "causal_probabilities",
    "component_weights",
    "const",
    "enumerate_causal_paths",
    "field",
    "instrument_application",
    "var",
]
