"""Partitioned causal-graph store (Apache Titan substitute).

The store facade is backend-pluggable (:mod:`repro.graphstore.backend`):
in-process memory (default), a crash-safe append-only segment log, or a
process-shared store server (:mod:`repro.graphstore.shared`).
"""

from repro.graphstore.backend import (
    BACKENDS,
    GraphStoreBackend,
    LogBackend,
    MemoryBackend,
    make_backend,
    shard_backends,
)
from repro.graphstore.partition import HashPartitioner
from repro.graphstore.pipeline import BatchedWritePipeline, DeadLetterQueue
from repro.graphstore.query import (
    CausalGraphResult,
    EdgeTriple,
    ancestors_of,
    causal_graph_bfs,
    reachable_set,
    to_dot,
)
from repro.graphstore.sharded import ShardedGraphStore
from repro.graphstore.store import GraphNode, GraphStore

__all__ = [
    "BACKENDS",
    "BatchedWritePipeline",
    "CausalGraphResult",
    "DeadLetterQueue",
    "EdgeTriple",
    "GraphNode",
    "GraphStore",
    "GraphStoreBackend",
    "HashPartitioner",
    "LogBackend",
    "MemoryBackend",
    "ShardedGraphStore",
    "ancestors_of",
    "causal_graph_bfs",
    "make_backend",
    "reachable_set",
    "shard_backends",
    "to_dot",
]
