"""Partitioned in-memory causal-graph store (Apache Titan substitute)."""

from repro.graphstore.partition import HashPartitioner
from repro.graphstore.query import (
    CausalGraphResult,
    EdgeTriple,
    ancestors_of,
    causal_graph_bfs,
    reachable_set,
    to_dot,
)
from repro.graphstore.store import GraphNode, GraphStore

__all__ = [
    "CausalGraphResult",
    "EdgeTriple",
    "GraphNode",
    "GraphStore",
    "HashPartitioner",
    "ancestors_of",
    "causal_graph_bfs",
    "reachable_set",
    "to_dot",
]
