"""Partitioned in-memory causal-graph store (Apache Titan substitute)."""

from repro.graphstore.partition import HashPartitioner
from repro.graphstore.pipeline import BatchedWritePipeline, DeadLetterQueue
from repro.graphstore.query import (
    CausalGraphResult,
    EdgeTriple,
    ancestors_of,
    causal_graph_bfs,
    reachable_set,
    to_dot,
)
from repro.graphstore.sharded import ShardedGraphStore
from repro.graphstore.store import GraphNode, GraphStore

__all__ = [
    "BatchedWritePipeline",
    "CausalGraphResult",
    "DeadLetterQueue",
    "EdgeTriple",
    "GraphNode",
    "GraphStore",
    "HashPartitioner",
    "ShardedGraphStore",
    "ancestors_of",
    "causal_graph_bfs",
    "reachable_set",
    "to_dot",
]
