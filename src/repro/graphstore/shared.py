"""Process-shared graph store: one store server, many experiment workers.

PR 5's parallel runner (``run_all_managers(..., workers=N)``) gives each
worker a private in-process store and merges per-worker telemetry
snapshots afterwards.  The paper's deployment has no such merge step:
every monitored process writes into *one* external graph store (Titan).
This module reproduces that shape dependency-free with the stdlib:

* :class:`SharedStoreServer` hosts a
  :class:`multiprocessing.managers.BaseManager` on a Unix socket.  The
  server process owns a singleton :class:`StoreHub` holding one real
  :class:`~repro.graphstore.store.GraphStore` /
  :class:`~repro.graphstore.sharded.ShardedGraphStore` **per
  namespace** (one namespace per manager under the experiment runner),
  each with its own server-side telemetry registry.
* :class:`SharedGraphStoreClient` is a drop-in store facade for the
  tracker and the batched write pipeline: it duck-types the store
  surface (writes, per-root reads, maintenance, completion
  subscriptions) over proxy calls and keeps the *decision-owning* state
  local — the fault injector rolls client-side before any RPC (exactly
  where the sharded facade rolls it), and path-complete subscribers
  fire client-side from the completion roots each write call returns.

Concurrency rules
-----------------
Namespaces are disjoint: concurrent workers touch different namespaces,
so the only cross-worker shared state is the hub's namespace table
(guarded by a lock).  Within a namespace there is exactly one writer
(its worker), so the underlying store needs no extra locking — the same
single-writer discipline the in-process store already assumes.  On
:meth:`SharedGraphStoreClient.close` the client merges its namespace's
server-side registry snapshot into its local registry, so a shared-store
run's final telemetry is bit-identical (non-volatile keys) to the same
run on the memory backend — workers share the store instead of merging
store state, and only the counters travel back.
"""

from __future__ import annotations

import os
import tempfile
from multiprocessing.managers import BaseManager
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import StoreBackendError, TransientStoreError
from repro.graphstore.partition import HashPartitioner
from repro.lang.message import Message, MessageUid
from repro.telemetry import MetricsRegistry, get_registry

#: Default authkey size (bytes) for freshly started servers.
_AUTHKEY_BYTES = 16


class StoreHub:
    """Server-side singleton: one store + registry per namespace.

    Every method takes the namespace first; proxies serialize arguments
    with pickle, so uids/messages cross the boundary as values.  Write
    methods return the root uids whose paths completed during the call
    (in notification order) — the client fires its local subscribers
    from them, keeping completion semantics identical to an in-process
    store.
    """

    def __init__(self) -> None:
        import threading

        self._lock = threading.Lock()
        self._stores = {}
        self._registries = {}
        self._completed = {}

    def ensure(self, namespace: str, num_shards: int, num_partitions: int) -> None:
        """Create the namespace's store on first use (idempotent)."""
        from repro.graphstore.sharded import ShardedGraphStore
        from repro.graphstore.store import GraphStore

        with self._lock:
            if namespace in self._stores:
                return
            registry = MetricsRegistry()
            completed: List[MessageUid] = []
            if num_shards > 1:
                store = ShardedGraphStore(
                    num_shards=num_shards,
                    num_partitions=num_partitions,
                    registry=registry,
                )
            else:
                store = GraphStore(num_partitions=num_partitions, registry=registry)
            store.subscribe_path_complete(completed.append)
            self._stores[namespace] = store
            self._registries[namespace] = registry
            self._completed[namespace] = completed

    def _drain(self, namespace: str) -> List[MessageUid]:
        completed = self._completed[namespace]
        if not completed:
            return []
        drained = list(completed)
        completed.clear()
        return drained

    # -- writes ------------------------------------------------------------------

    def add_message(self, namespace: str, message: Message) -> List[MessageUid]:
        self._stores[namespace].add_message(message)
        return self._drain(namespace)

    def add_messages(
        self, namespace: str, shard_index: Optional[int], messages: Sequence[Message]
    ) -> Tuple[int, List[MessageUid]]:
        """Batch write — straight into one shard when ``shard_index`` is given.

        Mirrors the batched pipeline's direct ``shards[i].add_messages``
        write path, so batch/flush telemetry and per-shard ordering are
        identical to the in-process configuration.
        """
        store = self._stores[namespace]
        if shard_index is None:
            count = store.add_messages(messages)
        else:
            count = store.shards[shard_index].add_messages(messages)
        return count, self._drain(namespace)

    def add_edge(
        self, namespace: str, cause: MessageUid, effect: MessageUid
    ) -> List[MessageUid]:
        self._stores[namespace].add_edge(cause, effect)
        return self._drain(namespace)

    # -- reads -------------------------------------------------------------------

    def contains(self, namespace: str, uid: MessageUid) -> bool:
        return self._stores[namespace].contains(uid)

    def get_node(self, namespace: str, uid: MessageUid):
        return self._stores[namespace].get_node(uid)

    def node_count(self, namespace: str) -> int:
        return self._stores[namespace].node_count()

    def root_of(self, namespace: str, uid: MessageUid) -> Optional[MessageUid]:
        return self._stores[namespace].root_of(uid)

    def successors(self, namespace: str, uid: MessageUid) -> Set[MessageUid]:
        return self._stores[namespace].successors(uid)

    def predecessors(self, namespace: str, uid: MessageUid) -> Set[MessageUid]:
        return self._stores[namespace].predecessors(uid)

    def all_uids(self, namespace: str) -> List[MessageUid]:
        return list(self._stores[namespace].all_uids())

    def completed_signature(self, namespace: str, root: MessageUid):
        return self._stores[namespace].completed_signature(root)

    def graph_members(self, namespace: str, root: MessageUid) -> Tuple[MessageUid, ...]:
        return self._stores[namespace].graph_members(root)

    def tallies(self, namespace: str) -> Tuple[int, int, int]:
        store = self._stores[namespace]
        return store.edge_count, store.cross_partition_edges, store.index_lookups

    # -- maintenance -------------------------------------------------------------

    def evict_graph(self, namespace: str, root: MessageUid) -> int:
        return self._stores[namespace].evict_graph(root)

    def abandon_root(self, namespace: str, root: MessageUid) -> int:
        return self._stores[namespace].abandon_root(root)

    def abandon_roots(self, namespace: str, roots: Sequence[MessageUid]) -> int:
        store = self._stores[namespace]
        abandon_many = getattr(store, "abandon_roots", None)
        if abandon_many is not None:
            return abandon_many(roots)
        return sum(store.abandon_root(root) for root in roots)

    def repair_dangling_edges(self, namespace: str) -> int:
        return self._stores[namespace].repair_dangling_edges()

    # -- telemetry ----------------------------------------------------------------

    def snapshot(self, namespace: str) -> dict:
        """The namespace's server-side registry snapshot (client merges it)."""
        return self._registries[namespace].snapshot()


_HUB: Optional[StoreHub] = None


def _get_hub() -> StoreHub:
    """Module-level singleton accessor (runs inside the server process)."""
    global _HUB
    if _HUB is None:
        _HUB = StoreHub()
    return _HUB


class _StoreManager(BaseManager):
    pass


_StoreManager.register("hub", callable=_get_hub)


class SharedStoreServer:
    """Owns the store-server process behind one Unix socket."""

    def __init__(self, address: Optional[str] = None, authkey: Optional[bytes] = None) -> None:
        self._socket_dir: Optional[str] = None
        if address is None:
            self._socket_dir = tempfile.mkdtemp(prefix="repro-store-")
            address = os.path.join(self._socket_dir, "store.sock")
        self.address = address
        self.authkey = authkey if authkey is not None else os.urandom(_AUTHKEY_BYTES)
        self._manager = _StoreManager(address=self.address, authkey=self.authkey)
        self._started = False

    @property
    def authkey_hex(self) -> str:
        """Hex form of the authkey (travels inside picklable configs)."""
        return self.authkey.hex()

    def start(self) -> "SharedStoreServer":
        self._manager.start()
        self._started = True
        return self

    def shutdown(self) -> None:
        if self._started:
            self._manager.shutdown()
            self._started = False
        if self._socket_dir is not None:
            import shutil

            shutil.rmtree(self._socket_dir, ignore_errors=True)
            self._socket_dir = None


def connect_hub(address: str, authkey: bytes):
    """Connect to a running store server; returns a hub proxy."""
    manager = _StoreManager(address=address, authkey=authkey)
    manager.connect()
    return manager.hub()


class _SharedShard:
    """Per-shard write handle the batched pipeline targets directly.

    Carries ``fault_injector = None`` because the pipeline owns the
    write-fault roll when batching (the same ownership rule the
    in-process shards follow).
    """

    fault_injector = None

    def __init__(self, client: "SharedGraphStoreClient", index: int) -> None:
        self._client = client
        self.index = index

    def add_messages(self, messages: Sequence[Message]) -> int:
        return self._client._shard_add_messages(self.index, messages)


class SharedGraphStoreClient:
    """Store facade over a :class:`StoreHub` namespace.

    Drop-in for :class:`~repro.graphstore.store.GraphStore` /
    :class:`~repro.graphstore.sharded.ShardedGraphStore` on the tracker
    and pipeline surface.  The fault injector (when attached) rolls
    locally before each unbatched write RPC; completion subscribers fire
    locally from the roots each write returns; telemetry counters the
    server accumulates for this namespace are merged into the local
    registry at :meth:`close`.
    """

    def __init__(
        self,
        address: str,
        authkey: bytes,
        namespace: str,
        num_shards: int = 1,
        num_partitions: int = 4,
        registry: Optional[MetricsRegistry] = None,
        fault_injector=None,
        on_path_complete: Optional[Callable[[MessageUid], None]] = None,
        owned_server: Optional[SharedStoreServer] = None,
    ) -> None:
        if num_shards < 1:
            raise StoreBackendError(f"num_shards must be >= 1, got {num_shards}")
        self.namespace = namespace
        self.num_shards = int(num_shards)
        self.telemetry = registry if registry is not None else get_registry()
        self.fault_injector = fault_injector
        self._owned_server = owned_server
        self._manager = _StoreManager(address=address, authkey=authkey)
        self._manager.connect()
        self._hub = self._manager.hub()
        self._hub.ensure(namespace, self.num_shards, num_partitions)
        self._path_complete_subscribers: List[Callable[[MessageUid], None]] = []
        if on_path_complete is not None:
            self._path_complete_subscribers.append(on_path_complete)
        self._closed = False
        if self.num_shards > 1:
            # The same crc-routing the server store uses, computed
            # locally so the pipeline buffers per shard without a round
            # trip per message.
            self._router = HashPartitioner(self.num_shards)
            self.shards = [_SharedShard(self, i) for i in range(self.num_shards)]

    # -- identity ----------------------------------------------------------------

    @property
    def backend_kind(self) -> str:
        return "shared"

    def shard_index_of(self, root: MessageUid) -> int:
        return self._router.partition_of(root)

    # -- subscriptions -----------------------------------------------------------

    def subscribe_path_complete(self, callback: Callable[[MessageUid], None]) -> None:
        self._path_complete_subscribers.append(callback)

    def _notify(self, roots: Sequence[MessageUid]) -> None:
        for root in roots:
            for callback in self._path_complete_subscribers:
                callback(root)

    # -- writes ------------------------------------------------------------------

    def add_message(self, message: Message) -> None:
        injector = self.fault_injector
        if injector is not None and injector.should_fail_store_write():
            raise TransientStoreError(f"injected write failure for {message.uid}")
        self._notify(self._hub.add_message(self.namespace, message))

    def add_messages(self, messages: Sequence[Message]) -> int:
        count, completed = self._hub.add_messages(self.namespace, None, list(messages))
        self._notify(completed)
        return count

    def _shard_add_messages(self, index: int, messages: Sequence[Message]) -> int:
        count, completed = self._hub.add_messages(self.namespace, index, list(messages))
        self._notify(completed)
        return count

    def add_edge(self, cause: MessageUid, effect: MessageUid) -> None:
        self._notify(self._hub.add_edge(self.namespace, cause, effect))

    # -- reads -------------------------------------------------------------------

    def contains(self, uid: MessageUid) -> bool:
        return self._hub.contains(self.namespace, uid)

    def get_node(self, uid: MessageUid):
        return self._hub.get_node(self.namespace, uid)

    def node_count(self) -> int:
        return self._hub.node_count(self.namespace)

    def root_of(self, uid: MessageUid) -> Optional[MessageUid]:
        return self._hub.root_of(self.namespace, uid)

    def successors(self, uid: MessageUid) -> Set[MessageUid]:
        return self._hub.successors(self.namespace, uid)

    def predecessors(self, uid: MessageUid) -> Set[MessageUid]:
        return self._hub.predecessors(self.namespace, uid)

    def iter_successors(self, uid: MessageUid) -> Iterator[MessageUid]:
        return iter(self.successors(uid))

    def iter_predecessors(self, uid: MessageUid) -> Iterator[MessageUid]:
        return iter(self.predecessors(uid))

    def all_uids(self) -> Iterable[MessageUid]:
        return self._hub.all_uids(self.namespace)

    def completed_signature(self, root: MessageUid):
        return self._hub.completed_signature(self.namespace, root)

    def graph_members(self, root: MessageUid) -> Tuple[MessageUid, ...]:
        return tuple(self._hub.graph_members(self.namespace, root))

    # -- legacy tallies ----------------------------------------------------------

    @property
    def edge_count(self) -> int:
        return self._hub.tallies(self.namespace)[0]

    @property
    def cross_partition_edges(self) -> int:
        return self._hub.tallies(self.namespace)[1]

    @property
    def index_lookups(self) -> int:
        return self._hub.tallies(self.namespace)[2]

    # -- maintenance -------------------------------------------------------------

    def evict_graph(self, root: MessageUid) -> int:
        return self._hub.evict_graph(self.namespace, root)

    def abandon_root(self, root: MessageUid) -> int:
        return self._hub.abandon_root(self.namespace, root)

    def abandon_roots(self, roots: Iterable[MessageUid]) -> int:
        return self._hub.abandon_roots(self.namespace, list(roots))

    def repair_dangling_edges(self) -> int:
        return self._hub.repair_dangling_edges(self.namespace)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Merge the namespace's server-side telemetry and disconnect.

        After the merge, this run's local registry carries the same
        non-volatile ``graphstore.*`` counters a memory-backend run
        would have accumulated in-process — the cross-backend digest
        contract.  Shuts the server down only when this client started
        it (standalone single-run use).
        """
        if self._closed:
            return
        self._closed = True
        self.telemetry.merge_snapshot(self._hub.snapshot(self.namespace))
        if self._owned_server is not None:
            self._owned_server.shutdown()
            self._owned_server = None
