"""Pluggable graph-store backends: in-memory, append-only log, shared.

The paper offloads causal graphs to an external store (Apache Titan)
precisely so provenance capture is not bounded by one process's RAM and
survives monitoring-host restarts.  This module extracts that seam as a
narrow :class:`GraphStoreBackend` protocol behind the existing
:class:`~repro.graphstore.store.GraphStore` /
:class:`~repro.graphstore.sharded.ShardedGraphStore` API:

* :class:`MemoryBackend` — the default.  Journaling is disabled and the
  store behaves bit-identically to the pre-backend code (the hot path
  pays one ``is None`` check per write).
* :class:`LogBackend` — an append-only binary log.  Every mutation
  (message, raw edge, eviction, abandonment, dangling-edge repair) is
  framed as a crc32-checked record and appended to a rotated segment
  sequence; reopening the directory replays the log to rebuild the
  exact store state, so experiments survive restarts and stores larger
  than RAM stream from disk through ``mmap`` during recovery.
* The **shared** backend lives in :mod:`repro.graphstore.shared`: a
  multiprocessing store server reached over a Unix socket, so parallel
  experiment workers operate on one store instead of merging snapshots.
  It is a full store facade (not a journal), hence not constructed via
  :func:`make_backend`.

On-disk format (``log`` backend)
--------------------------------
Each segment file ``segment-%08d.log`` starts with a 12-byte header::

    magic   b"RGSL"         (4 bytes)
    version u32 = 1         (little-endian)
    index   u32             (the segment's own sequence number)

followed by frames::

    length  u32             payload byte count
    crc32   u32             zlib.crc32 of the payload
    payload length bytes    opcode byte + op-specific body

Records never span segments: appends are buffered and each flush lands
entirely in the current segment; rotation happens *between* flushes once
a segment exceeds ``segment_bytes``.  Message uids are encoded as the
paper's ``<address, process_id, seq>`` triple; cause-uid sets are
encoded **sorted** so the on-disk bytes are canonical — a ``frozenset``
iteration order (which varies with the interpreter hash seed) must never
leak into a persistence artifact.  ``OP_MESSAGE`` payloads group all
string fields (addresses, type, endpoints) ahead of the fixed-width
``<process_id, seq>`` tails: the string block repeats across records (a
simulation's vocabulary is tiny) and is cached as one pre-encoded
skeleton, leaving only one struct pack per journaled message.

Durability and crash-recovery contract
--------------------------------------
``flush()`` is the durability point: buffered frames are written to the
OS in one call and — under the default ``fsync="flush"`` policy —
fsynced before it returns (``fsync="close"`` defers the sync to
rotation/close; ``"never"`` leaves it to the OS).  Recovery is strict,
mirroring PR 8's :class:`~repro.errors.ParityArtifactError` pattern: a
bad-crc frame, a truncated frame, a damaged header, or a gap in the
rotated segment sequence raises :class:`~repro.errors.StoreBackendError`
— a damaged log must read as "the store is torn", never load as a
silently truncated graph.  The one sanctioned repair: a torn *tail* (the
final bytes of the final segment, the signature of a crash mid-flush)
can be truncated away by opening with ``repair_torn_tail=True``, which
drops only the partial frame and keeps every intact record before it.
"""

from __future__ import annotations

import os
import re
import struct
import zlib
from typing import Iterator, List, Optional, Tuple

from repro.errors import StoreBackendError
from repro.lang.message import Message, MessageUid
from repro.telemetry import MetricsRegistry, get_registry

#: The selectable backend kinds (`--store-backend`).
BACKENDS = ("memory", "log", "shared")

#: Segment-file constants (see the module docstring for the layout).
SEGMENT_MAGIC = b"RGSL"
SEGMENT_VERSION = 1
SEGMENT_HEADER = struct.Struct("<4sII")
FRAME_HEADER = struct.Struct("<II")
#: Hot-path aliases (module-global loads beat attribute chains).
#: ``zlib.crc32`` is already unsigned on Python 3 — no masking needed.
_FRAME_PACK = FRAME_HEADER.pack
_FRAME_OVERHEAD = FRAME_HEADER.size
_CRC32 = zlib.crc32
SEGMENT_NAME_RE = re.compile(r"^segment-(\d{8})\.log$")

#: Default rotation threshold and auto-flush buffer bound (bytes).
DEFAULT_SEGMENT_BYTES = 8 * 1024 * 1024
DEFAULT_FLUSH_BYTES = 64 * 1024

#: fsync policies: sync every flush, only at rotation/close, or never.
FSYNC_POLICIES = ("flush", "close", "never")

#: Record opcodes (one byte, first byte of every payload).
OP_MESSAGE = 1
OP_EDGE = 2
OP_EVICT = 3
OP_ABANDON = 4
OP_REPAIR = 5

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64Q = struct.Struct("<QQ")

#: Message flag bits.
_FLAG_HAS_ROOT = 1
_FLAG_SAMPLED = 2

#: Precomputed ``(OP_MESSAGE, flags)`` prefixes for the four flag states.
_MSG_PREFIXES = tuple(bytes((OP_MESSAGE, flags)) for flags in range(4))


def segment_name(index: int) -> str:
    return f"segment-{index:08d}.log"


class GraphStoreBackend:
    """Narrow journaling protocol the store drives its backend through.

    ``journaling`` tells the store whether to call the ``journal_*``
    hooks at all (the memory backend keeps the hot path branch-free
    beyond one ``is None`` check).  ``flush()`` is the durability point;
    ``close()`` must be idempotent.
    """

    kind: str = "abstract"
    journaling: bool = False

    def journal_message(self, message: Message) -> None:  # pragma: no cover
        raise NotImplementedError

    def journal_edge(self, cause: MessageUid, effect: MessageUid) -> None:  # pragma: no cover
        raise NotImplementedError

    def journal_evict(self, root: MessageUid) -> None:  # pragma: no cover
        raise NotImplementedError

    def journal_abandon(self, root: MessageUid) -> None:  # pragma: no cover
        raise NotImplementedError

    def journal_repair(self) -> None:  # pragma: no cover
        raise NotImplementedError

    def flush(self) -> None:
        """Make every journaled record durable (no-op by default)."""

    def close(self) -> None:
        """Flush and release resources (idempotent, no-op by default)."""


class MemoryBackend(GraphStoreBackend):
    """The default in-process backend: no journal, no persistence.

    Exists so every store has a ``backend`` with a ``kind`` (the replay
    eligibility checks key off it) while the write path stays exactly
    the pre-backend code.
    """

    kind = "memory"
    journaling = False


# -- binary encoding -----------------------------------------------------------


#: Length-prefixed encodings of recently seen strings.  The strings a
#: journal writes — host addresses, message types, component names —
#: come from a tiny, fixed vocabulary, so this bounded cache turns the
#: per-record hot path's dominant cost (encode + length-prefix per
#: string field) into a dict hit.
_STR_CACHE: dict = {}
_STR_CACHE_MAX = 4096


def _encode_str(text: str) -> bytes:
    cached = _STR_CACHE.get(text)
    if cached is not None:
        return cached
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise StoreBackendError(f"string too long for log record ({len(raw)} bytes)")
    encoded = _U16.pack(len(raw)) + raw
    if len(_STR_CACHE) < _STR_CACHE_MAX:
        _STR_CACHE[text] = encoded
    return encoded


def _encode_uid(uid: MessageUid) -> bytes:
    return _encode_str(uid.address) + _U64Q.pack(uid.process_id, uid.seq)


#: Pre-encoded ``OP_MESSAGE`` string blocks keyed by the record's string
#: tuple (flags + addresses + type + endpoints).  Each entry is
#: ``(skeleton_bytes, len(skeleton_bytes), crc32(skeleton_bytes))`` —
#: the partial crc lets the journal hot path finish the frame crc
#: incrementally over just the numeric tail.  Distinct tuples are
#: bounded by the scenario's path templates × hosts, so in practice
#: every journaled message after warm-up reduces to one dict hit plus
#: one struct pack of its uid tails.
_SKELETON_CACHE: dict = {}
_SKELETON_CACHE_MAX = 4096

#: ``struct.Struct("<nQ")`` per tail width; the common record shapes
#: (bare root, root + one cause) get dedicated structs so the hot path
#: packs without building an argument list.
_TAIL4 = struct.Struct("<4Q")
_TAIL6 = struct.Struct("<6Q")
_TAIL_STRUCTS: dict = {2: _U64Q, 4: _TAIL4, 6: _TAIL6}


def _tail_struct(count: int) -> struct.Struct:
    cached = _TAIL_STRUCTS.get(count)
    if cached is None:
        cached = _TAIL_STRUCTS[count] = struct.Struct("<%dQ" % count)
    return cached


class _Reader:
    """Cursor over one decoded payload (bounds-checked reads)."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise StoreBackendError(
                "log record payload ends mid-field (corrupt frame passed crc?)"
            )
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def u16(self) -> int:
        return _U16.unpack(self.take(2))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def text(self) -> str:
        return self.take(self.u16()).decode("utf-8")

    def uid(self) -> MessageUid:
        address = self.text()
        process_id, seq = _U64Q.unpack(self.take(16))
        return MessageUid(address, process_id, seq)

    @property
    def exhausted(self) -> bool:
        return self.pos == len(self.data)


def _message_parts(message: Message):
    """``(skeleton_entry, tail)`` for one ``OP_MESSAGE`` record.

    ``skeleton_entry`` is the :data:`_SKELETON_CACHE` triple
    ``(skeleton, length, crc)``; ``tail`` is the packed
    ``<process_id, seq>`` pairs of the uid, the root (if any), and each
    cause, in that order.  Cause uids are sorted for canonical bytes.
    """
    root = message.root_uid
    uid = message.uid
    causes = message.cause_uids
    n = len(causes)
    if root is not None and n == 1:
        # Dominant shape — a rooted single-cause hop — taken with the
        # least possible work: one key tuple, one cache hit, one pack.
        (cause,) = causes
        flags = (
            _FLAG_HAS_ROOT | _FLAG_SAMPLED
            if message.sampled
            else _FLAG_HAS_ROOT
        )
        key = (
            flags, uid.address, message.msg_type, message.src,
            message.dest, root.address, cause.address,
        )
        entry = _SKELETON_CACHE.get(key)
        if entry is not None:
            return entry, _TAIL6.pack(
                uid.process_id, uid.seq, root.process_id, root.seq,
                cause.process_id, cause.seq,
            )
        causes = (cause,)
    else:
        flags = 0
        if root is not None:
            flags |= _FLAG_HAS_ROOT
        if message.sampled:
            flags |= _FLAG_SAMPLED
        # ``cause_key`` distinguishes record shapes by *type*: ``None``
        # for no causes, a bare address string for a single cause, a
        # tuple for the rest.
        if n == 0:
            causes = ()
            cause_key = None
        elif n == 1:
            causes = tuple(causes)
            cause_key = causes[0].address
        else:
            causes = sorted(causes)
            cause_key = tuple(cause.address for cause in causes)
        key = (
            flags, uid.address, message.msg_type, message.src, message.dest,
            None if root is None else root.address, cause_key,
        )
        entry = _SKELETON_CACHE.get(key)
    if entry is None:
        parts = [
            _MSG_PREFIXES[flags],
            _encode_str(uid.address),
            _encode_str(message.msg_type),
            _encode_str(message.src),
            _encode_str(message.dest),
        ]
        if root is not None:
            parts.append(_encode_str(root.address))
        parts.append(_U32.pack(n))
        for cause in causes:
            parts.append(_encode_str(cause.address))
        skeleton = b"".join(parts)
        entry = (skeleton, len(skeleton), _CRC32(skeleton))
        if len(_SKELETON_CACHE) < _SKELETON_CACHE_MAX:
            _SKELETON_CACHE[key] = entry
    if root is not None and n == 1:
        cause = causes[0]
        return entry, _TAIL6.pack(
            uid.process_id, uid.seq, root.process_id, root.seq,
            cause.process_id, cause.seq,
        )
    if root is None and n == 0:
        return entry, _U64Q.pack(uid.process_id, uid.seq)
    tails = [uid.process_id, uid.seq]
    if root is not None:
        tails.append(root.process_id)
        tails.append(root.seq)
    for cause in causes:
        tails.append(cause.process_id)
        tails.append(cause.seq)
    return entry, _tail_struct(len(tails)).pack(*tails)


def encode_message(message: Message) -> bytes:
    """Provenance projection of one message as an ``OP_MESSAGE`` payload.

    Persists exactly what the store consumes — uid, type, endpoints,
    root, causes, sampling bit — not the payload ``fields`` (the store
    never reads them).  The payload is ``skeleton + tail``: the string
    block first (cacheable, see :data:`_SKELETON_CACHE`), then the
    fixed-width uid tails.
    """
    (skeleton, _length, _crc), tail = _message_parts(message)
    return skeleton + tail


def decode_payload(payload: bytes):
    """Decode one payload into ``(opcode, args)``.

    A crc-valid but undecodable payload (unknown opcode, short body,
    trailing bytes) is corruption, not a torn tail, and always raises
    :class:`~repro.errors.StoreBackendError`.
    """
    if not payload:
        raise StoreBackendError("empty log record payload")
    op = payload[0]
    reader = _Reader(payload)
    reader.pos = 1
    if op == OP_MESSAGE:
        flags = reader.take(1)[0]
        uid_address = reader.text()
        msg_type = reader.text()
        src = reader.text()
        dest = reader.text()
        root_address = reader.text() if flags & _FLAG_HAS_ROOT else None
        cause_addresses = [reader.text() for _ in range(reader.u32())]
        uid = MessageUid(uid_address, *_U64Q.unpack(reader.take(16)))
        root = None
        if root_address is not None:
            root = MessageUid(root_address, *_U64Q.unpack(reader.take(16)))
        causes = frozenset(
            MessageUid(address, *_U64Q.unpack(reader.take(16)))
            for address in cause_addresses
        )
        message = Message(
            uid, msg_type, src, dest,
            cause_uids=causes,
            root_uid=root,
            sampled=bool(flags & _FLAG_SAMPLED),
        )
        args: Tuple = (message,)
    elif op == OP_EDGE:
        args = (reader.uid(), reader.uid())
    elif op in (OP_EVICT, OP_ABANDON):
        args = (reader.uid(),)
    elif op == OP_REPAIR:
        args = ()
    else:
        raise StoreBackendError(f"unknown log record opcode {op}")
    if not reader.exhausted:
        raise StoreBackendError(
            f"log record opcode {op} carries {len(payload) - reader.pos} "
            "trailing bytes (corrupt frame passed crc?)"
        )
    return op, args


class LogBackend(GraphStoreBackend):
    """Append-only segmented binary log under one directory.

    Parameters
    ----------
    directory:
        Segment directory.  One store (or one shard — see
        :func:`shard_backends`) per directory.
    create:
        ``True`` starts a fresh log and *refuses* a directory that
        already holds segments (no silent state mixing); ``False``
        reopens an existing log, validating every frame of every
        segment (see the module docstring's recovery contract).
    segment_bytes / flush_bytes:
        Rotation threshold and the auto-flush buffer bound.
    fsync:
        ``"flush"`` (default), ``"close"``, or ``"never"``.
    repair_torn_tail:
        With ``create=False``: truncate a torn final frame instead of
        raising.  Only the tail of the *last* segment is repairable.
    registry:
        Telemetry registry for the ``graphstore.backend_*`` diagnostics
        (volatile keys — they describe the backend, not the run, and
        are excluded from the cross-backend digest contract).
    """

    kind = "log"
    journaling = True

    def __init__(
        self,
        directory: str,
        create: bool = True,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        flush_bytes: int = DEFAULT_FLUSH_BYTES,
        fsync: str = "flush",
        repair_torn_tail: bool = False,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if segment_bytes < 1:
            raise StoreBackendError(f"segment_bytes must be >= 1, got {segment_bytes}")
        if fsync not in FSYNC_POLICIES:
            raise StoreBackendError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        self.directory = directory
        self.segment_bytes = int(segment_bytes)
        self.flush_bytes = int(flush_bytes)
        self.fsync = fsync
        self.telemetry = registry if registry is not None else get_registry()
        self._m_flushes = self.telemetry.counter("graphstore.backend_flushes")
        self._m_records = self.telemetry.counter("graphstore.backend_records")
        self._m_bytes = self.telemetry.counter("graphstore.backend_bytes")
        self._m_fsyncs = self.telemetry.counter("graphstore.backend_fsyncs")
        self._m_rotations = self.telemetry.counter("graphstore.backend_rotations")
        self._m_replayed = self.telemetry.counter("graphstore.backend_replayed_ops")
        self._m_repairs = self.telemetry.counter("graphstore.backend_torn_tail_repairs")
        self._buffer: List[bytes] = []
        self._buffered_bytes = 0
        self._buffered_records = 0
        self._closed = False
        self._fh = None
        os.makedirs(directory, exist_ok=True)
        existing = self._segment_indices()
        if create:
            if existing:
                raise StoreBackendError(
                    f"refusing to create a fresh log over {len(existing)} existing "
                    f"segment(s) in {directory} — reopen with create=False or "
                    "point --store-dir at an empty directory"
                )
            self._segment_index = 0
            self._open_segment(0, fresh=True)
        else:
            if not existing:
                raise StoreBackendError(
                    f"no log segments to reopen in {directory}"
                )
            if existing != list(range(len(existing))):
                missing = sorted(set(range(existing[-1] + 1)) - set(existing))
                raise StoreBackendError(
                    f"rotated segment sequence in {directory} has gaps "
                    f"(missing indices {missing}) — the log is torn and "
                    "cannot be trusted"
                )
            self._validate_segments(repair_torn_tail)
            self._segment_index = existing[-1]
            self._open_segment(self._segment_index, fresh=False)

    # -- segment files -----------------------------------------------------------

    def _segment_indices(self) -> List[int]:
        indices = []
        for name in os.listdir(self.directory):
            match = SEGMENT_NAME_RE.match(name)
            if match:
                indices.append(int(match.group(1)))
        return sorted(indices)

    def _segment_path(self, index: int) -> str:
        return os.path.join(self.directory, segment_name(index))

    def _open_segment(self, index: int, fresh: bool) -> None:
        path = self._segment_path(index)
        if fresh:
            self._fh = open(path, "xb")
            self._fh.write(SEGMENT_HEADER.pack(SEGMENT_MAGIC, SEGMENT_VERSION, index))
            self._fh.flush()
        else:
            self._fh = open(path, "ab")

    def _rotate(self) -> None:
        self._sync(force=self.fsync in ("flush", "close"))
        self._fh.close()
        self._segment_index += 1
        self._open_segment(self._segment_index, fresh=True)
        self._m_rotations.inc()

    def _sync(self, force: bool) -> None:
        if force:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._m_fsyncs.inc()

    # -- validation / recovery ---------------------------------------------------

    def _read_segment(self, index: int, is_last: bool, repair: bool) -> Iterator[bytes]:
        """Yield every payload of one segment, enforcing the torn contract."""
        import mmap

        path = self._segment_path(index)
        with open(path, "rb") as fh:
            size = os.fstat(fh.fileno()).st_size
            if size < SEGMENT_HEADER.size:
                yield from self._torn(
                    path, 0, is_last, repair,
                    f"segment {segment_name(index)} is shorter than its header",
                )
                return
            view = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            try:
                magic, version, stored = SEGMENT_HEADER.unpack_from(view, 0)
                if magic != SEGMENT_MAGIC:
                    raise StoreBackendError(
                        f"{segment_name(index)} does not start with the log magic "
                        "(not a graph-store segment)"
                    )
                if version != SEGMENT_VERSION:
                    raise StoreBackendError(
                        f"{segment_name(index)} has log version {version}, "
                        f"expected {SEGMENT_VERSION}"
                    )
                if stored != index:
                    raise StoreBackendError(
                        f"{segment_name(index)} claims segment index {stored} — "
                        "the rotated sequence has been tampered with"
                    )
                pos = SEGMENT_HEADER.size
                while pos < size:
                    if size - pos < FRAME_HEADER.size:
                        yield from self._torn(
                            path, pos, is_last, repair,
                            f"truncated frame header at byte {pos} of "
                            f"{segment_name(index)}",
                        )
                        return
                    length, crc = FRAME_HEADER.unpack_from(view, pos)
                    body_start = pos + FRAME_HEADER.size
                    if size - body_start < length:
                        yield from self._torn(
                            path, pos, is_last, repair,
                            f"frame at byte {pos} of {segment_name(index)} claims "
                            f"{length} payload bytes but only "
                            f"{size - body_start} remain",
                        )
                        return
                    payload = bytes(view[body_start:body_start + length])
                    if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
                        if body_start + length < size:
                            # Intact data follows the bad frame: a crash
                            # tail always ends at EOF (appends are
                            # buffered into one write), so this is bit
                            # rot mid-sequence — never repairable.
                            raise StoreBackendError(
                                f"crc mismatch in frame at byte {pos} of "
                                f"{segment_name(index)} with intact data "
                                "after it — the record is corrupt, not a "
                                "crash tail"
                            )
                        yield from self._torn(
                            path, pos, is_last, repair,
                            f"crc mismatch in frame at byte {pos} of "
                            f"{segment_name(index)}",
                        )
                        return
                    yield payload
                    pos = body_start + length
            finally:
                view.close()

    def _torn(
        self, path: str, keep_bytes: int, is_last: bool, repair: bool, detail: str
    ) -> Iterator[bytes]:
        """Handle a torn frame: repairable only at the tail of the last segment."""
        if not is_last:
            raise StoreBackendError(
                f"{detail} — a torn frame before the final segment means the "
                "rotated sequence is damaged beyond a crash tail"
            )
        if not repair:
            raise StoreBackendError(
                f"{detail} — the log has a torn tail (crash mid-flush); reopen "
                "with repair_torn_tail=True to truncate the partial frame"
            )
        with open(path, "r+b") as fh:
            fh.truncate(keep_bytes)
            if keep_bytes == 0:
                # The crash caught segment creation itself: restore the header
                # so the (now empty) segment stays a valid member of the chain.
                index = int(SEGMENT_NAME_RE.match(os.path.basename(path)).group(1))
                fh.write(SEGMENT_HEADER.pack(SEGMENT_MAGIC, SEGMENT_VERSION, index))
        self._m_repairs.inc()
        return
        yield  # pragma: no cover - generator shape only

    def _validate_segments(self, repair: bool) -> None:
        indices = self._segment_indices()
        for index in indices:
            for _ in self._read_segment(index, index == indices[-1], repair):
                pass

    def iter_ops(self) -> Iterator[Tuple[int, tuple]]:
        """Stream every journaled op (decoded) from the segment sequence."""
        indices = self._segment_indices()
        for index in indices:
            for payload in self._read_segment(index, index == indices[-1], False):
                yield decode_payload(payload)

    def replay_into(self, store) -> int:
        """Re-apply every journaled op to ``store`` (the recovery path).

        The caller (:meth:`GraphStore.recover`) detaches the journal,
        the fault injector, and the completion subscribers first, so
        replay mutates only graph state — it never re-journals, rolls
        fault decisions, or fires completion callbacks.
        """
        count = 0
        for op, args in self.iter_ops():
            if op == OP_MESSAGE:
                store.add_message(*args)
            elif op == OP_EDGE:
                store.add_edge(*args)
            elif op == OP_EVICT:
                store.evict_graph(*args)
            elif op == OP_ABANDON:
                store.abandon_root(*args)
            else:
                store.repair_dangling_edges()
            count += 1
        self._m_replayed.inc(count)
        return count

    # -- journal hooks -----------------------------------------------------------

    def _append(self, payload: bytes) -> None:
        if self._closed:
            raise StoreBackendError("log backend is closed (write after close)")
        # Frame header and payload are buffered as two entries (the
        # flush-time join concatenates them); skipping the per-record
        # concat keeps the hot path allocation-light.
        buffer = self._buffer
        buffer.append(_FRAME_PACK(len(payload), _CRC32(payload)))
        buffer.append(payload)
        self._buffered_bytes += len(payload) + _FRAME_OVERHEAD
        self._buffered_records += 1
        if self._buffered_bytes >= self.flush_bytes:
            self.flush()

    def journal_message(self, message: Message) -> None:
        # The per-message hot path: ``_append`` inlined to spare a call,
        # and the frame crc finished incrementally from the skeleton's
        # cached partial crc — the full payload is never materialised
        # (the flush-time join concatenates header + skeleton + tail).
        if self._closed:
            raise StoreBackendError("log backend is closed (write after close)")
        (skeleton, skeleton_len, skeleton_crc), tail = _message_parts(message)
        length = skeleton_len + len(tail)
        buffer = self._buffer
        buffer.append(_FRAME_PACK(length, _CRC32(tail, skeleton_crc)))
        buffer.append(skeleton)
        buffer.append(tail)
        self._buffered_bytes += length + _FRAME_OVERHEAD
        self._buffered_records += 1
        if self._buffered_bytes >= self.flush_bytes:
            self.flush()

    def journal_edge(self, cause: MessageUid, effect: MessageUid) -> None:
        self._append(bytes((OP_EDGE,)) + _encode_uid(cause) + _encode_uid(effect))

    def journal_evict(self, root: MessageUid) -> None:
        self._append(bytes((OP_EVICT,)) + _encode_uid(root))

    def journal_abandon(self, root: MessageUid) -> None:
        self._append(bytes((OP_ABANDON,)) + _encode_uid(root))

    def journal_repair(self) -> None:
        self._append(bytes((OP_REPAIR,)))

    # -- durability --------------------------------------------------------------

    def flush(self) -> None:
        """Write buffered frames (rotating first if due) and maybe fsync."""
        if self._closed or not self._buffer:
            return
        if self._fh.tell() >= self.segment_bytes:
            self._rotate()
        blob = b"".join(self._buffer)
        self._m_records.inc(self._buffered_records)
        self._buffer = []
        self._buffered_bytes = 0
        self._buffered_records = 0
        self._fh.write(blob)
        self._m_flushes.inc()
        self._m_bytes.inc(len(blob))
        self._sync(force=self.fsync == "flush")

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        self._sync(force=self.fsync in ("flush", "close"))
        self._fh.close()
        self._closed = True


# -- factories -----------------------------------------------------------------


def shard_dir(store_dir: str, index: int) -> str:
    """Segment directory of one shard under a sharded store's root dir."""
    return os.path.join(store_dir, f"shard-{index:02d}")


def make_backend(
    kind: str,
    store_dir: Optional[str] = None,
    create: bool = True,
    registry: Optional[MetricsRegistry] = None,
    **log_options,
) -> GraphStoreBackend:
    """Build one backend for a single (non-sharded) store.

    ``shared`` is not constructible here — it is a store *facade*
    (:class:`repro.graphstore.shared.SharedGraphStoreClient`), not a
    journal behind a local store.
    """
    if kind == "memory":
        return MemoryBackend()
    if kind == "log":
        if store_dir is None:
            raise StoreBackendError("the log backend requires --store-dir")
        return LogBackend(
            store_dir, create=create, registry=registry, **log_options
        )
    if kind == "shared":
        raise StoreBackendError(
            "the shared backend is a store facade — build it via "
            "repro.graphstore.shared, not make_backend()"
        )
    raise StoreBackendError(f"unknown store backend {kind!r}; choose from {BACKENDS}")


def shard_backends(
    kind: str,
    num_shards: int,
    store_dir: Optional[str] = None,
    create: bool = True,
    registry: Optional[MetricsRegistry] = None,
    **log_options,
) -> List[GraphStoreBackend]:
    """Per-shard backends for a :class:`ShardedGraphStore` (``shard-NN/`` dirs)."""
    if kind == "memory":
        return [MemoryBackend() for _ in range(num_shards)]
    if kind == "log":
        if store_dir is None:
            raise StoreBackendError("the log backend requires --store-dir")
        return [
            LogBackend(
                shard_dir(store_dir, index), create=create,
                registry=registry, **log_options,
            )
            for index in range(num_shards)
        ]
    raise StoreBackendError(
        f"cannot build per-shard {kind!r} backends; choose from ('memory', 'log')"
    )
