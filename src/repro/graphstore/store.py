"""In-memory partitioned property-graph store for causal edges.

Substitute for Apache Titan (Section IV-A of the paper): the store lives
*outside* the application (in the simulation, on the monitoring host),
indexes nodes by message uid so edge hops are O(1) hash lookups, and
triggers causal-path construction when a terminal (response) node is
inserted — "the computation of this causal graph is triggered at the
graph store when the edge corresponding to [the] last message in the
causal path … is stored" (Section IV-B).

Hot-path design (the incremental-signature pipeline)
----------------------------------------------------
Path completion used to cost a full BFS over the stored graph per
completed path.  The store now maintains, *as nodes arrive*, a per-root
accumulator holding

* the canonical ``(src, msg_type, dest)`` edge-triple set of every node
  **connected to the root** (insertion-ordered dict keys, deduplicated),
* the member-uid list of those connected nodes (what eviction removes),
* the root node's message type (the path's request type).

Connectivity mirrors exactly what :func:`~repro.graphstore.query.causal_graph_bfs`
computes: a node is connected iff it can be reached from the root
through *present* nodes.  Because effects may arrive before their causes
(and causes may never arrive at all when sampling drops them), the store
propagates "reachable-from-root" marks forward whenever a node insertion
or edge insertion closes a gap — an online, one-pass restatement of the
BFS that keeps :meth:`completed_signature` and :meth:`evict_graph` O(1)
in the size of the already-processed graph.  BFS remains available in
:mod:`repro.graphstore.query` as the query/debug API and as the oracle
the equivalence tests compare against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.errors import GraphStoreError, StoreBackendError, TransientStoreError
from repro.graphstore.backend import GraphStoreBackend, MemoryBackend
from repro.graphstore.partition import HashPartitioner
from repro.lang.ir import CLIENT
from repro.lang.message import Message, MessageUid
from repro.telemetry import MetricsRegistry, get_registry

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector

#: Bucket bounds for eviction / extraction size histograms (node counts).
GRAPH_SIZE_BUCKETS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500)

#: One hop of a causal path: (source component, message type, destination).
EdgeTriple = Tuple[str, str, str]


class GraphNode:
    """A node in the causal graph: ``〈uid_M, info_M〉`` per the paper.

    ``info`` carries the message type, source/destination components and
    (optionally) payload metadata.  One node is allocated per observed
    message, so this is a ``__slots__`` class with ``is_response``
    precomputed at construction.
    """

    __slots__ = ("uid", "msg_type", "src", "dest", "info", "is_response")

    def __init__(
        self,
        uid: MessageUid,
        msg_type: str,
        src: str,
        dest: str,
        info: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.uid = uid
        self.msg_type = msg_type
        self.src = src
        self.dest = dest
        self.info: Mapping[str, object] = {} if info is None else info
        #: Whether this node is a response to the external client.
        self.is_response = dest == CLIENT

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if not isinstance(other, GraphNode):
            return NotImplemented
        return (
            self.uid == other.uid
            and self.msg_type == other.msg_type
            and self.src == other.src
            and self.dest == other.dest
            and dict(self.info) == dict(other.info)
        )

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash((self.uid, self.msg_type, self.src, self.dest))

    def __repr__(self) -> str:
        return (
            f"GraphNode(uid={self.uid!r}, msg_type={self.msg_type!r}, "
            f"src={self.src!r}, dest={self.dest!r}, info={self.info!r})"
        )


class _RootAccumulator:
    """Incremental per-root causal-path state (see module docstring).

    ``edges`` is an insertion-ordered dict used as a deduplicated set of
    canonical hop triples; ``members`` the uids of nodes connected to the
    root (the eviction set); ``root_type`` the root node's message type,
    ``None`` until the root node itself is stored (a completion without a
    stored root is discarded, matching the BFS-era ``GraphStoreError``).
    """

    __slots__ = ("edges", "members", "root_type")

    def __init__(self) -> None:
        self.edges: Dict[EdgeTriple, None] = {}
        self.members: List[MessageUid] = []
        self.root_type: Optional[str] = None


class GraphStore:
    """Distributed-flavoured causal-graph store with a uid hash index.

    Parameters
    ----------
    num_partitions:
        Number of hash partitions (Titan would shard similarly).
    on_path_complete:
        Callback invoked with the *root uid* whenever a response node is
        inserted, signalling that the causal graph rooted there can be
        extracted (the profiler subscribes to this).  Additional
        subscribers register via :meth:`subscribe_path_complete`.
    registry:
        Telemetry registry the store reports into (the process default
        when omitted).  Legacy per-instance tallies (``edge_count``,
        ``index_lookups``, ``cross_partition_edges``) are exposed as
        baseline-delta properties over the shared counters.
    fault_injector:
        Optional :class:`~repro.faults.injector.FaultInjector`.  When its
        write-failure channel fires, :meth:`add_message` raises
        :class:`~repro.errors.TransientStoreError` *before* mutating any
        state, modelling a lost write to the (remote) store — callers
        retry or dead-letter.
    backend:
        Optional :class:`~repro.graphstore.backend.GraphStoreBackend`.
        The default (:class:`~repro.graphstore.backend.MemoryBackend`)
        keeps the pre-backend in-process behaviour bit-identically; a
        journaling backend (the append-only log) has every successful
        mutation recorded after it lands, so :meth:`recover` on a fresh
        store rebuilds the exact graph state after a restart.
    """

    def __init__(
        self,
        num_partitions: int = 4,
        on_path_complete: Optional[Callable[[MessageUid], None]] = None,
        registry: Optional[MetricsRegistry] = None,
        fault_injector: Optional["FaultInjector"] = None,
        backend: Optional[GraphStoreBackend] = None,
    ) -> None:
        self._partitioner = HashPartitioner(num_partitions)
        self._partition_of = self._partitioner.partition_of
        self._partitions: List[Dict[MessageUid, GraphNode]] = [dict() for _ in range(num_partitions)]
        self._out_edges: Dict[MessageUid, Set[MessageUid]] = {}
        self._in_edges: Dict[MessageUid, Set[MessageUid]] = {}
        self._roots: Dict[MessageUid, MessageUid] = {}
        # Incremental-signature state: per-root accumulators, the set of
        # roots each present node is connected to, and the effect uids of
        # raw add_edge() calls whose node is absent (their presence
        # forces evict_graph back onto the traversal path, because only
        # the traversal can follow edges *through* such ghosts).
        self._accumulators: Dict[MessageUid, _RootAccumulator] = {}
        self._reach: Dict[MessageUid, Set[MessageUid]] = {}
        self._dangling_effects: Set[MessageUid] = set()
        self._path_complete_subscribers: List[Callable[[MessageUid], None]] = []
        if on_path_complete is not None:
            self._path_complete_subscribers.append(on_path_complete)
        self.fault_injector = fault_injector
        self.backend = backend if backend is not None else MemoryBackend()
        # The hot path pays one is-None check; only journaling backends
        # receive the per-mutation hooks.  ``_journal_write`` is the
        # bound ``journal_message`` (kept in lockstep with ``_journal``
        # by ``recover()``) so the per-message call skips an attribute
        # chain.
        self._journal = self.backend if self.backend.journaling else None
        self._journal_write = (
            self._journal.journal_message if self._journal is not None else None
        )
        self.telemetry = registry if registry is not None else get_registry()
        self._m_nodes = self.telemetry.counter("graphstore.nodes_added")
        self._m_edges = self.telemetry.counter("graphstore.edges_added")
        self._m_cross = self.telemetry.counter("graphstore.cross_partition_edges")
        self._m_lookups = self.telemetry.counter("graphstore.index_lookups")
        self._m_evictions = self.telemetry.counter("graphstore.evictions")
        self._m_evicted_nodes = self.telemetry.counter("graphstore.evicted_nodes")
        self._m_evict_size = self.telemetry.histogram(
            "graphstore.eviction_size_nodes", buckets=GRAPH_SIZE_BUCKETS
        )
        self._m_signature_reads = self.telemetry.counter("graphstore.signature_reads")
        self._m_dangling_repaired = self.telemetry.counter("graphstore.dangling_edges_repaired")
        # Cached handles for the BFS query path (query.py), so extraction
        # never pays a get-or-create registry lookup per call.
        self._m_bfs_extractions = self.telemetry.counter("graphstore.bfs_extractions")
        self._m_bfs_hops = self.telemetry.counter("graphstore.bfs_hops")
        self._m_extract_size = self.telemetry.histogram(
            "graphstore.extracted_graph_size_nodes", buckets=GRAPH_SIZE_BUCKETS
        )
        self._base_edges = self._m_edges.value
        self._base_cross = self._m_cross.value
        self._base_lookups = self._m_lookups.value

    # -- subscriptions -----------------------------------------------------------

    def subscribe_path_complete(self, callback: Callable[[MessageUid], None]) -> None:
        """Register ``callback(root_uid)`` for response-node insertions.

        This is the public wiring point for completion consumers (the
        tracker, tests, future exporters); multiple subscribers are
        notified in registration order.
        """
        self._path_complete_subscribers.append(callback)

    def _notify_path_complete(self, root: MessageUid) -> None:
        for callback in self._path_complete_subscribers:
            callback(root)

    # -- legacy per-instance tallies (now registry-backed) -----------------------

    @property
    def edge_count(self) -> int:
        """Edges recorded by *this* store instance."""
        return int(self._m_edges.value - self._base_edges)

    @property
    def cross_partition_edges(self) -> int:
        """Edges of this instance whose endpoints hash to different partitions."""
        return int(self._m_cross.value - self._base_cross)

    @property
    def index_lookups(self) -> int:
        """uid hash-index lookups served by this instance."""
        return int(self._m_lookups.value - self._base_lookups)

    # -- writes ---------------------------------------------------------------

    def add_message(self, message: Message) -> GraphNode:
        """Insert the node for ``message`` and edges from each of its causes.

        Unknown cause uids are tolerated (their node may arrive later or
        may have been dropped by sampling); the edge is recorded either
        way so BFS remains correct once both endpoints exist.  The
        per-root signature accumulator is updated in the same pass:
        arriving nodes connected to their root (directly, or retroactively
        once a late cause closes a gap) contribute their hop triple and
        their uid to the root's accumulator.

        Raises :class:`~repro.errors.TransientStoreError` (with no state
        mutated) when the attached fault injector fails this write.
        """
        injector = self.fault_injector
        if injector is not None and injector.should_fail_store_write():
            raise TransientStoreError(f"injected write failure for {message.uid}")
        uid = message.uid
        root_uid = message.root_uid
        root = uid if root_uid is None else root_uid
        # Node metadata beyond the message triple lives in side indexes
        # (``root_of``); no per-node info dict is allocated on this path.
        node = GraphNode(uid, message.msg_type, message.src, message.dest)
        uid_partition = self._partition_of(uid)
        self._partitions[uid_partition][uid] = node
        self._m_nodes.inc()
        self._roots[uid] = root
        if self._dangling_effects:
            self._dangling_effects.discard(uid)
        reach = self._reach.get(uid)
        if reach is None:
            reach = set()
            self._reach[uid] = reach
        accumulators = self._accumulators
        gained: Optional[Set[MessageUid]] = None
        # Cheap equality: compare the cached hashes before falling back to
        # the (Python-level) __eq__ call; roots usually arrive with
        # root_uid=None so the identity branch dominates.
        if uid is root or (uid._hash == root._hash and uid == root):
            acc = accumulators.get(root)
            if acc is None:
                accumulators[root] = acc = _RootAccumulator()
            acc.root_type = message.msg_type
            gained = {root}
        preds = self._in_edges.get(uid)
        if preds:
            # Out-of-order arrival: effects already recorded edges to this
            # node before it was stored; inherit their connectivity now.
            for pred in preds:
                pred_reach = self._reach.get(pred)
                if pred_reach:
                    if gained is None:
                        gained = set(pred_reach)
                    else:
                        gained |= pred_reach
        if gained:
            gained -= reach
            if gained:
                self._gain_reach(uid, node, gained)
        causes = message.cause_uids
        if causes:
            # Inlined add_edge loop: the effect node (this one) is known
            # to be present, its partition is already hashed, and the
            # edge counters are batched per message instead of per edge.
            out_edges = self._out_edges
            reach_index = self._reach
            inn = self._in_edges.get(uid)
            if inn is None:
                self._in_edges[uid] = inn = set()
            # Successors of this node cannot change inside the loop (the
            # loop only touches the causes' out-edge sets), so the
            # no-cascade fast path is decided once.
            uid_succs = out_edges.get(uid)
            triple = (node.src, node.msg_type, node.dest)
            cross = 0
            for cause in causes:
                if cause._hash == uid._hash and cause == uid:
                    raise GraphStoreError(f"self-causation edge on {cause}")
                out = out_edges.get(cause)
                if out is None:
                    out_edges[cause] = out = set()
                out.add(uid)
                inn.add(cause)
                if self._partition_of(cause) != uid_partition:
                    cross += 1
                cause_reach = reach_index.get(cause)
                if cause_reach:
                    new = cause_reach if not reach else cause_reach - reach
                    if new:
                        if uid_succs:
                            self._gain_reach(uid, node, new)
                        else:
                            # In-order arrival: no effects yet, nothing to
                            # cascade — accumulate in place.
                            reach.update(new)
                            for r in new:
                                acc = accumulators.get(r)
                                if acc is None:
                                    accumulators[r] = acc = _RootAccumulator()
                                acc.edges[triple] = None
                                acc.members.append(uid)
            self._m_edges.inc(len(causes))
            if cross:
                self._m_cross.inc(cross)
        if self._journal_write is not None:
            # Journal after the mutation landed and before completion
            # subscribers run (a subscriber may journal an eviction).
            self._journal_write(message)
        if node.is_response:
            self._notify_path_complete(root)
        return node

    def add_messages(self, messages: Iterable[Message]) -> int:
        """Bulk insert a batch of messages; returns how many were stored.

        The write-fault roll of :meth:`add_message` applies per message,
        so callers that pre-roll fault decisions (the batched write
        pipeline) must target a store built without an injector.
        """
        add = self.add_message
        count = 0
        for message in messages:
            add(message)
            count += 1
        return count

    def flush_journal(self) -> None:
        """Push buffered journal frames to the backend's durability point.

        Batch handoff (:meth:`add_messages`) deliberately does *not*
        flush — a per-batch write syscall would dominate the batched
        pipeline's ingest cost.  Durability instead rides the backend's
        byte-bounded auto-flush plus this explicit point, which the
        batched write pipeline hits once per drain (i.e. per flush
        interval) and ``close()`` hits last.
        """
        if self._journal is not None:
            self._journal.flush()

    def add_edge(self, cause: MessageUid, effect: MessageUid) -> None:
        """Record a directed causal edge ``cause → effect``."""
        if cause == effect:
            raise GraphStoreError(f"self-causation edge on {cause}")
        out = self._out_edges.get(cause)
        if out is None:
            self._out_edges[cause] = out = set()
        out.add(effect)
        inn = self._in_edges.get(effect)
        if inn is None:
            self._in_edges[effect] = inn = set()
        inn.add(cause)
        self._m_edges.inc()
        if self._partition_of(cause) != self._partition_of(effect):
            self._m_cross.inc()
        if self._journal is not None:
            self._journal.journal_edge(cause, effect)
        effect_reach = self._reach.get(effect)
        if effect_reach is None:
            # Raw edge to a node that is not (yet) stored; remember it so
            # eviction keeps its traversal semantics for such ghosts.
            self._dangling_effects.add(effect)
            return
        cause_reach = self._reach.get(cause)
        if cause_reach:
            new = cause_reach - effect_reach
            if new:
                self._gain_reach(effect, self._node_at(effect), new)

    def _gain_reach(
        self, uid: MessageUid, node: GraphNode, new_roots: Set[MessageUid]
    ) -> None:
        """Mark ``uid`` reachable from ``new_roots`` and cascade forward.

        ``new_roots`` must be disjoint from the node's current reach set.
        Each (node, root) pair is processed at most once over the life of
        the graph, so the total accumulation work is O(edges) — the same
        asymptotics a single BFS pays, amortised over insertions.
        """
        if not self._out_edges.get(uid):
            # In-order arrival (the common case): the node has no effects
            # yet, so nothing can cascade — skip the worklist machinery.
            self._reach[uid].update(new_roots)
            triple = (node.src, node.msg_type, node.dest)
            accumulators = self._accumulators
            for root in new_roots:
                acc = accumulators.get(root)
                if acc is None:
                    accumulators[root] = acc = _RootAccumulator()
                acc.edges[triple] = None
                acc.members.append(uid)
            return
        stack: List[Tuple[MessageUid, GraphNode, Set[MessageUid]]] = [(uid, node, new_roots)]
        accumulators = self._accumulators
        reach_index = self._reach
        out_edges = self._out_edges
        while stack:
            uid, node, roots = stack.pop()
            reach = reach_index[uid]
            roots = roots - reach
            if not roots:
                continue
            reach.update(roots)
            triple = (node.src, node.msg_type, node.dest)
            for root in roots:
                acc = accumulators.get(root)
                if acc is None:
                    accumulators[root] = acc = _RootAccumulator()
                acc.edges[triple] = None
                acc.members.append(uid)
            succs = out_edges.get(uid)
            if succs:
                for succ in succs:
                    succ_reach = reach_index.get(succ)
                    if succ_reach is None:
                        continue  # effect node absent (sampled away)
                    delta = roots - succ_reach
                    if delta:
                        stack.append((succ, self._node_at(succ), delta))

    def _node_at(self, uid: MessageUid) -> Optional[GraphNode]:
        """Internal node fetch that does not count as an index lookup."""
        return self._partitions[self._partition_of(uid)].get(uid)

    # -- reads ------------------------------------------------------------------

    def get_node(self, uid: MessageUid) -> Optional[GraphNode]:
        """O(1) hash-index lookup of a node by uid."""
        self._m_lookups.inc()
        return self._partitions[self._partition_of(uid)].get(uid)

    def contains(self, uid: MessageUid) -> bool:
        """Whether ``uid``'s node is stored (no index-lookup accounting)."""
        return self._partitions[self._partition_of(uid)].get(uid) is not None

    def require_node(self, uid: MessageUid) -> GraphNode:
        node = self.get_node(uid)
        if node is None:
            raise GraphStoreError(f"unknown node uid {uid}")
        return node

    def successors(self, uid: MessageUid) -> Set[MessageUid]:
        """Effects directly caused by ``uid`` (defensive copy)."""
        return set(self._out_edges.get(uid, ()))

    def predecessors(self, uid: MessageUid) -> Set[MessageUid]:
        """Direct causes of ``uid`` (defensive copy)."""
        return set(self._in_edges.get(uid, ()))

    def iter_successors(self, uid: MessageUid) -> Iterator[MessageUid]:
        """Copy-free iteration over the effects of ``uid``.

        Do not mutate the store while iterating; use :meth:`successors`
        when a stable snapshot is needed.
        """
        return iter(self._out_edges.get(uid, ()))

    def iter_predecessors(self, uid: MessageUid) -> Iterator[MessageUid]:
        """Copy-free iteration over the direct causes of ``uid``.

        Do not mutate the store while iterating; use :meth:`predecessors`
        when a stable snapshot is needed.
        """
        return iter(self._in_edges.get(uid, ()))

    def node_count(self) -> int:
        return sum(len(p) for p in self._partitions)

    def root_of(self, uid: MessageUid) -> Optional[MessageUid]:
        """Root (external request) uid recorded for ``uid``, if any."""
        return self._roots.get(uid)

    def all_uids(self) -> Iterable[MessageUid]:
        for part in self._partitions:
            yield from part.keys()

    # -- incremental signatures ---------------------------------------------------

    def completed_signature(
        self, root: MessageUid
    ) -> Optional[Tuple[str, Tuple[EdgeTriple, ...]]]:
        """``(request_type, edge_triples)`` accumulated for ``root``.

        Returns ``None`` when the root node itself was never stored
        (sampled away, or already evicted) — the same condition under
        which BFS extraction raises and the tracker discards the
        completion.  The triples are the hops of every node connected to
        the root, deduplicated, in first-connection order; callers
        needing the canonical (sorted) form sort the handful of
        component-level hops themselves.
        """
        acc = self._accumulators.get(root)
        if acc is None or acc.root_type is None:
            return None
        self._m_signature_reads.inc()
        return acc.root_type, tuple(acc.edges)

    def graph_members(self, root: MessageUid) -> Tuple[MessageUid, ...]:
        """Uids currently accumulated as connected to ``root``.

        Exposed for tests and debugging; eviction consumes the same list.
        """
        acc = self._accumulators.get(root)
        if acc is None:
            return ()
        return tuple(acc.members)

    # -- maintenance ---------------------------------------------------------------

    def evict_graph(self, root: MessageUid) -> int:
        """Remove the nodes/edges of a completed causal graph to bound memory.

        Returns the number of nodes removed.  The simulation calls this
        after the profiler has consumed a completed path.  When ``root``
        has an accumulator (the hot path), the member list is dropped
        directly — no re-traversal; otherwise (root never stored, or raw
        dangling edges present) the legacy reachability sweep runs.
        """
        acc = self._accumulators.get(root)
        if acc is None or acc.root_type is None or self._dangling_effects:
            removed = self._evict_by_traversal(root)
        else:
            del self._accumulators[root]
            removed = self._remove_all(acc.members)
        self._m_evictions.inc()
        self._m_evicted_nodes.inc(removed)
        self._m_evict_size.observe(removed)
        if self._journal is not None:
            self._journal.journal_evict(root)
            self._journal.flush()
        return removed

    def abandon_root(self, root: MessageUid) -> int:
        """Remove every node recorded against ``root``, completed or not.

        Eviction (:meth:`evict_graph`) follows edges, so it cannot clean
        up after a *lost* root: when the external-request message is
        dropped, its descendants are stored with ``root`` in the side
        index but nothing connects them.  The tracker's path-abandonment
        timeout calls this to reclaim such partial graphs.  O(stored
        nodes) per call — acceptable on the (rare) abandonment path, and
        the store stays small because completed graphs are evicted
        continuously.  Returns the number of nodes removed.
        """
        self._accumulators.pop(root, None)
        members = [uid for uid, r in self._roots.items() if r == root]
        removed = self._remove_all(members)
        self._m_evictions.inc()
        self._m_evicted_nodes.inc(removed)
        self._m_evict_size.observe(removed)
        if self._journal is not None:
            self._journal.journal_abandon(root)
            self._journal.flush()
        return removed

    def _evict_by_traversal(self, root: MessageUid) -> int:
        """Reachability sweep (the pre-incremental eviction semantics)."""
        frontier = [root]
        seen: Set[MessageUid] = set()
        while frontier:
            uid = frontier.pop()
            if uid in seen:
                continue
            seen.add(uid)
            frontier.extend(self._out_edges.get(uid, ()))
        return self._remove_all(seen)

    def _unlink_edges(self, uid: MessageUid) -> None:
        """Drop every in/out edge touching ``uid`` from both indexes."""
        succs = self._out_edges.pop(uid, None)
        if succs:
            for succ in succs:
                in_set = self._in_edges.get(succ)
                if in_set is not None:
                    in_set.discard(uid)
        preds = self._in_edges.pop(uid, None)
        if preds:
            for pred in preds:
                out_set = self._out_edges.get(pred)
                if out_set is not None:
                    out_set.discard(uid)

    def repair_dangling_edges(self) -> int:
        """Detach raw edges whose effect node was never stored.

        ``add_edge`` tolerates edges to absent nodes because the node may
        still arrive; under message loss it never does, and each such
        ghost pins :meth:`evict_graph` on the traversal fallback forever.
        This sweep — the tracker runs it from its maintenance pass —
        unlinks the ghosts' edges (the same unlink core eviction uses)
        and restores the O(1) eviction path.  Returns the number of ghost
        uids repaired.
        """
        if not self._dangling_effects:
            return 0
        repaired = 0
        for ghost in sorted(self._dangling_effects):
            if self._node_at(ghost) is not None:
                # The node arrived after all (defensive: add_message
                # already clears it from the dangling set).
                continue
            self._unlink_edges(ghost)
            repaired += 1
        self._dangling_effects.clear()
        if repaired:
            self._m_dangling_repaired.inc(repaired)
        if self._journal is not None:
            self._journal.journal_repair()
            self._journal.flush()
        return repaired

    def _remove_all(self, uids: Iterable[MessageUid]) -> int:
        removed = 0
        partitions = self._partitions
        partition_of = self._partition_of
        roots = self._roots
        reach_index = self._reach
        accumulators = self._accumulators
        for uid in uids:
            part = partitions[partition_of(uid)]
            if part.pop(uid, None) is None:
                continue  # never stored, or already swept by an overlapping graph
            removed += 1
            self._unlink_edges(uid)
            del roots[uid]
            del reach_index[uid]
            # The uid may itself be the root of an accumulator (bridged
            # graphs); dropping it keeps completed_signature honest.
            if accumulators:
                accumulators.pop(uid, None)
        return removed

    # -- backend lifecycle ---------------------------------------------------------

    @property
    def backend_kind(self) -> str:
        """The attached backend's kind (``memory``/``log``)."""
        return self.backend.kind

    def recover(self) -> int:
        """Rebuild graph state by replaying the backend's journal.

        Call on a *fresh* store opened over an existing log directory
        (``LogBackend(..., create=False)``).  Replay detaches the
        journal (ops must not re-journal), the fault injector (recovery
        is not a run — no seeded decision stream may be consumed), and
        the completion subscribers (completions already fired in the
        crashed process; replay must not re-trigger the profiler).
        Telemetry counters do tick during replay — recovery is real work
        this process performs — so recover into a private registry when
        counter deltas matter.  Returns the number of ops replayed.
        """
        backend = self.backend
        if not backend.journaling:
            return 0
        if self.node_count() or self._roots:
            raise StoreBackendError(
                "recover() requires an empty store — open a fresh store over "
                "the existing log directory first"
            )
        journal, self._journal = self._journal, None
        journal_write, self._journal_write = self._journal_write, None
        injector, self.fault_injector = self.fault_injector, None
        subscribers = self._path_complete_subscribers
        self._path_complete_subscribers = []
        try:
            return backend.replay_into(self)
        finally:
            self._journal = journal
            self._journal_write = journal_write
            self.fault_injector = injector
            self._path_complete_subscribers = subscribers

    def close(self) -> None:
        """Flush and close the backend (idempotent; memory is a no-op)."""
        self.backend.close()
