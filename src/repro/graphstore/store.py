"""In-memory partitioned property-graph store for causal edges.

Substitute for Apache Titan (Section IV-A of the paper): the store lives
*outside* the application (in the simulation, on the monitoring host),
indexes nodes by message uid so edge hops are O(1) hash lookups, and
triggers causal-path construction when a terminal (response) node is
inserted — "the computation of this causal graph is triggered at the
graph store when the edge corresponding to [the] last message in the
causal path … is stored" (Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Set

from repro.errors import GraphStoreError
from repro.graphstore.partition import HashPartitioner
from repro.lang.ir import CLIENT
from repro.lang.message import Message, MessageUid
from repro.telemetry import MetricsRegistry, get_registry

#: Bucket bounds for eviction / extraction size histograms (node counts).
GRAPH_SIZE_BUCKETS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500)


@dataclass(frozen=True)
class GraphNode:
    """A node in the causal graph: ``〈uid_M, info_M〉`` per the paper.

    ``info`` carries the message type, source/destination components and
    (optionally) payload metadata.
    """

    uid: MessageUid
    msg_type: str
    src: str
    dest: str
    info: Mapping[str, object] = field(default_factory=dict)

    @property
    def is_response(self) -> bool:
        """Whether this node is a response to the external client."""
        return self.dest == CLIENT


class GraphStore:
    """Distributed-flavoured causal-graph store with a uid hash index.

    Parameters
    ----------
    num_partitions:
        Number of hash partitions (Titan would shard similarly).
    on_path_complete:
        Callback invoked with the *root uid* whenever a response node is
        inserted, signalling that the causal graph rooted there can be
        extracted (the profiler subscribes to this).  Additional
        subscribers register via :meth:`subscribe_path_complete`.
    registry:
        Telemetry registry the store reports into (the process default
        when omitted).  Legacy per-instance tallies (``edge_count``,
        ``index_lookups``, ``cross_partition_edges``) are exposed as
        baseline-delta properties over the shared counters.
    """

    def __init__(
        self,
        num_partitions: int = 4,
        on_path_complete: Optional[Callable[[MessageUid], None]] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._partitioner = HashPartitioner(num_partitions)
        self._partitions: List[Dict[MessageUid, GraphNode]] = [dict() for _ in range(num_partitions)]
        self._out_edges: Dict[MessageUid, Set[MessageUid]] = {}
        self._in_edges: Dict[MessageUid, Set[MessageUid]] = {}
        self._roots: Dict[MessageUid, MessageUid] = {}
        self._path_complete_subscribers: List[Callable[[MessageUid], None]] = []
        if on_path_complete is not None:
            self._path_complete_subscribers.append(on_path_complete)
        self.telemetry = registry if registry is not None else get_registry()
        self._m_nodes = self.telemetry.counter("graphstore.nodes_added")
        self._m_edges = self.telemetry.counter("graphstore.edges_added")
        self._m_cross = self.telemetry.counter("graphstore.cross_partition_edges")
        self._m_lookups = self.telemetry.counter("graphstore.index_lookups")
        self._m_evictions = self.telemetry.counter("graphstore.evictions")
        self._m_evicted_nodes = self.telemetry.counter("graphstore.evicted_nodes")
        self._m_evict_size = self.telemetry.histogram(
            "graphstore.eviction_size_nodes", buckets=GRAPH_SIZE_BUCKETS
        )
        self._base_edges = self._m_edges.value
        self._base_cross = self._m_cross.value
        self._base_lookups = self._m_lookups.value

    # -- subscriptions -----------------------------------------------------------

    def subscribe_path_complete(self, callback: Callable[[MessageUid], None]) -> None:
        """Register ``callback(root_uid)`` for response-node insertions.

        This is the public wiring point for completion consumers (the
        tracker, tests, future exporters); multiple subscribers are
        notified in registration order.
        """
        self._path_complete_subscribers.append(callback)

    def _notify_path_complete(self, root: MessageUid) -> None:
        for callback in self._path_complete_subscribers:
            callback(root)

    # -- legacy per-instance tallies (now registry-backed) -----------------------

    @property
    def edge_count(self) -> int:
        """Edges recorded by *this* store instance."""
        return int(self._m_edges.value - self._base_edges)

    @property
    def cross_partition_edges(self) -> int:
        """Edges of this instance whose endpoints hash to different partitions."""
        return int(self._m_cross.value - self._base_cross)

    @property
    def index_lookups(self) -> int:
        """uid hash-index lookups served by this instance."""
        return int(self._m_lookups.value - self._base_lookups)

    # -- writes ---------------------------------------------------------------

    def add_message(self, message: Message) -> GraphNode:
        """Insert the node for ``message`` and edges from each of its causes.

        Unknown cause uids are tolerated (their node may arrive later or
        may have been dropped by sampling); the edge is recorded either
        way so BFS remains correct once both endpoints exist.
        """
        node = GraphNode(
            uid=message.uid,
            msg_type=message.msg_type,
            src=message.src,
            dest=message.dest,
            info={"root_uid": message.root_uid},
        )
        self._put_node(node)
        root = message.root_uid if message.root_uid is not None else message.uid
        self._roots[message.uid] = root
        for cause in sorted(message.cause_uids):
            self.add_edge(cause, message.uid)
        if node.is_response:
            self._notify_path_complete(root)
        return node

    def add_edge(self, cause: MessageUid, effect: MessageUid) -> None:
        """Record a directed causal edge ``cause → effect``."""
        if cause == effect:
            raise GraphStoreError(f"self-causation edge on {cause}")
        self._out_edges.setdefault(cause, set()).add(effect)
        self._in_edges.setdefault(effect, set()).add(cause)
        self._m_edges.inc()
        if self._partitioner.partition_of(cause) != self._partitioner.partition_of(effect):
            self._m_cross.inc()

    def _put_node(self, node: GraphNode) -> None:
        part = self._partitions[self._partitioner.partition_of(node.uid)]
        part[node.uid] = node
        self._m_nodes.inc()

    # -- reads ------------------------------------------------------------------

    def get_node(self, uid: MessageUid) -> Optional[GraphNode]:
        """O(1) hash-index lookup of a node by uid."""
        self._m_lookups.inc()
        part = self._partitions[self._partitioner.partition_of(uid)]
        return part.get(uid)

    def require_node(self, uid: MessageUid) -> GraphNode:
        node = self.get_node(uid)
        if node is None:
            raise GraphStoreError(f"unknown node uid {uid}")
        return node

    def successors(self, uid: MessageUid) -> Set[MessageUid]:
        """Effects directly caused by ``uid``."""
        return set(self._out_edges.get(uid, ()))

    def predecessors(self, uid: MessageUid) -> Set[MessageUid]:
        """Direct causes of ``uid``."""
        return set(self._in_edges.get(uid, ()))

    def node_count(self) -> int:
        return sum(len(p) for p in self._partitions)

    def root_of(self, uid: MessageUid) -> Optional[MessageUid]:
        """Root (external request) uid recorded for ``uid``, if any."""
        return self._roots.get(uid)

    def all_uids(self) -> Iterable[MessageUid]:
        for part in self._partitions:
            yield from part.keys()

    # -- maintenance ---------------------------------------------------------------

    def evict_graph(self, root: MessageUid) -> int:
        """Remove the nodes/edges of a completed causal graph to bound memory.

        Returns the number of nodes removed.  The simulation calls this
        after the profiler has consumed a completed path.
        """
        removed = 0
        frontier = [root]
        seen: Set[MessageUid] = set()
        while frontier:
            uid = frontier.pop()
            if uid in seen:
                continue
            seen.add(uid)
            frontier.extend(self._out_edges.get(uid, ()))
        for uid in seen:
            part = self._partitions[self._partitioner.partition_of(uid)]
            if uid in part:
                del part[uid]
                removed += 1
            for succ in self._out_edges.pop(uid, set()):
                self._in_edges.get(succ, set()).discard(uid)
            for pred in self._in_edges.pop(uid, set()):
                self._out_edges.get(pred, set()).discard(uid)
            self._roots.pop(uid, None)
        self._m_evictions.inc()
        self._m_evicted_nodes.inc(removed)
        self._m_evict_size.observe(removed)
        return removed
