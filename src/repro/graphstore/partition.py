"""Hash partitioning for the distributed graph store.

The paper stores causal edges in Apache Titan, a *distributed* graph
store external to the application.  We reproduce the distribution aspect
with deterministic hash partitioning of nodes across a configurable
number of partitions; queries that hop edges may cross partitions, and
the store counts those crossings so ablation benchmarks can report
partition-locality statistics.
"""

from __future__ import annotations

import zlib

from repro.errors import GraphStoreError
from repro.lang.message import MessageUid


class HashPartitioner:
    """Maps message uids to partitions with a stable (non-salted) hash.

    ``zlib.crc32`` is used instead of :func:`hash` because Python salts
    string hashes per process; determinism across runs is required for
    reproducible simulations.
    """

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise GraphStoreError(f"num_partitions must be >= 1, got {num_partitions}")
        self.num_partitions = int(num_partitions)

    def partition_of(self, uid: MessageUid) -> int:
        """Partition index for ``uid`` (stable across processes).

        The crc of the uid triple is intrinsic to the uid, so it is
        computed once and cached on the uid itself — ``add_message`` and
        ``get_node`` hash the same uid repeatedly on the hot path.
        """
        crc = uid._crc
        if crc is None:
            key = f"{uid.address}/{uid.process_id}/{uid.seq}".encode("utf-8")
            crc = zlib.crc32(key)
            object.__setattr__(uid, "_crc", crc)
        return crc % self.num_partitions
