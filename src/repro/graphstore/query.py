"""Graph-store queries: BFS causal-graph extraction (Section IV-B).

A causal path is reconstructed "by initiating BFS starting with the
unique identifier of [the] message corresponding to the external user
request, until the node corresponding to the response from the
application is obtained"; each hop is an O(1) hash-index lookup, giving
O(|causal graph(M)|) total work.

Since the incremental-signature rework (see :mod:`repro.graphstore.store`)
this BFS is no longer on the completion hot path: the tracker reads
accumulated signatures in O(1).  It remains the query/debug API and the
oracle the equivalence tests compare the incremental signatures against.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import FrozenSet, List, Set, Tuple

from repro.errors import GraphStoreError
from repro.graphstore.store import EdgeTriple, GraphNode, GraphStore
from repro.lang.message import MessageUid

__all__ = [
    "CausalGraphResult",
    "EdgeTriple",
    "ancestors_of",
    "causal_graph_bfs",
    "reachable_set",
    "to_dot",
]


@dataclass(frozen=True)
class CausalGraphResult:
    """The causal graph induced by one external request.

    ``edges`` are canonical (sorted, deduplicated) component-level hops;
    ``nodes`` the message nodes visited in BFS order; ``complete`` whether
    a response node was reached.
    """

    root: MessageUid
    nodes: Tuple[GraphNode, ...]
    edges: Tuple[EdgeTriple, ...]
    complete: bool

    @property
    def signature(self) -> Tuple[EdgeTriple, ...]:
        """Canonical identity of the causal path (for path-profile counting)."""
        return self.edges


def causal_graph_bfs(store: GraphStore, root: MessageUid) -> CausalGraphResult:
    """Extract the causal graph rooted at external request ``root`` by BFS.

    Accepts a single :class:`GraphStore` or a
    :class:`~repro.graphstore.sharded.ShardedGraphStore`: root-sharding
    keeps each causal graph shard-local, so the BFS routes to the
    owning shard and never pays cross-shard probes per hop (it falls
    back to facade-wide fan-out reads only if the root was stored
    outside its home shard, e.g. via raw ``add_edge`` test setups).

    Raises :class:`~repro.errors.GraphStoreError` if the root node is not
    present in the store.
    """
    shard_for_root = getattr(store, "shard_for_root", None)
    if shard_for_root is not None:
        home = shard_for_root(root)
        if home.contains(root):
            store = home
    root_node = store.get_node(root)
    if root_node is None:
        raise GraphStoreError(f"causal-graph root {root} not found in store")
    visited: Set[MessageUid] = {root}
    order: List[GraphNode] = [root_node]
    edge_set: Set[EdgeTriple] = {(root_node.src, root_node.msg_type, root_node.dest)}
    complete = root_node.is_response
    hops = 0
    queue: deque = deque([root])
    while queue:
        uid = queue.popleft()
        for succ in sorted(store.iter_successors(uid)):
            hops += 1
            node = store.get_node(succ)
            if node is None:
                # The effect node was sampled away or not yet stored; the
                # edge alone carries no component information, skip it.
                continue
            edge_set.add((node.src, node.msg_type, node.dest))
            if node.is_response:
                complete = True
            if succ not in visited:
                visited.add(succ)
                order.append(node)
                queue.append(succ)
    # Instrument handles are created once per store (no get-or-create
    # registry lookup per extraction).
    store._m_bfs_extractions.inc()
    store._m_bfs_hops.inc(hops)
    store._m_extract_size.observe(len(order))
    return CausalGraphResult(
        root=root,
        nodes=tuple(order),
        edges=tuple(sorted(edge_set)),
        complete=complete,
    )


def reachable_set(store: GraphStore, root: MessageUid) -> FrozenSet[MessageUid]:
    """All message uids causally downstream of ``root`` (including it)."""
    visited: Set[MessageUid] = set()
    queue: deque = deque([root])
    while queue:
        uid = queue.popleft()
        if uid in visited:
            continue
        visited.add(uid)
        queue.extend(store.iter_successors(uid))
    return frozenset(visited)


def to_dot(store: GraphStore, root: MessageUid, title: str = "causal graph") -> str:
    """Render the causal graph rooted at ``root`` as Graphviz DOT.

    Handy for debugging and documentation: pipe the output through
    ``dot -Tsvg`` to visualise exactly which message instances caused
    which (the dashed-arrow diagrams of the paper's Figs. 1–2).
    """
    result = causal_graph_bfs(store, root)
    lines = [
        "digraph causal {",
        f'  label="{title}";',
        "  rankdir=LR;",
        "  node [shape=box, fontsize=10];",
    ]
    ids = {node.uid: f"n{i}" for i, node in enumerate(result.nodes)}
    for node in result.nodes:
        shape = ", style=bold" if node.is_response else ""
        lines.append(
            f'  {ids[node.uid]} [label="{node.msg_type}\\n{node.uid}"{shape}];'
        )
    for node in result.nodes:
        for succ in sorted(store.iter_successors(node.uid)):
            if succ in ids:
                lines.append(f"  {ids[node.uid]} -> {ids[succ]};")
    lines.append("}")
    return "\n".join(lines)


def ancestors_of(store: GraphStore, uid: MessageUid) -> FrozenSet[MessageUid]:
    """All message uids causally upstream of ``uid`` (excluding it)."""
    visited: Set[MessageUid] = set()
    queue: deque = deque(store.iter_predecessors(uid))
    while queue:
        current = queue.popleft()
        if current in visited:
            continue
        visited.add(current)
        queue.extend(store.iter_predecessors(current))
    return frozenset(visited)
