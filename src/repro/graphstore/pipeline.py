"""Batched write pipeline: per-shard buffers between tracker and store.

Dapper-style tracers keep instrumentation overhead low by *buffering*
span writes and flushing them in batches; the same shape applies to the
DCA monitoring host.  :class:`BatchedWritePipeline` sits between
:class:`~repro.core.causal_graph.DirectCausalityTracker` and the graph
store: ``observe``-side calls append messages to a per-shard buffer, and
buffers are flushed

* **size-bounded** — a shard's buffer reaching ``batch_size`` flushes
  that shard immediately, and
* **tick-bounded** — :meth:`tick` (called from the tracker's
  per-interval maintenance pass) flushes everything at least every
  ``flush_interval_minutes`` of simulated time, and
* **on demand** — :meth:`flush` drains every buffer (the tracker drains
  before processing path completions, so batching never delays a
  completion past the flush that observes it).

Batching amortises the per-write fixed costs — flush timing, batch
telemetry, retry/backoff bookkeeping, fault-window evaluation — across
the batch, while preserving the tracker's semantics exactly:

* **Ordering** — all messages of one root route to one shard and each
  shard buffer is FIFO, so per-root arrival order is preserved; shards
  flush in index order, so the interleaving is deterministic.
* **Exactly-once + dead-letter** — the store-write fault channel is
  rolled at :meth:`submit` time, in arrival order, with the same
  roll-per-attempt pattern the unbatched retry loop uses, so the seeded
  decision stream (and therefore every retry, backoff and dead-letter
  count) is identical to unbatched ingest at *any* batch size.
  Dead-lettered messages are parked in a bounded
  :class:`DeadLetterQueue` instead of being silently dropped.

The pipeline writes through ``store.shards`` (a
:class:`~repro.graphstore.sharded.ShardedGraphStore`) or treats a plain
:class:`~repro.graphstore.store.GraphStore` as a single shard; either
way the write targets must carry no fault injector of their own (the
pipeline owns the write-fault roll).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List, Optional

from repro.errors import GraphStoreError
from repro.lang.message import Message
from repro.telemetry import MetricsRegistry, get_registry

#: Bucket bounds for the flushed-batch-size histogram (message counts).
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


class DeadLetterQueue:
    """Bounded queue of messages that exhausted their store-write retries.

    The queue exists for inspection and (future) replay; unbounded it
    would grow forever under a sustained fault plan, so it keeps at most
    ``max_size`` messages — when full, the *oldest* entry is dropped and
    ``store.dead_letter_dropped`` counts the loss.  ``max_size <= 0``
    disables parking entirely (every dead letter is dropped and
    counted), preserving the old counted-and-dropped behaviour.
    """

    def __init__(self, max_size: int = 256, registry: Optional[MetricsRegistry] = None) -> None:
        self.max_size = int(max_size)
        self.telemetry = registry if registry is not None else get_registry()
        self._items: Deque[Message] = deque()
        self._m_dropped = self.telemetry.counter("store.dead_letter_dropped")
        self._m_purged = self.telemetry.counter("store.dead_letter_purged")
        self._m_depth = self.telemetry.gauge("store.dead_letter_depth")

    @property
    def depth(self) -> int:
        """Messages currently parked (the ``dead_letter_depth`` gauge value)."""
        return len(self._items)

    def append(self, message: Message) -> None:
        items = self._items
        if self.max_size <= 0:
            self._m_dropped.inc()
            return
        if len(items) >= self.max_size:
            items.popleft()
            self._m_dropped.inc()
        items.append(message)
        self._m_depth.set(len(items))

    def drain(self) -> List[Message]:
        """Remove and return every parked message (oldest first)."""
        drained = list(self._items)
        self._items.clear()
        self._m_depth.set(0)
        return drained

    def purge_roots(self, roots) -> List[Message]:
        """Remove parked messages belonging to ``roots``; return them.

        Called by the tracker's abandonment sweep: a dead letter whose
        root has been reclaimed can never be usefully replayed (doing so
        would resurrect the abandoned root), so keeping it parked would
        account the same uid as both dead-lettered-pending and
        abandoned.  Purged messages are counted separately
        (``store.dead_letter_purged``) so the dead-letter ledger stays
        exact: ``tracker.dead_letters == depth + dropped + purged``.
        """
        root_set = set(roots)
        if not root_set or not self._items:
            return []
        purged: List[Message] = []
        kept: Deque[Message] = deque()
        for message in self._items:
            root = message.root_uid if message.root_uid is not None else message.uid
            if root in root_set:
                purged.append(message)
            else:
                kept.append(message)
        if purged:
            self._items = kept
            self._m_purged.inc(len(purged))
            self._m_depth.set(len(kept))
        return purged

    @property
    def dropped(self) -> int:
        """Messages dropped because the queue was full (registry-backed)."""
        return int(self._m_dropped.value)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Message]:
        return iter(self._items)


class BatchedWritePipeline:
    """Size- and tick-bounded buffered writer in front of the graph store."""

    def __init__(
        self,
        store,
        batch_size: int = 32,
        flush_interval_minutes: float = 1.0,
        registry: Optional[MetricsRegistry] = None,
        fault_injector=None,
        max_write_retries: int = 3,
        retry_backoff_ms: float = 5.0,
        dead_letters: Optional[DeadLetterQueue] = None,
    ) -> None:
        if batch_size < 1:
            raise GraphStoreError(f"batch_size must be >= 1, got {batch_size}")
        if flush_interval_minutes <= 0:
            raise GraphStoreError(
                f"flush_interval_minutes must be > 0, got {flush_interval_minutes}"
            )
        self.store = store
        self.batch_size = int(batch_size)
        self.flush_interval_minutes = float(flush_interval_minutes)
        self.fault_injector = fault_injector
        self.max_write_retries = int(max_write_retries)
        self.retry_backoff_ms = float(retry_backoff_ms)
        shards = getattr(store, "shards", None)
        self._targets = list(shards) if shards is not None else [store]
        for target in self._targets:
            if target.fault_injector is not None:
                raise GraphStoreError(
                    "batched write targets must not roll their own fault "
                    "injector (the pipeline owns the write-fault channel)"
                )
        if len(self._targets) > 1:
            self._route = store.shard_index_of
        else:
            self._route = None
        self._buffers: List[List[Message]] = [[] for _ in self._targets]
        self._buffered = 0
        # Uids currently sitting in a buffer: the dead-letter
        # suppression check must see writes that have been accepted but
        # not yet flushed into the store.
        self._buffered_uids: set = set()
        self._last_flush_minute = 0.0
        #: Optional :class:`~repro.sim.tap.SimTap` (shared with the
        #: tracker via ``attach_tap``); emit-only.
        self.tap = None
        self.telemetry = registry if registry is not None else get_registry()
        self.dead_letters = (
            dead_letters
            if dead_letters is not None
            else DeadLetterQueue(registry=self.telemetry)
        )
        self._m_batches = self.telemetry.counter("store.write_batches")
        self._m_batched = self.telemetry.counter("store.batched_writes")
        self._m_batch_size = self.telemetry.histogram(
            "store.write_batch_size", buckets=BATCH_SIZE_BUCKETS
        )
        self._flush_timer = self.telemetry.timer("store.flush_seconds")
        # Retry/dead-letter bookkeeping shares the tracker's counter
        # names so the fault CLI summary reads the same either way.
        self._m_retries = self.telemetry.counter("tracker.store_write_retries")
        self._m_backoff_ms = self.telemetry.counter("tracker.retry_backoff_ms")
        self._m_dead_letters = self.telemetry.counter("tracker.dead_letters")
        self._m_dup_suppressed = self.telemetry.counter(
            "tracker.duplicate_dead_letters_suppressed"
        )

    # -- write side --------------------------------------------------------------

    @property
    def buffered(self) -> int:
        """Messages currently waiting in shard buffers."""
        return self._buffered

    def submit(self, message: Message) -> bool:
        """Buffer one message for its shard; returns False when dead-lettered.

        The write-fault channel is rolled here (arrival order) with the
        unbatched retry-loop's exact roll pattern: one roll per attempt
        until success or ``max_write_retries`` retries are exhausted.
        Surviving messages are buffered; exhausted ones go to the
        dead-letter queue immediately.
        """
        injector = self.fault_injector
        if injector is not None:
            failures = 0
            max_retries = self.max_write_retries
            while failures <= max_retries and injector.should_fail_store_write():
                failures += 1
            if failures:
                retries = min(failures, max_retries)
                self._m_retries.inc(retries)
                backoff = self.retry_backoff_ms
                self._m_backoff_ms.inc(backoff * ((1 << retries) - 1))
                if failures > max_retries:
                    # Same suppression rule as the unbatched retry loop:
                    # a uid an earlier duplicate copy already delivered
                    # (buffered or flushed) is not a dead letter — the
                    # write is redundant, not lost.
                    if message.uid in self._buffered_uids or self.store.contains(
                        message.uid
                    ):
                        self._m_dup_suppressed.inc()
                        return True
                    self._m_dead_letters.inc()
                    self.dead_letters.append(message)
                    if self.tap is not None:
                        root = (
                            message.root_uid
                            if message.root_uid is not None
                            else message.uid
                        )
                        self.tap.emit(
                            "dead_letter", uid=repr(message.uid), root=repr(root)
                        )
                    return False
        route = self._route
        index = 0 if route is None else route(
            message.uid if message.root_uid is None else message.root_uid
        )
        buffer = self._buffers[index]
        buffer.append(message)
        self._buffered += 1
        self._buffered_uids.add(message.uid)
        if len(buffer) >= self.batch_size:
            self._flush_shard(index)
        return True

    # -- flush triggers ----------------------------------------------------------

    def tick(self, now_minutes: float) -> int:
        """Tick-bounded trigger: flush everything when the interval elapsed."""
        if now_minutes - self._last_flush_minute >= self.flush_interval_minutes:
            return self.flush(now_minutes)
        return 0

    def flush(self, now_minutes: Optional[float] = None) -> int:
        """Drain every shard buffer (shard-index order); returns messages written.

        A drain is also the journal durability point for journaling
        store backends: size-triggered batch handoffs between drains
        stay buffered (plus the backend's own byte-bounded auto-flush),
        so the write syscall is paid per flush interval, not per batch.
        """
        if now_minutes is not None:
            self._last_flush_minute = float(now_minutes)
        written = 0
        if self._buffered:
            for index, buffer in enumerate(self._buffers):
                if buffer:
                    written += self._flush_shard(index)
        for target in self._targets:
            flush_journal = getattr(target, "flush_journal", None)
            if flush_journal is not None:
                flush_journal()
        return written

    def _flush_shard(self, index: int) -> int:
        buffer = self._buffers[index]
        if not buffer:
            return 0
        self._buffers[index] = []
        self._buffered -= len(buffer)
        with self._flush_timer:
            written = self._targets[index].add_messages(buffer)
        self._m_batches.inc()
        self._m_batched.inc(written)
        self._m_batch_size.observe(written)
        return written
