"""Root-sharded causal-graph store: N independent stores behind one facade.

The paper offloads causal edges to Apache Titan precisely because a
*distributed* store lets provenance capture scale with traffic.  The
single :class:`~repro.graphstore.store.GraphStore` reproduces the hash
*index*; this module reproduces the *scale-out*: a
:class:`ShardedGraphStore` partitions whole causal graphs across
``num_shards`` independent ``GraphStore`` instances, routed by the
**root uid** of each message through the same
:class:`~repro.graphstore.partition.HashPartitioner` (and therefore the
same cached crc32) the in-store partitioning already uses.

Routing rule
------------
Every message carries the uid of the external request at the head of its
causal path (``root_uid``; the root message *is* its own root), so the
entire causal graph of one request lands in exactly one shard.  That
makes the hot per-root operations — signature accumulation, completion,
eviction, abandonment — shard-local and embarrassingly parallel, while
the shard count bounds nothing semantically: each shard runs the full
incremental-signature machinery of PR 2 unchanged.

The one semantic difference from a single store concerns *cross-root*
provenance (a message of request A listing a cause from request B, i.e.
taint through shared component state).  A single store propagates
reachability across such bridges, so the bridged node joins both roots'
signatures; under root-sharding the two graphs may live in different
shards, and the foreign cause is treated exactly like a sampling gap (an
edge whose node never arrives).  Signatures are therefore *root-local*
under sharding.  For bridge-free streams — which is what the runtime's
per-request tracing emits for every path the profiler counts — sharded
and single-store results are identical message for message; the seeded
equivalence suite in ``tests/graphstore/test_sharded_equivalence.py``
pins this.

Maintenance fan-out
-------------------
Reads by bare uid (``get_node``, ``root_of``, edge iteration) fan out
across shards; per-root operations route.  Whole-store maintenance —
:meth:`repair_dangling_edges` and the abandonment sweep
(:meth:`abandon_roots`) — fans out shard by shard, optionally on a
thread pool (``maintenance_workers``).  Shards never touch each other's
state, so the only shared mutable surface under threaded maintenance is
the telemetry registry — use a ``thread_safe`` registry
(:class:`~repro.telemetry.MetricsRegistry`) when enabling it.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import GraphStoreError, TransientStoreError
from repro.graphstore.backend import GraphStoreBackend
from repro.graphstore.partition import HashPartitioner
from repro.graphstore.store import (
    GRAPH_SIZE_BUCKETS,
    EdgeTriple,
    GraphNode,
    GraphStore,
)
from repro.lang.message import Message, MessageUid
from repro.telemetry import MetricsRegistry, get_registry

try:  # pragma: no cover - stdlib, but keep import-failure graceful
    from concurrent.futures import ThreadPoolExecutor
except ImportError:  # pragma: no cover
    ThreadPoolExecutor = None  # type: ignore[assignment]


class ShardedGraphStore:
    """``num_shards`` independent :class:`GraphStore` shards, routed by root uid.

    Drop-in for :class:`GraphStore` everywhere the tracker and the query
    API are concerned: the full read/write/maintenance surface is
    exposed, per-root operations are O(1)-routed to the owning shard,
    and completion callbacks registered via
    :meth:`subscribe_path_complete` fire exactly as they would on a
    single store.

    Parameters
    ----------
    num_shards:
        Number of independent stores (>= 1).
    num_partitions:
        Hash partitions *inside* each shard (the Titan-style node
        index), forwarded to each :class:`GraphStore`.
    on_path_complete / registry:
        As for :class:`GraphStore`.  All shards report into the same
        registry, so the ``graphstore.*`` counters aggregate across the
        fleet.
    fault_injector:
        Write-failure channel rolled *once per* :meth:`add_message`
        **before** routing (the shards themselves are built fault-free),
        so the injected-failure decision stream is identical to a single
        store's regardless of the shard count.
    maintenance_workers:
        When > 1, :meth:`repair_dangling_edges` and
        :meth:`abandon_roots` fan out over shards on a thread pool of
        this size.  Pair with a thread-safe telemetry registry.
    backends:
        Optional per-shard :class:`~repro.graphstore.backend.GraphStoreBackend`
        list (one per shard, e.g. from
        :func:`repro.graphstore.backend.shard_backends`); each shard
        journals into — and recovers from — its own backend, so the
        rotated ``shard-NN/`` log directories stay independent.
    """

    def __init__(
        self,
        num_shards: int = 4,
        num_partitions: int = 4,
        on_path_complete: Optional[Callable[[MessageUid], None]] = None,
        registry: Optional[MetricsRegistry] = None,
        fault_injector=None,
        maintenance_workers: int = 0,
        backends: Optional[Sequence[GraphStoreBackend]] = None,
    ) -> None:
        if num_shards < 1:
            raise GraphStoreError(f"num_shards must be >= 1, got {num_shards}")
        if backends is not None and len(backends) != num_shards:
            raise GraphStoreError(
                f"got {len(backends)} backend(s) for {num_shards} shard(s)"
            )
        self.num_shards = int(num_shards)
        self._router = HashPartitioner(self.num_shards)
        self._shard_of = self._router.partition_of
        self.telemetry = registry if registry is not None else get_registry()
        self.fault_injector = fault_injector
        self.maintenance_workers = int(maintenance_workers)
        self._path_complete_subscribers: List[Callable[[MessageUid], None]] = []
        if on_path_complete is not None:
            self._path_complete_subscribers.append(on_path_complete)
        self.shards: List[GraphStore] = [
            GraphStore(
                num_partitions=num_partitions,
                registry=self.telemetry,
                fault_injector=None,
                backend=backends[index] if backends is not None else None,
            )
            for index in range(self.num_shards)
        ]
        for shard in self.shards:
            shard.subscribe_path_complete(self._notify_path_complete)
        # Facade-level baselines for the legacy per-instance tallies (the
        # shards share one registry, so per-shard deltas would each count
        # the whole fleet's traffic).
        self._m_nodes = self.telemetry.counter("graphstore.nodes_added")
        self._m_edges = self.telemetry.counter("graphstore.edges_added")
        self._m_cross = self.telemetry.counter("graphstore.cross_partition_edges")
        self._m_lookups = self.telemetry.counter("graphstore.index_lookups")
        self._m_cross_shard_reads = self.telemetry.counter("graphstore.cross_shard_reads")
        # Handles the BFS query path expects on any store-like object.
        self._m_bfs_extractions = self.telemetry.counter("graphstore.bfs_extractions")
        self._m_bfs_hops = self.telemetry.counter("graphstore.bfs_hops")
        self._m_extract_size = self.telemetry.histogram(
            "graphstore.extracted_graph_size_nodes", buckets=GRAPH_SIZE_BUCKETS
        )
        self._base_edges = self._m_edges.value
        self._base_cross = self._m_cross.value
        self._base_lookups = self._m_lookups.value

    # -- routing -----------------------------------------------------------------

    def shard_index_of(self, root: MessageUid) -> int:
        """Shard that owns the causal graph rooted at ``root``."""
        return self._shard_of(root)

    def shard_for_root(self, root: MessageUid) -> GraphStore:
        """The :class:`GraphStore` shard that owns ``root``'s graph."""
        return self.shards[self._shard_of(root)]

    def _find_shard_holding(self, uid: MessageUid) -> Optional[GraphStore]:
        """Fan out for the shard whose node index holds ``uid``."""
        for shard in self.shards:
            if shard.contains(uid):
                return shard
        return None

    # -- subscriptions -----------------------------------------------------------

    def subscribe_path_complete(self, callback: Callable[[MessageUid], None]) -> None:
        """Register ``callback(root_uid)`` for response-node insertions."""
        self._path_complete_subscribers.append(callback)

    def _notify_path_complete(self, root: MessageUid) -> None:
        for callback in self._path_complete_subscribers:
            callback(root)

    # -- legacy per-instance tallies ----------------------------------------------

    @property
    def edge_count(self) -> int:
        """Edges recorded through this facade (all shards)."""
        return int(self._m_edges.value - self._base_edges)

    @property
    def cross_partition_edges(self) -> int:
        return int(self._m_cross.value - self._base_cross)

    @property
    def index_lookups(self) -> int:
        return int(self._m_lookups.value - self._base_lookups)

    # -- writes ---------------------------------------------------------------

    def add_message(self, message: Message) -> GraphNode:
        """Route ``message`` to its root's shard and insert it there.

        The write-failure fault channel is rolled here (pre-routing, no
        state mutated on failure) so unbatched sharded ingest consumes
        the injector's decision stream exactly as a single store would.
        """
        injector = self.fault_injector
        if injector is not None and injector.should_fail_store_write():
            raise TransientStoreError(f"injected write failure for {message.uid}")
        root = message.root_uid
        shard = self.shards[self._shard_of(message.uid if root is None else root)]
        return shard.add_message(message)

    def add_messages(self, messages: Sequence[Message]) -> int:
        """Bulk insert; the batched write pipeline groups per shard first.

        Provided for symmetry with :meth:`GraphStore.add_messages`; each
        message is still routed individually (callers with pre-grouped
        batches should write straight to ``shards[i].add_messages``).
        """
        add = self.add_message
        count = 0
        for message in messages:
            add(message)
            count += 1
        return count

    def add_edge(self, cause: MessageUid, effect: MessageUid) -> None:
        """Record a raw causal edge in the shard holding either endpoint.

        Both endpoints of a raw edge must belong to the same causal
        graph (the routing invariant); when neither node is present yet,
        the edge is routed by the effect uid's own hash, matching where
        a root-less effect node would land.
        """
        shard = self._find_shard_holding(effect)
        if shard is None:
            shard = self._find_shard_holding(cause)
        if shard is None:
            shard = self.shards[self._shard_of(effect)]
        shard.add_edge(cause, effect)

    # -- reads ------------------------------------------------------------------

    def contains(self, uid: MessageUid) -> bool:
        return self._find_shard_holding(uid) is not None

    def get_node(self, uid: MessageUid) -> Optional[GraphNode]:
        """Cross-shard node lookup (one index lookup, N probes worst case)."""
        self._m_lookups.inc()
        shards = self.shards
        node = shards[0]._node_at(uid)
        if node is not None or len(shards) == 1:
            return node
        self._m_cross_shard_reads.inc()
        for shard in shards[1:]:
            node = shard._node_at(uid)
            if node is not None:
                return node
        return None

    def require_node(self, uid: MessageUid) -> GraphNode:
        node = self.get_node(uid)
        if node is None:
            raise GraphStoreError(f"unknown node uid {uid}")
        return node

    def successors(self, uid: MessageUid) -> Set[MessageUid]:
        out: Set[MessageUid] = set()
        for shard in self.shards:
            out.update(shard.iter_successors(uid))
        return out

    def predecessors(self, uid: MessageUid) -> Set[MessageUid]:
        out: Set[MessageUid] = set()
        for shard in self.shards:
            out.update(shard.iter_predecessors(uid))
        return out

    def iter_successors(self, uid: MessageUid) -> Iterator[MessageUid]:
        for shard in self.shards:
            yield from shard.iter_successors(uid)

    def iter_predecessors(self, uid: MessageUid) -> Iterator[MessageUid]:
        for shard in self.shards:
            yield from shard.iter_predecessors(uid)

    def node_count(self) -> int:
        return sum(shard.node_count() for shard in self.shards)

    def root_of(self, uid: MessageUid) -> Optional[MessageUid]:
        for shard in self.shards:
            root = shard.root_of(uid)
            if root is not None:
                return root
        return None

    def all_uids(self) -> Iterable[MessageUid]:
        for shard in self.shards:
            yield from shard.all_uids()

    # -- incremental signatures ---------------------------------------------------

    def completed_signature(
        self, root: MessageUid
    ) -> Optional[Tuple[str, Tuple[EdgeTriple, ...]]]:
        """Shard-local O(1) signature read (see :meth:`GraphStore.completed_signature`)."""
        return self.shards[self._shard_of(root)].completed_signature(root)

    def graph_members(self, root: MessageUid) -> Tuple[MessageUid, ...]:
        return self.shards[self._shard_of(root)].graph_members(root)

    # -- maintenance ---------------------------------------------------------------

    def evict_graph(self, root: MessageUid) -> int:
        return self.shards[self._shard_of(root)].evict_graph(root)

    def abandon_root(self, root: MessageUid) -> int:
        return self.shards[self._shard_of(root)].abandon_root(root)

    def abandon_roots(self, roots: Iterable[MessageUid]) -> int:
        """Abandon many roots in one sweep, grouped (and fanned out) per shard.

        Each shard's O(stored nodes) scan runs once per sweep instead of
        once per root; with ``maintenance_workers`` > 1 the per-shard
        sweeps run concurrently.  Returns total nodes removed.
        """
        by_shard: List[List[MessageUid]] = [[] for _ in self.shards]
        for root in roots:
            by_shard[self._shard_of(root)].append(root)

        def sweep(index: int) -> int:
            shard = self.shards[index]
            removed = 0
            for root in by_shard[index]:
                removed += shard.abandon_root(root)
            return removed

        busy = [i for i, group in enumerate(by_shard) if group]
        return sum(self._fan_out(sweep, busy))

    def repair_dangling_edges(self) -> int:
        """Run the dangling-edge sweep on every shard (fan-out)."""
        def repair(index: int) -> int:
            return self.shards[index].repair_dangling_edges()

        dirty = [i for i, shard in enumerate(self.shards) if shard._dangling_effects]
        return sum(self._fan_out(repair, dirty))

    # -- backend lifecycle ---------------------------------------------------------

    @property
    def backend_kind(self) -> str:
        """Backend kind shared by the shard fleet (``memory``/``log``)."""
        return self.shards[0].backend_kind

    def recover(self) -> int:
        """Replay every shard's journal (shard-index order); returns total ops.

        Shard routing is derived from each message's root uid, so each
        shard's journal replays into the shard that wrote it — the
        recovered placement is identical to the original run's.
        """
        return sum(shard.recover() for shard in self.shards)

    def flush_journal(self) -> None:
        """Hit every shard's journal durability point (shard-index order)."""
        for shard in self.shards:
            shard.flush_journal()

    def close(self) -> None:
        """Flush and close every shard's backend (idempotent)."""
        for shard in self.shards:
            shard.close()

    def _fan_out(self, fn: Callable[[int], int], indexes: Sequence[int]) -> List[int]:
        """Apply ``fn`` to each shard index, threaded when configured.

        Shards share no mutable state with each other, so per-shard
        maintenance is safe to run concurrently; only the telemetry
        registry is shared (use a thread-safe registry with workers).
        """
        if not indexes:
            return []
        workers = self.maintenance_workers
        if workers > 1 and len(indexes) > 1 and ThreadPoolExecutor is not None:
            with ThreadPoolExecutor(max_workers=min(workers, len(indexes))) as pool:
                return list(pool.map(fn, indexes))
        return [fn(index) for index in indexes]
