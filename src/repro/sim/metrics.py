"""Per-interval simulation records and run-level summaries.

The paper's metrics are interval-based:

* **Agility** (SPEC OSG): ``(1/N) (Σ Excess(i) + Σ Shortage(i))`` where
  ``Excess(i) = Cap_prov(i) − Req_min(i)`` when positive and
  ``Shortage(i) = Req_min(i) − Cap_prov(i)`` when positive (Section V-D).
  We compute Excess against *provisioned* capacity (ready + pending +
  draining: everything paid for) and Shortage against *ready* capacity
  (only ready nodes serve), summed over components so misallocation is
  visible.  ``Req_min`` uses the *uninstrumented* demand — capacity
  provisioned to absorb tracking overhead therefore shows up as Excess,
  which is the paper's RQ3 finding for DCA-100%.
* **SLA violation %**: request-weighted fraction of requests whose
  response latency exceeds the SLA, per interval, averaged over the run.
* **Runtime overhead**: instrumentation CPU time relative to base CPU
  time per interval; Fig. 5 reports the mean and the 95% range.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Mapping, Tuple

from repro.errors import EvaluationError


@dataclass(frozen=True)
class ComponentInterval:
    """One component's signals for one monitoring interval."""

    component: str
    base_demand_ms: float
    overhead_ms: float
    capacity_ms: float
    utilization: float
    backlog_ms: float
    ready_nodes: int
    pending_nodes: int
    provisioned_nodes: int
    req_min_nodes: int
    latency_inflation: float

    @property
    def excess_nodes(self) -> int:
        return max(0, self.provisioned_nodes - self.req_min_nodes)

    @property
    def shortage_nodes(self) -> int:
        # SPEC's Cap_prov is *provisioned* capacity: nodes being spun up
        # count (they are paid for and recorded), so shortage reflects
        # under-prediction rather than provisioning latency.  Physical
        # starvation during spin-up still shows up in the SLA metric,
        # which uses ready capacity only.
        return max(0, self.req_min_nodes - self.provisioned_nodes)


@dataclass(frozen=True)
class IntervalRecord:
    """One monitoring interval of the whole simulation."""

    time_minutes: float
    external_arrivals: float
    class_arrivals: Mapping[str, int]
    components: Mapping[str, ComponentInterval]
    infra_nodes: int
    sla_violation_fraction: float
    app_latency_ms: float
    workload_decreasing: bool
    sampled_requests: int

    @property
    def excess(self) -> float:
        return sum(c.excess_nodes for c in self.components.values()) + self.infra_nodes

    @property
    def shortage(self) -> float:
        return sum(c.shortage_nodes for c in self.components.values())

    @property
    def agility_contribution(self) -> float:
        return self.excess + self.shortage

    @property
    def total_base_demand_ms(self) -> float:
        return sum(c.base_demand_ms for c in self.components.values())

    @property
    def total_overhead_ms(self) -> float:
        return sum(c.overhead_ms for c in self.components.values())

    @property
    def overhead_fraction(self) -> float:
        base = self.total_base_demand_ms
        if base <= 0:
            return 0.0
        return self.total_overhead_ms / base


@dataclass
class SimulationResult:
    """Full run: interval records plus run-level metric helpers."""

    manager_name: str
    application: str
    records: List[IntervalRecord] = field(default_factory=list)

    def append(self, record: IntervalRecord) -> None:
        self.records.append(record)

    def _require_records(self) -> None:
        if not self.records:
            raise EvaluationError("simulation produced no interval records")

    # -- headline metrics ----------------------------------------------------------

    def agility(self) -> float:
        """SPEC Agility over the whole run (lower is better, zero perfect)."""
        self._require_records()
        n = len(self.records)
        return sum(r.agility_contribution for r in self.records) / n

    def sla_violation_percent(self) -> float:
        """Request-weighted SLA violation percentage over the run."""
        self._require_records()
        total_requests = sum(r.external_arrivals for r in self.records)
        if total_requests <= 0:
            return 0.0
        violated = sum(r.sla_violation_fraction * r.external_arrivals for r in self.records)
        return 100.0 * violated / total_requests

    def zero_agility_fraction(self) -> float:
        """Fraction of intervals with zero excess and zero shortage."""
        self._require_records()
        zeros = sum(1 for r in self.records if r.agility_contribution == 0)
        return zeros / len(self.records)

    # -- overhead (Fig. 5) -----------------------------------------------------------

    def overhead_mean(self) -> float:
        """Mean runtime overhead fraction across intervals with traffic."""
        self._require_records()
        samples = [r.overhead_fraction for r in self.records if r.total_base_demand_ms > 0]
        if not samples:
            return 0.0
        return sum(samples) / len(samples)

    def overhead_range_95(self) -> Tuple[float, float]:
        """Range containing 95% of per-interval overhead measurements."""
        self._require_records()
        samples = sorted(r.overhead_fraction for r in self.records if r.total_base_demand_ms > 0)
        if not samples:
            return (0.0, 0.0)
        lo_idx = int(0.025 * (len(samples) - 1))
        hi_idx = int(math.ceil(0.975 * (len(samples) - 1)))
        return (samples[lo_idx], samples[hi_idx])

    # -- time series (Fig. 6) ----------------------------------------------------------

    def agility_series(self) -> List[Tuple[float, float]]:
        """(time, excess+shortage) per interval — Fig. 6 agility curves."""
        return [(r.time_minutes, r.agility_contribution) for r in self.records]

    def sla_violation_series(self) -> List[Tuple[float, float]]:
        """(time, % of requests violating SLA) per interval."""
        return [(r.time_minutes, 100.0 * r.sla_violation_fraction) for r in self.records]

    def workload_series(self) -> List[Tuple[float, float]]:
        return [(r.time_minutes, r.external_arrivals) for r in self.records]

    def provisioned_series(self) -> List[Tuple[float, float]]:
        return [
            (r.time_minutes, sum(c.provisioned_nodes for c in r.components.values()) + r.infra_nodes)
            for r in self.records
        ]

    def required_series(self) -> List[Tuple[float, float]]:
        return [
            (r.time_minutes, sum(c.req_min_nodes for c in r.components.values()))
            for r in self.records
        ]

    # -- diagnostics --------------------------------------------------------------------

    def decreasing_interval_violations(self) -> float:
        """SLA violation % restricted to workload-decreasing intervals.

        The paper observes this is ~0: excess capacity pending
        de-provisioning keeps serving (RQ5).
        """
        self._require_records()
        decreasing = [r for r in self.records if r.workload_decreasing]
        if not decreasing:
            return 0.0
        total = sum(r.external_arrivals for r in decreasing)
        if total <= 0:
            return 0.0
        violated = sum(r.sla_violation_fraction * r.external_arrivals for r in decreasing)
        return 100.0 * violated / total
