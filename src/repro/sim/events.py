"""The discrete-event simulation engine.

The tick loop (:meth:`~repro.sim.engine.ClusterSimulator.run`) walks
every interval boundary and re-executes every sampled request through
the real interpreters.  That is the *oracle*: simple, obviously
faithful, and O(duration x sampled traffic).  This module is the fast
path: a priority queue of timestamped events — interval boundaries,
replica start/stop completions, scheduled node crashes, fault-delayed
message deliveries — drained in timestamp order, plus a *converged
replay* fast path that stops re-executing a request class once its
per-execution effects have provably stopped changing.

Parity contract
---------------

For any seeded configuration, ``engine="event"`` must produce results
**bit-identical** to ``engine="tick"``: the same ``IntervalRecord``
stream, the same telemetry snapshot (modulo the volatile keys below),
the same fault/recovery counters.  CI's ``engine-parity`` job enforces
this on every scenario.  The design rules that make it hold:

* Both engines share one superstep
  (:meth:`~repro.sim.engine.ClusterSimulator.run_interval`), so
  everything outside DCA ingestion is identical by construction.
* Arrivals are pre-drawn with the exact scalar RNG calls of the tick
  loop (:meth:`~repro.workloads.generator.WorkloadGenerator.arrivals_series`).
* Every fault channel draws from its own seeded RNG stream, so events
  that only touch disjoint channels may be reordered freely; events on
  the *same* channel keep their tick-relative order.
* Mid-interval events whose effects the tick loop would only apply at
  the next boundary — scheduled node crashes batched by
  ``node_crashes_due`` and fault-delayed deliveries performed by
  ``advance_to`` — are *snapped up* to that boundary, with a queue
  priority that reproduces the tick loop's intra-boundary order.
* Replica start/stop completions fire at their exact ETA; nothing reads
  cluster state between boundaries, so early maturation is unobservable.

Volatile telemetry keys — excluded from parity comparison *and* from
replay capture:

* keys whose base name ends in ``_seconds``: wall-clock timer
  histograms; they measure the host, not the simulation;
* ``graphstore.cross_partition_edges``: a uid-hash *layout* diagnostic
  whose value depends on stale provenance uids retained by capped
  per-node cause sets — it varies a few counts per execution forever
  and cannot converge by design.

Converged replay
----------------

During warmup every live trace of every class is executed for real
while the engine records (a) the per-execution telemetry delta
(captured by diffing the registry around the execution), (b) the
trace's uid-free
:meth:`~repro.sim.runtime.RequestTrace.structural_fingerprint`, and
(c) the *ingestion residue* — a shard/batch-invariant tuple of what
the execution left behind in the write machinery (pipeline buffer
depth, pending completions, dead-letter depth, net store growth).
Cutover is **global and atomic**: only once *every* active class has
shown :data:`REPLAY_CONVERGENCE_STREAK` consecutive executions with an
identical delta, fingerprint, *and* residue does the engine freeze
them all — after first draining the batched write pipeline (journal
flush included) so no buffered write is stranded by the freeze.
Per-class cutover would be unsound — request classes share replica
state (uid factories, provenance taints, component caches), so
skipping one class's executions perturbs the traces of classes still
executing.  Until the global cutover the event engine's ingestion is
*exactly* the tick loop's; after it, each "execution" applies the
frozen delta directly (counter increments, gauge sets, histogram
bucket merges — all integral, so float sums stay exact) and feeds the
profiler through the same
:meth:`~repro.profiling.profiler.CausalPathProfiler.record` call the
tick loop makes.  The streak is deliberately long: measured workloads
show per-class transients of up to 30 executions (capped provenance
sets filling) before the per-execution effects settle, so the
threshold must comfortably exceed them.

Replay is only eligible when ingestion is pure counting — no fault
injector, no path timeout, a memory-backend store
(:attr:`~repro.core.causal_graph.DirectCausalityTracker.supports_snapshot_replay`),
and an ``exact``-mode profiler whose manager cannot downshift it into a
sketch mode mid-run (batched replayed ``profiler.record`` ops are
additive for exact buckets but would perturb space-saving
promotion/eviction order).  Sharded stores and the batched write
pipeline are eligible: ``observe_all`` drains the pipeline at the end
of every execution, so per-execution batch telemetry is a
deterministic function of the converged trace shape and the buffers
are empty at the cutover (the freeze drains them once more,
defensively, before any delta is frozen).  Shard routing is
uid-hash-dependent, but no non-volatile metric is keyed per shard;
hash-variant aggregates are declared volatile above, and any other
unsettled metric can only hold the convergence streak at zero — it can
never diverge after a freeze.  Ineligible configurations still run
under the event engine, with full-fidelity ingestion that is literally
the tick loop's code.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from itertools import count as _counter
from typing import Dict, List, Optional, Tuple

from repro.sim.metrics import SimulationResult

# -- intra-timestamp event priorities -----------------------------------------
#
# Events at the same timestamp drain in priority order; the order mirrors
# the tick loop's intra-boundary sequence (cluster.advance, then node
# crashes, then delayed deliveries inside tracker.advance_to, then the
# interval body).

P_CLUSTER_TRANSITION = 0
P_NODE_CRASH = 1
P_DELAYED_DELIVERY = 2
P_INTERVAL = 3

#: Consecutive identical (delta, fingerprint) executions required before
#: a class cuts over to replay.  Must exceed the longest false plateau
#: observed in the scenario suite (15) with generous margin.
REPLAY_CONVERGENCE_STREAK = 48

#: Registry keys excluded from parity comparison and replay capture
#: (see module docstring for why).
VOLATILE_METRIC_KEYS = frozenset({"graphstore.cross_partition_edges"})
VOLATILE_METRIC_SUFFIX = "_seconds"
#: Backend diagnostics (flush/fsync/rotation/byte counters) are a
#: property of the persistence seam, not the simulated run; every
#: journaling backend reports its own, so they are excluded from both
#: the parity contract and cross-backend digest comparison.
VOLATILE_METRIC_PREFIX = "graphstore.backend_"

#: Metric base names the profiler maintains itself during replay (the
#: frozen delta must not double-count them).  The sketch gauges are
#: updated inside ``profiler.record``/``counts`` too, so they belong
#: here even though replay requires exact mode (where they stay zero).
_PROFILER_LIVE_KEYS = frozenset(
    {
        "profiler.recordings",
        "profiler.path_completions",
        "profiler.sketch_evictions",
        "profiler.estimate_error",
    }
)


def _manager_downshift_mode(manager) -> Optional[str]:
    """The staleness detector's precision downshift, if the manager has one."""
    detector = getattr(manager, "staleness_detector", None)
    if detector is None:
        return None
    return getattr(detector, "downshift_mode", None)


def metric_base_name(key: str) -> str:
    """Strip the label suffix from a rendered registry key."""
    return key.split("{", 1)[0]


def is_volatile_metric_key(key: str) -> bool:
    """Whether ``key`` is excluded from the tick/event parity contract."""
    base = metric_base_name(key)
    return (
        base.endswith(VOLATILE_METRIC_SUFFIX)
        or base.startswith(VOLATILE_METRIC_PREFIX)
        or base in VOLATILE_METRIC_KEYS
    )


class EventQueue:
    """Min-heap of timestamped events with a deterministic tiebreak.

    Events order by ``(time, priority, seq)``: ``seq`` is a monotonically
    increasing insertion counter, so events equal in time and priority
    drain in insertion order and the schedule is fully deterministic —
    payloads are never compared.
    """

    __slots__ = ("_heap", "_seq", "pushed")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, str, object]] = []
        self._seq = _counter()
        self.pushed = 0

    def push(self, time: float, priority: int, kind: str, data: object = None) -> None:
        heappush(self._heap, (float(time), int(priority), next(self._seq), kind, data))
        self.pushed += 1

    def pop(self) -> Optional[Tuple[float, int, int, str, object]]:
        if not self._heap:
            return None
        return heappop(self._heap)

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


# -- telemetry capture for converged replay -----------------------------------


def _capture(registry) -> Dict[str, tuple]:
    """Comparable snapshot of every non-volatile instrument's state."""
    state: Dict[str, tuple] = {}
    for metric in registry:
        key = metric.key
        if is_volatile_metric_key(key):
            continue
        kind = metric.kind
        if kind == "counter":
            state[key] = ("c", metric.value)
        elif kind == "gauge":
            state[key] = ("g", metric.value)
        elif kind == "histogram":
            state[key] = (
                "h",
                metric.count,
                metric.sum,
                metric.bucket_counts,
                metric._min,
                metric._max,
            )
    return state


def _delta(before: Dict[str, tuple], after: Dict[str, tuple]) -> Dict[str, tuple]:
    """What one execution changed, as a comparable per-key mapping.

    Counters diff by amount; gauges record the post-value (only when it
    moved); histograms diff count/sum/buckets and record the post
    min/max.  Instruments created *during* the execution diff against
    that kind's zero state.
    """
    diff: Dict[str, tuple] = {}
    for key, post in after.items():
        prev = before.get(key)
        kind = post[0]
        if kind == "c":
            base = prev[1] if prev is not None else 0.0
            if post[1] != base:
                diff[key] = ("c", post[1] - base)
        elif kind == "g":
            base = prev[1] if prev is not None else 0.0
            if post[1] != base:
                diff[key] = ("g", post[1])
        elif kind == "h":
            if prev is None:
                prev = ("h", 0, 0.0, (0,) * len(post[3]), None, None)
            dcount = post[1] - prev[1]
            dsum = post[2] - prev[2]
            dbuckets = tuple(a - b for a, b in zip(post[3], prev[3]))
            if dcount or dsum or any(dbuckets) or post[4:] != prev[4:]:
                diff[key] = ("h", dcount, dsum, dbuckets, post[4], post[5])
    return diff


class _ClassReplayState:
    """Per-request-class convergence tracking and frozen replay ops."""

    __slots__ = (
        "reference_delta",
        "reference_fingerprint",
        "reference_records_key",
        "reference_residue",
        "streak",
        "executions",
        "last_trace",
        "record_ops",
        "signature",
        "counter_ops",
        "gauge_ops",
        "histogram_ops",
    )

    def __init__(self) -> None:
        self.reference_delta: Optional[Dict[str, tuple]] = None
        self.reference_fingerprint: Optional[tuple] = None
        self.reference_records_key: Optional[tuple] = None
        self.reference_residue: Optional[tuple] = None
        self.streak = 0
        self.executions = 0
        self.last_trace = None
        #: The profiler.record calls one execution makes: [(signature,
        #: count), ...].  Not necessarily just this class's own path —
        #: stale cross-trace cause edges can complete *other* request
        #: types' graphs during this class's ingestion; replay must
        #: reproduce those completions exactly.
        self.record_ops: List[tuple] = []
        self.signature = None
        self.counter_ops: List[tuple] = []
        self.gauge_ops: List[tuple] = []
        self.histogram_ops: List[tuple] = []

    @property
    def converged(self) -> bool:
        return self.streak >= REPLAY_CONVERGENCE_STREAK

    def note(
        self,
        delta: Dict[str, tuple],
        fingerprint: tuple,
        trace,
        record_ops: List[tuple],
        residue: tuple,
    ) -> None:
        self.executions += 1
        self.last_trace = trace
        records_key = tuple(
            (sig.request_type, sig.edges, count) for sig, count in record_ops
        )
        if (
            delta == self.reference_delta
            and fingerprint == self.reference_fingerprint
            and records_key == self.reference_records_key
            and residue == self.reference_residue
        ):
            self.streak += 1
        else:
            self.reference_delta = delta
            self.reference_fingerprint = fingerprint
            self.reference_records_key = records_key
            self.reference_residue = residue
            self.record_ops = list(record_ops)
            self.streak = 1


class ReplayIngestor:
    """DCA ingestion with the converged-replay fast path.

    Drop-in replacement for the simulator's live ``ingest_class``
    strategy: sampling draws and the per-class loop skeleton stay in
    :meth:`~repro.sim.engine.ClusterSimulator._dca_tick`, so the seeded
    sampler streams are untouched; only the per-execution work is
    swapped once *every* active class has converged (the cutover is
    atomic — see the module docstring).

    ``active_classes`` is the set of class names with any arrivals in
    the run's schedule; classes that never receive traffic cannot
    execute in either engine and must not block the cutover.
    """

    def __init__(self, sim, active_classes=None) -> None:
        if sim.dca is None:
            raise ValueError("ReplayIngestor requires a DCA bundle")
        if sim.faults is not None or sim.dca.fault_injector is not None:
            raise ValueError("ReplayIngestor requires a fault-free configuration")
        if not sim.dca.tracker.supports_snapshot_replay:
            raise ValueError("tracker configuration does not support snapshot replay")
        if sim.dca.profiler.mode != "exact":
            # Frozen record ops replay as one batched profiler.record per
            # logical execution; that is additive for exact buckets but
            # changes space-saving promotion/eviction order in sketch
            # modes, so sketch-mode runs keep full-fidelity ingestion.
            raise ValueError("ReplayIngestor requires the exact profiler mode")
        if _manager_downshift_mode(sim.manager) is not None:
            raise ValueError(
                "ReplayIngestor cannot run with a staleness precision downshift configured"
            )
        self.sim = sim
        self.registry = sim.telemetry
        if active_classes is None:
            active_classes = set(sim.generator.classes)
        self.states: Dict[str, _ClassReplayState] = {
            name: _ClassReplayState() for name in sorted(active_classes)
        }
        self.replaying = False
        self.cutover_minute: Optional[float] = None
        self.replayed_executions = 0
        self.live_executions = 0

    # -- entry point (same signature as ClusterSimulator._run_dca_tick) --------

    def ingest(self, now: float, arrivals) -> Dict[str, int]:
        sampled = self.sim._dca_tick(now, arrivals, self._ingest_class)
        if (
            not self.replaying
            and self.sim.dca.profiler.mode == "exact"
            # Re-checked at the cutover (not just construction): if the
            # tracker's store/backend configuration changed under us —
            # e.g. a journaling backend was swapped in mid-run — freezing
            # would silently stop feeding the durable log.
            and self.sim.dca.tracker.supports_snapshot_replay
            and all(s.converged for s in self.states.values())
        ):
            self._freeze_all(now)
        return sampled

    # -- per-class strategies ---------------------------------------------------

    def _ingest_class(self, class_name: str, live: int, remainder: int, now: float) -> None:
        state = self.states[class_name]
        if self.replaying:
            self._apply(state, live, remainder, now)
        else:
            self._warm(class_name, state, live, remainder, now)

    def _warm(
        self,
        class_name: str,
        state: _ClassReplayState,
        live: int,
        remainder: int,
        now: float,
    ) -> None:
        """Execute for real (exactly the tick loop), recording deltas."""
        sim = self.sim
        request = sim.generator.classes[class_name]
        tracker = sim.dca.tracker
        profiler = sim.dca.profiler
        last_trace = None
        before = _capture(self.registry)
        nodes_before = tracker.store.node_count()
        for _ in range(live):
            # Spy on the profiler so the frozen state knows exactly
            # which path completions one execution produces (including
            # cross-trace completions of other request types).
            record_ops: List[tuple] = []
            original_record = profiler.record
            def recording_spy(signature, time_minutes, count=1, _orig=original_record, _ops=record_ops):
                _ops.append((signature, count))
                return _orig(signature, time_minutes, count=count)
            profiler.record = recording_spy
            try:
                last_trace = sim.dca.runtime.execute_request(request, sampled=True)
                tracker.observe_all(last_trace.messages)
            finally:
                profiler.record = original_record
            after = _capture(self.registry)
            nodes_after = tracker.store.node_count()
            # Shard/batch-invariant ingestion residue: what this
            # execution left behind in the write machinery.  All four
            # components aggregate across shards (never keyed by shard
            # index, which is uid-hash-variant and would block
            # convergence for good); buffered/pending are 0 after every
            # observe_all-triggered flush, and the net node delta pins
            # the steady-state store growth the freeze will stop
            # producing.
            residue = (
                tracker.buffered_writes,
                tracker.pending_completion_depth,
                tracker.dead_letters.depth,
                nodes_after - nodes_before,
            )
            state.note(
                _delta(before, after),
                last_trace.structural_fingerprint(),
                last_trace,
                record_ops,
                residue,
            )
            before = after
            nodes_before = nodes_after
        self.live_executions += live
        if remainder > 0 and last_trace is not None:
            # Same shortcut as the tick loop (no injector by construction).
            sim.dca.profiler.record(last_trace.signature, now, count=remainder)

    def _freeze_all(self, now: float) -> None:
        """Atomic cutover: turn every class's stable delta into direct ops.

        Ordering contract (pinned by
        ``tests/sim/test_replay_cutover_ordering.py``): the tracker's
        write pipeline is drained — journal flush included — *before*
        any class delta is frozen, so every warmup write reaches the
        store's durability point ahead of the moment ingestion stops
        feeding it.  In practice the buffers are already empty (every
        ``observe_all`` ends in a flush, which the residue fingerprint
        pins at ``buffered_writes == 0``), so the drain emits no
        telemetry and cannot perturb parity.
        """
        tracker = self.sim.dca.tracker
        tracker.drain_pipeline()
        if tracker.buffered_writes:
            raise RuntimeError("write pipeline still buffered after cutover drain")
        by_key = {metric.key: metric for metric in self.registry}
        for state in self.states.values():
            if state.last_trace is None:
                # Converged vacuously (no arrivals yet scheduled this
                # far); an active class always executes before cutover
                # because its streak can only grow by executing.
                raise RuntimeError("cannot freeze a class that never executed")
            for key, entry in sorted(state.reference_delta.items()):
                if metric_base_name(key) in _PROFILER_LIVE_KEYS:
                    continue  # profiler.record maintains these live
                metric = by_key[key]
                if entry[0] == "c":
                    state.counter_ops.append((metric, entry[1]))
                elif entry[0] == "g":
                    state.gauge_ops.append((metric, entry[1]))
                else:
                    _, dcount, dsum, dbuckets, post_min, post_max = entry
                    merge_data = {
                        "count": dcount,
                        "sum": dsum,
                        "min": post_min,
                        "max": post_max,
                        "buckets": {
                            str(bound): dbuckets[i]
                            for i, bound in enumerate(metric.bounds)
                        },
                    }
                    merge_data["buckets"]["+Inf"] = dbuckets[-1]
                    state.histogram_ops.append((metric, merge_data))
            state.signature = state.last_trace.signature
        self.replaying = True
        self.cutover_minute = now

    def _apply(self, state: _ClassReplayState, live: int, remainder: int, now: float) -> None:
        """Replay ``live`` executions' worth of frozen effects."""
        for metric, amount in state.counter_ops:
            metric.inc(amount * live)
        for metric, value in state.gauge_ops:
            metric.set(value)
        # Histograms merge once per replayed execution so count/sum
        # accumulate through the same sequence of adds as live
        # execution (all replayed observations are integral, so the
        # float sums agree exactly).
        for _ in range(live):
            for metric, merge_data in state.histogram_ops:
                metric.merge(merge_data)
        self.replayed_executions += live
        # Path completions go through the real profiler so its window
        # buckets (the DCA managers' decision input) stay live; counts
        # batch across the replayed executions (buckets are additive).
        profiler = self.sim.dca.profiler
        for signature, count in state.record_ops:
            profiler.record(signature, now, count=count * live)
        if remainder > 0:
            # The tick loop's shortcut: remaining sampled requests of
            # the class follow the last live trace's path.
            profiler.record(state.signature, now, count=remainder)


class EventDrivenRunner:
    """Drains the event queue for one simulation run.

    Built by :meth:`ClusterSimulator.run` when ``config.engine`` is
    ``"event"``; owns the queue, the follow-up scheduling rules, and the
    optional replay ingestor.
    """

    def __init__(self, sim) -> None:
        self.sim = sim
        self.queue = EventQueue()
        self.events_processed: Dict[str, int] = {
            "interval": 0,
            "cluster-transition": 0,
            "node-crash": 0,
            "delayed-delivery": 0,
        }
        self._transition_times: set = set()
        self._delivery_times: set = set()
        #: Built lazily in :meth:`run` once the arrival schedule (and
        #: with it the set of classes that ever receive traffic) is known.
        self.ingestor: Optional[ReplayIngestor] = None
        self._replay_eligible = (
            sim.dca is not None
            and sim.faults is None
            and sim.dca.fault_injector is None
            and sim.dca.tracker.supports_snapshot_replay
            # Sketch-mode profilers (and managers that may downshift into
            # one mid-run) are ineligible: batched replayed record ops
            # would not compose with space-saving promotion order.  Such
            # runs still use the event engine with full-fidelity
            # ingestion — literally the tick loop's code.
            and sim.dca.profiler.mode == "exact"
            and _manager_downshift_mode(sim.manager) is None
        )

    # -- boundary snapping ------------------------------------------------------

    def _snap_up(self, t: float) -> float:
        """First interval boundary at or after ``t`` (clamped at 0)."""
        interval = self.sim.config.interval_minutes
        k = math.ceil(t / interval - 1e-9)
        return max(0.0, k * interval)

    # -- run loop ---------------------------------------------------------------

    def run(self) -> SimulationResult:
        sim = self.sim
        cfg = sim.config
        result = SimulationResult(manager_name=sim.manager.name, application=sim.app.name)
        interval = cfg.interval_minutes
        n = cfg.num_intervals
        horizon = (n - 1) * interval
        boundaries = [k * interval for k in range(n)]
        arrivals = sim.generator.arrivals_series(boundaries)
        if self._replay_eligible:
            active = {
                name
                for per_interval in arrivals
                for name, arrived in per_interval.items()
                if arrived > 0
            }
            self.ingestor = ReplayIngestor(sim, active_classes=active)
        for k, t in enumerate(boundaries):
            self.queue.push(t, P_INTERVAL, "interval", k)
        if sim.faults is not None:
            # Scheduled crashes batch at the boundary the tick loop would
            # consume them at, preserving the tick's mature-then-crash
            # order against in-flight provisioning.
            crash_boundaries = []
            for minute in sim.faults.pending_crash_minutes():
                t = self._snap_up(minute)
                if t <= horizon and (not crash_boundaries or t != crash_boundaries[-1]):
                    crash_boundaries.append(t)
                    self.queue.push(t, P_NODE_CRASH, "node-crash", None)
        ingest = self.ingestor.ingest if self.ingestor is not None else None
        while True:
            event = self.queue.pop()
            if event is None:
                break
            time_, _priority, _seq, kind, data = event
            self.events_processed[kind] += 1
            # Stamp the tap clock per event (run_interval restamps it in
            # _step) so hooks fired by crash/transition/delivery handlers
            # carry the event's timestamp, matching tick-loop emissions.
            if sim.tap is not None:
                sim.tap.now = time_
            if kind == "interval":
                sim.run_interval(time_, result, ingestor=ingest, arrivals=arrivals[data])
                self._schedule_followups(time_, horizon)
            elif kind == "cluster-transition":
                sim.cluster.advance(time_)
            elif kind == "node-crash":
                sim.faults.advance_to(time_)
                for comp, crashed in sorted(sim.faults.node_crashes_due(time_).items()):
                    sim.nodes_failed_total += sim.cluster.fail_component(comp, crashed)
            elif kind == "delayed-delivery":
                # Window state must match what the boundary will see
                # before any delivered message is (re)processed.
                if sim.faults is not None:
                    sim.faults.advance_to(time_)
                sim.dca.tracker.deliver_delayed(time_)
                self._schedule_delivery(time_, horizon)
        return result

    # -- follow-up scheduling ---------------------------------------------------

    def _schedule_followups(self, now: float, horizon: float) -> None:
        # Replica start/stop completions mature at their exact ETA;
        # nothing observes cluster state between boundaries, so firing
        # early relative to the tick loop's boundary poll is invisible.
        for eta in self.sim.cluster.pending_transition_times():
            if now < eta <= horizon and eta not in self._transition_times:
                self._transition_times.add(eta)
                self.queue.push(eta, P_CLUSTER_TRANSITION, "cluster-transition", None)
        self._schedule_delivery(now, horizon)

    def _schedule_delivery(self, now: float, horizon: float) -> None:
        if self.sim.dca is None:
            return
        eta = self.sim.dca.tracker.next_delayed_due_minutes()
        if eta is None:
            return
        # The tick loop delivers at the first boundary *after* the
        # enqueueing one whose time has reached the due time.
        t = self._snap_up(eta)
        if t <= now:
            t = now + self.sim.config.interval_minutes
        if t <= horizon and t not in self._delivery_times:
            self._delivery_times.add(t)
            self.queue.push(t, P_DELAYED_DELIVERY, "delayed-delivery", None)
