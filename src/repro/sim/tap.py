"""The simulation event tap: a semantic event stream for invariant checking.

The chaos harness (:mod:`repro.chaos`) needs to check *temporal*
properties — "a dead-lettered uid never appears in a completed path",
"abandoned roots never resurrect" — that no scalar counter can express:
they are statements about the *order* of semantic events, not their
totals.  :class:`SimTap` is the narrow surface those events flow
through: hook points across the simulation (tracker, write pipeline,
cluster groups, staleness detector, engine) call :meth:`SimTap.emit`
when a tap is installed and do nothing at all when it is not, so the
default (tap-less) hot path pays one ``is None`` check per hook.

Design rules:

* **Emit-only.** Installing a tap must never change simulation
  behaviour: hooks read state, they do not mutate it, and no RNG stream
  is consumed.  A tapped run is bit-identical to an untapped one.
* **Deterministic.** Event order follows the simulation's own
  deterministic execution order, so two runs of the same seeded cell
  produce identical event streams (the chaos replay contract).
* **Cheap.** Events are plain tuples of primitives (uids are rendered
  with ``repr``); per-run streams are bounded by the run's message
  volume and are consumed in-process by the invariant checker, never
  shipped between processes.

Event kinds currently emitted (``data`` keys in parentheses):

=====================  ========================================================
``dead_letter``        a message exhausted its store-write retries and was
                       parked (``uid``, ``root``)
``dead_letter_purged`` a parked dead letter's root was abandoned; the entry
                       was removed from the queue (``uid``, ``root``)
``path_completed``     a causal path closed (``root``, ``members`` — every
                       stored uid of the graph, captured before eviction)
``path_abandoned``     a root expired under the path timeout (``root``)
``late_message_discarded``  a message for an already-abandoned root arrived
                       and was dropped instead of resurrecting it (``root``)
``root_resurrected``   defensive: a message for an abandoned root made it
                       into the store (must never happen; the invariant
                       checker fails the run if it does) (``root``)
``replica_init``       a component group was created (``component``, ``ready``)
``provision_requested``  scale-up entered the pipeline (``component``,
                       ``count``, ``eta``)
``provision_matured``  pending nodes became ready (``component``, ``count``,
                       ``ready``)
``pending_cancelled``  pending nodes were cancelled by a scale-down
                       (``component``, ``count``)
``drain_started``      ready nodes started draining (``component``,
                       ``count``, ``ready``)
``nodes_crashed``      ready nodes were crashed (``component``, ``count``,
                       ``ready``)
``replica_observed``   the engine's per-interval observation of a group
                       (``component``, ``ready``, ``pending``)
``staleness``          one staleness-detector update (``healthy``,
                       ``engaged`` — the post-update state)
=====================  ========================================================
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple


class TapEvent(NamedTuple):
    """One semantic simulation event."""

    minute: float
    kind: str
    data: Dict[str, object]


class SimTap:
    """Ordered, append-only stream of :class:`TapEvent`.

    ``now`` is the tap's clock: the engine stamps it at the top of every
    superstep and event handler, so hooks deep in the stack (which often
    have no clock of their own) emit correctly timestamped events.
    """

    __slots__ = ("events", "now", "counts")

    def __init__(self) -> None:
        self.events: List[TapEvent] = []
        self.now = 0.0
        #: Per-kind event totals (cheap sanity surface for tests/CLI).
        self.counts: Dict[str, int] = {}

    def emit(self, kind: str, **data: object) -> None:
        self.events.append(TapEvent(self.now, kind, data))
        self.counts[kind] = self.counts.get(kind, 0) + 1

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
