"""Tick-vs-event engine equivalence checking (the parity oracle).

The discrete-event engine (:mod:`repro.sim.events`) claims bit-identical
results to the fixed-tick loop for any seeded configuration.  This
module is the claim's enforcement surface: it builds the *same* seeded
experiment twice — once per engine, each with a fresh telemetry
registry — runs both, and diffs

* the :class:`~repro.sim.metrics.IntervalRecord` streams (value
  equality of the frozen dataclasses, interval by interval, field by
  field),
* the telemetry snapshots (every non-volatile metric key), and
* the engine-level fault counters (``nodes_failed_total``).

The ``engine-parity`` CI job runs :func:`run_engine_parity` over every
scenario and manager; on divergence the :class:`ParityReport` is dumped
as a JSON artifact (set ``PARITY_DIFF_DIR``) so the differing records
can be inspected without re-running the job.

Volatile keys — wall-clock ``*_seconds`` timers and the uid-layout
diagnostic ``graphstore.cross_partition_edges`` — are excluded; see
:mod:`repro.sim.events` for the rationale.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ParityArtifactError
from repro.sim.events import is_volatile_metric_key
from repro.sim.metrics import SimulationResult
from repro.telemetry import MetricsRegistry

#: Environment variable naming a directory for JSON diff artifacts.
PARITY_DIFF_DIR_ENV = "PARITY_DIFF_DIR"

#: Keys every dumped parity artifact must carry; a JSON file missing any
#: of them was not written by :meth:`ParityReport.to_dict` (truncated
#: write, disk full, wrong file) and must not be interpreted.
_REPORT_REQUIRED_KEYS = (
    "scenario",
    "manager",
    "seed",
    "duration_minutes",
    "ok",
    "record_diffs",
    "snapshot_diffs",
    "state_diffs",
)


@dataclass
class ParityReport:
    """Outcome of one tick-vs-event equivalence run."""

    scenario: str
    manager: str
    seed: int
    duration_minutes: int
    #: Human-readable divergences; empty means the engines agree.
    record_diffs: List[str] = field(default_factory=list)
    snapshot_diffs: List[str] = field(default_factory=list)
    state_diffs: List[str] = field(default_factory=list)
    #: Diverging interval records, serialised for the CI artifact.
    diff_records: List[Dict[str, object]] = field(default_factory=list)
    #: Whether the event engine's converged-replay cutover fired during
    #: this run (``None`` when no replay ingestor was even constructed —
    #: faulted/baseline/sketch-mode configs).  Parity cells for
    #: production configs assert on this so a silently-disengaged fast
    #: path cannot masquerade as a parity pass.
    replay_engaged: Optional[bool] = None
    replayed_executions: int = 0

    @property
    def ok(self) -> bool:
        return not (self.record_diffs or self.snapshot_diffs or self.state_diffs)

    def summary(self) -> str:
        status = "OK" if self.ok else "DIVERGED"
        return (
            f"[{status}] {self.scenario}/{self.manager} seed={self.seed} "
            f"duration={self.duration_minutes}: "
            f"{len(self.record_diffs)} record, {len(self.snapshot_diffs)} snapshot, "
            f"{len(self.state_diffs)} state diff(s)"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "manager": self.manager,
            "seed": self.seed,
            "duration_minutes": self.duration_minutes,
            "ok": self.ok,
            "record_diffs": self.record_diffs,
            "snapshot_diffs": self.snapshot_diffs,
            "state_diffs": self.state_diffs,
            "diff_records": self.diff_records,
            "replay_engaged": self.replay_engaged,
            "replayed_executions": self.replayed_executions,
        }


def _record_dict(record) -> Dict[str, object]:
    """JSON-safe dump of one IntervalRecord (artifact payload)."""
    out = dataclasses.asdict(record)
    out["components"] = {
        name: dataclasses.asdict(comp) for name, comp in record.components.items()
    }
    return out


def diff_results(tick: SimulationResult, event: SimulationResult, limit: int = 20) -> List[str]:
    """Field-level differences between two IntervalRecord streams."""
    diffs: List[str] = []
    if len(tick.records) != len(event.records):
        diffs.append(
            f"record count: tick={len(tick.records)} event={len(event.records)}"
        )
    for i, (a, b) in enumerate(zip(tick.records, event.records)):
        if a == b:
            continue
        for f in dataclasses.fields(a):
            va, vb = getattr(a, f.name), getattr(b, f.name)
            if va != vb:
                diffs.append(f"interval[{i}].{f.name}: tick={va!r} event={vb!r}")
                if len(diffs) >= limit:
                    return diffs
    return diffs


def diff_snapshots(tick: Dict[str, object], event: Dict[str, object], limit: int = 20) -> List[str]:
    """Differences between two telemetry snapshots, volatile keys excluded."""
    diffs: List[str] = []
    a_metrics = tick.get("metrics", {})
    b_metrics = event.get("metrics", {})
    keys = sorted(set(a_metrics) | set(b_metrics))
    for key in keys:
        if is_volatile_metric_key(key):
            continue
        va, vb = a_metrics.get(key), b_metrics.get(key)
        if va != vb:
            diffs.append(f"metric {key}: tick={va!r} event={vb!r}")
            if len(diffs) >= limit:
                break
    return diffs


def run_engine_parity(
    scenario_name: str,
    manager_name: str,
    duration_minutes: int = 120,
    seed: int = 7,
    num_shards: int = 1,
    write_batch_size: int = 1,
    fault_plan=None,
    path_timeout_minutes: Optional[float] = None,
    max_live_traces_per_class: Optional[int] = None,
    profiler_mode: str = "exact",
    profiler_topk: Optional[int] = None,
    interval_minutes: Optional[float] = None,
    diff_dir: Optional[str] = None,
) -> ParityReport:
    """Run one seeded configuration under both engines and diff them.

    Every knob that shapes the run — shards, write batching, fault
    plans, path timeouts, live-trace caps, interval length — is accepted
    so CI can prove parity composes with the whole configuration space,
    not just the defaults.  ``interval_minutes`` matters for the
    fault-window boundary contract: ``FaultPlan.active_at`` is half-open
    (``start <= minute < end``) and both engines must agree at exactly
    ``end_minute`` for any interval length (the event engine snaps
    crash/delivery timestamps to interval boundaries).  On divergence
    the report is written to ``diff_dir`` (or ``$PARITY_DIFF_DIR``) as
    JSON.
    """
    from repro.apps.catalog import load_scenario
    from repro.evalx.experiment import ExperimentConfig, build_simulator
    from repro.sim.engine import SimulationConfig

    results: Dict[str, SimulationResult] = {}
    snapshots: Dict[str, Dict[str, object]] = {}
    failed_totals: Dict[str, int] = {}
    for engine in ("tick", "event"):
        scenario = load_scenario(scenario_name)
        sim_config = SimulationConfig()
        if max_live_traces_per_class is not None:
            sim_config.max_live_traces_per_class = max_live_traces_per_class
        if interval_minutes is not None:
            sim_config.interval_minutes = interval_minutes
        config_kwargs = {}
        if profiler_topk is not None:
            config_kwargs["profiler_topk"] = profiler_topk
        config = ExperimentConfig(
            duration_minutes=duration_minutes,
            seed=seed,
            sim=sim_config,
            num_shards=num_shards,
            write_batch_size=write_batch_size,
            engine=engine,
            profiler_mode=profiler_mode,
            **config_kwargs,
        )
        registry = MetricsRegistry()
        simulator = build_simulator(
            scenario,
            manager_name,
            config,
            registry=registry,
            fault_plan=fault_plan,
            path_timeout_minutes=path_timeout_minutes,
        )
        results[engine] = simulator.run()
        snapshots[engine] = registry.snapshot()
        failed_totals[engine] = simulator.nodes_failed_total
        if engine == "event":
            ingestor = getattr(
                getattr(simulator, "event_runner", None), "ingestor", None
            )
            replay_engaged = None if ingestor is None else ingestor.replaying
            replayed_executions = 0 if ingestor is None else ingestor.replayed_executions

    report = ParityReport(
        scenario=scenario_name,
        manager=manager_name,
        seed=seed,
        duration_minutes=duration_minutes,
        record_diffs=diff_results(results["tick"], results["event"]),
        snapshot_diffs=diff_snapshots(snapshots["tick"], snapshots["event"]),
        replay_engaged=replay_engaged,
        replayed_executions=replayed_executions,
    )
    if failed_totals["tick"] != failed_totals["event"]:
        report.state_diffs.append(
            f"nodes_failed_total: tick={failed_totals['tick']} "
            f"event={failed_totals['event']}"
        )
    if not report.ok:
        for i, (a, b) in enumerate(zip(results["tick"].records, results["event"].records)):
            if a != b and len(report.diff_records) < 10:
                report.diff_records.append(
                    {"interval": i, "tick": _record_dict(a), "event": _record_dict(b)}
                )
        _dump_report(report, diff_dir)
    return report


def _dump_report(report: ParityReport, diff_dir: Optional[str]) -> Optional[str]:
    """Write a diverging report as a JSON artifact; return its path."""
    target = diff_dir if diff_dir is not None else os.environ.get(PARITY_DIFF_DIR_ENV)
    if not target:
        return None
    os.makedirs(target, exist_ok=True)
    safe_manager = report.manager.replace("%", "pct").replace("+", "_")
    path = os.path.join(
        target, f"parity-{report.scenario}-{safe_manager}-seed{report.seed}.json"
    )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report.to_dict(), fh, indent=2, sort_keys=True, default=str)
    return path


# -- artifact loading (hardened; mirrors check_regression's input gates) -------


def load_parity_report(path: str) -> Dict[str, object]:
    """Load one dumped parity artifact, failing loudly on bad input.

    A missing, empty, truncated, or structurally wrong file raises
    :class:`~repro.errors.ParityArtifactError` with the exact reason —
    never returning a dict a caller could misread as "the engines
    agreed".  This mirrors the ``check_regression`` hardening for
    ``BENCH_*.json`` inputs: silent passes on corrupt CI artifacts are
    worse than failures.
    """
    if not os.path.exists(path):
        raise ParityArtifactError(f"parity artifact not found: {path}")
    try:
        with open(path, encoding="utf-8") as fh:
            raw = fh.read()
    except OSError as exc:
        raise ParityArtifactError(f"cannot read parity artifact {path}: {exc}") from exc
    if not raw.strip():
        raise ParityArtifactError(
            f"parity artifact {path} is empty (partially-written or truncated "
            "dump) — treat the parity run as failed, not passed"
        )
    try:
        data = json.loads(raw)
    except ValueError as exc:
        raise ParityArtifactError(
            f"parity artifact {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(data, dict):
        raise ParityArtifactError(
            f"parity artifact {path} must be a JSON object, got {type(data).__name__}"
        )
    missing = [key for key in _REPORT_REQUIRED_KEYS if key not in data]
    if missing:
        raise ParityArtifactError(
            f"parity artifact {path} is missing required keys {missing} "
            "(not a ParityReport dump)"
        )
    for key in ("record_diffs", "snapshot_diffs", "state_diffs"):
        if not isinstance(data[key], list):
            raise ParityArtifactError(
                f"parity artifact {path}: {key!r} must be a list, "
                f"got {type(data[key]).__name__}"
            )
    if data["ok"] and (
        data["record_diffs"] or data["snapshot_diffs"] or data["state_diffs"]
    ):
        raise ParityArtifactError(
            f"parity artifact {path} is inconsistent: ok=true but diffs present"
        )
    return data


def scan_parity_diff_dir(target: Optional[str] = None) -> List[Dict[str, object]]:
    """Load every parity artifact under ``target`` (or ``$PARITY_DIFF_DIR``).

    Returns the loaded reports (possibly empty when the directory exists
    but holds no ``parity-*.json`` — a legitimate all-passed outcome).
    Raises :class:`~repro.errors.ParityArtifactError` when the directory
    is missing or any artifact inside it is malformed: a CI job that
    *points* at a diff dir and then cannot read what it finds there must
    not report success.
    """
    if target is None:
        target = os.environ.get(PARITY_DIFF_DIR_ENV)
    if not target:
        raise ParityArtifactError(
            "no parity diff directory given (argument empty and "
            f"${PARITY_DIFF_DIR_ENV} unset)"
        )
    if not os.path.isdir(target):
        raise ParityArtifactError(f"parity diff directory not found: {target}")
    reports: List[Dict[str, object]] = []
    for name in sorted(os.listdir(target)):
        if name.startswith("parity-") and name.endswith(".json"):
            reports.append(load_parity_report(os.path.join(target, name)))
    return reports
