"""Queueing approximations used by the cluster simulator.

Each component replica group is modelled as a processor-sharing service
station: a monitoring interval offers ``demand`` CPU-ms against
``capacity`` CPU-ms, and the response-time inflation follows the classic
M/M/1-style ``1 / (1 - ρ)`` curve, capped to keep saturated stations
finite.  Backlog carried across intervals adds waiting time directly.

These closed forms are the standard mesoscale substitute for per-request
event simulation; the elasticity metrics (Agility, SLA violations) are
interval-based, so only the interval-level relationships matter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError

#: Utilisation at which the latency curve is clamped (avoids infinities).
RHO_CLAMP = 0.98

#: Maximum latency inflation factor at/beyond the clamp.
MAX_INFLATION = 50.0


def utilization(demand_ms: float, capacity_ms: float) -> float:
    """Offered utilisation ρ = demand / capacity (may exceed 1)."""
    if demand_ms < 0:
        raise SimulationError(f"demand must be >= 0, got {demand_ms}")
    if capacity_ms <= 0:
        raise SimulationError(f"capacity must be > 0, got {capacity_ms}")
    return demand_ms / capacity_ms


def latency_inflation(rho: float) -> float:
    """Response-time multiplier for utilisation ``rho``.

    ``1/(1-ρ)`` below the clamp; linear growth past saturation so that a
    more-saturated station still reads as slower.
    """
    if rho < 0:
        raise SimulationError(f"utilization must be >= 0, got {rho}")
    if rho < RHO_CLAMP:
        return min(MAX_INFLATION, 1.0 / (1.0 - rho))
    return MAX_INFLATION + (rho - RHO_CLAMP) * 100.0


@dataclass(frozen=True)
class StationInterval:
    """Result of pushing one interval of work through a station."""

    served_ms: float
    backlog_ms: float
    rho: float
    inflation: float


def serve_interval(demand_ms: float, backlog_ms: float, capacity_ms: float) -> StationInterval:
    """Serve ``demand + backlog`` against ``capacity`` for one interval.

    Unserved work carries over as backlog; utilisation is computed on
    offered (not served) load so saturation is visible to managers.
    """
    if backlog_ms < 0:
        raise SimulationError(f"backlog must be >= 0, got {backlog_ms}")
    offered = demand_ms + backlog_ms
    rho = utilization(offered, capacity_ms)
    served = min(offered, capacity_ms)
    return StationInterval(
        served_ms=served,
        backlog_ms=offered - served,
        rho=rho,
        inflation=latency_inflation(rho),
    )


def nodes_required(demand_ms: float, node_capacity_ms: float, target_utilization: float) -> int:
    """Minimum nodes so that demand runs at or below ``target_utilization``."""
    if node_capacity_ms <= 0:
        raise SimulationError(f"node capacity must be > 0, got {node_capacity_ms}")
    if not 0.0 < target_utilization <= 1.0:
        raise SimulationError(f"target_utilization must be in (0, 1], got {target_utilization}")
    if demand_ms <= 0:
        return 0
    import math

    return max(1, math.ceil(demand_ms / (node_capacity_ms * target_utilization)))
