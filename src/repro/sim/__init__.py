"""Discrete-time cluster simulator (the paper's testbed substitute)."""

from repro.sim.cluster import Cluster, ComponentGroup, DeploymentSpec
from repro.sim.engine import ClusterSimulator, DCABundle, SimulationConfig
from repro.sim.metrics import ComponentInterval, IntervalRecord, SimulationResult
from repro.sim.queueing import (
    StationInterval,
    latency_inflation,
    nodes_required,
    serve_interval,
    utilization,
)
from repro.sim.replicas import ReplicaSpec, ReplicatedApplicationRuntime, ReplicatedTrace
from repro.sim.runtime import ApplicationRuntime, RequestTrace

__all__ = [
    "ApplicationRuntime",
    "Cluster",
    "ClusterSimulator",
    "ComponentGroup",
    "ComponentInterval",
    "DCABundle",
    "DeploymentSpec",
    "IntervalRecord",
    "ReplicaSpec",
    "ReplicatedApplicationRuntime",
    "ReplicatedTrace",
    "RequestTrace",
    "SimulationConfig",
    "SimulationResult",
    "StationInterval",
    "latency_inflation",
    "nodes_required",
    "serve_interval",
    "utilization",
]
