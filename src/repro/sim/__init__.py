"""Discrete-time cluster simulator (the paper's testbed substitute)."""

from repro.sim.cluster import Cluster, ComponentGroup, DeploymentSpec
from repro.sim.engine import ENGINES, ClusterSimulator, DCABundle, SimulationConfig
from repro.sim.events import (
    EventDrivenRunner,
    EventQueue,
    ReplayIngestor,
    is_volatile_metric_key,
)
from repro.sim.metrics import ComponentInterval, IntervalRecord, SimulationResult
from repro.sim.parity import ParityReport, diff_results, diff_snapshots, run_engine_parity
from repro.sim.queueing import (
    StationInterval,
    latency_inflation,
    nodes_required,
    serve_interval,
    utilization,
)
from repro.sim.replicas import ReplicaSpec, ReplicatedApplicationRuntime, ReplicatedTrace
from repro.sim.runtime import ApplicationRuntime, RequestTrace

__all__ = [
    "ApplicationRuntime",
    "Cluster",
    "ClusterSimulator",
    "ComponentGroup",
    "ComponentInterval",
    "DCABundle",
    "DeploymentSpec",
    "ENGINES",
    "EventDrivenRunner",
    "EventQueue",
    "IntervalRecord",
    "ParityReport",
    "ReplayIngestor",
    "ReplicaSpec",
    "ReplicatedApplicationRuntime",
    "ReplicatedTrace",
    "RequestTrace",
    "SimulationConfig",
    "SimulationResult",
    "StationInterval",
    "diff_results",
    "diff_snapshots",
    "is_volatile_metric_key",
    "latency_inflation",
    "nodes_required",
    "run_engine_parity",
    "serve_interval",
    "utilization",
]
