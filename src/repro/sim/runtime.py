"""Message-level application runtime.

Executes external requests through the component interpreters, producing
:class:`RequestTrace` records: every message exchanged, per-component
message counts (the basis of the mesoscale demand model), per-component
instrumentation cost (when DCA-instrumented), and the causal path
signature.  The runtime owns per-component replica state and per-process
uid factories, so traces are deterministic and uids match the paper's
``〈address, process, seq〉`` scheme.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.dca import DCAResult
from repro.core.instrument import InstrumentedComponent, OverheadModel
from repro.core.paths import PathSignature, signature_from_edges
from repro.errors import SimulationError
from repro.lang.interpreter import Interpreter, ReplicaState
from repro.lang.ir import CLIENT, EXTERNAL, Application
from repro.lang.message import Message, UidFactory
from repro.workloads.generator import RequestClass


@dataclass
class RequestTrace:
    """Everything observed while executing one external request."""

    request_class: str
    request_type: str
    signature: PathSignature
    messages: List[Message]
    component_messages: Dict[str, int]
    component_instr_ms: Dict[str, float]
    component_instr_ops: Dict[str, int]
    responses: int
    depth: int

    @property
    def components(self) -> Set[str]:
        return set(self.component_messages)

    def total_messages(self) -> int:
        return len(self.messages)

    def structural_fingerprint(self) -> Tuple:
        """Uid-free shape of the execution, for convergence detection.

        Two executions of a class with the same fingerprint emitted the
        same message types between the same endpoints with the same
        cause-set sizes — the event engine requires a run of identical
        fingerprints (alongside identical telemetry deltas) before it
        cuts a class over to converged replay.  Uid *values* are
        deliberately excluded: stale provenance uids vary per execution
        even after the structure has converged.
        """
        return tuple(
            (m.msg_type, m.src, m.dest, len(m.cause_uids), m.sampled)
            for m in self.messages
        )


class ApplicationRuntime:
    """Executes requests against (optionally DCA-instrumented) components.

    Parameters
    ----------
    app:
        The application.
    dca_result:
        When given, components run instrumented with their ``V_tr`` and
        instrumentation cost is charged per the overhead model.  When
        ``None``, components run plain (baselines).
    overhead_model / sampling_rate:
        Passed through to :class:`InstrumentedComponent`.
    max_messages_per_request:
        Guard against runaway message storms.
    """

    def __init__(
        self,
        app: Application,
        dca_result: Optional[DCAResult] = None,
        overhead_model: Optional[OverheadModel] = None,
        sampling_rate: float = 1.0,
        max_messages_per_request: int = 100_000,
    ) -> None:
        self.app = app
        self.dca_result = dca_result
        self.max_messages_per_request = int(max_messages_per_request)
        self._external_uids = UidFactory("client.external", 0)
        self._uid_factories: Dict[str, UidFactory] = {}
        self._states: Dict[str, ReplicaState] = {}
        self._instrumented: Dict[str, InstrumentedComponent] = {}
        self._plain: Dict[str, Interpreter] = {}
        for idx, (name, component) in enumerate(sorted(app.components.items()), start=1):
            self._uid_factories[name] = UidFactory(f"10.0.0.{idx}", idx)
            self._states[name] = ReplicaState.from_component(component)
            if dca_result is not None:
                analysis = dca_result.per_component.get(name)
                if analysis is None:
                    raise SimulationError(f"DCA result missing component {name!r}")
                self._instrumented[name] = InstrumentedComponent(
                    component,
                    analysis,
                    app.library,
                    overhead_model=overhead_model,
                    sampling_rate=sampling_rate,
                )
            else:
                self._plain[name] = Interpreter(component, app.library)

    @property
    def instrumented(self) -> bool:
        return self.dca_result is not None

    def reset_state(self) -> None:
        """Reset all replica state (values and provenance) to initials."""
        for name, component in self.app.components.items():
            self._states[name] = ReplicaState.from_component(component)

    def execute_request(self, request: RequestClass, sampled: bool = True) -> RequestTrace:
        """Run one external request to completion, breadth-first.

        ``sampled`` marks the request (and its whole causal path) as
        selected for DCA tracing; untraced requests run the cheap path.
        """
        entry = self.app.entry_points.get(request.request_type)
        if entry is None:
            raise SimulationError(
                f"request class {request.name!r} uses unknown entry type {request.request_type!r}"
            )
        root = Message(
            uid=self._external_uids.next_uid(),
            msg_type=request.request_type,
            src=EXTERNAL,
            dest=entry,
            fields=dict(request.fields),
            sampled=sampled,
        )
        messages: List[Message] = [root]
        comp_messages: Dict[str, int] = {}
        comp_instr_ms: Dict[str, float] = {}
        comp_instr_ops: Dict[str, int] = {}
        responses = 0
        max_depth = 0
        queue: deque = deque([(root, 0)])
        while queue:
            if len(messages) > self.max_messages_per_request:
                raise SimulationError(
                    f"request {request.name!r} exceeded {self.max_messages_per_request} messages"
                )
            message, depth = queue.popleft()
            max_depth = max(max_depth, depth)
            if message.dest == CLIENT:
                responses += 1
                continue
            component = message.dest
            comp_messages[component] = comp_messages.get(component, 0) + 1
            emitted, instr_ms, instr_ops = self._dispatch(component, message)
            comp_instr_ms[component] = comp_instr_ms.get(component, 0.0) + instr_ms
            comp_instr_ops[component] = comp_instr_ops.get(component, 0) + instr_ops
            for child in emitted:
                messages.append(child)
                queue.append((child, depth + 1))
        edges = {(m.src, m.msg_type, m.dest) for m in messages}
        return RequestTrace(
            request_class=request.name,
            request_type=request.request_type,
            signature=signature_from_edges(request.request_type, edges),
            messages=messages,
            component_messages=comp_messages,
            component_instr_ms=comp_instr_ms,
            component_instr_ops=comp_instr_ops,
            responses=responses,
            depth=max_depth,
        )

    def _dispatch(self, component: str, message: Message) -> Tuple[List[Message], float, int]:
        state = self._states[component]
        uid_factory = self._uid_factories[component]
        if self.instrumented:
            result = self._instrumented[component].handle(state, message, uid_factory)
            return result.outcome.emitted, result.instrumentation_ms, result.outcome.instrumentation_ops
        outcome = self._plain[component].handle(state, message, uid_factory)
        return outcome.emitted, 0.0, 0
