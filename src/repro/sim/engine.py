"""The cluster simulator: monitoring loop S1–S4 of the paper.

Each simulated minute the engine:

1. matures provisioning actions (S3),
2. draws per-class external arrivals from the workload generator,
3. runs the DCA machinery for the sampled slice of traffic — live
   message-level traces through the instrumented components feed the
   graph store, whose completed causal graphs increment the profiler,
4. computes per-component offered demand (base + instrumentation
   overhead), serves it through the queueing model, and derives
   utilisation, latency and SLA outcomes (S1),
5. records the interval's Agility inputs (``Req_min`` from the
   *uninstrumented* demand vs provisioned capacity),
6. hands the observation to the active elasticity manager and applies
   its scaling decision with provisioning delays (S2/S4).

The demand model is *trace-derived*: each request class is executed once
through the real interpreters and its per-component message counts are
reused for the mesoscale arithmetic, so component load always reflects
the true causal structure of the application.
"""

from __future__ import annotations

import math
import random as _random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.autoscale.manager import (
    ClusterObservation,
    ComponentObservation,
    ElasticityManager,
)
from repro.core.causal_graph import DirectCausalityTracker
from repro.core.dca import DCAResult, analyze_application
from repro.core.instrument import OverheadModel
from repro.core.paths import enumerate_causal_paths
from repro.core.regression import MachineSpec
from repro.core.sampling import RequestSampler
from repro.errors import SimulationError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.graphstore.backend import BACKENDS as STORE_BACKENDS
from repro.graphstore.backend import make_backend, shard_backends
from repro.graphstore.sharded import ShardedGraphStore
from repro.graphstore.store import GraphStore
from repro.lang.ir import Application
from repro.profiling.profiler import PROFILER_MODES, CausalPathProfiler
from repro.profiling.sketches import DEFAULT_TOPK_K
from repro.sim.cluster import Cluster, DeploymentSpec
from repro.sim.metrics import ComponentInterval, IntervalRecord, SimulationResult
from repro.sim.queueing import nodes_required, serve_interval
from repro.sim.runtime import ApplicationRuntime, RequestTrace
from repro.telemetry import MetricsRegistry, get_registry
from repro.tracing.htrace import HTraceCollector
from repro.workloads.generator import WorkloadGenerator

#: Default length of one simulation interval.  Every per-minute rate in
#: :class:`SimulationConfig` is converted to a per-interval probability
#: through the *configured* ``interval_minutes`` (see
#: :meth:`ClusterSimulator._inject_failures`), so non-unit intervals stay
#: statistically correct.
INTERVAL_MINUTES = 1.0

#: The two run-loop implementations: the fixed-tick oracle and the
#: discrete-event engine (:mod:`repro.sim.events`).
ENGINES = ("tick", "event")


@dataclass
class SimulationConfig:
    """Engine tunables (defaults follow the paper's setup)."""

    duration_minutes: int = 450
    sla_latency_ms: Optional[float] = None
    sla_latency_factor: float = 10.0
    network_hop_ms: float = 2.0
    req_min_utilization: float = 0.75
    provision_delay_minutes: float = 2.0
    deprovision_delay_minutes: float = 1.0
    count_infrastructure: bool = False
    max_live_traces_per_class: int = 1
    node_failure_rate_per_min: float = 0.0
    failure_seed: int = 0
    #: Which run loop drives the simulation: the fixed-tick oracle or the
    #: discrete-event engine.  Both produce bit-identical results (the
    #: ``engine-parity`` CI job enforces it); the event engine is the
    #: fast path.
    engine: str = "tick"
    #: Length of one observation interval in simulated minutes.  All
    #: per-minute rates are converted through this value.
    interval_minutes: float = INTERVAL_MINUTES
    #: Profiler precision tier (``exact``/``topk``/``component``) and
    #: space-saving summary size for ``topk`` — see
    #: :mod:`repro.profiling.sketches`.  ``exact`` is bit-identical to
    #: the pre-sketch profiler.
    profiler_mode: str = "exact"
    profiler_topk: int = DEFAULT_TOPK_K
    #: Graph-store backend behind the DCA tracker: in-process dicts
    #: (``memory``, the default), the crash-safe append-only log
    #: (``log``, requires ``store_dir``), or the process-shared store
    #: server (``shared``) — see :mod:`repro.graphstore.backend`.
    store_backend: str = "memory"
    store_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.duration_minutes < 1:
            raise SimulationError(f"duration_minutes must be >= 1, got {self.duration_minutes}")
        if self.store_backend not in STORE_BACKENDS:
            raise SimulationError(
                f"store_backend must be one of {STORE_BACKENDS}, "
                f"got {self.store_backend!r}"
            )
        if self.store_backend == "log" and self.store_dir is None:
            raise SimulationError("store_backend 'log' requires store_dir")
        if not 0 < self.req_min_utilization <= 1:
            raise SimulationError(
                f"req_min_utilization must be in (0, 1], got {self.req_min_utilization}"
            )
        if not 0.0 <= self.node_failure_rate_per_min < 1.0:
            # The rate is *per minute*; the engine derives the per-interval
            # probability from interval_minutes (p = 1 - (1 - rate)^len),
            # so the two coincide only while intervals are one minute long.
            raise SimulationError(
                f"node_failure_rate_per_min must be in [0, 1), got {self.node_failure_rate_per_min}"
            )
        if self.engine not in ENGINES:
            raise SimulationError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        if self.interval_minutes <= 0:
            raise SimulationError(
                f"interval_minutes must be > 0, got {self.interval_minutes}"
            )
        if self.profiler_mode not in PROFILER_MODES:
            raise SimulationError(
                f"profiler_mode must be one of {PROFILER_MODES}, got {self.profiler_mode!r}"
            )
        if self.profiler_topk < 1:
            raise SimulationError(
                f"profiler_topk must be >= 1, got {self.profiler_topk}"
            )

    @property
    def num_intervals(self) -> int:
        """Observation intervals covering ``[0, duration_minutes)``."""
        return max(1, int(math.ceil(self.duration_minutes / self.interval_minutes)))


@dataclass
class DCABundle:
    """Everything the DCA machinery needs inside the simulator."""

    sampling_rate: float
    dca_result: DCAResult
    runtime: ApplicationRuntime
    sampler: RequestSampler
    tracker: DirectCausalityTracker
    profiler: CausalPathProfiler
    fault_injector: Optional[FaultInjector] = None

    @classmethod
    def create(
        cls,
        app: Application,
        sampling_rate: float,
        overhead_model: Optional[OverheadModel] = None,
        window_minutes: float = 60.0,
        num_front_ends: int = 4,
        seed: int = 0,
        registry: Optional[MetricsRegistry] = None,
        fault_plan: Optional[FaultPlan] = None,
        path_timeout_minutes: Optional[float] = None,
        num_shards: int = 1,
        write_batch_size: int = 1,
        maintenance_workers: int = 0,
        profiler_mode: str = "exact",
        profiler_topk: int = DEFAULT_TOPK_K,
        store_backend: str = "memory",
        store_dir: Optional[str] = None,
        store_namespace: Optional[str] = None,
        shared_address: Optional[str] = None,
        shared_authkey: Optional[str] = None,
    ) -> "DCABundle":
        """Analyse, instrument, and wire the full DCA pipeline for ``app``.

        ``registry`` threads one telemetry surface through the store,
        tracker, and profiler (the process default when omitted).  When a
        ``fault_plan`` is supplied, one injector is shared by the tracker
        (message channels), the store (write failures), and the engine
        (scheduled node crashes), so a single seed fixes every fault
        decision of the run.

        ``num_shards`` > 1 replaces the single store with a
        :class:`~repro.graphstore.sharded.ShardedGraphStore`;
        ``write_batch_size`` > 1 puts the batched write pipeline in front
        of it.  The injector's write-fault channel then moves with the
        roll owner (facade when unbatched, pipeline when batched) so the
        seeded fault stream is configuration-independent.

        ``store_backend`` selects the persistence seam
        (:mod:`repro.graphstore.backend`): ``log`` journals every store
        mutation into ``store_dir`` (crc32-framed rotated segments);
        ``shared`` connects to a store server at ``shared_address``
        (authkey hex in ``shared_authkey``) under ``store_namespace`` —
        or starts a private server for this run when no address is
        given.  Either way the non-volatile telemetry the run produces
        is bit-identical to the memory backend's.
        """
        dca_result = analyze_application(app)
        runtime = ApplicationRuntime(
            app,
            dca_result=dca_result,
            overhead_model=overhead_model,
            sampling_rate=sampling_rate,
        )
        static_paths = enumerate_causal_paths(app)
        profiler = CausalPathProfiler(
            static_paths,
            window_minutes=window_minutes,
            registry=registry,
            mode=profiler_mode,
            topk=profiler_topk,
        )
        injector = None
        if fault_plan is not None:
            injector = FaultInjector(fault_plan, registry=profiler.telemetry)
        # The write-fault roll lives with whichever layer performs the
        # store write: the batched pipeline (batch > 1) or the store
        # itself (unbatched), never both.
        store_injector = injector if write_batch_size <= 1 else None
        if store_backend not in STORE_BACKENDS:
            raise SimulationError(
                f"unknown store backend {store_backend!r}; choose from {STORE_BACKENDS}"
            )
        if store_backend == "shared":
            from repro.graphstore.shared import (
                SharedGraphStoreClient,
                SharedStoreServer,
            )

            owned_server = None
            if shared_address is None:
                # No external server given: start a private one whose
                # lifetime is tied to this client (shut down on close()).
                owned_server = SharedStoreServer()
                owned_server.start()
                shared_address = owned_server.address
                shared_authkey = owned_server.authkey_hex
            if shared_authkey is None:
                raise SimulationError(
                    "shared store backend requires an authkey alongside the address"
                )
            store = SharedGraphStoreClient(
                shared_address,
                bytes.fromhex(shared_authkey),
                namespace=store_namespace or "default",
                num_shards=num_shards,
                registry=registry,
                fault_injector=store_injector,
                owned_server=owned_server,
            )
        elif num_shards > 1:
            backends = None
            if store_backend == "log":
                if store_dir is None:
                    raise SimulationError("log store backend requires store_dir")
                backends = shard_backends(
                    "log", num_shards, store_dir, registry=registry
                )
            store = ShardedGraphStore(
                num_shards=num_shards,
                registry=registry,
                fault_injector=store_injector,
                maintenance_workers=maintenance_workers,
                backends=backends,
            )
        else:
            backend = None
            if store_backend == "log":
                if store_dir is None:
                    raise SimulationError("log store backend requires store_dir")
                backend = make_backend("log", store_dir, registry=registry)
            store = GraphStore(
                registry=registry, fault_injector=store_injector, backend=backend
            )
        tracker = DirectCausalityTracker(
            profiler,
            store=store,
            registry=registry,
            fault_injector=injector,
            path_timeout_minutes=path_timeout_minutes,
            write_batch_size=write_batch_size,
        )
        sampler = RequestSampler(sampling_rate, num_front_ends=num_front_ends, seed=seed)
        return cls(
            sampling_rate=sampling_rate,
            dca_result=dca_result,
            runtime=runtime,
            sampler=sampler,
            tracker=tracker,
            profiler=profiler,
            fault_injector=injector,
        )


class ClusterSimulator:
    """Drives one manager over one application for one workload run."""

    def __init__(
        self,
        app: Application,
        generator: WorkloadGenerator,
        deployments: Dict[str, DeploymentSpec],
        machine: MachineSpec,
        manager: ElasticityManager,
        config: Optional[SimulationConfig] = None,
        dca: Optional[DCABundle] = None,
        htrace: Optional[HTraceCollector] = None,
        telemetry: Optional[MetricsRegistry] = None,
        faults: Optional[FaultInjector] = None,
        tap=None,
    ) -> None:
        self.app = app
        self.generator = generator
        self.machine = machine
        self.manager = manager
        self.config = config or SimulationConfig()
        self.dca = dca
        self.htrace = htrace
        #: Optional :class:`~repro.sim.tap.SimTap` shared with every hook
        #: point (cluster groups, tracker/pipeline, staleness detector).
        #: Emit-only: installing it never changes simulation behaviour.
        self.tap = tap
        if tap is not None:
            if dca is not None:
                dca.tracker.attach_tap(tap)
            detector = getattr(manager, "staleness_detector", None)
            if detector is not None:
                detector.tap = tap
        # The engine owns the injector clock and the crash schedule; the
        # tracker/store side shares the same injector via the DCA bundle.
        if faults is not None:
            self.faults = faults
        elif dca is not None:
            self.faults = dca.fault_injector
        else:
            self.faults = None
        if telemetry is not None:
            self.telemetry = telemetry
        elif dca is not None:
            self.telemetry = dca.tracker.telemetry
        else:
            self.telemetry = get_registry()
        manager.attach_telemetry(self.telemetry)
        self._m_intervals = self.telemetry.counter("sim.intervals")
        self._m_requests = self.telemetry.counter("sim.external_requests")
        self._m_sampled = self.telemetry.counter("sim.sampled_requests")
        self._step_timer = self.telemetry.timer("sim.step_seconds")
        missing = set(app.components) - set(deployments)
        if missing:
            raise SimulationError(f"deployments missing for components: {sorted(missing)}")
        self.cluster = Cluster(
            deployments,
            provision_delay_minutes=self.config.provision_delay_minutes,
            deprovision_delay_minutes=self.config.deprovision_delay_minutes,
            tap=tap,
        )
        self._calibration_runtime = (
            dca.runtime if dca is not None else ApplicationRuntime(app)
        )
        self._traces: Dict[str, RequestTrace] = {}
        self._backlog_ms: Dict[str, float] = {name: 0.0 for name in app.components}
        self._infra_nodes = 0
        self._recent_totals: List[float] = []
        self._failure_rng = _random.Random(self.config.failure_seed * 1_000_003 + 17)
        self.nodes_failed_total = 0
        # Clock of the last random-failure roll; the first interval's
        # exposure window is one full interval, exactly as before.
        self._last_failure_roll = -self.config.interval_minutes
        self._sla_ms = self._resolve_sla()

    # -- setup -----------------------------------------------------------------

    def _trace_for(self, class_name: str) -> RequestTrace:
        trace = self._traces.get(class_name)
        if trace is None:
            request = self.generator.classes[class_name]
            trace = self._calibration_runtime.execute_request(request, sampled=True)
            self._traces[class_name] = trace
        return trace

    def _resolve_sla(self) -> float:
        if self.config.sla_latency_ms is not None:
            return float(self.config.sla_latency_ms)
        worst = 0.0
        for class_name in self.generator.classes:
            trace = self._trace_for(class_name)
            base = sum(
                self.app.components[c].service_cost for c in trace.components
            ) + self.config.network_hop_ms * (trace.depth + 1)
            worst = max(worst, base)
        if worst <= 0:
            raise SimulationError("could not derive an SLA: request classes have no cost")
        return self.config.sla_latency_factor * worst

    @property
    def sla_latency_ms(self) -> float:
        return self._sla_ms

    # -- main loop -----------------------------------------------------------------

    def run(self) -> SimulationResult:
        try:
            if self.config.engine == "event":
                from repro.sim.events import EventDrivenRunner

                runner = EventDrivenRunner(self)
                # Kept for introspection (tests, benchmarks, CLI stats).
                self.event_runner = runner
                return runner.run()
            result = SimulationResult(manager_name=self.manager.name, application=self.app.name)
            interval = self.config.interval_minutes
            for k in range(self.config.num_intervals):
                self.run_interval(k * interval, result)
            return result
        finally:
            self._close_store()

    def _close_store(self) -> None:
        """Release the graph store's backend at end of run.

        A no-op for the in-process memory backend; flushes and closes
        log segments, and (for the shared backend) merges the server-side
        telemetry namespace into the local registry before shutting down
        a privately owned server.  Must run *after* the last interval so
        every buffered write has already been applied and journaled.
        """
        if self.dca is None:
            return
        close = getattr(self.dca.tracker.store, "close", None)
        if close is not None:
            close()

    def run_interval(
        self,
        now: float,
        result: SimulationResult,
        ingestor=None,
        arrivals: Optional[Mapping[str, int]] = None,
    ) -> None:
        """Run one full observation interval at ``now`` and record it.

        This is the shared superstep of both engines: the tick loop calls
        it at every boundary; the event engine calls it from its
        interval-boundary events (optionally swapping the DCA
        ``ingestor`` for its replay fast path and supplying pre-drawn
        ``arrivals``).  Keeping one body guarantees tick/event parity by
        construction for everything outside DCA ingestion.
        """
        with self._step_timer:
            record, observation = self._step(now, ingestor=ingestor, arrivals=arrivals)
            result.append(record)
            decision = self.manager.decide(observation)
            self.manager.on_interval_end(observation)
            self.cluster.apply_targets(dict(decision.targets), now)
            self._infra_nodes = decision.infrastructure_nodes
        self._m_intervals.inc()
        self._m_requests.inc(record.external_arrivals)
        self._m_sampled.inc(record.sampled_requests)
        self.manager.record_decision(observation, decision)

    def _step(
        self,
        now: float,
        ingestor=None,
        arrivals: Optional[Mapping[str, int]] = None,
    ) -> Tuple[IntervalRecord, ClusterObservation]:
        if self.tap is not None:
            self.tap.now = now
        self.cluster.advance(now)
        if self.faults is not None:
            self.faults.advance_to(now)
            for comp, count in sorted(self.faults.node_crashes_due(now).items()):
                self.nodes_failed_total += self.cluster.fail_component(comp, count)
        self._inject_failures(now)
        if arrivals is None:
            arrivals = self.generator.arrivals(now)
        total_arrivals = float(sum(arrivals.values()))

        ingest = ingestor if ingestor is not None else self._run_dca_tick
        sampled_by_class = ingest(now, arrivals)
        base_demand, overhead, comp_arrivals = self._compute_demand(arrivals, sampled_by_class)

        flat_overhead = self.manager.runtime_overhead_fraction()
        if flat_overhead > 0:
            for comp in base_demand:
                overhead[comp] = overhead.get(comp, 0.0) + flat_overhead * base_demand[comp]

        stations, comp_obs, comp_intervals = self._serve(now, base_demand, overhead, comp_arrivals)
        sla_fraction, app_latency = self._latency_and_sla(arrivals, stations)
        self._feed_htrace(arrivals)

        decreasing = self._workload_decreasing(total_arrivals)

        infra_recorded = self._infra_nodes if self.config.count_infrastructure else 0
        record = IntervalRecord(
            time_minutes=now,
            external_arrivals=total_arrivals,
            class_arrivals=dict(arrivals),
            components=comp_intervals,
            infra_nodes=infra_recorded,
            sla_violation_fraction=sla_fraction,
            app_latency_ms=app_latency,
            workload_decreasing=decreasing,
            sampled_requests=sum(sampled_by_class.values()),
        )
        throughput = total_arrivals * (1.0 - sla_fraction)
        observation = ClusterObservation(
            time_minutes=now,
            external_arrivals_per_min=total_arrivals,
            components=comp_obs,
            machine=self.machine,
            sla_latency_ms=self._sla_ms,
            app_latency_ms=app_latency,
            app_throughput_per_min=throughput,
        )
        return record, observation

    def _inject_failures(self, now: float) -> None:
        """Crash ready nodes at the configured per-node-per-minute rate.

        Components are replicated for fault tolerance (Section II-A);
        failure injection exercises the managers' ability to re-provision
        lost capacity, which they can only observe through utilisation
        and latency.

        The configured rate is per *minute* but the roll happens once per
        *interval*, so the per-roll probability is derived from the time
        actually elapsed on the simulation clock since the previous roll,
        ``p = 1 - (1 - rate) ** dt`` — identical to the raw rate under
        the one-minute tick loop (``dt`` is then always 1.0), and still
        correct for any ``interval_minutes`` or event schedule.
        """
        rate = self.config.node_failure_rate_per_min
        if rate <= 0:
            return
        dt = now - self._last_failure_roll
        self._last_failure_roll = now
        if dt <= 0:
            return
        p = 1.0 - (1.0 - rate) ** dt
        for comp in sorted(self.cluster.groups):
            group = self.cluster.groups[comp]
            failures = sum(
                1 for _ in range(group.ready) if self._failure_rng.random() < p
            )
            if failures:
                self.nodes_failed_total += group.fail_nodes(failures)

    def _workload_decreasing(self, total_arrivals: float) -> bool:
        """Smoothed trend test: Poisson noise must not flip the flag.

        Compares the mean of the last three minutes against the three
        before that; a genuine downswing moves the window mean, a noisy
        minute does not.
        """
        self._recent_totals.append(total_arrivals)
        if len(self._recent_totals) > 6:
            self._recent_totals.pop(0)
        if len(self._recent_totals) < 6:
            return False
        older = sum(self._recent_totals[:3]) / 3.0
        newer = sum(self._recent_totals[3:]) / 3.0
        return newer < 0.97 * older

    # -- DCA machinery ---------------------------------------------------------------

    def _run_dca_tick(self, now: float, arrivals: Mapping[str, int]) -> Dict[str, int]:
        return self._dca_tick(now, arrivals, self._ingest_class)

    def _dca_tick(self, now: float, arrivals: Mapping[str, int], ingest_class) -> Dict[str, int]:
        """Shared skeleton of one DCA interval: sampling, then ingestion.

        The sampler draws happen here, in sorted-class order, so the
        seeded sampling streams are identical no matter which
        ``ingest_class`` strategy (live execution or the event engine's
        converged replay) consumes the counts.
        """
        sampled: Dict[str, int] = {}
        if self.dca is None:
            return {name: 0 for name in arrivals}
        self.dca.tracker.advance_to(now)
        fe = int(now) % self.dca.sampler.num_front_ends
        for class_name in sorted(arrivals):
            count = arrivals[class_name]
            n_sampled = self.dca.sampler.sample_count(count, front_end_index=fe) if count else 0
            sampled[class_name] = n_sampled
            if n_sampled <= 0:
                continue
            live = min(n_sampled, self.config.max_live_traces_per_class)
            ingest_class(class_name, live, n_sampled - live, now)
        return sampled

    def _ingest_class(self, class_name: str, live: int, remainder: int, now: float) -> None:
        """Live-execute ``live`` traces of one class; shortcut the rest."""
        request = self.generator.classes[class_name]
        last_trace: Optional[RequestTrace] = None
        for _ in range(live):
            last_trace = self.dca.runtime.execute_request(request, sampled=True)
            self.dca.tracker.observe_all(last_trace.messages)
        if remainder > 0 and last_trace is not None:
            # The remaining sampled requests of this class follow the
            # same causal path; count them without re-executing.
            injector = self.dca.fault_injector
            if injector is not None:
                # The shortcut must not hide faults from the profiler
                # feed: each shortcut request rolls the drop channel
                # once (a mesoscale stand-in for "any message of the
                # path was lost") and the flush-loss channel once for
                # its completed path.
                remainder = sum(
                    1
                    for _ in range(remainder)
                    if not injector.should_drop_message()
                    and not injector.should_lose_profiler_flush()
                )
            if remainder > 0:
                self.dca.profiler.record(last_trace.signature, now, count=remainder)

    # -- demand & service ----------------------------------------------------------------

    def _compute_demand(
        self,
        arrivals: Mapping[str, int],
        sampled_by_class: Mapping[str, int],
    ) -> Tuple[Dict[str, float], Dict[str, float], Dict[str, float]]:
        base: Dict[str, float] = {name: 0.0 for name in self.app.components}
        overhead: Dict[str, float] = {name: 0.0 for name in self.app.components}
        comp_arrivals: Dict[str, float] = {name: 0.0 for name in self.app.components}
        for class_name, count in arrivals.items():
            if count <= 0:
                continue
            trace = self._trace_for(class_name)
            n_sampled = sampled_by_class.get(class_name, 0)
            for comp, msgs in trace.component_messages.items():
                cost = self.app.components[comp].service_cost
                base[comp] += count * msgs * cost
                comp_arrivals[comp] += count * msgs
            for comp, instr_ms in trace.component_instr_ms.items():
                if n_sampled > 0:
                    overhead[comp] += n_sampled * instr_ms
        return base, overhead, comp_arrivals

    def _serve(
        self,
        now: float,
        base_demand: Mapping[str, float],
        overhead: Mapping[str, float],
        comp_arrivals: Mapping[str, float],
    ) -> Tuple[Dict[str, object], Dict[str, ComponentObservation], Dict[str, ComponentInterval]]:
        stations: Dict[str, object] = {}
        comp_obs: Dict[str, ComponentObservation] = {}
        comp_intervals: Dict[str, ComponentInterval] = {}
        node_cap = self.machine.capacity_ms_per_minute
        tap = self.tap
        for comp, group in self.cluster.groups.items():
            if tap is not None:
                tap.emit(
                    "replica_observed",
                    component=comp,
                    ready=group.ready,
                    pending=group.pending,
                )
            demand = base_demand.get(comp, 0.0) + overhead.get(comp, 0.0)
            effective = max(1, group.effective_nodes())
            capacity = effective * node_cap
            station = serve_interval(demand, self._backlog_ms[comp], capacity)
            # Requests time out rather than queueing forever: carry at most
            # two intervals' worth of backlog (the dropped work has already
            # been charged as saturation latency / SLA violations).
            self._backlog_ms[comp] = min(station.backlog_ms, 2.0 * capacity)
            stations[comp] = station

            req_min = nodes_required(
                base_demand.get(comp, 0.0), node_cap, self.config.req_min_utilization
            )
            serial = group.spec.serial_limit
            if serial is not None:
                req_min = min(req_min, serial)

            contention = self._lock_contention(group, demand, node_cap)
            service_cost = self.app.components[comp].service_cost
            queue_depth = station.backlog_ms / max(service_cost, 1e-9)

            comp_obs[comp] = ComponentObservation(
                component=comp,
                nodes=group.ready,
                pending_nodes=group.pending,
                utilization=station.rho,
                memory_utilization=min(1.0, 0.3 + 0.5 * station.rho),
                arrivals_per_min=comp_arrivals.get(comp, 0.0),
                queue_depth=queue_depth,
                service_demand_ms=demand,
                lock_contention=contention,
                latency_ms=service_cost * station.inflation,
            )
            comp_intervals[comp] = ComponentInterval(
                component=comp,
                base_demand_ms=base_demand.get(comp, 0.0),
                overhead_ms=overhead.get(comp, 0.0),
                capacity_ms=capacity,
                utilization=station.rho,
                backlog_ms=station.backlog_ms,
                ready_nodes=group.ready,
                pending_nodes=group.pending,
                provisioned_nodes=group.provisioned,
                req_min_nodes=req_min,
                latency_inflation=station.inflation,
            )
        return stations, comp_obs, comp_intervals

    @staticmethod
    def _lock_contention(group, offered_ms: float, node_cap: float) -> float:
        serial = group.spec.serial_limit
        if serial is None or offered_ms <= 0:
            return 0.0
        ratio = offered_ms / (serial * node_cap)
        return max(0.0, min(1.0, (ratio - 0.6) / 0.8))

    def _latency_and_sla(
        self,
        arrivals: Mapping[str, int],
        stations: Mapping[str, object],
    ) -> Tuple[float, float]:
        total = sum(arrivals.values())
        if total <= 0:
            return 0.0, 0.0
        violated = 0.0
        weighted_latency = 0.0
        for class_name, count in arrivals.items():
            if count <= 0:
                continue
            trace = self._trace_for(class_name)
            latency = self.config.network_hop_ms * (trace.depth + 1)
            for comp in trace.components:
                station = stations.get(comp)
                inflation = station.inflation if station is not None else 1.0
                latency += self.app.components[comp].service_cost * inflation
            weighted_latency += count * latency
            if latency > self._sla_ms:
                violated += count
        return violated / total, weighted_latency / total

    def _feed_htrace(self, arrivals: Mapping[str, int]) -> None:
        if self.htrace is None:
            return
        class_costs: Dict[str, Dict[str, float]] = {}
        class_arrivals: Dict[str, float] = {}
        for class_name, count in arrivals.items():
            class_arrivals[class_name] = float(count)
            trace = self._trace_for(class_name)
            class_costs[class_name] = {
                comp: msgs * self.app.components[comp].service_cost
                for comp, msgs in trace.component_messages.items()
            }
        self.htrace.observe_interval(class_arrivals, class_costs)
