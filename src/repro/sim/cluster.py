"""Cluster state: per-component replica groups with provisioning delays.

Elastic scaling is not instantaneous — steps S2/S3 of the paper's
elasticity loop (requesting resources, provisioning components on them)
take time.  :class:`ComponentGroup` models a replica group whose node
count changes through a provisioning pipeline: scale-ups become *pending*
and turn ready after ``provision_delay_minutes``; scale-downs drain after
``deprovision_delay_minutes`` (the paper observes that SLA violations do
not occur while workload decreases precisely because not-yet-released
excess capacity keeps serving).

A group may carry a ``serial_limit``: the maximum number of nodes that
usefully add capacity (Section II-C's lock-contention scenario — e.g. a
coordination service whose write path is leader-serialised).  Nodes
beyond the limit are provisioned and paid for, but add no capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError


@dataclass(frozen=True)
class DeploymentSpec:
    """Static deployment configuration of one component."""

    initial_nodes: int = 10
    min_nodes: int = 1
    max_nodes: int = 500
    serial_limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.min_nodes < 1:
            raise SimulationError(f"min_nodes must be >= 1, got {self.min_nodes}")
        if not self.min_nodes <= self.initial_nodes <= self.max_nodes:
            raise SimulationError(
                f"initial_nodes {self.initial_nodes} outside [{self.min_nodes}, {self.max_nodes}]"
            )
        if self.serial_limit is not None and self.serial_limit < 1:
            raise SimulationError(f"serial_limit must be >= 1, got {self.serial_limit}")


class ComponentGroup:
    """Replica group of one component with a provisioning pipeline."""

    def __init__(self, component: str, spec: DeploymentSpec, tap=None) -> None:
        self.component = component
        self.spec = spec
        self.ready = spec.initial_nodes
        # list of (ready_at_minute, count)
        self._pending: List[Tuple[float, int]] = []
        # list of (release_at_minute, count)
        self._draining: List[Tuple[float, int]] = []
        #: Optional :class:`~repro.sim.tap.SimTap`; emit-only (hooks
        #: never mutate state or consume randomness).
        self.tap = tap
        if tap is not None:
            tap.emit("replica_init", component=component, ready=self.ready)

    # -- state ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        return sum(count for _, count in self._pending)

    @property
    def draining(self) -> int:
        return sum(count for _, count in self._draining)

    @property
    def provisioned(self) -> int:
        """Capacity paid for this interval: ready + pending + draining."""
        return self.ready + self.pending + self.draining

    def effective_nodes(self) -> int:
        """Nodes that contribute capacity (serial limit applied)."""
        if self.spec.serial_limit is None:
            return self.ready
        return min(self.ready, self.spec.serial_limit)

    # -- transitions -----------------------------------------------------------

    def advance(self, now_minutes: float) -> None:
        """Complete provisioning/draining whose deadline has passed."""
        matured = [(eta, c) for eta, c in self._pending if eta <= now_minutes]
        self._pending = [(eta, c) for eta, c in self._pending if eta > now_minutes]
        for _, count in matured:
            self.ready += count
        if matured and self.tap is not None:
            self.tap.emit(
                "provision_matured",
                component=self.component,
                count=sum(c for _, c in matured),
                ready=self.ready,
            )
        self._draining = [(eta, c) for eta, c in self._draining if eta > now_minutes]

    def transition_times(self) -> List[float]:
        """ETAs of in-flight provisioning/draining completions."""
        return [eta for eta, _ in self._pending] + [eta for eta, _ in self._draining]

    def fail_nodes(self, count: int) -> int:
        """Crash up to ``count`` ready nodes (failure injection).

        Failed nodes disappear immediately — no draining, no refund; the
        elasticity manager only sees the capacity drop through its
        monitoring signals and must re-provision.  Returns how many
        nodes actually failed (``ready`` never drops below zero).
        """
        if count < 0:
            raise SimulationError(f"failure count must be >= 0, got {count}")
        failed = min(count, self.ready)
        self.ready -= failed
        if failed and self.tap is not None:
            self.tap.emit(
                "nodes_crashed",
                component=self.component,
                count=failed,
                ready=self.ready,
            )
        return failed

    def apply_target(
        self,
        target: int,
        now_minutes: float,
        provision_delay_minutes: float,
        deprovision_delay_minutes: float,
    ) -> None:
        """Move toward ``target`` nodes, respecting delays and bounds."""
        target = max(self.spec.min_nodes, min(self.spec.max_nodes, int(target)))
        current = self.ready + self.pending
        if target > current:
            add = target - current
            eta = now_minutes + provision_delay_minutes
            self._pending.append((eta, add))
            if self.tap is not None:
                self.tap.emit(
                    "provision_requested",
                    component=self.component,
                    count=add,
                    eta=eta,
                )
        elif target < current:
            remove = current - target
            # Cancel pending first (cheapest), then drain ready nodes.
            requested = remove
            remove = self._cancel_pending(remove)
            if requested != remove and self.tap is not None:
                self.tap.emit(
                    "pending_cancelled",
                    component=self.component,
                    count=requested - remove,
                )
            if remove > 0:
                removable = min(remove, self.ready - self.spec.min_nodes)
                if removable > 0:
                    self.ready -= removable
                    self._draining.append((now_minutes + deprovision_delay_minutes, removable))
                    if self.tap is not None:
                        self.tap.emit(
                            "drain_started",
                            component=self.component,
                            count=removable,
                            ready=self.ready,
                        )

    def _cancel_pending(self, remove: int) -> int:
        """Cancel up to ``remove`` pending nodes; return the remainder."""
        still_pending: List[Tuple[float, int]] = []
        for eta, count in sorted(self._pending, key=lambda p: -p[0]):
            if remove >= count:
                remove -= count
            elif remove > 0:
                still_pending.append((eta, count - remove))
                remove = 0
            else:
                still_pending.append((eta, count))
        self._pending = sorted(still_pending)
        return remove


class Cluster:
    """All component groups of one application deployment."""

    def __init__(
        self,
        deployments: Dict[str, DeploymentSpec],
        provision_delay_minutes: float = 2.0,
        deprovision_delay_minutes: float = 1.0,
        tap=None,
    ) -> None:
        if not deployments:
            raise SimulationError("cluster requires at least one component deployment")
        if provision_delay_minutes < 0 or deprovision_delay_minutes < 0:
            raise SimulationError("provisioning delays must be >= 0")
        self.groups: Dict[str, ComponentGroup] = {
            name: ComponentGroup(name, spec, tap=tap)
            for name, spec in sorted(deployments.items())
        }
        self.provision_delay_minutes = float(provision_delay_minutes)
        self.deprovision_delay_minutes = float(deprovision_delay_minutes)

    def advance(self, now_minutes: float) -> None:
        for group in self.groups.values():
            group.advance(now_minutes)

    def apply_targets(self, targets: Dict[str, int], now_minutes: float) -> None:
        for component, target in targets.items():
            group = self.groups.get(component)
            if group is None:
                raise SimulationError(f"scaling target for unknown component {component!r}")
            group.apply_target(
                target,
                now_minutes,
                self.provision_delay_minutes,
                self.deprovision_delay_minutes,
            )

    def pending_transition_times(self) -> List[float]:
        """Sorted distinct ETAs of replica start/stop completions.

        The event engine turns each into a cluster-transition event so
        provisioning pipelines mature at their exact deadline instead of
        being polled every interval.
        """
        times = set()
        for group in self.groups.values():
            times.update(group.transition_times())
        return sorted(times)

    def fail_component(self, component: str, count: int) -> int:
        """Crash up to ``count`` ready nodes of ``component``.

        ``component`` may be ``"*"`` to crash ``count`` nodes of *every*
        group (the app-agnostic form fault scenarios use).  Returns the
        number of nodes that actually failed.
        """
        if component == "*":
            return sum(group.fail_nodes(count) for group in self.groups.values())
        return self.group(component).fail_nodes(count)

    def total_provisioned(self) -> int:
        return sum(group.provisioned for group in self.groups.values())

    def group(self, component: str) -> ComponentGroup:
        try:
            return self.groups[component]
        except KeyError:
            raise SimulationError(f"unknown component group {component!r}") from None
