"""Replica-level message routing within a component.

The paper's components are "distributed over multiple physical
hosts/virtual machines/containers" (Section II-A), and its Section II-A
motivation is precisely that workload spikes land on *specific
portions/nodes of each component* — e.g. the shards of the query-index
holding a hot search term.  This module adds that replica dimension to
the message-level runtime: each component runs ``n`` replicas with
independent state, and messages are routed either round-robin or by
hashing a payload field (partitioned/sharded components).

The mesoscale simulator keeps modelling replica groups by capacity; this
runtime exists to *observe* replica-level phenomena — hot-shard
concentration, per-replica provenance isolation — at message resolution.

Replica state (round-robin cursors, per-replica interpreter state, uid
factories) is shared by every request class executing through the
runtime.  The event engine's converged-replay ingestion
(:mod:`repro.sim.events`) relies on this: because one class's execution
advances state that other classes observe, replay must cut over
*atomically for all classes at once* — per-class cutover would perturb
the still-live classes and break tick parity.
"""

from __future__ import annotations

import zlib
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.core.dca import DCAResult
from repro.core.instrument import InstrumentedComponent, OverheadModel
from repro.errors import SimulationError
from repro.lang.interpreter import Interpreter, ReplicaState
from repro.lang.ir import CLIENT, EXTERNAL, Application
from repro.lang.message import Message, UidFactory
from repro.workloads.generator import RequestClass


@dataclass(frozen=True)
class ReplicaSpec:
    """How one component is replicated and routed.

    ``count`` replicas; ``routing_field`` names the payload field whose
    value selects the replica (hash partitioning, e.g. a key or shard
    id); ``None`` means round-robin (stateless load balancing).
    """

    count: int = 1
    routing_field: Optional[str] = None

    def __post_init__(self) -> None:
        if self.count < 1:
            raise SimulationError(f"replica count must be >= 1, got {self.count}")


@dataclass
class ReplicatedTrace:
    """Per-replica observation of one request execution."""

    request_class: str
    replica_messages: Dict[str, List[int]]
    responses: int

    def component_total(self, component: str) -> int:
        return sum(self.replica_messages.get(component, ()))

    def hottest_replica_share(self, component: str) -> float:
        """Fraction of the component's messages on its busiest replica."""
        counts = self.replica_messages.get(component)
        if not counts or sum(counts) == 0:
            return 0.0
        return max(counts) / sum(counts)


class ReplicatedApplicationRuntime:
    """Message-level runtime with per-component replica groups.

    Each replica has its own :class:`ReplicaState` (values + provenance),
    so state written on one replica is invisible on its siblings — the
    source of the hot-shard effects Section II-A describes.
    """

    def __init__(
        self,
        app: Application,
        replicas: Mapping[str, ReplicaSpec],
        dca_result: Optional[DCAResult] = None,
        overhead_model: Optional[OverheadModel] = None,
        sampling_rate: float = 1.0,
        max_messages_per_request: int = 100_000,
    ) -> None:
        self.app = app
        self.specs: Dict[str, ReplicaSpec] = {
            name: replicas.get(name, ReplicaSpec()) for name in app.components
        }
        unknown = set(replicas) - set(app.components)
        if unknown:
            raise SimulationError(f"replica specs for unknown components: {sorted(unknown)}")
        self.max_messages_per_request = int(max_messages_per_request)
        self._external_uids = UidFactory("client.external", 0)
        self._rr_cursor: Dict[str, int] = {name: 0 for name in app.components}
        self._states: Dict[str, List[ReplicaState]] = {}
        self._uid_factories: Dict[str, List[UidFactory]] = {}
        self._handlers: Dict[str, object] = {}
        self._instrumented = dca_result is not None
        for idx, (name, component) in enumerate(sorted(app.components.items()), start=1):
            spec = self.specs[name]
            self._states[name] = [
                ReplicaState.from_component(component) for _ in range(spec.count)
            ]
            self._uid_factories[name] = [
                UidFactory(f"10.{idx}.0.{replica + 1}", replica + 1)
                for replica in range(spec.count)
            ]
            if dca_result is not None:
                analysis = dca_result.per_component.get(name)
                if analysis is None:
                    raise SimulationError(f"DCA result missing component {name!r}")
                self._handlers[name] = InstrumentedComponent(
                    component,
                    analysis,
                    app.library,
                    overhead_model=overhead_model,
                    sampling_rate=sampling_rate,
                )
            else:
                self._handlers[name] = Interpreter(component, app.library)

    # -- routing ------------------------------------------------------------------

    def route(self, component: str, message: Message) -> int:
        """Pick the replica index for ``message`` at ``component``."""
        spec = self.specs[component]
        if spec.count == 1:
            return 0
        if spec.routing_field is not None:
            value = message.fields.get(spec.routing_field)
            if value is None:
                raise SimulationError(
                    f"message {message.msg_type!r} to {component!r} lacks routing "
                    f"field {spec.routing_field!r}"
                )
            return zlib.crc32(str(value).encode("utf-8")) % spec.count
        cursor = self._rr_cursor[component]
        self._rr_cursor[component] = (cursor + 1) % spec.count
        return cursor

    # -- execution -----------------------------------------------------------------

    def execute_request(self, request: RequestClass, sampled: bool = True) -> ReplicatedTrace:
        """Run one request, recording per-replica message counts."""
        entry = self.app.entry_points.get(request.request_type)
        if entry is None:
            raise SimulationError(
                f"request class {request.name!r} uses unknown entry type {request.request_type!r}"
            )
        root = Message(
            uid=self._external_uids.next_uid(),
            msg_type=request.request_type,
            src=EXTERNAL,
            dest=entry,
            fields=dict(request.fields),
            sampled=sampled,
        )
        counts: Dict[str, List[int]] = {
            name: [0] * self.specs[name].count for name in self.app.components
        }
        responses = 0
        handled = 0
        queue: deque = deque([root])
        while queue:
            handled += 1
            if handled > self.max_messages_per_request:
                raise SimulationError(
                    f"request {request.name!r} exceeded {self.max_messages_per_request} messages"
                )
            message = queue.popleft()
            if message.dest == CLIENT:
                responses += 1
                continue
            component = message.dest
            replica = self.route(component, message)
            counts[component][replica] += 1
            state = self._states[component][replica]
            uid_factory = self._uid_factories[component][replica]
            handler = self._handlers[component]
            if self._instrumented:
                outcome = handler.handle(state, message, uid_factory).outcome  # type: ignore[union-attr]
            else:
                outcome = handler.handle(state, message, uid_factory)  # type: ignore[union-attr]
            queue.extend(outcome.emitted)
        return ReplicatedTrace(
            request_class=request.name,
            replica_messages=counts,
            responses=responses,
        )

    def replica_state(self, component: str, replica: int) -> ReplicaState:
        """Direct access to one replica's state (for tests/inspection)."""
        try:
            return self._states[component][replica]
        except (KeyError, IndexError):
            raise SimulationError(f"unknown replica {component!r}[{replica}]") from None
