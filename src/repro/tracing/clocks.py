"""Logical clocks for temporal ("happens-before") causality (Section III).

The paper contrasts direct causality with temporal causality as detected
by Lamport clocks and vector clocks.  These implementations are used by
the temporal-causality baseline and by the precision/recall ablation
benchmark, which quantifies how many false causal attributions
happens-before produces on concurrent workloads (the paper's Fig. 3
scenario).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.errors import ReproError


class LamportClock:
    """Classic scalar Lamport clock.

    ``tick()`` for local events, ``send()`` to stamp an outgoing message,
    ``receive(ts)`` to merge an incoming stamp.
    """

    def __init__(self) -> None:
        self._time = 0

    @property
    def time(self) -> int:
        return self._time

    def tick(self) -> int:
        self._time += 1
        return self._time

    def send(self) -> int:
        """Stamp for an outgoing message (increments first)."""
        return self.tick()

    def receive(self, timestamp: int) -> int:
        if timestamp < 0:
            raise ReproError(f"negative Lamport timestamp {timestamp}")
        self._time = max(self._time, timestamp) + 1
        return self._time


@dataclass(frozen=True)
class VectorTimestamp:
    """Immutable vector timestamp keyed by process name."""

    clocks: Mapping[str, int]

    def get(self, process: str) -> int:
        return self.clocks.get(process, 0)

    def happens_before(self, other: "VectorTimestamp") -> bool:
        """True iff ``self`` < ``other`` in vector-clock partial order."""
        processes = set(self.clocks) | set(other.clocks)
        le_all = all(self.get(p) <= other.get(p) for p in processes)
        lt_some = any(self.get(p) < other.get(p) for p in processes)
        return le_all and lt_some

    def concurrent_with(self, other: "VectorTimestamp") -> bool:
        """True iff neither timestamp happens-before the other."""
        return (
            not self.happens_before(other)
            and not other.happens_before(self)
            and dict(self.clocks) != dict(other.clocks)
        )

    def merged(self, other: "VectorTimestamp") -> "VectorTimestamp":
        processes = set(self.clocks) | set(other.clocks)
        return VectorTimestamp({p: max(self.get(p), other.get(p)) for p in processes})


class VectorClock:
    """Per-process vector clock."""

    def __init__(self, process: str) -> None:
        if not process:
            raise ReproError("VectorClock requires a non-empty process name")
        self.process = process
        self._clocks: Dict[str, int] = {process: 0}

    def snapshot(self) -> VectorTimestamp:
        return VectorTimestamp(dict(self._clocks))

    def tick(self) -> VectorTimestamp:
        self._clocks[self.process] = self._clocks.get(self.process, 0) + 1
        return self.snapshot()

    def send(self) -> VectorTimestamp:
        return self.tick()

    def receive(self, timestamp: VectorTimestamp) -> VectorTimestamp:
        for process, value in timestamp.clocks.items():
            if value < 0:
                raise ReproError(f"negative vector component for {process!r}")
            self._clocks[process] = max(self._clocks.get(process, 0), value)
        return self.tick()
