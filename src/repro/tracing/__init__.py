"""Temporal ("happens-before") causality substrate for the baselines."""

from repro.tracing.clocks import LamportClock, VectorClock, VectorTimestamp
from repro.tracing.htrace import HTraceCollector
from repro.tracing.itc import Stamp
from repro.tracing.spans import Span, SpanId, TemporalSpanTracer

__all__ = [
    "HTraceCollector",
    "LamportClock",
    "Span",
    "SpanId",
    "Stamp",
    "TemporalSpanTracer",
    "VectorClock",
    "VectorTimestamp",
]
