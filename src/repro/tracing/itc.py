"""Interval Tree Clocks (Almeida, Baquero, Fonte; OPODIS 2008).

The paper lists ITCs among the "optimized logical timestamps" used by
recent tracing systems (Section III, refs [10][24]).  This is a faithful
implementation of the fork–event–join model:

* an **id tree** describes which interval of the unit range a stamp owns
  (``0`` = none, ``1`` = all, ``(l, r)`` = split);
* an **event tree** is an interval-indexed counter (``n`` or
  ``(n, l, r)`` with base ``n`` and relative subtrees);
* ``fork`` splits a stamp's id between two replicas, ``join`` merges two
  stamps (ids and events), ``event`` inflates the event tree over the
  stamp's own interval, and ``leq`` is the happens-before partial order.

Like vector clocks, ITCs detect only *temporal* causality — the
Fig. 3 false positive applies equally (see
``tests/tracing/test_itc.py::TestFig3``) — but they need no static
process enumeration, which is why tracing systems favour them.
"""

from __future__ import annotations

from typing import Tuple, Union

from repro.errors import ReproError

#: Id trees: 0 (no interval), 1 (whole interval), or a (left, right) pair.
IdTree = Union[int, Tuple["IdTree", "IdTree"]]
#: Event trees: an int, or (base, left, right) with relative subtrees.
EventTree = Union[int, Tuple[int, "EventTree", "EventTree"]]


# ---------------------------------------------------------------------------
# Id trees
# ---------------------------------------------------------------------------


def norm_id(i: IdTree) -> IdTree:
    """Normalise an id tree: ``(0, 0) → 0`` and ``(1, 1) → 1``."""
    if isinstance(i, int):
        if i not in (0, 1):
            raise ReproError(f"id leaves must be 0 or 1, got {i}")
        return i
    left, right = norm_id(i[0]), norm_id(i[1])
    if left == 0 and right == 0:
        return 0
    if left == 1 and right == 1:
        return 1
    return (left, right)


def split_id(i: IdTree) -> Tuple[IdTree, IdTree]:
    """Split an id into two disjoint ids covering the same interval."""
    if i == 0:
        return 0, 0
    if i == 1:
        return (1, 0), (0, 1)
    left, right = i  # type: ignore[misc]
    if left == 0:
        r1, r2 = split_id(right)
        return (0, r1), (0, r2)
    if right == 0:
        l1, l2 = split_id(left)
        return (l1, 0), (l2, 0)
    return (left, 0), (0, right)


def sum_id(i1: IdTree, i2: IdTree) -> IdTree:
    """Merge two disjoint ids; raises if they overlap."""
    if i1 == 0:
        return i2
    if i2 == 0:
        return i1
    if isinstance(i1, int) or isinstance(i2, int):
        raise ReproError("cannot join overlapping interval ids")
    return norm_id((sum_id(i1[0], i2[0]), sum_id(i1[1], i2[1])))


# ---------------------------------------------------------------------------
# Event trees
# ---------------------------------------------------------------------------


def _lift(e: EventTree, m: int) -> EventTree:
    if isinstance(e, int):
        return e + m
    return (e[0] + m, e[1], e[2])


def _sink(e: EventTree, m: int) -> EventTree:
    if isinstance(e, int):
        if e < m:
            raise ReproError(f"cannot sink event {e} by {m}")
        return e - m
    if e[0] < m:
        raise ReproError(f"cannot sink event base {e[0]} by {m}")
    return (e[0] - m, e[1], e[2])


def min_event(e: EventTree) -> int:
    """Smallest counter value anywhere under ``e``."""
    if isinstance(e, int):
        return e
    return e[0] + min(min_event(e[1]), min_event(e[2]))


def max_event(e: EventTree) -> int:
    """Largest counter value anywhere under ``e``."""
    if isinstance(e, int):
        return e
    return e[0] + max(max_event(e[1]), max_event(e[2]))


def norm_event(e: EventTree) -> EventTree:
    """Normalise: collapse equal-leaf nodes and sink common minimums."""
    if isinstance(e, int):
        return e
    n, left, right = e[0], norm_event(e[1]), norm_event(e[2])
    if isinstance(left, int) and isinstance(right, int) and left == right:
        return n + left
    m = min(min_event(left), min_event(right))
    return (n + m, _sink(left, m), _sink(right, m))


def leq_event(e1: EventTree, e2: EventTree) -> bool:
    """The happens-before partial order on event trees."""
    if isinstance(e1, int):
        if isinstance(e2, int):
            return e1 <= e2
        return e1 <= e2[0]
    n1, l1, r1 = e1
    if isinstance(e2, int):
        return (
            n1 <= e2
            and leq_event(_lift(l1, n1), e2)
            and leq_event(_lift(r1, n1), e2)
        )
    n2, l2, r2 = e2
    return (
        n1 <= n2
        and leq_event(_lift(l1, n1), _lift(l2, n2))
        and leq_event(_lift(r1, n1), _lift(r2, n2))
    )


def join_event(e1: EventTree, e2: EventTree) -> EventTree:
    """Least upper bound of two event trees."""
    if isinstance(e1, int) and isinstance(e2, int):
        return max(e1, e2)
    if isinstance(e1, int):
        return join_event((e1, 0, 0), e2)
    if isinstance(e2, int):
        return join_event(e1, (e2, 0, 0))
    if e1[0] > e2[0]:
        return join_event(e2, e1)
    n1, l1, r1 = e1
    n2, l2, r2 = e2
    d = n2 - n1
    return norm_event((n1, join_event(l1, _lift(l2, d)), join_event(r1, _lift(r2, d))))


# -- inflation (the `event` operation) ----------------------------------------


def _fill(i: IdTree, e: EventTree) -> EventTree:
    if i == 0:
        return e
    if i == 1:
        return max_event(e)
    if isinstance(e, int):
        return e
    il, ir = i  # type: ignore[misc]
    n, el, er = e
    if il == 1:
        er2 = _fill(ir, er)
        return norm_event((n, max(max_event(el), min_event(er2)), er2))
    if ir == 1:
        el2 = _fill(il, el)
        return norm_event((n, el2, max(max_event(er), min_event(el2))))
    return norm_event((n, _fill(il, el), _fill(ir, er)))


_GROW_DEPTH_COST = 1_000


def _grow(i: IdTree, e: EventTree) -> Tuple[EventTree, int]:
    if i == 1 and isinstance(e, int):
        return e + 1, 0
    if isinstance(e, int):
        if i == 0:
            raise ReproError("a stamp with id 0 cannot record events")
        e2, cost = _grow(i, (e, 0, 0))
        return e2, cost + _GROW_DEPTH_COST
    if isinstance(i, int):
        raise ReproError("malformed grow: integer id over event tree")
    il, ir = i
    n, el, er = e
    if il == 0:
        er2, cost = _grow(ir, er)
        return (n, el, er2), cost + 1
    if ir == 0:
        el2, cost = _grow(il, el)
        return (n, el2, er), cost + 1
    el2, cost_l = _grow(il, el)
    er2, cost_r = _grow(ir, er)
    if cost_l < cost_r:
        return (n, el2, er), cost_l + 1
    return (n, el, er2), cost_r + 1


# ---------------------------------------------------------------------------
# Stamps
# ---------------------------------------------------------------------------


class Stamp:
    """An ITC stamp: an interval id plus an event tree.

    Immutable in style: every operation returns new stamps.
    """

    __slots__ = ("id_tree", "event_tree")

    def __init__(self, id_tree: IdTree = 1, event_tree: EventTree = 0) -> None:
        self.id_tree = norm_id(id_tree)
        self.event_tree = norm_event(event_tree)

    # -- core operations ----------------------------------------------------

    @classmethod
    def seed(cls) -> "Stamp":
        """The initial stamp ``(1, 0)`` owning the whole interval."""
        return cls(1, 0)

    def fork(self) -> Tuple["Stamp", "Stamp"]:
        """Split this stamp into two with disjoint ids and equal history."""
        i1, i2 = split_id(self.id_tree)
        return Stamp(i1, self.event_tree), Stamp(i2, self.event_tree)

    def peek(self) -> "Stamp":
        """An anonymous (id 0) copy for message timestamps."""
        return Stamp(0, self.event_tree)

    def event(self) -> "Stamp":
        """Record a local event: strictly inflates the event tree."""
        if self.id_tree == 0:
            raise ReproError("an anonymous stamp (id 0) cannot record events")
        filled = _fill(self.id_tree, self.event_tree)
        if filled != self.event_tree:
            return Stamp(self.id_tree, filled)
        grown, _ = _grow(self.id_tree, self.event_tree)
        return Stamp(self.id_tree, grown)

    def join(self, other: "Stamp") -> "Stamp":
        """Merge two stamps (message receive: ``local.join(msg.peek())``)."""
        return Stamp(
            sum_id(self.id_tree, other.id_tree),
            join_event(self.event_tree, other.event_tree),
        )

    # -- ordering ------------------------------------------------------------

    def leq(self, other: "Stamp") -> bool:
        """Happens-before-or-equal on the recorded histories."""
        return leq_event(self.event_tree, other.event_tree)

    def happens_before(self, other: "Stamp") -> bool:
        return self.leq(other) and not other.leq(self)

    def concurrent_with(self, other: "Stamp") -> bool:
        return not self.leq(other) and not other.leq(self)

    # -- plumbing ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Stamp):
            return NotImplemented
        return self.id_tree == other.id_tree and self.event_tree == other.event_tree

    def __hash__(self) -> int:
        return hash((repr(self.id_tree), repr(self.event_tree)))

    def __repr__(self) -> str:
        return f"Stamp(id={self.id_tree!r}, event={self.event_tree!r})"
