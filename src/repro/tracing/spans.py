"""Dapper/HTrace-style span tracing with temporal parenting (Section III).

A *span* covers the processing of one message at one component; spans
carry 128-bit-style trace ids and are parented by **temporal precedence**:
when a component emits a message, the span tracer attributes it to every
recent incoming span at that component, because without direct
control/data-flow knowledge it cannot tell which of several temporally
preceding messages actually caused the emission (the paper's Fig. 3:
``{msgA, msgB} ≺ msgC`` even though only ``msgA`` caused ``msgC``).

The false-positive mechanism is explicit and tunable:
``attribution_window_ms`` controls how far back "temporally preceding"
reaches; with concurrent requests in flight, cross-request attributions
appear at a rate that grows with load — exactly the imprecision that
"compounds over several hundred causal paths" (Section V-D).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError


@dataclass(frozen=True)
class SpanId:
    """Unique span identifier (deterministic stand-in for a 128-bit id)."""

    trace_root: int
    serial: int

    def __str__(self) -> str:
        return f"{self.trace_root:08x}:{self.serial:08x}"


@dataclass
class Span:
    """One unit of processing at one component.

    ``parents`` are the spans this span is *temporally* attributed to;
    ``true_parent`` records ground truth for precision/recall accounting
    (available in simulation, never used by the HTrace baseline's
    decisions).
    """

    span_id: SpanId
    component: str
    msg_type: str
    start_ms: float
    end_ms: float
    parents: Tuple[SpanId, ...] = ()
    true_parent: Optional[SpanId] = None


class TemporalSpanTracer:
    """Builds span trees using wall-clock temporal precedence.

    ``record_receive`` opens a span for an incoming message at a
    component; ``record_emit`` attributes an outgoing message to all
    spans at the component whose processing window overlaps the
    ``attribution_window_ms`` preceding the emission.
    """

    def __init__(self, attribution_window_ms: float = 50.0) -> None:
        if attribution_window_ms <= 0:
            raise ReproError(f"attribution_window_ms must be positive, got {attribution_window_ms}")
        self.attribution_window_ms = float(attribution_window_ms)
        self._serial = itertools.count(1)
        self.spans: Dict[SpanId, Span] = {}
        # component -> list of (span_id, start_ms, end_ms) recently active
        self._active: Dict[str, List[Tuple[SpanId, float, float]]] = {}

    def record_receive(
        self,
        component: str,
        msg_type: str,
        time_ms: float,
        duration_ms: float,
        trace_root: int,
        true_parent: Optional[SpanId] = None,
    ) -> Span:
        """Open a span for a message received at ``component``."""
        span = Span(
            span_id=SpanId(trace_root, next(self._serial)),
            component=component,
            msg_type=msg_type,
            start_ms=time_ms,
            end_ms=time_ms + max(0.0, duration_ms),
            true_parent=true_parent,
        )
        self.spans[span.span_id] = span
        self._active.setdefault(component, []).append((span.span_id, span.start_ms, span.end_ms))
        self._gc(component, time_ms)
        return span

    def temporal_parents(self, component: str, emit_time_ms: float) -> List[SpanId]:
        """Spans temporally preceding an emission at ``component``.

        Every span whose window intersects
        ``[emit_time - attribution_window, emit_time]`` is a candidate
        parent — the tracer cannot do better without data-flow knowledge.
        """
        horizon = emit_time_ms - self.attribution_window_ms
        out: List[SpanId] = []
        for span_id, start, end in self._active.get(component, []):
            if start <= emit_time_ms and end >= horizon:
                out.append(span_id)
        return out

    def record_emit(
        self,
        component: str,
        msg_type: str,
        emit_time_ms: float,
        duration_ms: float,
        dest_component: str,
        trace_root: int,
        true_parent: Optional[SpanId] = None,
    ) -> Span:
        """Record an emission: a new span at the destination, temporally parented."""
        parents = tuple(self.temporal_parents(component, emit_time_ms))
        span = Span(
            span_id=SpanId(trace_root, next(self._serial)),
            component=dest_component,
            msg_type=msg_type,
            start_ms=emit_time_ms,
            end_ms=emit_time_ms + max(0.0, duration_ms),
            parents=parents,
            true_parent=true_parent,
        )
        self.spans[span.span_id] = span
        self._active.setdefault(dest_component, []).append((span.span_id, span.start_ms, span.end_ms))
        self._gc(dest_component, emit_time_ms)
        return span

    def _gc(self, component: str, now_ms: float) -> None:
        horizon = now_ms - 4 * self.attribution_window_ms
        active = self._active.get(component, [])
        self._active[component] = [(sid, s, e) for (sid, s, e) in active if e >= horizon]

    # -- precision accounting -----------------------------------------------------

    def attribution_precision(self) -> float:
        """Fraction of attributed parents that are true parents.

        1.0 means temporal causality matched direct causality exactly;
        values fall as concurrency rises (Fig. 3's scenario).  Spans with
        no recorded ground truth are skipped.
        """
        correct = 0
        attributed = 0
        for span in self.spans.values():
            if span.true_parent is None or not span.parents:
                continue
            attributed += len(span.parents)
            if span.true_parent in span.parents:
                correct += 1
        if attributed == 0:
            return 1.0
        return correct / attributed
