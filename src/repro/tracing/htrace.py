"""Mesoscale HTrace collector: temporal span profiles for the baseline.

The HTrace+CloudWatch baseline (Section V-A) performs "proportional
scaling of overloaded paths" using span profiles from temporal causality.
This collector maintains per-component *span-time* weights — each traced
request contributes its per-component span durations, which is what a
span profile actually measures.  But, because spans are parented
temporally, a traced request that overlaps other in-flight requests is
attributed to *their* components too.  The cross-attribution probability
follows the overlap probability of a Poisson arrival process:
``p_overlap = 1 - exp(-λ·τ)`` for total arrival rate λ and attribution
window τ, which reproduces the paper's observation that temporal
imprecision grows with load and "compounds over several hundred causal
paths".
"""

from __future__ import annotations

import math
import random
from typing import Dict, Mapping

from repro.errors import ReproError


class HTraceCollector:
    """Estimates per-component load weights from temporally parented spans.

    Parameters
    ----------
    attribution_window_ms:
        Temporal window τ within which an unrelated in-flight request is
        mis-attributed.
    ewma_alpha:
        Smoothing for the per-component weight estimate.
    seed:
        RNG seed (kept for API stability of stochastic extensions).
    """

    def __init__(
        self,
        attribution_window_ms: float = 50.0,
        ewma_alpha: float = 0.3,
        seed: int = 0,
    ) -> None:
        if attribution_window_ms <= 0:
            raise ReproError(f"attribution_window_ms must be positive, got {attribution_window_ms}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ReproError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.attribution_window_ms = float(attribution_window_ms)
        self.ewma_alpha = float(ewma_alpha)
        self._rng = random.Random(seed * 7 + 13)
        self._weights: Dict[str, float] = {}
        self.observations = 0

    #: Mis-parenting rate floor: even an isolated trace mis-attributes some
    #: spans, because concurrent branches *within* one request overlap in
    #: time and temporal parenting cannot tell them apart (Fig. 3).
    base_blur: float = 0.35
    #: Ceiling on total mis-attribution: trace ids bound how much span
    #: time can bleed across requests.
    max_blur: float = 0.80
    #: Arrival rate (req/min) at which load-dependent blur is half-saturated.
    blur_half_rate: float = 800.0

    def overlap_probability(self, total_arrivals_per_min: float) -> float:
        """Fraction of span time mis-attributed at this arrival rate.

        A constant within-trace floor plus a load-dependent term that
        saturates (Poisson overlap of annotation-gap windows): temporal
        imprecision grows with load but trace ids keep it bounded.
        """
        if total_arrivals_per_min <= 0:
            return self.base_blur
        growth = 1.0 - math.exp(-total_arrivals_per_min / self.blur_half_rate)
        return self.base_blur + (self.max_blur - self.base_blur) * growth

    def observe_interval(
        self,
        class_arrivals: Mapping[str, float],
        class_component_costs: Mapping[str, Mapping[str, float]],
    ) -> None:
        """Fold one monitoring interval of span data into the weights.

        ``class_arrivals``: per request class, arrivals/min this interval.
        ``class_component_costs``: per class, the span time (ms) its *true*
        path spends in each component.  Temporal attribution inflates each
        class's observed span profile with the components of overlapping
        classes, weighted by their span times.
        """
        total = sum(class_arrivals.values())
        if total <= 0:
            return
        p_overlap = self.overlap_probability(total)
        raw: Dict[str, float] = {}
        classes = sorted(class_arrivals)
        for cls in classes:
            arrivals = class_arrivals[cls]
            if arrivals <= 0:
                continue
            frac = arrivals / total
            for comp, span_ms in class_component_costs.get(cls, {}).items():
                raw[comp] = raw.get(comp, 0.0) + frac * span_ms
            # Cross-attribution: with probability p_overlap, a span of this
            # class is also parented under a concurrent class's request,
            # crediting that class's span time to this request's profile.
            if p_overlap > 0:
                for other in classes:
                    if other == cls:
                        continue
                    other_arrivals = class_arrivals[other]
                    if other_arrivals <= 0:
                        continue
                    other_frac = other_arrivals / total
                    bleed = frac * p_overlap * other_frac
                    if bleed <= 0:
                        continue
                    for comp, span_ms in class_component_costs.get(other, {}).items():
                        raw[comp] = raw.get(comp, 0.0) + bleed * span_ms
        self.observations += 1
        for comp, value in raw.items():
            prev = self._weights.get(comp)
            if prev is None:
                self._weights[comp] = value
            else:
                self._weights[comp] = (1 - self.ewma_alpha) * prev + self.ewma_alpha * value
        # Decay components that received no traffic this interval.
        for comp in list(self._weights):
            if comp not in raw:
                self._weights[comp] *= 1 - self.ewma_alpha

    def component_weights(self) -> Dict[str, float]:
        """Current (temporally imprecise) per-component weight estimates."""
        return dict(self._weights)
