"""ElasticRMI-style baseline (the author's prior system, Section V-A).

"Explicit elastic scaling … uses resource utilization metrics
(CPU/RAM/disk) along with fine-grained information internal to the
application … localized information about internal data structures,
locks etc., but does not include information about workload history or
path traces across nodes in a component and across components."

Characteristics reproduced:

* **Per-component reactive scaling**: each component is sized from its
  *own* internal metrics (offered service demand, queue depth) — so,
  unlike CloudWatch, allocation is not uniform and agility is decent.
* **No workload history, no paths**: decisions use only the current
  interval, so abrupt ramps are chased one provisioning delay behind —
  which is why ElasticRMI shows the 10–15% SLA violations of RQ5.
* **Lock awareness**: a component reporting high lock contention is not
  scaled out (scaling cannot help a serialised bottleneck; Section II-C).
* **Rewrite cost, not runtime cost**: ElasticRMI required rewriting the
  applications but imposes no tracing overhead at runtime.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.autoscale.manager import (
    ClusterObservation,
    ElasticityManager,
    ScalingDecision,
    clamp_targets,
)
from repro.errors import ElasticityError


@dataclass
class ElasticRMIConfig:
    """ElasticRMI policy tunables."""

    target_utilization: float = 0.93
    queue_drain_minutes: float = 3.0
    lock_contention_threshold: float = 0.5
    scale_down_hysteresis: float = 0.28
    max_scale_up_fraction: float = 0.15
    demand_ewma_alpha: float = 0.35

    def __post_init__(self) -> None:
        if not 0 < self.target_utilization <= 1:
            raise ElasticityError(
                f"target_utilization must be in (0, 1], got {self.target_utilization}"
            )
        if not 0 < self.demand_ewma_alpha <= 1:
            raise ElasticityError(
                f"demand_ewma_alpha must be in (0, 1], got {self.demand_ewma_alpha}"
            )


class ElasticRMIManager(ElasticityManager):
    """Per-component reactive autoscaler using internal metrics."""

    name = "ElasticRMI"
    visibility = "internal"

    def __init__(self, config: Optional[ElasticRMIConfig] = None) -> None:
        self.config = config or ElasticRMIConfig()
        self._demand_ewma: Dict[str, float] = {}

    def decide(self, observation: ClusterObservation) -> ScalingDecision:
        cfg = self.config
        targets: Dict[str, int] = {}
        node_capacity = observation.machine.capacity_ms_per_minute
        for comp, obs in observation.components.items():
            if obs.lock_contention >= cfg.lock_contention_threshold:
                # Internal lock metrics say scaling out will not help;
                # hold the replica group where it is.
                targets[comp] = obs.nodes + obs.pending_nodes
                continue
            # Internal metrics: current offered demand plus draining the
            # backlog over the configured horizon.  ElasticRMI has "no
            # information about workload history", so there is no trend
            # model — only a smoothed view of its own data-structure
            # counters, which trails the real demand on every ramp (the
            # paper's 10–15% SLA violations) and holds stale peaks on
            # every drop (its excess-dominated agility).
            raw_demand_ms = obs.service_demand_ms + (
                obs.queue_depth * self._mean_cost(obs) / max(cfg.queue_drain_minutes, 1e-9)
            )
            prev = self._demand_ewma.get(comp)
            demand_ms = (
                raw_demand_ms
                if prev is None
                else (1 - cfg.demand_ewma_alpha) * prev + cfg.demand_ewma_alpha * raw_demand_ms
            )
            self._demand_ewma[comp] = demand_ms
            needed = demand_ms / (node_capacity * cfg.target_utilization)
            desired = max(1, int(math.ceil(needed)))
            current = obs.nodes + obs.pending_nodes
            if desired > current:
                # Without workload history the manager will not commit to a
                # big jump on one interval's reading: scale-ups are
                # rate-limited, which is exactly why ElasticRMI chases
                # abrupt ramps one provisioning delay behind (RQ5).
                step_cap = current + max(1, int(math.ceil(current * cfg.max_scale_up_fraction)))
                desired = min(desired, step_cap)
            if desired < current:
                # Hysteresis on scale-down: only release nodes when demand
                # has fallen well below capacity, to avoid thrash.
                if needed < current * cfg.scale_down_hysteresis:
                    targets[comp] = max(1, desired)
                else:
                    targets[comp] = current
            else:
                targets[comp] = desired
        return ScalingDecision(targets=clamp_targets(targets))

    @staticmethod
    def _mean_cost(obs) -> float:
        """Mean per-message cost from internal counters (ms)."""
        if obs.arrivals_per_min <= 0:
            return 1.0
        return max(0.1, obs.service_demand_ms / obs.arrivals_per_min)
