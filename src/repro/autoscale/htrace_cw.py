"""HTrace + CloudWatch baseline (Section V-A of the paper).

"We also combine CloudWatch's linear regression model along with
path/span profiles (corresponding to temporal causality) obtained from
HTrace to perform proportional scaling of overloaded paths."

The manager sizes the fleet exactly like CloudWatch, but distributes it
proportionally to the *temporal* span-profile weights supplied by
:class:`repro.tracing.htrace.HTraceCollector`.  Because spans are
parented by temporal precedence, the weights bleed across concurrent
requests — so proportional scaling improves on uniform CloudWatch "but
only marginally" (Section V-D), and the imprecision worsens with load.

HTrace also charges a small runtime overhead for span logging (manual
annotations notwithstanding, spans are recorded on the request path).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.autoscale.cloudwatch import CloudWatchConfig
from repro.autoscale.manager import (
    ClusterObservation,
    ElasticityManager,
    ScalingDecision,
    clamp_targets,
)
from repro.core.regression import LinearCapacityModel
from repro.errors import ElasticityError
from repro.tracing.htrace import HTraceCollector


@dataclass
class HTraceConfig:
    """HTrace-specific tunables layered on the CloudWatch policy."""

    span_overhead_fraction: float = 0.02
    infra_nodes: int = 1

    def __post_init__(self) -> None:
        if self.span_overhead_fraction < 0:
            raise ElasticityError(
                f"span_overhead_fraction must be >= 0, got {self.span_overhead_fraction}"
            )


class HTraceCloudWatchManager(ElasticityManager):
    """CloudWatch totals + temporal-causality proportional distribution."""

    name = "HTrace+CW"
    visibility = "paths"

    def __init__(
        self,
        collector: HTraceCollector,
        cloudwatch_config: Optional[CloudWatchConfig] = None,
        htrace_config: Optional[HTraceConfig] = None,
        capacity_model: Optional[LinearCapacityModel] = None,
    ) -> None:
        self.collector = collector
        self.cw = cloudwatch_config or CloudWatchConfig()
        self.config = htrace_config or HTraceConfig()
        self.capacity_model = capacity_model or LinearCapacityModel()
        self._last_action_minute: Optional[float] = None

    def runtime_overhead_fraction(self) -> float:
        return self.config.span_overhead_fraction

    def decide(self, observation: ClusterObservation) -> ScalingDecision:
        comps = observation.components
        total_nodes = sum(c.nodes for c in comps.values())
        if total_nodes <= 0:
            raise ElasticityError("HTrace+CW observed a cluster with zero nodes")
        avg_util = sum(c.utilization * c.nodes for c in comps.values()) / total_nodes
        # Redistribution must preserve in-flight provisioning, or every
        # scale-up would be cancelled one interval later.
        provisioned_total = sum(c.nodes + c.pending_nodes for c in comps.values())

        in_cooldown = (
            self._last_action_minute is not None
            and observation.time_minutes - self._last_action_minute < self.cw.cooldown_minutes
        )
        desired_total = provisioned_total
        if not in_cooldown:
            if avg_util > self.cw.high_utilization:
                desired_total = max(
                    provisioned_total, self._scale_up_total(observation, total_nodes, avg_util)
                )
                self._last_action_minute = observation.time_minutes
            elif avg_util < self.cw.low_utilization:
                step = max(1, int(math.floor(provisioned_total * self.cw.scale_step_fraction)))
                desired_total = provisioned_total - step
                self._last_action_minute = observation.time_minutes

        weights = self.collector.component_weights()
        targets = self._distribute(desired_total, weights, observation)
        return ScalingDecision(
            targets=clamp_targets(targets),
            infrastructure_nodes=self.config.infra_nodes,
        )

    def _scale_up_total(
        self,
        observation: ClusterObservation,
        total_nodes: int,
        avg_util: float,
    ) -> int:
        cap = max(
            total_nodes + 1, int(math.ceil(total_nodes * (1 + self.cw.max_scale_up_fraction)))
        )
        if self.capacity_model.ready():
            predicted = self.capacity_model.predict(
                machine=observation.machine,
                workload=observation.external_arrivals_per_min,
                throughput=observation.app_throughput_per_min,
                latency_ms=observation.app_latency_ms,
            )
            reactive = total_nodes * avg_util / self.cw.target_utilization
            return min(cap, max(1, int(math.ceil(max(predicted, reactive)))))
        step = max(1, int(math.ceil(total_nodes * self.cw.scale_step_fraction)))
        return min(cap, total_nodes + step)

    def _distribute(
        self,
        desired_total: int,
        weights: Dict[str, float],
        observation: ClusterObservation,
    ) -> Dict[str, int]:
        comps = observation.components
        weight_sum = sum(max(0.0, weights.get(c, 0.0)) for c in comps)
        targets: Dict[str, int] = {}
        if weight_sum <= 0:
            per_comp = desired_total / max(1, len(comps))
            return {comp: max(1, int(round(per_comp))) for comp in comps}
        for comp in comps:
            share = max(0.0, weights.get(comp, 0.0)) / weight_sum
            targets[comp] = max(1, int(round(desired_total * share)))
        return targets

    def on_interval_end(self, observation: ClusterObservation) -> None:
        comps = observation.components
        total_nodes = sum(c.nodes for c in comps.values())
        if total_nodes <= 0:
            return
        avg_util = sum(c.utilization * c.nodes for c in comps.values()) / total_nodes
        needed = total_nodes * avg_util / self.cw.target_utilization
        self.capacity_model.observe(
            machine=observation.machine,
            workload=observation.external_arrivals_per_min,
            throughput=observation.app_throughput_per_min,
            latency_ms=observation.app_latency_ms,
            machines_needed=needed,
        )
