"""CloudWatch/AutoScaling-style baseline (Section V-A of the paper).

"We use a monitoring service … to collect externally observable
utilization metrics (CPU/Memory) from the nodes in the cluster and use a
linear regression model on these metrics to decide whether to increase
or decrease the number of nodes."

Characteristics reproduced:

* **Black-box**: only externally observable per-node utilisation and the
  external traffic rate are used — never per-component internals or
  paths.
* **Uniform scaling**: decisions act at the VM level on the whole
  application ("increase the number of VM instances by one when the
  average CPU utilization … exceeds 75%"); every component is scaled by
  the *same factor*, preserving the deployment's original proportions no
  matter where the hot paths have moved — the paper's e-commerce example
  ("resources allotted to all components must be increased 2×") and the
  imprecision its Section II argues against.
* **Threshold + cooldown dynamics**: CloudWatch alarm semantics — scale
  up when average utilisation exceeds the high threshold, down below the
  low threshold, with a cooldown between actions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.autoscale.manager import (
    ClusterObservation,
    ElasticityManager,
    ScalingDecision,
    clamp_targets,
)
from repro.core.regression import LinearCapacityModel
from repro.errors import ElasticityError


@dataclass
class CloudWatchConfig:
    """CloudWatch alarm/policy tunables."""

    high_utilization: float = 0.75
    low_utilization: float = 0.30
    target_utilization: float = 0.45
    cooldown_minutes: float = 7.0
    scale_step_fraction: float = 0.20
    max_scale_up_fraction: float = 0.35

    def __post_init__(self) -> None:
        if not 0 < self.low_utilization < self.high_utilization <= 1.5:
            raise ElasticityError(
                f"invalid thresholds low={self.low_utilization} high={self.high_utilization}"
            )


class CloudWatchManager(ElasticityManager):
    """Utilisation-threshold autoscaler that scales all components uniformly."""

    name = "CloudWatch"
    visibility = "external"

    def __init__(
        self,
        config: Optional[CloudWatchConfig] = None,
        capacity_model: Optional[LinearCapacityModel] = None,
    ) -> None:
        self.config = config or CloudWatchConfig()
        self.capacity_model = capacity_model or LinearCapacityModel()
        self._last_action_minute: Optional[float] = None

    def decide(self, observation: ClusterObservation) -> ScalingDecision:
        cfg = self.config
        comps = observation.components
        total_nodes = sum(c.nodes for c in comps.values())
        if total_nodes <= 0:
            raise ElasticityError("CloudWatch observed a cluster with zero nodes")
        # Node-weighted average utilisation: what the VM-level metrics show.
        avg_util = sum(c.utilization * c.nodes for c in comps.values()) / total_nodes

        in_cooldown = (
            self._last_action_minute is not None
            and observation.time_minutes - self._last_action_minute < cfg.cooldown_minutes
        )
        desired_total = total_nodes
        if not in_cooldown:
            if avg_util > cfg.high_utilization:
                desired_total = self._scale_up_total(observation, total_nodes, avg_util)
                self._last_action_minute = observation.time_minutes
            elif avg_util < cfg.low_utilization:
                step = max(1, int(math.floor(total_nodes * cfg.scale_step_fraction)))
                desired_total = total_nodes - step
                self._last_action_minute = observation.time_minutes

        # Uniform scaling: every component is scaled by the same factor
        # (the paper's e-commerce example: a 2× workload increase makes
        # CloudWatch dictate "that the resources allotted to all
        # components must be increased 2×").  The deployment's original
        # proportions are preserved even as the hot paths shift — the
        # imprecision DCA's causal probability removes.
        factor = desired_total / max(1, total_nodes)
        targets = {
            comp: max(1, int(round((c.nodes + c.pending_nodes) * factor)))
            for comp, c in comps.items()
        }
        return ScalingDecision(targets=clamp_targets(targets))

    def _scale_up_total(
        self,
        observation: ClusterObservation,
        total_nodes: int,
        avg_util: float,
    ) -> int:
        """Regression-predicted total when trained, threshold step otherwise."""
        cfg = self.config
        cap = max(total_nodes + 1, int(math.ceil(total_nodes * (1 + cfg.max_scale_up_fraction))))
        if self.capacity_model.ready():
            predicted = self.capacity_model.predict(
                machine=observation.machine,
                workload=observation.external_arrivals_per_min,
                throughput=observation.app_throughput_per_min,
                latency_ms=observation.app_latency_ms,
            )
            reactive = total_nodes * avg_util / cfg.target_utilization
            return min(cap, max(1, int(math.ceil(max(predicted, reactive)))))
        step = max(1, int(math.ceil(total_nodes * cfg.scale_step_fraction)))
        return min(cap, total_nodes + step)

    def on_interval_end(self, observation: ClusterObservation) -> None:
        comps = observation.components
        total_nodes = sum(c.nodes for c in comps.values())
        if total_nodes <= 0:
            return
        avg_util = sum(c.utilization * c.nodes for c in comps.values()) / total_nodes
        needed = total_nodes * avg_util / self.config.target_utilization
        self.capacity_model.observe(
            machine=observation.machine,
            workload=observation.external_arrivals_per_min,
            throughput=observation.app_throughput_per_min,
            latency_ms=observation.app_latency_ms,
            machines_needed=needed,
        )
