"""Elasticity managers: the common interface and the paper's baselines."""

from repro.autoscale.cloudwatch import CloudWatchConfig, CloudWatchManager
from repro.autoscale.elasticrmi import ElasticRMIConfig, ElasticRMIManager
from repro.autoscale.htrace_cw import HTraceCloudWatchManager, HTraceConfig
from repro.autoscale.manager import (
    ClusterObservation,
    ComponentObservation,
    ElasticityManager,
    ScalingDecision,
    clamp_targets,
)

__all__ = [
    "CloudWatchConfig",
    "CloudWatchManager",
    "ClusterObservation",
    "ComponentObservation",
    "ElasticRMIConfig",
    "ElasticRMIManager",
    "ElasticityManager",
    "HTraceCloudWatchManager",
    "HTraceConfig",
    "ScalingDecision",
    "clamp_targets",
]
