"""Elasticity-manager interface shared by DCA and all baselines.

Each simulated minute, the cluster simulator hands the active manager a
:class:`ClusterObservation` and receives back the desired node count per
component.  What a manager is *allowed to see* is the experimental
variable of the paper:

* **CloudWatch** sees only externally observable utilisation metrics;
* **ElasticRMI** additionally sees fine-grained *internal* per-component
  metrics (queue depths, lock contention) but no cross-component paths;
* **HTrace + CloudWatch** sees temporal-causality span profiles;
* **DCA** sees direct-causality path profiles and causal probability.

The simulator enforces the visibility rules by populating only the
fields each manager's ``visibility`` declares; managers must not reach
into fields outside their declared visibility (tests assert this).

The path profiles the DCA manager reads may be *estimates*: in the
profiler's sketch tiers (``topk``/``component``, see
:mod:`repro.profiling.sketches`) per-path counts carry a documented
±ε hot-path probability guarantee
(:data:`~repro.profiling.sketches.HOT_PATH_PROBABILITY_EPSILON`) with
the estimate sum pinned to the exact windowed total, so causal weights
derived from them degrade gracefully rather than silently.  The
``profiler.estimate_error`` gauge exports the current worst-case bound.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.core.regression import MachineSpec
from repro.errors import ElasticityError
from repro.telemetry import MetricsRegistry, get_registry

#: Bucket bounds (minutes) for scale-up reaction-delay histograms.
REACTION_DELAY_BUCKETS = (0.0, 1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0)

#: Utilisation above which a component counts as saturated for the
#: reaction-delay measurement (matches the managers' emergency bands).
SATURATION_UTILIZATION = 0.9


@dataclass(frozen=True)
class ComponentObservation:
    """Per-component signals for one monitoring interval.

    Attributes
    ----------
    component:
        Component name.
    nodes:
        Nodes currently serving traffic.
    pending_nodes:
        Nodes provisioned but not yet ready.
    utilization:
        Externally observable CPU utilisation in [0, ∞); >1 means the
        component is saturated (queue growing).
    memory_utilization:
        Externally observable memory utilisation proxy.
    arrivals_per_min:
        *Internal* metric: messages entering the component this interval.
    queue_depth:
        *Internal* metric: backlog (requests) at interval end.
    service_demand_ms:
        *Internal* metric: total CPU-ms of work offered this interval.
    lock_contention:
        *Internal* metric in [0, 1]: fraction of service time spent
        waiting on locks (the paper's Section II-C scenario).
    latency_ms:
        Observed mean response latency for requests through this
        component.
    """

    component: str
    nodes: int
    pending_nodes: int = 0
    utilization: float = 0.0
    memory_utilization: float = 0.0
    arrivals_per_min: float = 0.0
    queue_depth: float = 0.0
    service_demand_ms: float = 0.0
    lock_contention: float = 0.0
    latency_ms: float = 0.0


@dataclass(frozen=True)
class ClusterObservation:
    """Everything the simulator exposes for one monitoring interval."""

    time_minutes: float
    external_arrivals_per_min: float
    components: Mapping[str, ComponentObservation]
    machine: MachineSpec
    sla_latency_ms: float
    app_latency_ms: float = 0.0
    app_throughput_per_min: float = 0.0

    def total_nodes(self) -> int:
        return sum(c.nodes + c.pending_nodes for c in self.components.values())


@dataclass(frozen=True)
class ScalingDecision:
    """Desired node counts per component, plus monitoring-infra nodes.

    ``infrastructure_nodes`` counts machines the elasticity mechanism
    itself consumes (graph store + profiler hosts for DCA, collectors for
    HTrace); they are charged as provisioned capacity in the Agility
    metric, exactly like application nodes.
    """

    targets: Mapping[str, int]
    infrastructure_nodes: int = 0

    def __post_init__(self) -> None:
        for comp, nodes in self.targets.items():
            if nodes < 0:
                raise ElasticityError(f"negative node target {nodes} for component {comp!r}")
        if self.infrastructure_nodes < 0:
            raise ElasticityError(f"negative infrastructure_nodes {self.infrastructure_nodes}")


class ElasticityManager(abc.ABC):
    """Base class for all elasticity managers.

    Subclasses implement :meth:`decide`; the simulator calls it once per
    monitoring interval and applies the returned targets subject to
    provisioning delays.
    """

    #: Human-readable name used in result tables (e.g. "CloudWatch").
    name: str = "base"

    #: Which observation fields the manager may use: "external" restricts
    #: to utilisation/latency; "internal" adds per-component internals;
    #: "paths" adds causal/span profiles supplied out of band.
    visibility: str = "external"

    #: Telemetry registry (class-level default; instances attach their
    #: run's registry via :meth:`attach_telemetry`).  Subclasses define
    #: their own ``__init__`` without calling ``super().__init__``, so
    #: this state lives in class attributes overridden per instance.
    _telemetry: Optional[MetricsRegistry] = None
    _saturation_start_minute: Optional[float] = None

    @property
    def telemetry(self) -> MetricsRegistry:
        if self._telemetry is None:
            self._telemetry = get_registry()
        return self._telemetry

    def attach_telemetry(self, registry: MetricsRegistry) -> None:
        """Point this manager's metrics at the given registry (the
        simulator calls this so one run shares one snapshot surface)."""
        self._telemetry = registry

    @abc.abstractmethod
    def decide(self, observation: ClusterObservation) -> ScalingDecision:
        """Return desired node counts for the next interval."""

    def record_decision(
        self,
        observation: ClusterObservation,
        decision: ScalingDecision,
    ) -> None:
        """Export decision telemetry; the simulator calls this per interval.

        Emits, labelled by manager name: a decision counter, per-direction
        scale event counters, the total target-node gauge, and a
        reaction-delay histogram measuring minutes from the first
        saturated interval to the next scale-up decision — the "agility"
        the paper's Fig. 8 scores, as a live distribution.
        """
        labels = {"manager": self.name}
        registry = self.telemetry
        registry.counter("autoscale.decisions", labels=labels).inc()
        current = {
            comp: obs.nodes + obs.pending_nodes
            for comp, obs in observation.components.items()
        }
        ups = sum(
            1 for comp, target in decision.targets.items() if target > current.get(comp, 0)
        )
        downs = sum(
            1 for comp, target in decision.targets.items() if target < current.get(comp, 0)
        )
        if ups:
            registry.counter("autoscale.scale_up_events", labels=labels).inc(ups)
        if downs:
            registry.counter("autoscale.scale_down_events", labels=labels).inc(downs)
        registry.gauge("autoscale.target_nodes", labels=labels).set(
            sum(decision.targets.values()) + decision.infrastructure_nodes
        )
        registry.gauge("autoscale.infrastructure_nodes", labels=labels).set(
            decision.infrastructure_nodes
        )

        saturated = any(
            obs.utilization > SATURATION_UTILIZATION
            for obs in observation.components.values()
        )
        now = observation.time_minutes
        if saturated and self._saturation_start_minute is None:
            self._saturation_start_minute = now
        if self._saturation_start_minute is not None and ups:
            registry.histogram(
                "autoscale.reaction_delay_minutes",
                labels=labels,
                buckets=REACTION_DELAY_BUCKETS,
            ).observe(now - self._saturation_start_minute)
            self._saturation_start_minute = None
        elif not saturated and not ups:
            # Load fell before the manager reacted; the episode is over.
            self._saturation_start_minute = None

    def runtime_overhead_fraction(self) -> float:
        """Fractional service-time inflation this manager imposes on the app.

        Zero for black-box managers; positive for DCA (instrumentation)
        and HTrace (span logging).
        """
        return 0.0

    def on_interval_end(self, observation: ClusterObservation) -> None:
        """Optional hook: managers update internal models after each interval."""


def clamp_targets(
    targets: Dict[str, int],
    min_nodes: int = 1,
    max_nodes: int = 10_000,
) -> Dict[str, int]:
    """Clamp per-component targets into [min_nodes, max_nodes]."""
    if min_nodes < 0 or max_nodes < min_nodes:
        raise ElasticityError(f"invalid clamp range [{min_nodes}, {max_nodes}]")
    return {comp: max(min_nodes, min(max_nodes, int(n))) for comp, n in targets.items()}
