"""Request generation: classes, arrival draws, and workload traces.

A :class:`RequestClass` is a reusable template for one kind of external
customer request — its entry request type plus the payload field values
that steer the application down a particular causal path (e.g. the
e-commerce ``Purchase`` vs ``Simple`` visit of Fig. 2).  The
:class:`WorkloadGenerator` combines a scaled Figure 7 pattern with a
request-class mix schedule and draws Poisson arrivals per class per
minute, deterministically from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.patterns import ScaledPattern, StepMixSchedule


@dataclass(frozen=True)
class RequestClass:
    """A class of external requests that induces a specific causal path.

    Attributes
    ----------
    name:
        Unique class name ("purchase", "news_search", …).
    request_type:
        The external message type (must be an entry point of the app).
    fields:
        Payload field values; these deterministically steer the handler
        branches, selecting the class's causal path.
    """

    name: str
    request_type: str
    fields: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("RequestClass requires a non-empty name")
        if not self.request_type:
            raise WorkloadError(f"RequestClass {self.name!r} requires a request_type")


class WorkloadGenerator:
    """Draws per-class arrival counts for each simulated minute.

    Parameters
    ----------
    pattern:
        Scaled Figure 7 pattern giving the total arrival rate.
    mix:
        Request-class mix schedule (hot paths shift between phases).
    classes:
        All request classes referenced by the mix.
    seed:
        Seed for the Poisson arrival draws.
    deterministic:
        If True, skip the Poisson draw and emit rounded expectations
        (useful for tests needing exact counts).
    """

    def __init__(
        self,
        pattern: ScaledPattern,
        mix: StepMixSchedule,
        classes: Sequence[RequestClass],
        seed: int = 0,
        deterministic: bool = False,
    ) -> None:
        self.pattern = pattern
        self.mix = mix
        self.classes: Dict[str, RequestClass] = {}
        for cls in classes:
            if cls.name in self.classes:
                raise WorkloadError(f"duplicate request class {cls.name!r}")
            self.classes[cls.name] = cls
        missing = set(mix.class_names()) - set(self.classes)
        if missing:
            raise WorkloadError(f"mix references unknown request classes: {sorted(missing)}")
        self.deterministic = bool(deterministic)
        self._rng = np.random.default_rng(seed)

    def expected_arrivals(self, t_minutes: float) -> Dict[str, float]:
        """Expected per-class arrivals/min at ``t_minutes`` (no noise)."""
        total = self.pattern.rate(t_minutes)
        weights = self.mix.mix(t_minutes)
        return {name: total * weights.get(name, 0.0) for name in self.classes}

    def arrivals(self, t_minutes: float) -> Dict[str, int]:
        """Drawn per-class arrival counts for the minute at ``t_minutes``."""
        expected = self.expected_arrivals(t_minutes)
        if self.deterministic:
            return {name: int(round(rate)) for name, rate in expected.items()}
        out: Dict[str, int] = {}
        for name in sorted(expected):
            rate = expected[name]
            out[name] = int(self._rng.poisson(rate)) if rate > 0 else 0
        return out

    def arrivals_series(self, times: Sequence[float]) -> List[Dict[str, int]]:
        """Pre-draw arrivals for a whole schedule of interval boundaries.

        The event engine materialises its arrival events up front by
        calling this once with every boundary time.  The draws are made
        with the exact scalar calls, class order, and zero-rate skips of
        :meth:`arrivals`, so the consumed RNG stream — and therefore
        every seeded run — is bit-identical to the tick loop's
        one-call-per-minute sequence.
        """
        return [self.arrivals(t) for t in times]

    def class_list(self) -> List[RequestClass]:
        return [self.classes[name] for name in sorted(self.classes)]
