"""Workload patterns (Figure 7 of the paper).

"Evaluating elasticity is seldom about 'normal' workload patterns, but
rather about 'irregular' workload patterns."  Figure 7 shows, over a
450-minute run: a cyclic portion with "regular" variations (continuous
and step-wise), a gradual non-cyclic step-wise increase, an abrupt
step-wise decrease, a continuous increase, and a rapid continuous
decrease.  Patterns are normalised to [0, 1]; per-application magnitudes
(the figure's points A and B) are applied by :class:`ScaledPattern`
("the values of points A and B … are different for the four systems
depending on the benchmark").

All patterns are pure functions of time — determinism is load-bearing
for reproducible experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.errors import WorkloadError

#: Total duration of the paper's experimental run, in minutes.
RUN_MINUTES = 450.0

PatternFn = Callable[[float], float]


def _clamp01(x: float) -> float:
    return max(0.0, min(1.0, x))


def cyclic_pattern(t_minutes: float, period: float = 50.0, base: float = 0.45, amplitude: float = 0.35) -> float:
    """Continuous cyclic variation: a sine around ``base``."""
    if period <= 0:
        raise WorkloadError(f"period must be positive, got {period}")
    return _clamp01(base + amplitude * math.sin(2.0 * math.pi * t_minutes / period))


def stepwise_cyclic_pattern(
    t_minutes: float,
    period: float = 50.0,
    base: float = 0.45,
    amplitude: float = 0.35,
    step_minutes: float = 10.0,
) -> float:
    """Cyclic variation quantised into plateaus of ``step_minutes``."""
    if step_minutes <= 0:
        raise WorkloadError(f"step_minutes must be positive, got {step_minutes}")
    quantised_t = math.floor(t_minutes / step_minutes) * step_minutes
    return cyclic_pattern(quantised_t, period=period, base=base, amplitude=amplitude)


def abrupt_pattern(t_minutes: float) -> float:
    """The abrupt portion shapes, compressed into one 0–250 minute curve.

    0–80: gradual step-wise increase; 80–100: abrupt step-wise decrease;
    100–170: continuous increase; 170–200: rapid continuous decrease;
    200–250: low plateau.
    """
    t = t_minutes
    if t < 0:
        raise WorkloadError(f"time must be >= 0, got {t}")
    if t < 80:
        step = math.floor(t / 16)  # five steps up
        return _clamp01(0.25 + 0.13 * step)
    if t < 100:
        return 0.9 if t < 90 else 0.45
    if t < 170:
        return _clamp01(0.3 + 0.65 * (t - 100) / 70.0)
    if t < 200:
        return _clamp01(0.95 - 0.70 * (t - 170) / 30.0)
    return 0.25


def paper_pattern(t_minutes: float) -> float:
    """The full Figure 7 workload over 450 minutes.

    Piecewise: continuous cyclic (0–100), step-wise cyclic (100–180),
    step-wise non-cyclic increase (180–240), abrupt step-wise decrease
    (240–270), continuous increase (270–330), high plateau (330–360),
    rapid continuous decrease (360–390), mild cyclic tail (390–450).
    """
    t = t_minutes
    if t < 0:
        raise WorkloadError(f"time must be >= 0, got {t}")
    if t < 100:
        return cyclic_pattern(t)
    if t < 180:
        return stepwise_cyclic_pattern(t - 100, base=0.45, amplitude=0.30)
    if t < 240:
        step = math.floor((t - 180) / 12)  # five steps up
        return _clamp01(0.35 + 0.12 * step)
    if t < 270:
        return 0.55 if t < 255 else 0.30
    if t < 330:
        return _clamp01(0.30 + 0.65 * (t - 270) / 60.0)
    if t < 360:
        return 0.95
    if t < 390:
        return _clamp01(0.95 - 0.72 * (t - 360) / 30.0)
    return _clamp01(0.30 + 0.10 * math.sin(2.0 * math.pi * (t - 390) / 40.0))


@dataclass(frozen=True)
class ScaledPattern:
    """A normalised pattern scaled into [low, high] requests/min.

    ``low`` and ``high`` correspond to points A and B in Figure 7.
    """

    pattern: PatternFn
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise WorkloadError(f"invalid magnitude range [{self.low}, {self.high}]")

    def rate(self, t_minutes: float) -> float:
        """External request arrivals per minute at time ``t_minutes``."""
        return self.low + (self.high - self.low) * _clamp01(self.pattern(t_minutes))


@dataclass(frozen=True)
class MixPhase:
    """One phase of the request-class mix: active from ``start_minute`` on."""

    start_minute: float
    weights: Mapping[str, float]


class StepMixSchedule:
    """Request-class mix over time: stepped or continuously drifting.

    Workload spikes "are seldom uniformly distributed over all search
    terms" (Section II-A): hot causal paths shift over time, which is
    what makes uniform scaling wasteful and proportional scaling
    valuable.  With ``interpolate=True`` (the default for the evaluation
    scenarios) the mix drifts *linearly* between phase anchors — real
    workload mixes move continuously, and continuous drift is what makes
    a stale causal-path profile pay a price every minute rather than
    only at a few step edges.
    """

    def __init__(self, phases: Sequence[MixPhase], interpolate: bool = True) -> None:
        if not phases:
            raise WorkloadError("StepMixSchedule requires at least one phase")
        ordered = sorted(phases, key=lambda p: p.start_minute)
        if ordered[0].start_minute > 0:
            raise WorkloadError("first mix phase must start at minute 0")
        for phase in ordered:
            total = sum(phase.weights.values())
            if total <= 0:
                raise WorkloadError(f"mix phase at {phase.start_minute} has non-positive total weight")
            if any(w < 0 for w in phase.weights.values()):
                raise WorkloadError(f"mix phase at {phase.start_minute} has negative weights")
        self._phases: List[MixPhase] = list(ordered)
        self.interpolate = bool(interpolate)

    def _normalised(self, phase: MixPhase) -> Dict[str, float]:
        total = sum(phase.weights.values())
        return {name: w / total for name, w in phase.weights.items()}

    def mix(self, t_minutes: float) -> Dict[str, float]:
        """Normalised class weights at time ``t_minutes``."""
        prev = self._phases[0]
        nxt: Optional[MixPhase] = None
        for phase in self._phases:
            if phase.start_minute <= t_minutes:
                prev = phase
            else:
                nxt = phase
                break
        prev_mix = self._normalised(prev)
        if not self.interpolate or nxt is None:
            return prev_mix
        span = nxt.start_minute - prev.start_minute
        if span <= 0:
            return prev_mix
        frac = (t_minutes - prev.start_minute) / span
        next_mix = self._normalised(nxt)
        names = set(prev_mix) | set(next_mix)
        blended = {
            name: (1 - frac) * prev_mix.get(name, 0.0) + frac * next_mix.get(name, 0.0)
            for name in names
        }
        total = sum(blended.values())
        return {name: w / total for name, w in blended.items()}

    def class_names(self) -> List[str]:
        names: set = set()
        for phase in self._phases:
            names |= set(phase.weights)
        return sorted(names)


def uniform_mix(class_names: Sequence[str]) -> StepMixSchedule:
    """A schedule giving every class equal weight for the whole run."""
    if not class_names:
        raise WorkloadError("uniform_mix requires at least one class name")
    return StepMixSchedule([MixPhase(0.0, {name: 1.0 for name in class_names})])


def zipf_weights(class_names: Sequence[str], exponent: float = 1.1) -> Dict[str, float]:
    """Zipf-distributed class weights: the i-th class gets ``1/i^s``.

    Section II-A's observation that spikes "are seldom uniformly
    distributed over all search terms" in distribution form: a few hot
    classes carry most of the traffic, with a long tail.  Classes are
    weighted in the given order (first = hottest), normalised to sum 1.
    """
    if not class_names:
        raise WorkloadError("zipf_weights requires at least one class name")
    if exponent <= 0:
        raise WorkloadError(f"zipf exponent must be positive, got {exponent}")
    raw = {name: 1.0 / (rank ** exponent) for rank, name in enumerate(class_names, start=1)}
    total = sum(raw.values())
    return {name: w / total for name, w in raw.items()}


def zipf_mix(class_names: Sequence[str], exponent: float = 1.1) -> StepMixSchedule:
    """A schedule holding a Zipf-distributed mix for the whole run."""
    return StepMixSchedule([MixPhase(0.0, zipf_weights(class_names, exponent))])


def flash_crowd_pattern(
    t_minutes: float,
    base: float = 0.30,
    peak: float = 1.0,
    start_minute: float = 180.0,
    ramp_minutes: float = 5.0,
    hold_minutes: float = 30.0,
    decay_minutes: float = 20.0,
) -> float:
    """A flash crowd: steady base load, a steep ramp to ``peak``, a hold,
    then an exponential-ish linear decay back to base."""
    t = t_minutes
    if t < 0:
        raise WorkloadError(f"time must be >= 0, got {t}")
    if ramp_minutes <= 0 or hold_minutes < 0 or decay_minutes <= 0:
        raise WorkloadError("flash crowd ramp/hold/decay minutes must be positive")
    if t < start_minute:
        return _clamp01(base)
    if t < start_minute + ramp_minutes:
        return _clamp01(base + (peak - base) * (t - start_minute) / ramp_minutes)
    if t < start_minute + ramp_minutes + hold_minutes:
        return _clamp01(peak)
    decay_start = start_minute + ramp_minutes + hold_minutes
    if t < decay_start + decay_minutes:
        return _clamp01(peak - (peak - base) * (t - decay_start) / decay_minutes)
    return _clamp01(base)


def flash_crowd_mix(
    class_names: Sequence[str],
    hot_class: str,
    start_minute: float = 180.0,
    ramp_minutes: float = 5.0,
    hold_minutes: float = 30.0,
    background_exponent: float = 1.1,
    hot_share: float = 0.75,
) -> StepMixSchedule:
    """A mix schedule where ``hot_class`` abruptly dominates mid-run.

    Before the crowd arrives the mix is Zipf over ``class_names``;
    during it ``hot_class`` takes ``hot_share`` of all traffic (the
    remainder stays Zipf-proportional); afterwards the mix returns to
    the background distribution.  This is the hot-path *shift* case the
    profiler's sketch tiers must track: a previously cold path becomes
    the hottest in the window within ``ramp_minutes``.
    """
    if hot_class not in class_names:
        raise WorkloadError(f"hot_class {hot_class!r} not in class_names")
    if not 0.0 < hot_share < 1.0:
        raise WorkloadError(f"hot_share must be in (0, 1), got {hot_share}")
    background = zipf_weights(class_names, background_exponent)
    cold_total = sum(w for name, w in background.items() if name != hot_class)
    if cold_total <= 0:  # hot_class is the only class
        crowd = dict(background)
    else:
        crowd = {
            name: (
                hot_share
                if name == hot_class
                else (1.0 - hot_share) * background[name] / cold_total
            )
            for name in class_names
        }
    end_minute = start_minute + ramp_minutes + hold_minutes
    return StepMixSchedule(
        [
            MixPhase(0.0, dict(background)),
            MixPhase(start_minute, dict(background)),
            MixPhase(start_minute + ramp_minutes, crowd),
            MixPhase(end_minute, crowd),
            MixPhase(end_minute + ramp_minutes, dict(background)),
        ]
    )
