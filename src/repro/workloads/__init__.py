"""Workload patterns (Figure 7) and request generation."""

from repro.workloads.generator import RequestClass, WorkloadGenerator
from repro.workloads.patterns import (
    RUN_MINUTES,
    MixPhase,
    ScaledPattern,
    StepMixSchedule,
    abrupt_pattern,
    cyclic_pattern,
    paper_pattern,
    stepwise_cyclic_pattern,
    uniform_mix,
)

__all__ = [
    "RUN_MINUTES",
    "MixPhase",
    "RequestClass",
    "ScaledPattern",
    "StepMixSchedule",
    "WorkloadGenerator",
    "abrupt_pattern",
    "cyclic_pattern",
    "paper_pattern",
    "stepwise_cyclic_pattern",
    "uniform_mix",
]
