"""The SPEC Agility metric (Section V-D of the paper).

Agility over ``[t, t']`` divided into N sub-intervals is

    (1/N) (Σ_i Excess(i) + Σ_i Shortage(i))

with ``Excess(i) = Cap_prov(i) − Req_min(i)`` when positive (else 0) and
``Shortage(i) = Req_min(i) − Cap_prov(i)`` when positive (else 0).
Lower is better; zero is perfect provisioning.

:class:`repro.sim.metrics.SimulationResult` computes agility for a run;
this module provides the raw-series form (for property tests and
external data) and cross-manager comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence, Tuple

from repro.errors import EvaluationError
from repro.sim.metrics import SimulationResult


def agility_from_series(
    capacity: Sequence[float],
    required: Sequence[float],
) -> float:
    """SPEC Agility from per-interval capacity and requirement series."""
    if len(capacity) != len(required):
        raise EvaluationError(
            f"series length mismatch: {len(capacity)} capacity vs {len(required)} required"
        )
    if not capacity:
        raise EvaluationError("agility requires at least one interval")
    excess = 0.0
    shortage = 0.0
    for cap, req in zip(capacity, required):
        if cap < 0 or req < 0:
            raise EvaluationError("capacity and requirement must be >= 0")
        if cap > req:
            excess += cap - req
        elif req > cap:
            shortage += req - cap
    return (excess + shortage) / len(capacity)


@dataclass(frozen=True)
class AgilityBreakdown:
    """Excess/shortage decomposition of one run's agility."""

    agility: float
    mean_excess: float
    mean_shortage: float
    zero_fraction: float

    @property
    def excess_dominated(self) -> bool:
        """True when over-provisioning (not starvation) drives the number.

        The paper's RQ3/RQ5 finding for DCA-100%: its agility is "primarily
        a result of DCA's runtime overhead", i.e. excess, while SLA
        violations stay under 1%.
        """
        return self.mean_excess >= self.mean_shortage


def breakdown(result: SimulationResult) -> AgilityBreakdown:
    """Decompose a run's agility into mean excess and mean shortage."""
    records = result.records
    if not records:
        raise EvaluationError("empty simulation result")
    n = len(records)
    mean_excess = sum(r.excess for r in records) / n
    mean_shortage = sum(r.shortage for r in records) / n
    return AgilityBreakdown(
        agility=mean_excess + mean_shortage,
        mean_excess=mean_excess,
        mean_shortage=mean_shortage,
        zero_fraction=result.zero_agility_fraction(),
    )


def rank_managers(results: Mapping[str, SimulationResult]) -> List[Tuple[str, float]]:
    """Managers sorted by agility, best (lowest) first."""
    if not results:
        raise EvaluationError("no results to rank")
    pairs = [(name, res.agility()) for name, res in results.items()]
    return sorted(pairs, key=lambda p: (p[1], p[0]))
