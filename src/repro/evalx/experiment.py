"""The full RQ1–RQ5 experiment runner (Section V of the paper).

Builds, for one :class:`~repro.apps.catalog.AppScenario`, the seven
elasticity-management systems the paper compares —

    CloudWatch, ElasticRMI, HTrace+CW, DCA-100%, DCA-5%, DCA-10%, DCA-20%

— wires each into a fresh cluster simulation of the Fig. 7 workload, and
returns per-manager :class:`~repro.sim.metrics.SimulationResult` objects
from which Figs. 5, 6 and 8 are regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.apps.catalog import AppScenario
from repro.autoscale.cloudwatch import CloudWatchManager
from repro.autoscale.elasticrmi import ElasticRMIManager
from repro.autoscale.htrace_cw import HTraceCloudWatchManager
from repro.autoscale.manager import ElasticityManager
from repro.core.elasticity import (
    DCAElasticityManager,
    DCAManagerConfig,
    detect_serialization_suspects,
)
from repro.errors import EvaluationError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.graphstore.backend import BACKENDS as STORE_BACKENDS
from repro.profiling.profiler import PROFILER_MODES, CausalPathProfiler
from repro.profiling.sketches import DEFAULT_TOPK_K
from repro.sim.engine import ENGINES, ClusterSimulator, DCABundle, SimulationConfig
from repro.sim.metrics import SimulationResult
from repro.telemetry import MetricsRegistry, get_registry
from repro.tracing.htrace import HTraceCollector
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.patterns import ScaledPattern, paper_pattern

#: The seven systems of the paper's evaluation, in table order.
MANAGER_NAMES: Tuple[str, ...] = (
    "CloudWatch",
    "ElasticRMI",
    "HTrace+CW",
    "DCA-100%",
    "DCA-5%",
    "DCA-10%",
    "DCA-20%",
)

#: Sampling rate per DCA variant name.
DCA_RATES: Mapping[str, float] = {
    "DCA-100%": 1.0,
    "DCA-5%": 0.05,
    "DCA-10%": 0.10,
    "DCA-20%": 0.20,
}


@dataclass
class ExperimentConfig:
    """Run-level knobs shared across managers (fair comparison)."""

    duration_minutes: int = 450
    seed: int = 7
    sim: SimulationConfig = field(default_factory=SimulationConfig)
    #: Graph-store shards behind each DCA tracker (1 = single store).
    num_shards: int = 1
    #: Store-write batch size (1 = unbatched writes, the old behaviour).
    write_batch_size: int = 1
    #: Run-loop implementation: "tick" (the oracle) or "event" (the
    #: discrete-event fast path); both are bit-identical per seed.
    engine: str = "tick"
    #: Profiler precision tier ("exact", "topk", "component") and
    #: space-saving summary size for the topk tier.
    profiler_mode: str = "exact"
    profiler_topk: int = DEFAULT_TOPK_K
    #: Graph-store backend: "memory" (in-process dicts), "log"
    #: (append-only journal under ``store_dir``, one subdirectory per
    #: manager), or "shared" (process-shared store server; connects to
    #: ``store_shared_address`` or starts a private server per run).
    store_backend: str = "memory"
    store_dir: Optional[str] = None
    store_shared_address: Optional[str] = None
    store_shared_authkey: Optional[str] = None

    def __post_init__(self) -> None:
        if self.duration_minutes < 1:
            raise EvaluationError(f"duration_minutes must be >= 1, got {self.duration_minutes}")
        if self.num_shards < 1:
            raise EvaluationError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.write_batch_size < 1:
            raise EvaluationError(
                f"write_batch_size must be >= 1, got {self.write_batch_size}"
            )
        if self.engine not in ENGINES:
            raise EvaluationError(f"engine must be one of {ENGINES}, got {self.engine!r}")
        if self.profiler_mode not in PROFILER_MODES:
            raise EvaluationError(
                f"profiler_mode must be one of {PROFILER_MODES}, got {self.profiler_mode!r}"
            )
        if self.profiler_topk < 1:
            raise EvaluationError(f"profiler_topk must be >= 1, got {self.profiler_topk}")
        if self.store_backend not in STORE_BACKENDS:
            raise EvaluationError(
                f"store_backend must be one of {STORE_BACKENDS}, got {self.store_backend!r}"
            )
        if self.store_backend == "log" and self.store_dir is None:
            raise EvaluationError("store_backend 'log' requires store_dir")
        self.sim.duration_minutes = self.duration_minutes
        self.sim.engine = self.engine
        self.sim.profiler_mode = self.profiler_mode
        self.sim.profiler_topk = self.profiler_topk
        self.sim.store_backend = self.store_backend
        self.sim.store_dir = self.store_dir


def _manager_slug(name: str) -> str:
    """Filesystem-safe slug for a manager name (``DCA-100%`` → ``dca-100``)."""
    slug = "".join(ch if ch.isalnum() else "-" for ch in name.lower())
    return "-".join(part for part in slug.split("-") if part)


def _make_generator(scenario: AppScenario, seed: int) -> WorkloadGenerator:
    low, high = scenario.magnitudes
    return WorkloadGenerator(
        ScaledPattern(paper_pattern, low, high),
        scenario.mix,
        scenario.classes,
        seed=seed,
    )


def _avg_messages_per_request(scenario: AppScenario) -> float:
    from repro.sim.runtime import ApplicationRuntime

    runtime = ApplicationRuntime(scenario.app)
    total = 0
    for request in scenario.classes:
        trace = runtime.execute_request(request, sampled=False)
        total += trace.total_messages()
    return total / max(1, len(scenario.classes))


def build_simulator(
    scenario: AppScenario,
    manager_name: str,
    config: Optional[ExperimentConfig] = None,
    registry: Optional[MetricsRegistry] = None,
    fault_plan: Optional[FaultPlan] = None,
    path_timeout_minutes: Optional[float] = None,
    manager_config: Optional[DCAManagerConfig] = None,
    tap=None,
) -> ClusterSimulator:
    """Construct a fully wired simulator for one manager over one scenario.

    ``registry`` threads a single telemetry surface through every layer
    of the run (graph store, tracker, profiler, manager, engine); the
    process-default registry is used when omitted.  A ``fault_plan``
    injects seeded faults into the run: for DCA managers the injector is
    shared across the tracker/store/engine; baseline managers only see
    its scheduled node crashes (they have no DCA pipeline to disturb).
    ``manager_config`` overrides the DCA manager tunables — e.g. to
    enable the staleness fallback — and is ignored for the baselines.
    ``tap`` installs a :class:`~repro.sim.tap.SimTap` across the run's
    hook points (emit-only; the chaos invariant checker consumes it).
    """
    cfg = config or ExperimentConfig()
    generator = _make_generator(scenario, cfg.seed)
    machine = scenario.machine

    baseline_faults = (
        FaultInjector(fault_plan, registry=registry) if fault_plan is not None else None
    )
    if manager_name == "CloudWatch":
        manager: ElasticityManager = CloudWatchManager()
        return ClusterSimulator(
            scenario.app, generator, dict(scenario.deployments), machine, manager,
            config=cfg.sim, telemetry=registry, faults=baseline_faults, tap=tap,
        )
    if manager_name == "ElasticRMI":
        manager = ElasticRMIManager()
        return ClusterSimulator(
            scenario.app, generator, dict(scenario.deployments), machine, manager,
            config=cfg.sim, telemetry=registry, faults=baseline_faults, tap=tap,
        )
    if manager_name == "HTrace+CW":
        collector = HTraceCollector(seed=cfg.seed)
        manager = HTraceCloudWatchManager(collector)
        return ClusterSimulator(
            scenario.app,
            generator,
            dict(scenario.deployments),
            machine,
            manager,
            config=cfg.sim,
            htrace=collector,
            telemetry=registry,
            faults=baseline_faults,
            tap=tap,
        )
    rate = DCA_RATES.get(manager_name)
    if rate is None:
        raise EvaluationError(f"unknown manager {manager_name!r}; choose from {MANAGER_NAMES}")
    store_dir = cfg.store_dir
    if store_dir is not None and cfg.store_backend == "log":
        # One journal directory per manager: managers run independently
        # (possibly in parallel workers) and must never share segments.
        import os

        store_dir = os.path.join(store_dir, _manager_slug(manager_name))
    bundle = DCABundle.create(
        scenario.app,
        sampling_rate=rate,
        overhead_model=scenario.overhead_model,
        num_front_ends=scenario.num_front_ends,
        seed=cfg.seed,
        registry=registry,
        fault_plan=fault_plan,
        path_timeout_minutes=path_timeout_minutes,
        num_shards=cfg.num_shards,
        write_batch_size=cfg.write_batch_size,
        profiler_mode=cfg.sim.profiler_mode,
        profiler_topk=cfg.sim.profiler_topk,
        store_backend=cfg.store_backend,
        store_dir=store_dir,
        store_namespace=_manager_slug(manager_name),
        shared_address=cfg.store_shared_address,
        shared_authkey=cfg.store_shared_authkey,
    )
    if manager_config is not None:
        dca_config = manager_config
        if dca_config.sampling_rate != rate:
            dca_config = DCAManagerConfig(
                **{**dca_config.__dict__, "sampling_rate": rate}
            )
    else:
        dca_config = DCAManagerConfig(sampling_rate=rate)
    manager = DCAElasticityManager(
        profiler=bundle.profiler,
        machine=machine,
        config=dca_config,
        serialization_suspects=detect_serialization_suspects(scenario.app),
        avg_messages_per_request=_avg_messages_per_request(scenario),
    )
    return ClusterSimulator(
        scenario.app,
        generator,
        dict(scenario.deployments),
        machine,
        manager,
        config=cfg.sim,
        dca=bundle,
        telemetry=registry,
        tap=tap,
    )


def run_manager(
    scenario: AppScenario,
    manager_name: str,
    config: Optional[ExperimentConfig] = None,
) -> SimulationResult:
    """Run one manager over one scenario for the full workload."""
    return build_simulator(scenario, manager_name, config).run()


class MergedProfile:
    """Sweep-level causal-path profile, combined across manager runs.

    The profiler analogue of passing a shared ``registry`` into
    :func:`run_all_managers`: each DCA manager run — serial or in a pool
    worker — ships its profiler checkpoint (v2 JSON, sketch state
    included) back to the sweep, and this collector folds them into one
    combined :class:`~repro.profiling.profiler.CausalPathProfiler` via
    :meth:`~repro.profiling.profiler.CausalPathProfiler.merge`.  Because
    the sketches are mergeable summaries, this works in whatever
    precision mode the sweep configured — ``--workers N --profiler-mode
    topk`` combines per-worker space-saving/count-min state instead of
    requiring exact mode.  Baseline managers have no profiler and
    contribute nothing.
    """

    def __init__(self) -> None:
        #: The combined profiler (``None`` until a DCA run contributes).
        self.profiler: Optional[CausalPathProfiler] = None
        #: Per-manager restored profilers, for per-run inspection.
        self.by_manager: Dict[str, CausalPathProfiler] = {}

    def add(self, manager_name: str, checkpoint: Optional[str]) -> None:
        """Fold one manager run's profiler checkpoint into the sweep."""
        if checkpoint is None:
            return
        # Private registries: the restored profilers' instruments must
        # not leak into the sweep's shared telemetry (the runner merges
        # worker registry snapshots separately).
        restored = CausalPathProfiler.from_json(checkpoint, registry=MetricsRegistry())
        self.by_manager[manager_name] = restored
        if self.profiler is None:
            self.profiler = CausalPathProfiler.from_json(
                checkpoint, registry=MetricsRegistry()
            )
        else:
            self.profiler.merge(restored)


def _profiler_checkpoint(simulator: ClusterSimulator) -> Optional[str]:
    """The run's profiler checkpoint, or ``None`` for baseline managers."""
    if simulator.dca is None:
        return None
    return simulator.dca.profiler.to_json()


def _run_manager_task(
    scenario_name: str,
    manager_name: str,
    config: Optional[ExperimentConfig],
) -> Tuple[str, SimulationResult, Dict[str, object], Optional[str]]:
    """Process-pool worker: one manager, one scenario, own telemetry.

    Top-level (picklable) on purpose.  The scenario travels by *name* and
    is rebuilt from the catalog inside the worker; the worker records
    into a private registry and ships its snapshot back, so workers never
    share mutable telemetry state — the parent merges the snapshots.  DCA
    runs also ship the profiler checkpoint so the parent can merge
    per-worker profiles (sketch state included) into a
    :class:`MergedProfile`.
    """
    from repro.apps.catalog import load_scenario

    scenario = load_scenario(scenario_name)
    registry = MetricsRegistry()
    simulator = build_simulator(scenario, manager_name, config, registry=registry)
    result = simulator.run()
    return manager_name, result, registry.snapshot(), _profiler_checkpoint(simulator)


def run_all_managers(
    scenario: AppScenario,
    managers: Optional[Sequence[str]] = None,
    config: Optional[ExperimentConfig] = None,
    workers: int = 1,
    registry: Optional[MetricsRegistry] = None,
    profile: Optional[MergedProfile] = None,
) -> Dict[str, SimulationResult]:
    """Run all (or the given) managers over one scenario.

    ``workers`` > 1 fans the managers out over a process pool (each run
    is independent: own simulator, own registry).  Per-worker telemetry
    snapshots are merged into ``registry`` (or the process default) on
    the way back, so the aggregate counters match a serial run.  Falls
    back to the serial path for scenarios not in the catalog (the worker
    rebuilds the scenario by name).

    ``profile`` collects the sweep's combined causal-path profile: every
    DCA run contributes its profiler checkpoint — sketch state included,
    so it composes with ``profiler_mode='topk'``/``'component'`` — and
    the collector merges them (see :class:`MergedProfile`).
    """
    names = tuple(managers) if managers is not None else MANAGER_NAMES
    results: Dict[str, SimulationResult] = {}
    server = None
    if (
        config is not None
        and config.store_backend == "shared"
        and config.store_shared_address is None
    ):
        # One store server for the whole sweep: every manager run — in
        # this process or a pool worker — connects to it over the Unix
        # socket, each under its own namespace.
        from dataclasses import replace

        from repro.graphstore.shared import SharedStoreServer

        server = SharedStoreServer()
        server.start()
        config = replace(
            config,
            store_shared_address=server.address,
            store_shared_authkey=server.authkey_hex,
        )
    try:
        if workers > 1 and len(names) > 1:
            from repro.apps.catalog import SCENARIOS

            if scenario.name in SCENARIOS:
                from concurrent.futures import ProcessPoolExecutor

                merged = registry if registry is not None else get_registry()
                with ProcessPoolExecutor(max_workers=min(workers, len(names))) as pool:
                    futures = [
                        pool.submit(_run_manager_task, scenario.name, name, config)
                        for name in names
                    ]
                    for future in futures:
                        name, result, snapshot, checkpoint = future.result()
                        results[name] = result
                        merged.merge_snapshot(snapshot)
                        if profile is not None:
                            profile.add(name, checkpoint)
                return results
        for name in names:
            if profile is None:
                results[name] = run_manager(scenario, name, config)
            else:
                simulator = build_simulator(scenario, name, config)
                results[name] = simulator.run()
                profile.add(name, _profiler_checkpoint(simulator))
        return results
    finally:
        if server is not None:
            server.shutdown()
