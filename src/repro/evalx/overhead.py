"""Runtime-overhead measurement (Fig. 5 / RQ1 of the paper).

Fig. 5 reports, per application and per DCA sampling level, the mean
runtime overhead and the range into which 95% of per-interval overhead
measurements fall, over the 450-minute Fig. 7 run.

The measurement here replays the workload (pattern + shifting mix +
Poisson arrival noise + the per-front-end sampler) and computes, per
minute, instrumented CPU time relative to base CPU time, using
instruction counts from real instrumented traces.  No elasticity manager
is involved: overhead is a property of the instrumentation alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.apps.catalog import AppScenario
from repro.core.dca import analyze_application
from repro.core.sampling import RequestSampler
from repro.errors import EvaluationError
from repro.sim.runtime import ApplicationRuntime, RequestTrace
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.patterns import ScaledPattern, paper_pattern


@dataclass(frozen=True)
class OverheadMeasurement:
    """Mean and 95% range of per-interval overhead, as in Fig. 5."""

    application: str
    sampling_rate: float
    mean: float
    low_95: float
    high_95: float

    def as_percent_row(self) -> Tuple[str, str]:
        """("lo–hi%", "mean%") strings in the Fig. 5 format."""
        return (
            f"{100 * self.low_95:.1f}–{100 * self.high_95:.1f}%",
            f"{100 * self.mean:.2f}%",
        )


def measure_overhead(
    scenario: AppScenario,
    sampling_rate: float,
    duration_minutes: int = 450,
    seed: int = 0,
) -> OverheadMeasurement:
    """Measure DCA runtime overhead for ``scenario`` at ``sampling_rate``."""
    if not 0.0 <= sampling_rate <= 1.0:
        raise EvaluationError(f"sampling_rate must be in [0, 1], got {sampling_rate}")
    dca = analyze_application(scenario.app)
    runtime = ApplicationRuntime(
        scenario.app,
        dca_result=dca,
        overhead_model=scenario.overhead_model,
        sampling_rate=sampling_rate,
    )
    low, high = scenario.magnitudes
    generator = WorkloadGenerator(
        ScaledPattern(paper_pattern, low, high),
        scenario.mix,
        scenario.classes,
        seed=seed,
    )
    sampler = RequestSampler(sampling_rate, num_front_ends=scenario.num_front_ends, seed=seed)

    traces: Dict[str, RequestTrace] = {}
    for request in scenario.classes:
        traces[request.name] = runtime.execute_request(request, sampled=True)

    fractions: List[float] = []
    for tick in range(duration_minutes):
        arrivals = generator.arrivals(float(tick))
        base_ms = 0.0
        overhead_ms = 0.0
        fe = tick % scenario.num_front_ends
        for class_name, count in arrivals.items():
            if count <= 0:
                continue
            trace = traces[class_name]
            class_base = sum(
                msgs * scenario.app.components[comp].service_cost
                for comp, msgs in trace.component_messages.items()
            )
            base_ms += count * class_base
            sampled = sampler.sample_count(count, front_end_index=fe)
            overhead_ms += sampled * sum(trace.component_instr_ms.values())
        if base_ms > 0:
            fractions.append(overhead_ms / base_ms)
    if not fractions:
        raise EvaluationError("no intervals carried traffic; cannot measure overhead")
    fractions.sort()
    mean = sum(fractions) / len(fractions)
    lo = fractions[int(0.025 * (len(fractions) - 1))]
    hi = fractions[min(len(fractions) - 1, int(round(0.975 * (len(fractions) - 1))))]
    return OverheadMeasurement(
        application=scenario.name,
        sampling_rate=sampling_rate,
        mean=mean,
        low_95=lo,
        high_95=hi,
    )


def fig5_measurements(
    scenario: AppScenario,
    rates: Tuple[float, ...] = (1.0, 0.05, 0.10, 0.20),
    duration_minutes: int = 450,
    seed: int = 0,
) -> Dict[float, OverheadMeasurement]:
    """All Fig. 5 rows (DCA-100/5/10/20%) for one application."""
    return {
        rate: measure_overhead(scenario, rate, duration_minutes=duration_minutes, seed=seed)
        for rate in rates
    }
