"""Evaluation harness: metrics, experiment runner, table/figure renderers."""

from repro.evalx.agility import AgilityBreakdown, agility_from_series, breakdown, rank_managers
from repro.evalx.experiment import (
    DCA_RATES,
    MANAGER_NAMES,
    ExperimentConfig,
    build_simulator,
    run_all_managers,
    run_manager,
)
from repro.evalx.overhead import OverheadMeasurement, fig5_measurements, measure_overhead
from repro.evalx.reporting import (
    fig5_table,
    fig6_report,
    fig8_table,
    format_table,
    sla_table,
    sparkline,
)
from repro.evalx.sla import SLAReport, sla_report

__all__ = [
    "AgilityBreakdown",
    "DCA_RATES",
    "ExperimentConfig",
    "MANAGER_NAMES",
    "OverheadMeasurement",
    "SLAReport",
    "agility_from_series",
    "breakdown",
    "build_simulator",
    "fig5_measurements",
    "fig5_table",
    "fig6_report",
    "fig8_table",
    "format_table",
    "measure_overhead",
    "rank_managers",
    "run_all_managers",
    "run_manager",
    "sla_report",
    "sla_table",
    "sparkline",
]
