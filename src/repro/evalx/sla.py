"""SLA-violation analysis (RQ5 of the paper).

"Due to the fact that some applications and organizations can tolerate
an excess of resources but not shortage, it is important to evaluate how
frequently and to what extent … application SLAs [are] violated."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Tuple

from repro.errors import EvaluationError
from repro.sim.metrics import SimulationResult


@dataclass(frozen=True)
class SLAReport:
    """SLA outcomes for one run."""

    violation_percent: float
    violation_percent_while_decreasing: float
    worst_interval_percent: float
    violating_intervals: int
    total_intervals: int

    @property
    def decreasing_is_safe(self) -> bool:
        """The paper's observation: violations vanish while workload falls
        because excess capacity pending de-provisioning keeps serving."""
        return self.violation_percent_while_decreasing <= max(
            0.5, 0.25 * self.violation_percent
        )


def sla_report(result: SimulationResult) -> SLAReport:
    """Summarise a run's SLA behaviour."""
    records = result.records
    if not records:
        raise EvaluationError("empty simulation result")
    worst = max((100.0 * r.sla_violation_fraction for r in records), default=0.0)
    violating = sum(1 for r in records if r.sla_violation_fraction > 0)
    return SLAReport(
        violation_percent=result.sla_violation_percent(),
        violation_percent_while_decreasing=result.decreasing_interval_violations(),
        worst_interval_percent=worst,
        violating_intervals=violating,
        total_intervals=len(records),
    )


def rank_managers(results: Mapping[str, SimulationResult]) -> List[Tuple[str, float]]:
    """Managers sorted by SLA violation %, best (lowest) first."""
    if not results:
        raise EvaluationError("no results to rank")
    pairs = [(name, res.sla_violation_percent()) for name, res in results.items()]
    return sorted(pairs, key=lambda p: (p[1], p[0]))
