"""Text renderers for the paper's tables and figures.

Produces the same rows/series the paper reports, as plain-text tables
(the benchmarks print these; EXPERIMENTS.md records them next to the
paper's numbers).
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

from repro.errors import EvaluationError
from repro.evalx.overhead import OverheadMeasurement
from repro.sim.metrics import SimulationResult


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Fixed-width text table with a header rule."""
    if not headers:
        raise EvaluationError("table requires headers")
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise EvaluationError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def fig5_table(measurements: Mapping[str, Mapping[float, OverheadMeasurement]]) -> str:
    """Fig. 5: runtime overhead (range + mean) per app per sampling level."""
    headers = ["Application"]
    rates = (1.0, 0.05, 0.10, 0.20)
    labels = {1.0: "DCA-100%", 0.05: "DCA-5%", 0.10: "DCA-10%", 0.20: "DCA-20%"}
    for rate in rates:
        headers.extend([f"{labels[rate]} range", f"{labels[rate]} mean"])
    rows: List[List[str]] = []
    for app_name in sorted(measurements):
        row = [app_name]
        per_rate = measurements[app_name]
        for rate in rates:
            m = per_rate.get(rate)
            if m is None:
                row.extend(["-", "-"])
            else:
                rng, mean = m.as_percent_row()
                row.extend([rng, mean])
        rows.append(row)
    return format_table(headers, rows)


def fig8_table(results_by_app: Mapping[str, Mapping[str, SimulationResult]]) -> str:
    """Fig. 8: average agility per application per manager."""
    manager_order = [
        "CloudWatch",
        "ElasticRMI",
        "HTrace+CW",
        "DCA-100%",
        "DCA-5%",
        "DCA-10%",
        "DCA-20%",
    ]
    headers = ["Application"] + manager_order
    rows: List[List[str]] = []
    for app_name in sorted(results_by_app):
        row = [app_name]
        per_manager = results_by_app[app_name]
        for manager in manager_order:
            result = per_manager.get(manager)
            row.append(f"{result.agility():.2f}" if result is not None else "-")
        rows.append(row)
    return format_table(headers, rows)


def sla_table(results_by_app: Mapping[str, Mapping[str, SimulationResult]]) -> str:
    """RQ5: SLA violation % per application per manager."""
    manager_order = [
        "CloudWatch",
        "ElasticRMI",
        "HTrace+CW",
        "DCA-100%",
        "DCA-5%",
        "DCA-10%",
        "DCA-20%",
    ]
    headers = ["Application"] + manager_order
    rows: List[List[str]] = []
    for app_name in sorted(results_by_app):
        row = [app_name]
        per_manager = results_by_app[app_name]
        for manager in manager_order:
            result = per_manager.get(manager)
            row.append(
                f"{result.sla_violation_percent():.2f}%" if result is not None else "-"
            )
        rows.append(row)
    return format_table(headers, rows)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Coarse ASCII sparkline for a time series (for Fig. 6/7 printouts)."""
    if not values:
        raise EvaluationError("sparkline requires at least one value")
    blocks = " ▁▂▃▄▅▆▇█"
    lo = min(values)
    hi = max(values)
    span = hi - lo
    step = max(1, len(values) // width)
    sampled = [values[i] for i in range(0, len(values), step)]
    if span <= 0:
        return blocks[1] * len(sampled)
    out = []
    for v in sampled:
        idx = 1 + int((v - lo) / span * (len(blocks) - 2))
        out.append(blocks[min(idx, len(blocks) - 1)])
    return "".join(out)


def fig6_report(results: Mapping[str, SimulationResult], app_name: str) -> str:
    """Fig. 6: agility and SLA-violation time series per manager (sparklines)."""
    lines = [f"Fig. 6 — {app_name}: agility over time (lower is better)"]
    for manager in sorted(results):
        series = [v for _, v in results[manager].agility_series()]
        lines.append(f"  {manager:<12} {sparkline(series)}  avg={sum(series) / len(series):.2f}")
    lines.append(f"Fig. 6 — {app_name}: % SLA violations over time")
    for manager in sorted(results):
        series = [v for _, v in results[manager].sla_violation_series()]
        lines.append(
            f"  {manager:<12} {sparkline(series)}  run={results[manager].sla_violation_percent():.2f}%"
        )
    return "\n".join(lines)
