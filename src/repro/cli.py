"""Command-line interface: ``python -m repro <command> …``.

Commands:

* ``analyze <scenario>``   — static DCA results (V_out / V_in / V_tr) per component
* ``paths <scenario>``     — statically enumerated causal paths
* ``overhead <scenario>``  — Fig. 5 overhead measurement at one or more rates
* ``simulate <scenario>``  — run one elasticity manager over the Fig. 7 workload
* ``metrics <scenario>``   — run a short simulation and print the telemetry snapshot
* ``faults <fault>``       — run a seeded fault scenario and print fault/recovery counters
* ``chaos``                — sweep the chaos matrix (temporal invariants + reliability scores)
* ``table <scenario…>``    — the Fig. 8 agility + RQ5 SLA tables for all managers
* ``report <scenario…>``   — write the full markdown report to a file

Scenarios: ``marketcetera``, ``hedwig``, ``zookeeper``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.apps.catalog import SCENARIOS, load_scenario
from repro.core.dca import analyze_application
from repro.core.paths import enumerate_causal_paths
from repro.errors import ReproError
from repro.evalx.experiment import (
    MANAGER_NAMES,
    ExperimentConfig,
    MergedProfile,
    run_all_managers,
    run_manager,
)
from repro.faults import FAULT_SCENARIOS, build_fault_plan
from repro.graphstore.backend import BACKENDS as STORE_BACKENDS
from repro.evalx.overhead import fig5_measurements
from repro.evalx.reporting import fig5_table, fig8_table, format_table, sla_table
from repro.profiling.profiler import PROFILER_MODES
from repro.profiling.sketches import DEFAULT_TOPK_K
from repro.sim.engine import ENGINES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Exploiting Causality to Engineer Elastic "
        "Distributed Software' (ICDCS 2016).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_analyze = sub.add_parser("analyze", help="static DCA analysis of a scenario's app")
    p_analyze.add_argument("scenario", choices=sorted(SCENARIOS))

    p_paths = sub.add_parser("paths", help="statically enumerated causal paths")
    p_paths.add_argument("scenario", choices=sorted(SCENARIOS))

    p_overhead = sub.add_parser("overhead", help="Fig. 5 runtime-overhead measurement")
    p_overhead.add_argument("scenario", choices=sorted(SCENARIOS))
    p_overhead.add_argument(
        "--rates", type=float, nargs="+", default=[1.0, 0.05, 0.10, 0.20],
        help="sampling rates in [0,1] (default: the paper's four levels)",
    )
    p_overhead.add_argument("--duration", type=int, default=450, help="run minutes")

    p_sim = sub.add_parser("simulate", help="run one manager over the Fig. 7 workload")
    p_sim.add_argument("scenario", choices=sorted(SCENARIOS))
    p_sim.add_argument("--manager", choices=MANAGER_NAMES, default="DCA-10%")
    p_sim.add_argument("--duration", type=int, default=450, help="run minutes")
    p_sim.add_argument("--seed", type=int, default=7)
    _add_store_options(p_sim)

    p_metrics = sub.add_parser(
        "metrics",
        help="run a short simulation and print the telemetry snapshot as JSON",
    )
    p_metrics.add_argument("scenario", choices=sorted(SCENARIOS))
    p_metrics.add_argument("--manager", choices=MANAGER_NAMES, default="DCA-10%")
    p_metrics.add_argument("--duration", type=int, default=30, help="run minutes")
    p_metrics.add_argument("--seed", type=int, default=7)
    p_metrics.add_argument(
        "--indent", type=int, default=2, help="JSON indent (0 for compact output)"
    )
    _add_store_options(p_metrics)

    p_faults = sub.add_parser(
        "faults",
        help="run a seeded fault scenario against a short simulation and "
        "print the fault + recovery telemetry",
    )
    p_faults.add_argument(
        "fault",
        nargs="?",
        choices=sorted(FAULT_SCENARIOS),
        help="fault scenario to inject (omit with --list to enumerate)",
    )
    p_faults.add_argument(
        "--list", action="store_true", help="list fault scenarios and exit"
    )
    p_faults.add_argument("--app", choices=sorted(SCENARIOS), default="hedwig")
    p_faults.add_argument("--manager", choices=MANAGER_NAMES, default="DCA-10%")
    p_faults.add_argument("--duration", type=int, default=40, help="run minutes")
    p_faults.add_argument("--seed", type=int, default=7)
    p_faults.add_argument(
        "--path-timeout", type=float, default=5.0,
        help="minutes before a partial causal path is abandoned",
    )
    p_faults.add_argument(
        "--json", action="store_true",
        help="print the full telemetry snapshot instead of the summary",
    )
    p_faults.add_argument(
        "--parity-diffs", metavar="DIR",
        help="instead of running a scenario, load and summarise the "
        "engine-parity diff artifacts under DIR (malformed or empty "
        "artifacts are a hard error, not a silent pass)",
    )
    _add_store_options(p_faults)

    p_chaos = sub.add_parser(
        "chaos",
        help="sweep the chaos matrix: seeded fault-space grid with temporal "
        "invariant checking and per-cell reliability scores",
    )
    p_chaos.add_argument(
        "--cells", type=int, default=64,
        help="matrix cells to sweep (strided across every axis; "
        "0 = the full grid)",
    )
    p_chaos.add_argument(
        "--repeats", type=int, default=2,
        help="seeded runs per cell (reliability statistics need > 1)",
    )
    p_chaos.add_argument(
        "--workers", type=int, default=1,
        help="process-pool workers for the cell runs (1 = serial)",
    )
    p_chaos.add_argument("--app", choices=sorted(SCENARIOS), default="hedwig")
    p_chaos.add_argument("--manager", choices=MANAGER_NAMES, default="DCA-10%")
    p_chaos.add_argument("--duration", type=int, default=36, help="run minutes per cell")
    p_chaos.add_argument("--seed", type=int, default=7, help="matrix base seed")
    p_chaos.add_argument(
        "--path-timeout", type=float, default=5.0,
        help="minutes before a partial causal path is abandoned",
    )
    p_chaos.add_argument(
        "--bundle-dir", metavar="DIR",
        help="write a replay bundle (chaos-<cell-id>-r<N>.json) for every "
        "failing run into DIR",
    )
    p_chaos.add_argument(
        "--replay", metavar="CELL_ID",
        help="re-run one cell bit-identically from its id instead of sweeping",
    )
    p_chaos.add_argument(
        "--repeat", type=int, default=0,
        help="with --replay: which repeated run to reproduce (default 0)",
    )
    p_chaos.add_argument(
        "--expect-digest", metavar="SHA256",
        help="with --replay: fail unless the replayed telemetry digest "
        "matches (from the sweep output or a replay bundle)",
    )
    p_chaos.add_argument(
        "--list", action="store_true",
        help="print the selected cells without running them",
    )
    p_chaos.add_argument(
        "--json", action="store_true",
        help="print the sweep report as JSON",
    )
    p_chaos.add_argument(
        "--store-backend", choices=STORE_BACKENDS, default="memory",
        help="graph-store backend for every cell run (sweep-level "
        "override, not a matrix axis — cell ids and digests are "
        "backend-independent)",
    )
    p_chaos.add_argument(
        "--store-dir", metavar="DIR",
        help="journal directory for --store-backend log (one "
        "<cell-id>-r<N> subdirectory per run)",
    )

    p_table = sub.add_parser("table", help="Fig. 8 agility + RQ5 SLA tables")
    p_table.add_argument("scenarios", nargs="+", choices=sorted(SCENARIOS))
    p_table.add_argument("--duration", type=int, default=450, help="run minutes")
    p_table.add_argument("--seed", type=int, default=7)
    p_table.add_argument(
        "--workers", type=int, default=1,
        help="process-pool workers for the per-manager runs (1 = serial)",
    )
    p_table.add_argument(
        "--merged-profile", metavar="PATH",
        help="write the sweep's combined profiler checkpoint to PATH "
        "(per-manager/per-worker profiles merged — composes with "
        "--profiler-mode topk/component, no exact-mode fallback)",
    )
    _add_store_options(p_table)

    p_report = sub.add_parser(
        "report", help="write a full markdown report (Figs. 5/6/8 + SLA) to a file"
    )
    p_report.add_argument("scenarios", nargs="+", choices=sorted(SCENARIOS))
    p_report.add_argument("--output", "-o", default="report.md", help="output path")
    p_report.add_argument("--duration", type=int, default=450, help="run minutes")
    p_report.add_argument("--seed", type=int, default=7)
    p_report.add_argument(
        "--workers", type=int, default=1,
        help="process-pool workers for the per-manager runs (1 = serial)",
    )
    p_report.add_argument(
        "--merged-profile", metavar="PATH",
        help="write the sweep's combined profiler checkpoint to PATH "
        "(per-manager/per-worker profiles merged — composes with "
        "--profiler-mode topk/component, no exact-mode fallback)",
    )
    _add_store_options(p_report)

    return parser


def _add_store_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shards", type=int, default=1,
        help="graph-store shards behind each DCA tracker (1 = single store)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=1,
        help="store-write batch size (1 = unbatched writes)",
    )
    parser.add_argument(
        "--engine", choices=ENGINES, default="tick",
        help="run-loop implementation: the fixed-tick oracle or the "
        "discrete-event fast path (bit-identical results per seed)",
    )
    parser.add_argument(
        "--profiler-mode", choices=PROFILER_MODES, default="exact",
        help="profiler precision tier: exact per-path buckets (default), "
        "space-saving top-k + count-min tail (bounded memory), or "
        "per-component totals (cheapest)",
    )
    parser.add_argument(
        "--profiler-topk", type=int, default=DEFAULT_TOPK_K,
        help="hot paths tracked near-exactly in topk mode",
    )
    parser.add_argument(
        "--store-backend", choices=STORE_BACKENDS, default="memory",
        help="graph-store backend: in-process memory (default), crash-safe "
        "append-only log (requires --store-dir), or a process-shared "
        "store server (one store across --workers)",
    )
    parser.add_argument(
        "--store-dir", metavar="DIR",
        help="journal directory for --store-backend log (one subdirectory "
        "per manager, one per shard)",
    )


def _experiment_config(args) -> ExperimentConfig:
    return ExperimentConfig(
        duration_minutes=args.duration,
        seed=args.seed,
        num_shards=getattr(args, "shards", 1),
        write_batch_size=getattr(args, "batch_size", 1),
        engine=getattr(args, "engine", "tick"),
        profiler_mode=getattr(args, "profiler_mode", "exact"),
        profiler_topk=getattr(args, "profiler_topk", DEFAULT_TOPK_K),
        store_backend=getattr(args, "store_backend", "memory"),
        store_dir=getattr(args, "store_dir", None),
    )


def _cmd_analyze(args) -> int:
    scenario = load_scenario(args.scenario)
    dca = analyze_application(scenario.app)
    rows = []
    for name, analysis in sorted(dca.per_component.items()):
        rows.append(
            [
                name,
                ", ".join(sorted(analysis.v_out)) or "∅",
                ", ".join(sorted(analysis.v_tr)) or "∅",
                f"{analysis.state_var_count}",
            ]
        )
    print(format_table(["component", "V_out", "V_tr (tracked)", "state vars"], rows))
    total = dca.total_tracked_vars()
    state = sum(a.state_var_count for a in dca.per_component.values())
    print(f"\n{total}/{state} state variables instrumented "
          f"({100 * total / max(1, state):.0f}%).")
    return 0


def _cmd_paths(args) -> int:
    scenario = load_scenario(args.scenario)
    paths = enumerate_causal_paths(scenario.app)
    for req_type in sorted(paths):
        print(f"{req_type}: {len(paths[req_type])} static causal path(s)")
        for sig in paths[req_type]:
            print(f"  [{sig.path_id}] {sig.describe()}")
    return 0


def _cmd_overhead(args) -> int:
    scenario = load_scenario(args.scenario)
    measurements = fig5_measurements(
        scenario, rates=tuple(args.rates), duration_minutes=args.duration
    )
    print(fig5_table({args.scenario: measurements}))
    return 0


def _cmd_simulate(args) -> int:
    scenario = load_scenario(args.scenario)
    config = _experiment_config(args)
    result = run_manager(scenario, args.manager, config)
    print(f"{args.manager} over {args.duration} minutes of {args.scenario}:")
    print(f"  agility            : {result.agility():.2f}")
    print(f"  SLA violations     : {result.sla_violation_percent():.2f}%")
    print(f"  zero-agility ticks : {100 * result.zero_agility_fraction():.1f}%")
    print(f"  runtime overhead   : {100 * result.overhead_mean():.2f}%")
    return 0


def _cmd_metrics(args) -> int:
    from repro.evalx.experiment import build_simulator
    from repro.telemetry import MetricsRegistry

    scenario = load_scenario(args.scenario)
    config = _experiment_config(args)
    registry = MetricsRegistry()
    simulator = build_simulator(scenario, args.manager, config, registry=registry)
    simulator.run()
    print(registry.to_json(indent=args.indent or None))
    return 0


#: Telemetry keys the ``faults`` summary prints, in story order: what was
#: injected, then what each recovery mechanism did about it.
_FAULT_SUMMARY_KEYS = (
    "faults.messages_dropped",
    "faults.messages_duplicated",
    "faults.messages_delayed",
    "faults.edges_lost",
    "faults.store_write_failures",
    "faults.profiler_flush_lost",
    "faults.node_crashes",
    "tracker.store_write_retries",
    "tracker.dead_letters",
    "tracker.duplicate_dead_letters_suppressed",
    "store.dead_letter_depth",
    "store.dead_letter_dropped",
    "store.dead_letter_purged",
    "tracker.delayed_messages_delivered",
    "tracker.late_messages_discarded",
    "tracker.paths_abandoned",
    "tracker.abandoned_nodes",
    "tracker.profiler_records_lost",
    "graphstore.dangling_edges_repaired",
    "elasticity.stale_intervals",
    "elasticity.fallback_engagements",
    "elasticity.fallback_recoveries",
)


def _cmd_faults(args) -> int:
    from repro.core.elasticity import DCAManagerConfig, StalenessPolicy
    from repro.evalx.experiment import DCA_RATES, build_simulator
    from repro.telemetry import MetricsRegistry

    if args.parity_diffs:
        return _report_parity_diffs(args.parity_diffs)
    if args.list or args.fault is None:
        for name in sorted(FAULT_SCENARIOS):
            print(f"{name:16s} {FAULT_SCENARIOS[name].description}")
        return 0 if args.list else 2
    scenario = load_scenario(args.app)
    plan = build_fault_plan(args.fault, seed=args.seed)
    config = _experiment_config(args)
    registry = MetricsRegistry()
    manager_config = None
    rate = DCA_RATES.get(args.manager)
    if rate is not None:
        manager_config = DCAManagerConfig(sampling_rate=rate, staleness=StalenessPolicy())
    simulator = build_simulator(
        scenario,
        args.manager,
        config,
        registry=registry,
        fault_plan=plan,
        path_timeout_minutes=args.path_timeout,
        manager_config=manager_config,
    )
    result = simulator.run()
    if args.json:
        print(registry.to_json(indent=2))
        return 0
    print(
        f"{args.fault} ({FAULT_SCENARIOS[args.fault].description})\n"
        f"  {args.manager} over {args.duration} minutes of {args.app}, seed {args.seed}:"
    )
    print(f"  agility            : {result.agility():.2f}")
    print(f"  SLA violations     : {result.sla_violation_percent():.2f}%")
    print(f"  nodes crashed      : {simulator.nodes_failed_total}")
    for key in _FAULT_SUMMARY_KEYS:
        metric = registry.get(key)
        if metric is not None:
            print(f"  {key:40s}: {metric.value:.0f}")
    return 0


def _report_parity_diffs(target: str) -> int:
    """Summarise dumped engine-parity artifacts; bad input is a hard error."""
    from repro.sim.parity import scan_parity_diff_dir

    reports = scan_parity_diff_dir(target)
    if not reports:
        print(f"no parity diff artifacts under {target} (all parity runs passed)")
        return 0
    diverged = 0
    for report in reports:
        status = "OK" if report["ok"] else "DIVERGED"
        if not report["ok"]:
            diverged += 1
        print(
            f"[{status}] {report['scenario']}/{report['manager']} "
            f"seed={report['seed']} duration={report['duration_minutes']}: "
            f"{len(report['record_diffs'])} record, "
            f"{len(report['snapshot_diffs'])} snapshot, "
            f"{len(report['state_diffs'])} state diff(s)"
        )
        for line in list(report["record_diffs"])[:5]:
            print(f"    {line}")
        for line in list(report["snapshot_diffs"])[:5]:
            print(f"    {line}")
    print(f"{diverged}/{len(reports)} artifact(s) record a divergence")
    return 1 if diverged else 0


def _cmd_chaos(args) -> int:
    import json as _json

    from repro.chaos import ChaosMatrix, MatrixConfig, replay_cell, run_matrix

    matrix = ChaosMatrix(
        MatrixConfig(
            app=args.app,
            manager=args.manager,
            duration_minutes=args.duration,
            base_seed=args.seed,
            path_timeout_minutes=args.path_timeout,
        )
    )
    if args.replay:
        result = replay_cell(
            matrix, args.replay, repeat=args.repeat,
            expected_digest=args.expect_digest,
            store_backend=args.store_backend, store_dir=args.store_dir,
        )
        cell = matrix.cell_by_id(args.replay)
        status = "PASS" if result.passed else "FAIL"
        print(
            f"replayed cell {args.replay} (repeat {result.repeat}, "
            f"seed {result.seed}): {status}"
        )
        print(f"  {cell.fault_profile} window=[{cell.start_minute},{cell.end_minute}) "
              f"crashes={cell.crash_schedule} shards={cell.num_shards} "
              f"batch={cell.write_batch_size} engine={cell.engine} "
              f"profiler={cell.profiler_mode}")
        print(f"  telemetry digest : {result.telemetry_digest}")
        if args.expect_digest:
            print("  digest matches the recorded run (bit-identical replay)")
        for violation in result.violations:
            print(f"  [{violation.invariant}] @{violation.minute:g}m {violation.detail}")
        for key, value in sorted(result.headline.items()):
            print(f"  {key:45s}: {value:.0f}")
        return 0 if result.passed else 1

    cells = matrix.select(args.cells if args.cells > 0 else None)
    if args.list:
        for cell in cells:
            print(
                f"{cell.cell_id}  {cell.fault_profile:14s} "
                f"[{cell.start_minute:>4g},{cell.end_minute:>4g}) "
                f"crashes={cell.crash_schedule:4s} shards={cell.num_shards} "
                f"batch={cell.write_batch_size:<3d} {cell.engine:5s} "
                f"{cell.profiler_mode}"
            )
        print(f"{len(cells)} cell(s) of {matrix.total_cells} in the full grid")
        return 0
    reports = run_matrix(
        cells, repeats=args.repeats, workers=args.workers,
        bundle_dir=args.bundle_dir,
        store_backend=args.store_backend, store_dir=args.store_dir,
    )
    if args.json:
        payload = []
        for report in reports:
            payload.append(
                {
                    "cell": report.cell.canonical(),
                    "cell_id": report.cell.cell_id,
                    "passed": report.passed,
                    "score": report.score.to_dict(),
                    "runs": [
                        {
                            "repeat": run.repeat,
                            "seed": run.seed,
                            "telemetry_digest": run.telemetry_digest,
                            "violations": [v.to_dict() for v in run.violations],
                        }
                        for run in report.runs
                    ],
                }
            )
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return 0 if all(r.passed for r in reports) else 1
    failing = [r for r in reports if not r.passed]
    print(
        f"chaos sweep: {len(cells)} cell(s) x {args.repeats} run(s), "
        f"{args.manager} over {args.duration} min of {args.app}, "
        f"base seed {args.seed}"
    )
    for report in reports:
        score = report.score
        status = "PASS" if report.passed else "FAIL"
        cell = report.cell
        print(
            f"  [{status}] {cell.cell_id}  {cell.fault_profile:14s} "
            f"[{cell.start_minute:>4g},{cell.end_minute:>4g}) "
            f"crashes={cell.crash_schedule:4s} shards={cell.num_shards} "
            f"batch={cell.write_batch_size:<3d} {cell.engine:5s} "
            f"{cell.profiler_mode:5s} "
            f"rel={score.adjusted_rate:.2f} "
            f"ci=[{score.ci_low:.2f},{score.ci_high:.2f}]"
        )
        if not report.passed:
            for run in report.runs:
                for violation in run.violations[:3]:
                    print(
                        f"        r{run.repeat} [{violation.invariant}] "
                        f"@{violation.minute:g}m {violation.detail}"
                    )
            print(
                f"        replay: repro chaos --replay {cell.cell_id} "
                f"--app {cell.app} --manager '{cell.manager}' "
                f"--duration {cell.duration_minutes} --seed {cell.base_seed}"
            )
    print(
        f"{len(cells) - len(failing)}/{len(cells)} cell(s) passed every "
        "invariant on every run"
    )
    return 1 if failing else 0


def _write_merged_profile(profile: MergedProfile, path: str, now_minutes: float) -> None:
    """Persist a sweep's combined profiler and print a short summary."""
    if profile.profiler is None:
        print("merged profile: no DCA run contributed a profiler")
        return
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(profile.profiler.to_json())
    counts = profile.profiler.counts(float(now_minutes))
    top = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:5]
    print(
        f"merged profile: {profile.profiler.mode} mode, "
        f"{len(profile.by_manager)} DCA run(s) merged -> {path}"
    )
    for key, count in top:
        if count > 0:
            print(f"  {key}: {count}")


def _cmd_table(args) -> int:
    results_by_app = {}
    profile = MergedProfile() if args.merged_profile else None
    for name in args.scenarios:
        scenario = load_scenario(name)
        config = _experiment_config(args)
        results_by_app[name] = run_all_managers(
            scenario, config=config, workers=args.workers, profile=profile
        )
    print("Average agility (Fig. 8; lower is better):")
    print(fig8_table(results_by_app))
    print("\nSLA violations (RQ5):")
    print(sla_table(results_by_app))
    if profile is not None:
        _write_merged_profile(profile, args.merged_profile, args.duration)
    return 0


def _cmd_report(args) -> int:
    from repro.evalx.reporting import fig6_report

    sections: List[str] = [
        "# Reproduction report — Exploiting Causality to Engineer Elastic "
        "Distributed Software (ICDCS 2016)",
        "",
        f"Scenarios: {', '.join(args.scenarios)} · duration {args.duration} min "
        f"· seed {args.seed}",
    ]
    overheads = {}
    results_by_app = {}
    profile = MergedProfile() if args.merged_profile else None
    for name in args.scenarios:
        scenario = load_scenario(name)
        overheads[name] = fig5_measurements(scenario, duration_minutes=args.duration)
        config = _experiment_config(args)
        results_by_app[name] = run_all_managers(
            scenario, config=config, workers=args.workers, profile=profile
        )

    sections += ["", "## Fig. 5 — DCA runtime overhead", "```",
                 fig5_table(overheads), "```"]
    sections += ["", "## Fig. 8 — average agility (lower is better)", "```",
                 fig8_table(results_by_app), "```"]
    sections += ["", "## RQ5 — SLA violations", "```",
                 sla_table(results_by_app), "```"]
    for name, results in results_by_app.items():
        sections += ["", f"## Fig. 6 — {name} time series", "```",
                     fig6_report(results, name), "```"]
    text = "\n".join(sections) + "\n"
    with open(args.output, "w", encoding="utf-8") as fh:
        fh.write(text)
    print(f"wrote {args.output} ({len(text.splitlines())} lines)")
    if profile is not None:
        _write_merged_profile(profile, args.merged_profile, args.duration)
    return 0


_COMMANDS = {
    "analyze": _cmd_analyze,
    "paths": _cmd_paths,
    "overhead": _cmd_overhead,
    "simulate": _cmd_simulate,
    "metrics": _cmd_metrics,
    "faults": _cmd_faults,
    "chaos": _cmd_chaos,
    "table": _cmd_table,
    "report": _cmd_report,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
