"""The causal-path profiler (Section IV-B/IV-C of the paper).

The profiler runs on a monitoring host *external to the application*.
It is seeded with every statically identified causal path (count zero);
whenever the graph store completes a causal graph, the path's counter is
incremented.  Counts are kept in a sliding time window (60 minutes by
default, "configurable") and feed causal probability.

Counting uses per-minute buckets per path, so recording is O(1) and
reading is O(window) per path regardless of traffic volume.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.paths import PathSignature
from repro.errors import ProfilingError
from repro.telemetry import MetricsRegistry, get_registry


@dataclass(frozen=True)
class ProfileSnapshot:
    """Path counts (and derived totals) at a point in time."""

    time_minutes: float
    window_minutes: float
    counts: Mapping[str, int]

    @property
    def total(self) -> int:
        return sum(self.counts.values())


class CausalPathProfiler:
    """Sliding-window per-path counters seeded from static enumeration.

    Parameters
    ----------
    static_paths:
        Request type → statically enumerated signatures; all are
        registered with zero counts ("we store information about these
        paths in the profiler … with their respective path counts set to
        zero").
    window_minutes:
        Length of the causal-probability history window.
    registry:
        Telemetry registry for the profiler's counters (the process
        default when omitted).  Per-signature completion counts are
        exported as ``profiler.path_completions{path=<id>}``.
    """

    def __init__(
        self,
        static_paths: Mapping[str, Iterable[PathSignature]],
        window_minutes: float = 60.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if window_minutes <= 0:
            raise ProfilingError(f"window_minutes must be positive, got {window_minutes}")
        self.window_minutes = float(window_minutes)
        self.telemetry = registry if registry is not None else get_registry()
        self._m_recordings = self.telemetry.counter("profiler.recordings")
        self._m_unmatched = self.telemetry.counter("profiler.unmatched_observations")
        self._m_dynamic = self.telemetry.counter("profiler.dynamic_registrations")
        self._base_unmatched = self._m_unmatched.value
        self._base_dynamic = self._m_dynamic.value
        self._paths: Dict[str, PathSignature] = {}
        self._by_identity: Dict[Tuple[str, Tuple], str] = {}
        # Cached per-path completion counters, so record() never pays a
        # get-or-create registry lookup (label sorting + key render).
        self._m_completions: Dict[str, object] = {}
        for req_type, signatures in sorted(static_paths.items()):
            for sig in signatures:
                self._register(sig)
        # path_id -> OrderedDict[minute_bucket -> count]
        self._buckets: Dict[str, "OrderedDict[int, int]"] = {pid: OrderedDict() for pid in self._paths}
        #: Minute of the most recent :meth:`record` call (``None`` until
        #: the first).  Staleness detectors use this to distinguish "no
        #: recent samples because traffic is low" from "the sampled-path
        #: feed has gone quiet" without scanning buckets.
        self.last_record_minutes: Optional[float] = None

    @property
    def unmatched_observations(self) -> int:
        """Observed signatures that were not statically enumerated."""
        return int(self._m_unmatched.value - self._base_unmatched)

    @property
    def dynamic_registrations(self) -> int:
        """Paths added at runtime (observed but not statically known)."""
        return int(self._m_dynamic.value - self._base_dynamic)

    # -- registration ----------------------------------------------------------

    def _register(self, signature: PathSignature) -> str:
        pid = signature.path_id
        if pid not in self._paths:
            self._paths[pid] = signature
            self._by_identity[(signature.request_type, signature.edges)] = pid
        return pid

    def known_paths(self) -> Dict[str, PathSignature]:
        """All registered paths by id (static seeds + dynamic additions)."""
        return dict(self._paths)

    def paths_for_request(self, request_type: str) -> List[PathSignature]:
        return sorted(
            (sig for sig in self._paths.values() if sig.request_type == request_type),
            key=lambda s: s.edges,
        )

    # -- recording ---------------------------------------------------------------

    def record(self, signature: PathSignature, time_minutes: float, count: int = 1) -> str:
        """Record ``count`` completions of ``signature`` at ``time_minutes``.

        An observed signature not statically enumerated is registered
        dynamically and counted (and tallied in
        :attr:`dynamic_registrations` so tests can assert static coverage).
        """
        if count < 1:
            raise ProfilingError(f"count must be >= 1, got {count}")
        key = (signature.request_type, signature.edges)
        pid = self._by_identity.get(key)
        if pid is None:
            pid = self._register(signature)
            self._buckets[pid] = OrderedDict()
            self._m_dynamic.inc()
            self._m_unmatched.inc()
        if self.last_record_minutes is None or time_minutes > self.last_record_minutes:
            self.last_record_minutes = float(time_minutes)
        bucket = int(time_minutes)
        buckets = self._buckets[pid]
        buckets[bucket] = buckets.get(bucket, 0) + count
        self._prune(buckets, time_minutes)
        self._m_recordings.inc(count)
        completions = self._m_completions.get(pid)
        if completions is None:
            completions = self.telemetry.counter("profiler.path_completions", labels={"path": pid})
            self._m_completions[pid] = completions
        completions.inc(count)
        return pid

    def _prune(self, buckets: "OrderedDict[int, int]", now: float) -> None:
        horizon = now - self.window_minutes
        while buckets:
            oldest = next(iter(buckets))
            if oldest < horizon:
                del buckets[oldest]
            else:
                break

    # -- reading -----------------------------------------------------------------

    def counts(self, now_minutes: float) -> Dict[str, int]:
        """Per-path counts within the window ending at ``now_minutes``."""
        horizon = now_minutes - self.window_minutes
        out: Dict[str, int] = {}
        for pid, buckets in self._buckets.items():
            total = sum(c for minute, c in buckets.items() if horizon <= minute <= now_minutes)
            out[pid] = total
        return out

    def counts_between(self, start_minutes: float, end_minutes: float) -> Dict[str, int]:
        """Per-path counts in ``[start, end]`` (bounded by the window).

        Elasticity managers use a short recent horizon for the *mix*
        estimate (so they adapt to hot-path shifts) while the full window
        backs the long-term causal probabilities; both reads share the
        same buckets.
        """
        if end_minutes < start_minutes:
            raise ProfilingError(f"empty interval [{start_minutes}, {end_minutes}]")
        out: Dict[str, int] = {}
        for pid, buckets in self._buckets.items():
            total = sum(c for minute, c in buckets.items() if start_minutes <= minute <= end_minutes)
            out[pid] = total
        return out

    def snapshot(self, now_minutes: float) -> ProfileSnapshot:
        return ProfileSnapshot(
            time_minutes=now_minutes,
            window_minutes=self.window_minutes,
            counts=self.counts(now_minutes),
        )

    # -- persistence ------------------------------------------------------------

    def to_json(self) -> str:
        """Serialise the profiler (paths + window + buckets) to JSON.

        The profiler is the long-lived state of the elasticity system —
        restarting the monitoring host must not lose the causal-probability
        history, so deployments checkpoint it.
        """
        import json

        payload = {
            "window_minutes": self.window_minutes,
            "paths": [
                {
                    "request_type": sig.request_type,
                    "edges": [list(edge) for edge in sig.edges],
                }
                for sig in self._paths.values()
            ],
            "buckets": {
                pid: sorted(buckets.items()) for pid, buckets in self._buckets.items()
            },
            "dynamic_registrations": self.dynamic_registrations,
            "unmatched_observations": self.unmatched_observations,
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, data: str) -> "CausalPathProfiler":
        """Restore a profiler checkpointed with :meth:`to_json`."""
        import json

        payload = json.loads(data)
        signatures = [
            PathSignature(
                entry["request_type"],
                tuple(tuple(edge) for edge in entry["edges"]),
            )
            for entry in payload["paths"]
        ]
        by_request: Dict[str, List[PathSignature]] = {}
        for sig in signatures:
            by_request.setdefault(sig.request_type, []).append(sig)
        profiler = cls(by_request, window_minutes=payload["window_minutes"])
        for pid, buckets in payload["buckets"].items():
            if pid not in profiler._buckets:
                raise ProfilingError(f"checkpoint references unknown path id {pid!r}")
            profiler._buckets[pid] = OrderedDict(
                (int(minute), int(count)) for minute, count in buckets
            )
        profiler._m_dynamic.inc(int(payload.get("dynamic_registrations", 0)))
        profiler._m_unmatched.inc(int(payload.get("unmatched_observations", 0)))
        return profiler
