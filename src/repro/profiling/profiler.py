"""The causal-path profiler (Section IV-B/IV-C of the paper).

The profiler runs on a monitoring host *external to the application*.
It is seeded with every statically identified causal path (count zero);
whenever the graph store completes a causal graph, the path's counter is
incremented.  Counts are kept in a sliding time window (60 minutes by
default, "configurable") and feed causal probability.

The profiler exposes three precision modes, switchable at runtime (the
staleness detector uses this to shed cost under load — see
``StalenessPolicy.downshift_mode``):

``exact``
    The default, and bit-identical to the original implementation's
    observable behaviour: per-minute buckets per path, plus running
    per-path window totals (maintained on record/prune) so ``counts()``
    is O(paths) instead of O(paths × window).
``topk``
    Bounded memory: the ``k`` hottest paths live in a windowed
    space-saving summary, the tail in a windowed count-min sketch, and
    reads pin the estimate sum to the exact windowed total so hot-path
    causal probabilities stay within the documented ε of exact mode
    (:data:`~repro.profiling.sketches.HOT_PATH_PROBABILITY_EPSILON`).
``component``
    The cheapest tier (D²ABS-style coarsest level): counts collapsed to
    per-component windowed totals; ``counts()``/``counts_between()``
    are keyed by *component name* and :meth:`component_weight_estimates`
    feeds the manager directly.

Per-path completion counters (``profiler.path_completions{path=…}``) are
an exact-tier export: sketch modes deliberately do not keep per-path
telemetry (that would reintroduce O(paths) state).  Sketch health is
exported instead via the ``profiler.sketch_evictions`` and
``profiler.estimate_error`` gauges.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import OrderedDict
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.paths import PathSignature
from repro.errors import ProfilingError
from repro.profiling.sketches import (
    DEFAULT_TOPK_K,
    ComponentActivitySummary,
    TopKPathSummary,
)
from repro.telemetry import MetricsRegistry, get_registry

#: Precision tiers, cheapest last.  ``exact`` is the bit-identical
#: default; the others trade per-path fidelity for bounded memory.
PROFILER_MODES: Tuple[str, ...] = ("exact", "topk", "component")


@dataclass(frozen=True)
class ProfileSnapshot:
    """Path counts (and derived totals) at a point in time."""

    time_minutes: float
    window_minutes: float
    counts: Mapping[str, int]

    @property
    def total(self) -> int:
        return sum(self.counts.values())


class CausalPathProfiler:
    """Sliding-window per-path counters seeded from static enumeration.

    Parameters
    ----------
    static_paths:
        Request type → statically enumerated signatures; all are
        registered with zero counts ("we store information about these
        paths in the profiler … with their respective path counts set to
        zero").
    window_minutes:
        Length of the causal-probability history window.
    registry:
        Telemetry registry for the profiler's counters (the process
        default when omitted).  Per-signature completion counts are
        exported as ``profiler.path_completions{path=<id>}`` (exact mode
        only; see the module docstring).
    mode:
        Initial precision mode, one of :data:`PROFILER_MODES`.
    topk:
        Space-saving summary size for ``topk`` mode.
    """

    def __init__(
        self,
        static_paths: Mapping[str, Iterable[PathSignature]],
        window_minutes: float = 60.0,
        registry: Optional[MetricsRegistry] = None,
        mode: str = "exact",
        topk: int = DEFAULT_TOPK_K,
    ) -> None:
        if window_minutes <= 0:
            raise ProfilingError(f"window_minutes must be positive, got {window_minutes}")
        if mode not in PROFILER_MODES:
            raise ProfilingError(
                f"unknown profiler mode {mode!r}; expected one of {PROFILER_MODES}"
            )
        if topk < 1:
            raise ProfilingError(f"topk must be >= 1, got {topk}")
        self.window_minutes = float(window_minutes)
        self.telemetry = registry if registry is not None else get_registry()
        self._m_recordings = self.telemetry.counter("profiler.recordings")
        self._m_unmatched = self.telemetry.counter("profiler.unmatched_observations")
        self._m_dynamic = self.telemetry.counter("profiler.dynamic_registrations")
        self._m_evictions = self.telemetry.gauge("profiler.sketch_evictions")
        self._m_estimate_error = self.telemetry.gauge("profiler.estimate_error")
        self._m_evictions.set(0.0)
        self._m_estimate_error.set(0.0)
        self._base_unmatched = self._m_unmatched.value
        self._base_dynamic = self._m_dynamic.value
        self._paths: Dict[str, PathSignature] = {}
        self._by_identity: Dict[Tuple[str, Tuple], str] = {}
        # Per-request-type signature lists kept sorted by edges, so
        # paths_for_request() is a lookup instead of a full-path scan.
        self._by_request: Dict[str, List[PathSignature]] = {}
        self._by_request_keys: Dict[str, List[Tuple]] = {}
        # Cached per-path completion counters, so record() never pays a
        # get-or-create registry lookup (label sorting + key render).
        self._m_completions: Dict[str, object] = {}
        # Exact-mode state.  _buckets holds path_id -> OrderedDict[minute
        # bucket -> count] exactly as before; _totals mirrors each path's
        # in-window sum, _epoch_pids/_epoch_heap index which paths have a
        # given minute so the read path can advance the whole window in
        # O(expired entries), and _sample_epochs keeps the exact scalar
        # per-minute completion totals every mode maintains.
        self._buckets: Dict[str, "OrderedDict[int, int]"] = {}
        self._totals: Dict[str, int] = {}
        self._epoch_pids: Dict[int, List[str]] = {}
        self._epoch_heap: List[int] = []
        self._max_bucket: Optional[int] = None
        self._sample_epochs: "OrderedDict[int, int]" = OrderedDict()
        self._sample_total = 0
        # Sketch-mode state (built lazily by set_mode / the constructor).
        self._topk_k = int(topk)
        self._sketch: Optional[TopKPathSummary] = None
        self._component_summary: Optional[ComponentActivitySummary] = None
        self._components_by_pid: Dict[str, Tuple[str, ...]] = {}
        self._mode = "exact"
        for req_type, signatures in sorted(static_paths.items()):
            for sig in signatures:
                self._register(sig)
        if mode != "exact":
            self.set_mode(mode, topk=topk)
        #: Minute of the most recent :meth:`record` call (``None`` until
        #: the first).  Staleness detectors use this to distinguish "no
        #: recent samples because traffic is low" from "the sampled-path
        #: feed has gone quiet" without scanning buckets.
        self.last_record_minutes: Optional[float] = None

    @property
    def mode(self) -> str:
        """The active precision mode (one of :data:`PROFILER_MODES`)."""
        return self._mode

    @property
    def topk_k(self) -> int:
        return self._topk_k

    @property
    def sketch_evictions(self) -> int:
        """Space-saving evictions since the sketch was (re)built."""
        return self._sketch.evictions if self._sketch is not None else 0

    @property
    def unmatched_observations(self) -> int:
        """Observed signatures that were not statically enumerated."""
        return int(self._m_unmatched.value - self._base_unmatched)

    @property
    def dynamic_registrations(self) -> int:
        """Paths added at runtime (observed but not statically known)."""
        return int(self._m_dynamic.value - self._base_dynamic)

    # -- registration ----------------------------------------------------------

    def _register(self, signature: PathSignature) -> str:
        pid = signature.path_id
        if pid not in self._paths:
            self._paths[pid] = signature
            self._by_identity[(signature.request_type, signature.edges)] = pid
            self._buckets[pid] = OrderedDict()
            self._totals[pid] = 0
            sigs = self._by_request.get(signature.request_type)
            if sigs is None:
                self._by_request[signature.request_type] = [signature]
                self._by_request_keys[signature.request_type] = [signature.edges]
            else:
                keys = self._by_request_keys[signature.request_type]
                pos = bisect_left(keys, signature.edges)
                keys.insert(pos, signature.edges)
                sigs.insert(pos, signature)
        return pid

    def known_paths(self) -> Dict[str, PathSignature]:
        """All registered paths by id (static seeds + dynamic additions)."""
        return dict(self._paths)

    def paths_for_request(self, request_type: str) -> List[PathSignature]:
        return list(self._by_request.get(request_type, ()))

    def _components_of(self, pid: str) -> Tuple[str, ...]:
        comps = self._components_by_pid.get(pid)
        if comps is None:
            comps = tuple(sorted(self._paths[pid].components))
            self._components_by_pid[pid] = comps
        return comps

    # -- precision modes --------------------------------------------------------

    def set_mode(self, mode: str, topk: Optional[int] = None) -> None:
        """Switch precision tier at runtime, carrying over window state.

        * exact → topk/component: current buckets are replayed into the
          fresh sketch (in epoch order), so a downshift under load keeps
          the window's history instead of starting cold.
        * topk → exact: monitored entries are materialised back into
          buckets; the count-min tail cannot be attributed to individual
          paths and is dropped (the tail re-accumulates within a window).
        * component → anything: per-path identity was already collapsed,
          so the new tier starts empty.
        """
        if mode not in PROFILER_MODES:
            raise ProfilingError(
                f"unknown profiler mode {mode!r}; expected one of {PROFILER_MODES}"
            )
        k = self._topk_k if topk is None else int(topk)
        if k < 1:
            raise ProfilingError(f"topk must be >= 1, got {k}")
        if mode == self._mode and k == self._topk_k:
            return
        old = self._mode
        self._topk_k = k
        if mode == "topk":
            sketch = TopKPathSummary(k=k, window_minutes=self.window_minutes)
            if old == "exact":
                for epoch, pid, count in self._exact_events():
                    sketch.record(pid, count, float(epoch))
            elif old == "topk" and self._sketch is not None:
                # Resize: reseed from the monitored entries (the count-min
                # tail re-accumulates within a window).
                events = sorted(
                    (epoch, entry.key, count)
                    for entry in self._sketch.topk.entries()
                    for epoch, count in entry.epochs.items()
                )
                for epoch, pid, count in events:
                    sketch.record(pid, count, float(epoch))
            # component → topk starts cold: per-path identity is gone.
            self._clear_exact()
            self._sketch = sketch
            self._component_summary = None
        elif mode == "component":
            summary = ComponentActivitySummary(self.window_minutes)
            if old == "exact":
                for epoch, pid, count in self._exact_events():
                    summary.record(self._components_of(pid), count, float(epoch))
            elif old == "topk" and self._sketch is not None:
                events = sorted(
                    (epoch, entry.key, count)
                    for entry in self._sketch.topk.entries()
                    for epoch, count in entry.epochs.items()
                )
                for epoch, pid, count in events:
                    if pid in self._paths:
                        summary.record(self._components_of(pid), count, float(epoch))
            self._clear_exact()
            self._component_summary = summary
            self._sketch = None
        else:  # exact
            self._clear_exact()
            if old == "topk" and self._sketch is not None:
                for entry in sorted(self._sketch.topk.entries(), key=lambda e: e.key):
                    if entry.key in self._buckets and entry.epochs:
                        self._buckets[entry.key] = OrderedDict(sorted(entry.epochs.items()))
                self._reindex()
            self._sketch = None
            self._component_summary = None
        self._mode = mode
        self._m_evictions.set(float(self.sketch_evictions))

    def _exact_events(self) -> List[Tuple[int, str, int]]:
        """All exact bucket entries as (epoch, pid, count), epoch-ordered."""
        return sorted(
            (epoch, pid, count)
            for pid, buckets in self._buckets.items()
            for epoch, count in buckets.items()
        )

    def _clear_exact(self) -> None:
        for pid in self._buckets:
            self._buckets[pid] = OrderedDict()
            self._totals[pid] = 0
        self._epoch_pids = {}
        self._epoch_heap = []
        self._max_bucket = None
        self._sample_epochs = OrderedDict()
        self._sample_total = 0

    def _reindex(self) -> None:
        """Rebuild running totals + epoch indexes from ``_buckets``."""
        totals = {pid: 0 for pid in self._paths}
        epoch_pids: Dict[int, List[str]] = {}
        scalar: Dict[int, int] = {}
        max_bucket: Optional[int] = None
        for pid, buckets in self._buckets.items():
            for epoch, count in buckets.items():
                totals[pid] += count
                epoch_pids.setdefault(epoch, []).append(pid)
                scalar[epoch] = scalar.get(epoch, 0) + count
                if max_bucket is None or epoch > max_bucket:
                    max_bucket = epoch
        self._totals = totals
        self._epoch_pids = epoch_pids
        self._epoch_heap = sorted(epoch_pids)  # a sorted list is a valid heap
        self._sample_epochs = OrderedDict(sorted(scalar.items()))
        self._sample_total = sum(scalar.values())
        self._max_bucket = max_bucket

    # -- recording ---------------------------------------------------------------

    def record(self, signature: PathSignature, time_minutes: float, count: int = 1) -> str:
        """Record ``count`` completions of ``signature`` at ``time_minutes``.

        An observed signature not statically enumerated is registered
        dynamically and counted (and tallied in
        :attr:`dynamic_registrations` so tests can assert static coverage).
        """
        if count < 1:
            raise ProfilingError(f"count must be >= 1, got {count}")
        key = (signature.request_type, signature.edges)
        pid = self._by_identity.get(key)
        if pid is None:
            pid = self._register(signature)
            self._m_dynamic.inc()
            self._m_unmatched.inc()
        if self.last_record_minutes is None or time_minutes > self.last_record_minutes:
            self.last_record_minutes = float(time_minutes)
        if self._mode == "exact":
            self._record_exact(pid, count, time_minutes)
        elif self._mode == "topk":
            sketch = self._sketch
            sketch.record(pid, count, time_minutes)
            self._m_evictions.set(float(sketch.evictions))
        else:
            self._component_summary.record(self._components_of(pid), count, time_minutes)
        self._m_recordings.inc(count)
        return pid

    def _record_exact(self, pid: str, count: int, time_minutes: float) -> None:
        bucket = int(time_minutes)
        buckets = self._buckets[pid]
        if bucket in buckets:
            buckets[bucket] += count
        else:
            buckets[bucket] = count
            pids = self._epoch_pids.get(bucket)
            if pids is None:
                self._epoch_pids[bucket] = [pid]
                heappush(self._epoch_heap, bucket)
            else:
                pids.append(pid)
        self._totals[pid] += count
        if self._max_bucket is None or bucket > self._max_bucket:
            self._max_bucket = bucket
        self._sample_epochs[bucket] = self._sample_epochs.get(bucket, 0) + count
        self._sample_total += count
        self._prune(pid, buckets, time_minutes)
        completions = self._m_completions.get(pid)
        if completions is None:
            completions = self.telemetry.counter("profiler.path_completions", labels={"path": pid})
            self._m_completions[pid] = completions
        completions.inc(count)

    def _prune(self, pid: str, buckets: "OrderedDict[int, int]", now: float) -> None:
        horizon = now - self.window_minutes
        while buckets:
            oldest = next(iter(buckets))
            if oldest < horizon:
                self._totals[pid] -= buckets.pop(oldest)
            else:
                break
        while self._sample_epochs:
            oldest = next(iter(self._sample_epochs))
            if oldest < horizon:
                self._sample_total -= self._sample_epochs.pop(oldest)
            else:
                break

    def _advance_window(self, horizon: float) -> None:
        """Expire every bucket strictly older than ``horizon`` (all paths).

        Same predicate as :meth:`_prune`, but driven from the shared
        epoch index so a read touches only the entries that actually
        expired — this is what keeps the ``counts()`` fast path a plain
        running-total copy.
        """
        heap = self._epoch_heap
        while heap and heap[0] < horizon:
            epoch = heappop(heap)
            for pid in self._epoch_pids.pop(epoch, ()):
                buckets = self._buckets.get(pid)
                if buckets is not None:
                    count = buckets.pop(epoch, None)
                    if count is not None:
                        self._totals[pid] -= count
        while self._sample_epochs:
            oldest = next(iter(self._sample_epochs))
            if oldest < horizon:
                self._sample_total -= self._sample_epochs.pop(oldest)
            else:
                break

    # -- reading -----------------------------------------------------------------

    def counts(self, now_minutes: float) -> Dict[str, int]:
        """Windowed counts ending at ``now_minutes``.

        Keyed by path id in ``exact``/``topk`` mode, by component name in
        ``component`` mode.  ``topk`` values are estimates whose sum is
        pinned to the exact windowed total (see
        :class:`~repro.profiling.sketches.TopKPathSummary`).
        """
        if self._mode == "topk":
            out = self._sketch.counts(list(self._paths), now_minutes)
            self._m_estimate_error.set(self._sketch.probability_error_bound())
            return out
        if self._mode == "component":
            self._m_estimate_error.set(0.0)
            return self._component_summary.totals(now_minutes)
        self._m_estimate_error.set(0.0)
        horizon = now_minutes - self.window_minutes
        self._advance_window(horizon)
        if self._max_bucket is None or now_minutes >= self._max_bucket:
            return dict(self._totals)
        # A read earlier than the newest bucket (a replayed/past read)
        # cannot use the running totals; fall back to the full scan.
        return self._scan_counts(now_minutes)

    def _scan_counts(self, now_minutes: float) -> Dict[str, int]:
        """The pre-optimisation O(paths × window) read, kept as the
        correctness fallback for reads into the past and as the
        benchmark's reference implementation."""
        horizon = now_minutes - self.window_minutes
        out: Dict[str, int] = {}
        for pid, buckets in self._buckets.items():
            total = sum(c for minute, c in buckets.items() if horizon <= minute <= now_minutes)
            out[pid] = total
        return out

    def counts_between(self, start_minutes: float, end_minutes: float) -> Dict[str, int]:
        """Per-path counts in ``[start, end]`` (bounded by the window).

        Elasticity managers use a short recent horizon for the *mix*
        estimate (so they adapt to hot-path shifts) while the full window
        backs the long-term causal probabilities; both reads share the
        same buckets.  Keyed like :meth:`counts` (component names in
        ``component`` mode).
        """
        if end_minutes < start_minutes:
            raise ProfilingError(f"empty interval [{start_minutes}, {end_minutes}]")
        if self._mode == "topk":
            return self._sketch.counts_between(list(self._paths), start_minutes, end_minutes)
        if self._mode == "component":
            return self._component_summary.totals_between(start_minutes, end_minutes)
        out: Dict[str, int] = {}
        for pid, buckets in self._buckets.items():
            total = sum(c for minute, c in buckets.items() if start_minutes <= minute <= end_minutes)
            out[pid] = total
        return out

    def sample_total_between(self, start_minutes: float, end_minutes: float) -> int:
        """Exact number of recorded completions in ``[start, end]``.

        Maintained as a scalar per-minute ring in *every* mode, so
        staleness detection keeps its exact sample-flow signal even when
        per-path counts are sketched or collapsed to components.
        """
        if end_minutes < start_minutes:
            raise ProfilingError(f"empty interval [{start_minutes}, {end_minutes}]")
        if self._mode == "topk":
            return self._sketch.sample_total_between(start_minutes, end_minutes)
        if self._mode == "component":
            return self._component_summary.sample_total_between(start_minutes, end_minutes)
        return sum(
            c for e, c in self._sample_epochs.items() if start_minutes <= e <= end_minutes
        )

    def component_weight_estimates(self, now_minutes: float) -> Dict[str, float]:
        """``component``-mode ``w_c`` estimates (touch fraction per component).

        Only meaningful in ``component`` mode — other modes derive ``w_c``
        from per-path causal probabilities.
        """
        if self._mode != "component":
            raise ProfilingError(
                f"component_weight_estimates requires component mode, profiler is in {self._mode!r}"
            )
        return self._component_summary.weights(now_minutes)

    def snapshot(self, now_minutes: float) -> ProfileSnapshot:
        return ProfileSnapshot(
            time_minutes=now_minutes,
            window_minutes=self.window_minutes,
            counts=self.counts(now_minutes),
        )

    # -- merging -----------------------------------------------------------------

    def merge(self, other: "CausalPathProfiler") -> None:
        """Fold a peer profiler's window state into this one.

        The profiler analogue of
        :meth:`~repro.telemetry.MetricsRegistry.merge_snapshot`: the
        parallel experiment runner builds one profiler per worker over a
        partition of the sweep and merges them back — in whatever
        precision mode the sweep asked for, instead of forcing exact.
        Both sides must share the mode and window (and ``k`` in ``topk``
        mode); exact buckets add per minute and reindex, sketches merge
        via their mergeable-summary operations
        (:mod:`repro.profiling.sketches`), component tables add per
        epoch.  Dynamic-registration/unmatched tallies carry over;
        per-path ``profiler.path_completions`` counters do *not* — they
        live in each worker's telemetry registry, whose snapshot the
        runner merges separately (double-counting them here would skew
        the sweep's telemetry).
        """
        if other._mode != self._mode:
            raise ProfilingError(
                f"cannot merge profilers in different modes: {self._mode!r} vs {other._mode!r}"
            )
        if other.window_minutes != self.window_minutes:
            raise ProfilingError(
                "cannot merge profilers with different windows: "
                f"{self.window_minutes} vs {other.window_minutes}"
            )
        for sig in other._paths.values():
            self._register(sig)
        if self._mode == "exact":
            for pid, buckets in other._buckets.items():
                if not buckets:
                    continue
                mine = self._buckets[pid]
                for epoch, count in buckets.items():
                    mine[epoch] = mine.get(epoch, 0) + count
                self._buckets[pid] = OrderedDict(sorted(mine.items()))
            self._reindex()
        elif self._mode == "topk":
            if other._topk_k != self._topk_k:
                raise ProfilingError(
                    f"cannot merge topk profilers of different k: "
                    f"{self._topk_k} vs {other._topk_k}"
                )
            self._sketch.merge(other._sketch)
            self._m_evictions.set(float(self._sketch.evictions))
        else:
            self._component_summary.merge(other._component_summary)
        if other.dynamic_registrations:
            self._m_dynamic.inc(other.dynamic_registrations)
        if other.unmatched_observations:
            self._m_unmatched.inc(other.unmatched_observations)
        if other.last_record_minutes is not None and (
            self.last_record_minutes is None
            or other.last_record_minutes > self.last_record_minutes
        ):
            self.last_record_minutes = other.last_record_minutes

    # -- persistence ------------------------------------------------------------

    def to_json(self) -> str:
        """Serialise the profiler to JSON (checkpoint format v2).

        The profiler is the long-lived state of the elasticity system —
        restarting the monitoring host must not lose the causal-probability
        history, so deployments checkpoint it.  v2 carries the precision
        mode, ``last_record_minutes`` (so a restored checkpoint does not
        reset staleness detection) and any sketch state; v1 checkpoints
        (no ``version`` key) are still readable.
        """
        import json

        payload = {
            "version": 2,
            "mode": self._mode,
            "topk": self._topk_k,
            "window_minutes": self.window_minutes,
            "paths": [
                {
                    "request_type": sig.request_type,
                    "edges": [list(edge) for edge in sig.edges],
                }
                for sig in self._paths.values()
            ],
            "buckets": {
                pid: sorted(buckets.items()) for pid, buckets in self._buckets.items()
            },
            "last_record_minutes": self.last_record_minutes,
            "dynamic_registrations": self.dynamic_registrations,
            "unmatched_observations": self.unmatched_observations,
            "sketch": self._sketch.to_state() if self._sketch is not None else None,
            "components": (
                self._component_summary.to_state()
                if self._component_summary is not None
                else None
            ),
        }
        return json.dumps(payload)

    @classmethod
    def from_json(
        cls, data: str, registry: Optional[MetricsRegistry] = None
    ) -> "CausalPathProfiler":
        """Restore a profiler checkpointed with :meth:`to_json`.

        Reads both checkpoint formats: v2 (current) and v1 (pre-sketch,
        identified by the missing ``version`` key — always exact mode,
        with ``last_record_minutes`` unknown).  ``registry`` scopes the
        restored profiler's instruments (the parallel runner restores
        per-worker checkpoints into private registries so the sweep's
        shared registry only sees the explicitly merged telemetry).
        """
        import json

        payload = json.loads(data)
        version = int(payload.get("version", 1))
        signatures = [
            PathSignature(
                entry["request_type"],
                tuple(tuple(edge) for edge in entry["edges"]),
            )
            for entry in payload["paths"]
        ]
        by_request: Dict[str, List[PathSignature]] = {}
        for sig in signatures:
            by_request.setdefault(sig.request_type, []).append(sig)
        mode = payload.get("mode", "exact") if version >= 2 else "exact"
        topk = int(payload.get("topk", DEFAULT_TOPK_K)) if version >= 2 else DEFAULT_TOPK_K
        profiler = cls(
            by_request,
            window_minutes=payload["window_minutes"],
            registry=registry,
            mode=mode,
            topk=topk,
        )
        for pid, buckets in payload["buckets"].items():
            if pid not in profiler._buckets:
                raise ProfilingError(f"checkpoint references unknown path id {pid!r}")
            profiler._buckets[pid] = OrderedDict(
                (int(minute), int(count)) for minute, count in buckets
            )
        profiler._reindex()
        if version >= 2:
            last = payload.get("last_record_minutes")
            profiler.last_record_minutes = None if last is None else float(last)
            sketch_state = payload.get("sketch")
            if sketch_state is not None:
                profiler._sketch = TopKPathSummary.from_state(
                    sketch_state, profiler.window_minutes
                )
                profiler._m_evictions.set(float(profiler._sketch.evictions))
            component_state = payload.get("components")
            if component_state is not None:
                profiler._component_summary = ComponentActivitySummary.from_state(
                    component_state, profiler.window_minutes
                )
        profiler._m_dynamic.inc(int(payload.get("dynamic_registrations", 0)))
        profiler._m_unmatched.inc(int(payload.get("unmatched_observations", 0)))
        return profiler
