"""Ball–Larus efficient path profiling (MICRO '96), on handler CFGs.

The paper's causal-probability technique "builds on previous work and
insights gained from path profiling [Ball–Larus] and preferential path
profiling [Vaswani et al.]" (Section VI).  This module implements the
classic Ball–Larus numbering: assign integer values to CFG edges such
that the sum of edge values along any ENTRY→EXIT path is a unique path
id in ``[0, num_paths)``; a single counter increment per edge then
suffices to profile complete paths.

Loops are handled the standard way: back edges are removed for numbering
(each is logically replaced by the pair back-edge-source→EXIT and
ENTRY→back-edge-target), so ids identify *acyclic* path segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.errors import ProfilingError
from repro.lang.cfg import CFG, ENTRY, EXIT


@dataclass(frozen=True)
class PathNumbering:
    """Result of Ball–Larus numbering for one CFG.

    ``num_paths`` counts distinct acyclic ENTRY→EXIT paths;
    ``edge_values`` maps each (non-back) edge to its increment.
    """

    num_paths: int
    edge_values: Dict[Tuple[int, int], int]
    back_edges: Set[Tuple[int, int]]

    def path_id(self, nodes: Sequence[int]) -> int:
        """Path id of the node sequence ``nodes`` (must start at ENTRY).

        Back edges reset accumulation (the BL treatment of loop
        iterations as separate acyclic segments); the returned id is that
        of the final segment.
        """
        if not nodes or nodes[0] != ENTRY:
            raise ProfilingError("path must start at ENTRY")
        total = 0
        for src, dst in zip(nodes, nodes[1:]):
            edge = (src, dst)
            if edge in self.back_edges:
                total = 0
                continue
            try:
                total += self.edge_values[edge]
            except KeyError:
                raise ProfilingError(f"edge {edge} is not in the CFG") from None
        return total


def ball_larus_numbering(cfg: CFG) -> PathNumbering:
    """Compute the Ball–Larus numbering of ``cfg``.

    Runs in O(V + E): a DFS finds back edges, a reverse-topological pass
    computes ``numPaths`` per node, and edge values follow directly.
    """
    back_edges = _find_back_edges(cfg)
    order = _topological_order(cfg, back_edges)
    num_paths: Dict[int, int] = {}
    for node in reversed(order):
        if node == EXIT:
            num_paths[node] = 1
            continue
        succs = [s for s in sorted(cfg.succ[node]) if (node, s) not in back_edges]
        if not succs:
            num_paths[node] = 1
        else:
            num_paths[node] = sum(num_paths[s] for s in succs)
    edge_values: Dict[Tuple[int, int], int] = {}
    for node in order:
        if node == EXIT:
            continue
        running = 0
        for succ in sorted(cfg.succ[node]):
            if (node, succ) in back_edges:
                continue
            edge_values[(node, succ)] = running
            running += num_paths[succ]
    return PathNumbering(
        num_paths=num_paths.get(ENTRY, 0),
        edge_values=edge_values,
        back_edges=back_edges,
    )


def _find_back_edges(cfg: CFG) -> Set[Tuple[int, int]]:
    """DFS back-edge detection from ENTRY (deterministic order)."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[int, int] = {n: WHITE for n in cfg.nodes}
    back: Set[Tuple[int, int]] = set()

    stack: List[Tuple[int, List[int]]] = [(ENTRY, sorted(cfg.succ[ENTRY]))]
    color[ENTRY] = GRAY
    while stack:
        node, succs = stack[-1]
        if succs:
            nxt = succs.pop(0)
            if color[nxt] == GRAY:
                back.add((node, nxt))
            elif color[nxt] == WHITE:
                color[nxt] = GRAY
                stack.append((nxt, sorted(cfg.succ[nxt])))
        else:
            color[node] = BLACK
            stack.pop()
    return back


def _topological_order(cfg: CFG, back_edges: Set[Tuple[int, int]]) -> List[int]:
    """Topological order of the CFG with back edges removed."""
    indeg: Dict[int, int] = {n: 0 for n in cfg.nodes}
    for src in cfg.nodes:
        for dst in cfg.succ[src]:
            if (src, dst) not in back_edges:
                indeg[dst] += 1
    ready = sorted(n for n, d in indeg.items() if d == 0)
    order: List[int] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for dst in sorted(cfg.succ[node]):
            if (node, dst) in back_edges:
                continue
            indeg[dst] -= 1
            if indeg[dst] == 0:
                ready.append(dst)
        ready.sort()
    if len(order) != len(cfg.nodes):
        raise ProfilingError("CFG (minus back edges) is not acyclic; numbering failed")
    return order
