"""Bounded-memory sliding-window summaries for the causal-path profiler.

At production path cardinality the profiler cannot afford one exact
per-minute bucket map per path: memory is O(paths × window) and every
``counts()`` read walks all of it.  This module provides the sketch tier
behind the profiler's precision modes (see
:mod:`repro.profiling.profiler`):

* :class:`WindowedCountMinSketch` — a dependency-free count-min sketch
  whose counters are kept per minute in a ring of epoch tables plus one
  aggregate table.  Recording updates both; when an epoch slides out of
  the window its table is subtracted from the aggregate and dropped, so
  pruning is O(table) per *epoch*, independent of how many paths or
  buckets passed through the window.
* :class:`SpaceSavingTopK` — a space-saving summary of the ``k``
  heaviest keys.  Each monitored entry carries its own per-minute epoch
  ring, and a shared epoch → keys index lets the window advance touch
  only the entries that actually have counts in the expiring minute.
* :class:`TopKPathSummary` — the combination the profiler's ``topk``
  mode uses: hot paths live in the space-saving summary (near-exact,
  per-entry error bound), the tail lives in the count-min sketch, and an
  *exact* scalar per-epoch total anchors the probability denominator so
  hot-path causal probabilities stay within
  :data:`HOT_PATH_PROBABILITY_EPSILON` of the exact profiler.
* :class:`ComponentActivitySummary` — the cheapest tier (``component``
  mode): per-component windowed totals only, in the spirit of D²ABS's
  coarsest cost-effectiveness level.

All structures share the exact profiler's window semantics: counts land
in ``int(time_minutes)`` buckets and an epoch is pruned once it is
*strictly* older than ``now - window_minutes`` (a bucket exactly on the
horizon is still inside the window).  Like the exact bucket store, the
epoch rings assume record times are (mostly) monotone — the simulator's
clock is.

Mergeability
------------

Every summary here is a *mergeable summary*: per-worker instances built
over a partition of one record stream fold into a single instance whose
estimates match a sketch of the whole stream (count-min exactly, by
linearity; space-saving within the absent side's floor — see
:meth:`SpaceSavingTopK.merge`).  Merges are epoch-aligned so the sliding
window keeps expiring correctly afterwards, and deterministic (sorted
union order, ``(total, key)`` eviction tiebreak) so parallel sweeps stay
reproducible.  This is what lets the parallel experiment runner keep
``--profiler-mode topk`` instead of forcing exact mode per worker.

Error model
-----------

For a window holding ``N`` recorded completions:

* a space-saving entry overestimates its true count by at most
  ``entry.error`` (set at promotion time from the evidence available:
  the evicted minimum and the count-min estimate it inherited);
* a count-min estimate overestimates by at most ``e·N_tail/width`` with
  probability ``1 - e^-depth`` (``N_tail`` = tail mass in the sketch);
* :meth:`TopKPathSummary.counts` pins the *sum* of the returned
  estimates to the exact windowed total, so a hot path's causal
  probability error is bounded by ``entry.error / N`` — with the default
  ``k`` this stays under :data:`HOT_PATH_PROBABILITY_EPSILON` for any
  workload whose hot paths are genuinely hot (Zipf-like traffic).
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ProfilingError

#: Default number of hot paths tracked near-exactly in ``topk`` mode.
DEFAULT_TOPK_K = 128

#: Default count-min geometry for the tail residual.
DEFAULT_CMS_WIDTH = 512
DEFAULT_CMS_DEPTH = 4

#: Documented bound on ``|p_topk(path) - p_exact(path)|`` for hot paths
#: (the top-k paths by true count) under the default sketch geometry.
#: The property tests in ``tests/profiling`` pin this across 25 seeds of
#: Zipf and flash-crowd traffic; the gated benchmark re-measures it at
#: 10k+ paths.
HOT_PATH_PROBABILITY_EPSILON = 0.05

#: Per-row hash salts (golden-ratio multiples; crc32 starting values).
_SALTS = tuple((0x9E3779B9 * (row + 1)) & 0xFFFFFFFF for row in range(8))


def _epoch_of(time_minutes: float) -> int:
    """The per-minute bucket a record at ``time_minutes`` lands in."""
    return int(time_minutes)


class WindowedCountMinSketch:
    """Count-min sketch over a sliding window of per-minute epochs.

    One aggregate table answers :meth:`estimate` in O(depth); the ring
    of per-epoch (sparse) tables exists so expiring a minute is a single
    subtract-and-drop, O(non-zero cells of that minute).
    """

    __slots__ = (
        "window_minutes",
        "width",
        "depth",
        "_agg",
        "_epochs",
        "_epoch_totals",
        "_salt_bases",
        "total",
    )

    def __init__(
        self,
        window_minutes: float,
        width: int = DEFAULT_CMS_WIDTH,
        depth: int = DEFAULT_CMS_DEPTH,
    ) -> None:
        if window_minutes <= 0:
            raise ProfilingError(f"window_minutes must be positive, got {window_minutes}")
        if width < 8:
            raise ProfilingError(f"count-min width must be >= 8, got {width}")
        if not 1 <= depth <= len(_SALTS):
            raise ProfilingError(f"count-min depth must be in [1, {len(_SALTS)}], got {depth}")
        self.window_minutes = float(window_minutes)
        self.width = int(width)
        self.depth = int(depth)
        self._agg: List[int] = [0] * (self.width * self.depth)
        # epoch -> sparse {flat index -> count}; insertion order is
        # chronological under the monotone-clock contract.
        self._epochs: "OrderedDict[int, Dict[int, int]]" = OrderedDict()
        self._epoch_totals: Dict[int, int] = {}
        # (salt, row offset) pairs, precomputed so the read loop does no
        # per-row arithmetic beyond the hash itself.
        self._salt_bases: Tuple[Tuple[int, int], ...] = tuple(
            (_SALTS[row], row * self.width) for row in range(self.depth)
        )
        #: Windowed tail mass (sum of all counts currently in the ring).
        self.total = 0

    def _indexes(self, key: str) -> List[int]:
        data = key.encode("utf-8")
        width = self.width
        return [
            base + (zlib.crc32(data, salt) % width) for salt, base in self._salt_bases
        ]

    def advance(self, time_minutes: float) -> None:
        """Expire epochs strictly older than the window ending now."""
        horizon = time_minutes - self.window_minutes
        while self._epochs:
            oldest = next(iter(self._epochs))
            if oldest >= horizon:
                break
            table = self._epochs.pop(oldest)
            agg = self._agg
            for idx, c in table.items():
                agg[idx] -= c
            self.total -= self._epoch_totals.pop(oldest)

    def add(self, key: str, count: int, time_minutes: float) -> None:
        self.advance(time_minutes)
        epoch = _epoch_of(time_minutes)
        table = self._epochs.get(epoch)
        if table is None:
            table = self._epochs[epoch] = {}
            self._epoch_totals[epoch] = 0
        agg = self._agg
        for idx in self._indexes(key):
            table[idx] = table.get(idx, 0) + count
            agg[idx] += count
        self._epoch_totals[epoch] += count
        self.total += count

    def estimate(self, key: str) -> int:
        """Windowed count estimate (never an underestimate)."""
        agg = self._agg
        width = self.width
        data = key.encode("utf-8")
        best = -1
        for salt, base in self._salt_bases:
            value = agg[base + zlib.crc32(data, salt) % width]
            if value == 0:
                # A zero row is exact: the key has no in-window mass.
                return 0
            if best < 0 or value < best:
                best = value
        return best

    def estimate_between(self, key: str, start_minutes: float, end_minutes: float) -> int:
        """Estimate over the sub-range ``start <= minute <= end``."""
        idxs = self._indexes(key)
        total = 0
        for epoch, table in self._epochs.items():
            if start_minutes <= epoch <= end_minutes:
                total += min(table.get(idx, 0) for idx in idxs)
        return total

    def count_error_bound(self) -> float:
        """Classic CMS overestimate bound: ``e/width`` of the tail mass."""
        return 2.718281828459045 * self.total / self.width

    def merge(self, other: "WindowedCountMinSketch") -> None:
        """Fold ``other`` into this sketch by epoch-aligned table addition.

        Count-min is linear: cell-wise addition of two sketches with the
        same geometry (width, depth — and therefore the same salt rows)
        yields *exactly* the sketch of the concatenated streams, so a
        per-worker partition of a record stream merges without any added
        error.  Epochs are aligned minute by minute so windowed expiry
        keeps working after the merge; the ring is re-sorted because the
        other side may contribute minutes older than our newest.
        """
        if (other.width, other.depth) != (self.width, self.depth):
            raise ProfilingError(
                "cannot merge count-min sketches of different geometry: "
                f"{self.width}x{self.depth} vs {other.width}x{other.depth}"
            )
        if other.window_minutes != self.window_minutes:
            raise ProfilingError(
                "cannot merge count-min sketches with different windows: "
                f"{self.window_minutes} vs {other.window_minutes}"
            )
        agg = self._agg
        for epoch, table in other._epochs.items():
            mine = self._epochs.get(epoch)
            if mine is None:
                mine = self._epochs[epoch] = {}
                self._epoch_totals[epoch] = 0
            for idx, c in table.items():
                mine[idx] = mine.get(idx, 0) + c
                agg[idx] += c
            epoch_total = other._epoch_totals[epoch]
            self._epoch_totals[epoch] += epoch_total
            self.total += epoch_total
        # Restore the chronological insertion order advance() relies on.
        self._epochs = OrderedDict(sorted(self._epochs.items()))

    # -- persistence (checkpoint format v2) ------------------------------------

    def to_state(self) -> Dict[str, object]:
        return {
            "width": self.width,
            "depth": self.depth,
            "epochs": [
                [epoch, sorted(table.items())] for epoch, table in self._epochs.items()
            ],
            "epoch_totals": sorted(self._epoch_totals.items()),
        }

    @classmethod
    def from_state(cls, state: Dict[str, object], window_minutes: float) -> "WindowedCountMinSketch":
        sketch = cls(window_minutes, width=int(state["width"]), depth=int(state["depth"]))
        totals = {int(e): int(t) for e, t in state["epoch_totals"]}
        for epoch, cells in state["epochs"]:
            epoch = int(epoch)
            table = {int(idx): int(c) for idx, c in cells}
            sketch._epochs[epoch] = table
            for idx, c in table.items():
                sketch._agg[idx] += c
            sketch._epoch_totals[epoch] = totals.get(epoch, 0)
            sketch.total += sketch._epoch_totals[epoch]
        return sketch


class _TopKEntry:
    """One monitored hot path: windowed total + per-epoch ring + error."""

    __slots__ = ("key", "total", "error", "epochs")

    def __init__(self, key: str, error: int = 0) -> None:
        self.key = key
        self.total = 0
        #: Upper bound on how much ``total`` overestimates the true
        #: windowed count (inherited history at promotion time).
        self.error = int(error)
        self.epochs: "OrderedDict[int, int]" = OrderedDict()

    def total_between(self, start_minutes: float, end_minutes: float) -> int:
        return sum(c for e, c in self.epochs.items() if start_minutes <= e <= end_minutes)


class SpaceSavingTopK:
    """Space-saving summary of the ``k`` heaviest keys in the window.

    The shared epoch → keys index makes the window advance proportional
    to the number of (entry, expiring-minute) pairs, not to ``k``.
    Eviction picks the minimum windowed total with a deterministic
    ``(total, key)`` tiebreak so seeded runs are reproducible.
    """

    __slots__ = ("k", "window_minutes", "_entries", "_epoch_keys", "evictions")

    def __init__(self, k: int, window_minutes: float) -> None:
        if k < 1:
            raise ProfilingError(f"top-k size must be >= 1, got {k}")
        if window_minutes <= 0:
            raise ProfilingError(f"window_minutes must be positive, got {window_minutes}")
        self.k = int(k)
        self.window_minutes = float(window_minutes)
        self._entries: Dict[str, _TopKEntry] = {}
        self._epoch_keys: "OrderedDict[int, List[str]]" = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[_TopKEntry]:
        return self._entries.get(key)

    def entries(self) -> Iterable[_TopKEntry]:
        return self._entries.values()

    def advance(self, time_minutes: float) -> None:
        horizon = time_minutes - self.window_minutes
        while self._epoch_keys:
            oldest = next(iter(self._epoch_keys))
            if oldest >= horizon:
                break
            for key in self._epoch_keys.pop(oldest):
                entry = self._entries.get(key)
                if entry is not None:
                    expired = entry.epochs.pop(oldest, None)
                    if expired is not None:
                        entry.total -= expired

    def increment(self, key: str, count: int, time_minutes: float) -> bool:
        """Add ``count`` if ``key`` is monitored; report whether it was."""
        entry = self._entries.get(key)
        if entry is None:
            return False
        self._bump(entry, count, _epoch_of(time_minutes))
        return True

    def _bump(self, entry: _TopKEntry, count: int, epoch: int) -> None:
        if epoch in entry.epochs:
            entry.epochs[epoch] += count
        else:
            entry.epochs[epoch] = count
            keys = self._epoch_keys.get(epoch)
            if keys is None:
                self._epoch_keys[epoch] = [entry.key]
            else:
                keys.append(entry.key)
        entry.total += count

    def insert(self, key: str, total: int, error: int, time_minutes: float) -> _TopKEntry:
        """Start monitoring ``key`` (caller evicts first when full)."""
        entry = _TopKEntry(key, error=error)
        self._entries[key] = entry
        if total > 0:
            self._bump(entry, total, _epoch_of(time_minutes))
        return entry

    def min_entry(self) -> _TopKEntry:
        return min(self._entries.values(), key=lambda e: (e.total, e.key))

    def evict(self, key: str) -> None:
        # Stale references left in the epoch index are skipped by the
        # `entries.get` guard in advance().
        del self._entries[key]
        self.evictions += 1

    def max_error(self) -> int:
        if not self._entries:
            return 0
        return max(entry.error for entry in self._entries.values())

    def merge(self, other: "SpaceSavingTopK") -> None:
        """Fold ``other`` into this summary (mergeable-summaries union).

        Keys are unioned with their per-epoch rings added minute by
        minute, then the union is evicted back down to ``k`` smallest
        first under the deterministic ``(total, key)`` tiebreak — so the
        merged result is independent of merge order beyond the summable
        state itself.  A key one side never monitored may have been
        absorbed into that side's unmonitored mass; its true count there
        is bounded by that side's minimum total when the side is full,
        and is exactly zero when the side still has spare capacity
        (space-saving monitors every key it sees until ``k`` are live).
        That bound is added to ``entry.error``, which after a merge
        therefore bounds ``|total - true|`` in *both* directions: the
        per-epoch rings stay pure (no phantom mass is injected into any
        minute), at the cost of a possible bounded underestimate for
        keys hot on only one side.
        """
        if other.k != self.k:
            raise ProfilingError(
                f"cannot merge top-k summaries of different k: {self.k} vs {other.k}"
            )
        if other.window_minutes != self.window_minutes:
            raise ProfilingError(
                "cannot merge top-k summaries with different windows: "
                f"{self.window_minutes} vs {other.window_minutes}"
            )
        self_floor = (
            self.min_entry().total if len(self._entries) >= self.k else 0
        )
        other_floor = (
            other.min_entry().total if len(other._entries) >= other.k else 0
        )
        for key in sorted(set(self._entries) | set(other._entries)):
            mine = self._entries.get(key)
            theirs = other._entries.get(key)
            if mine is None:
                mine = _TopKEntry(key, error=theirs.error + self_floor)
                self._entries[key] = mine
                for epoch, count in theirs.epochs.items():
                    self._bump(mine, count, epoch)
            elif theirs is None:
                mine.error += other_floor
            else:
                mine.error += theirs.error
                for epoch, count in theirs.epochs.items():
                    self._bump(mine, count, epoch)
        while len(self._entries) > self.k:
            self.evict(self.min_entry().key)
        self.evictions += other.evictions
        # Restore the chronological order the window advance relies on.
        self._epoch_keys = OrderedDict(sorted(self._epoch_keys.items()))

    # -- persistence (checkpoint format v2) ------------------------------------

    def to_state(self) -> Dict[str, object]:
        return {
            "k": self.k,
            "evictions": self.evictions,
            "entries": [
                {
                    "key": entry.key,
                    "error": entry.error,
                    "epochs": list(entry.epochs.items()),
                }
                for entry in sorted(self._entries.values(), key=lambda e: e.key)
            ],
        }

    @classmethod
    def from_state(cls, state: Dict[str, object], window_minutes: float) -> "SpaceSavingTopK":
        summary = cls(int(state["k"]), window_minutes)
        summary.evictions = int(state.get("evictions", 0))
        for spec in state["entries"]:
            entry = _TopKEntry(str(spec["key"]), error=int(spec["error"]))
            summary._entries[entry.key] = entry
            for epoch, count in spec["epochs"]:
                summary._bump(entry, int(count), int(epoch))
        return summary


class TopKPathSummary:
    """The profiler's ``topk`` tier: hot paths exact-ish, tail sketched.

    A record goes to the space-saving summary when its path is already
    monitored; otherwise it lands in the count-min tail, and the path is
    promoted into the summary when its tail estimate overtakes the
    current minimum (the classic space-saving admission rule).  An exact
    scalar per-epoch total is kept alongside so reads can pin the
    probability denominator — see :meth:`counts`.
    """

    __slots__ = ("window_minutes", "topk", "cms", "_sample_epochs", "sample_total")

    def __init__(
        self,
        k: int = DEFAULT_TOPK_K,
        window_minutes: float = 60.0,
        cms_width: int = DEFAULT_CMS_WIDTH,
        cms_depth: int = DEFAULT_CMS_DEPTH,
    ) -> None:
        self.window_minutes = float(window_minutes)
        self.topk = SpaceSavingTopK(k, window_minutes)
        self.cms = WindowedCountMinSketch(window_minutes, width=cms_width, depth=cms_depth)
        # Exact scalar totals per epoch: O(window) integers, regardless
        # of path cardinality.
        self._sample_epochs: "OrderedDict[int, int]" = OrderedDict()
        self.sample_total = 0

    @property
    def evictions(self) -> int:
        return self.topk.evictions

    def advance(self, time_minutes: float) -> None:
        self.topk.advance(time_minutes)
        self.cms.advance(time_minutes)
        horizon = time_minutes - self.window_minutes
        while self._sample_epochs:
            oldest = next(iter(self._sample_epochs))
            if oldest >= horizon:
                break
            self.sample_total -= self._sample_epochs.pop(oldest)

    def record(self, key: str, count: int, time_minutes: float) -> None:
        self.advance(time_minutes)
        epoch = _epoch_of(time_minutes)
        self._sample_epochs[epoch] = self._sample_epochs.get(epoch, 0) + count
        self.sample_total += count
        if self.topk.increment(key, count, time_minutes):
            return
        self.cms.add(key, count, time_minutes)
        estimate = self.cms.estimate(key)
        if len(self.topk) < self.topk.k:
            self.topk.insert(key, estimate, max(0, estimate - count), time_minutes)
            return
        floor = self.topk.min_entry()
        if estimate > floor.total:
            self.topk.evict(floor.key)
            self.topk.insert(
                key, estimate, max(floor.total, estimate - count), time_minutes
            )

    # -- reads -------------------------------------------------------------------

    def sample_total_between(self, start_minutes: float, end_minutes: float) -> int:
        """Exact number of recorded completions in ``[start, end]``."""
        return sum(
            c for e, c in self._sample_epochs.items() if start_minutes <= e <= end_minutes
        )

    def counts(self, keys: Sequence[str], now_minutes: float) -> Dict[str, int]:
        """Windowed estimates for ``keys``, summing to the exact total.

        Monitored paths report their space-saving totals; the remaining
        (exact) mass is apportioned over the tail by count-min estimate,
        so ``causal_probabilities`` downstream sees a denominator equal
        to the true windowed total and hot-path probabilities inherit
        only the space-saving per-entry error.
        """
        self.advance(now_minutes)
        return self._estimates(
            keys,
            monitored=lambda entry: entry.total,
            tail=self.cms.estimate,
            exact_total=self.sample_total,
        )

    def counts_between(
        self, keys: Sequence[str], start_minutes: float, end_minutes: float
    ) -> Dict[str, int]:
        return self._estimates(
            keys,
            monitored=lambda entry: entry.total_between(start_minutes, end_minutes),
            tail=lambda key: self.cms.estimate_between(key, start_minutes, end_minutes),
            exact_total=self.sample_total_between(start_minutes, end_minutes),
        )

    def _estimates(self, keys, monitored, tail, exact_total) -> Dict[str, int]:
        out: Dict[str, int] = {}
        tail_keys: List[str] = []
        tail_estimates: List[int] = []
        hot_mass = 0
        entry_of = self.topk._entries.get
        for key in keys:
            entry = entry_of(key)
            if entry is not None:
                value = monitored(entry)
                out[key] = value
                hot_mass += value
            else:
                out[key] = 0
                estimate = tail(key)
                if estimate > 0:
                    tail_keys.append(key)
                    tail_estimates.append(estimate)
        residual = max(0, exact_total - hot_mass)
        if residual and tail_keys:
            # Cumulative integer apportionment: key i gets
            # floor(cum_i·residual/total) − floor(cum_{i-1}·residual/total),
            # which telescopes to exactly ``residual`` (no per-key rounding
            # drift), keeps every share within 1 of its proportional value,
            # and needs one O(tail) pass — no sort.
            total_estimate = sum(tail_estimates)
            cum = 0
            prev_share = 0
            for key, estimate in zip(tail_keys, tail_estimates):
                cum += estimate
                share = cum * residual // total_estimate
                out[key] = share - prev_share
                prev_share = share
        return out

    def probability_error_bound(self) -> float:
        """Worst-case hot-path probability overestimate right now."""
        return self.topk.max_error() / max(1, self.sample_total)

    def merge(self, other: "TopKPathSummary") -> None:
        """Fold a peer summary (e.g. another worker's) into this one.

        All three constituents merge independently: the space-saving
        union re-evicts to ``k`` deterministically, the count-min tables
        add exactly (linearity), and the exact per-epoch scalar totals
        add minute by minute — so :meth:`counts` keeps pinning the
        merged estimates to the *combined* exact windowed total.
        """
        if other.window_minutes != self.window_minutes:
            raise ProfilingError(
                "cannot merge path summaries with different windows: "
                f"{self.window_minutes} vs {other.window_minutes}"
            )
        self.topk.merge(other.topk)
        self.cms.merge(other.cms)
        for epoch, count in other._sample_epochs.items():
            self._sample_epochs[epoch] = self._sample_epochs.get(epoch, 0) + count
            self.sample_total += count
        self._sample_epochs = OrderedDict(sorted(self._sample_epochs.items()))

    # -- persistence (checkpoint format v2) ------------------------------------

    def to_state(self) -> Dict[str, object]:
        return {
            "topk": self.topk.to_state(),
            "cms": self.cms.to_state(),
            "sample_epochs": list(self._sample_epochs.items()),
        }

    @classmethod
    def from_state(cls, state: Dict[str, object], window_minutes: float) -> "TopKPathSummary":
        summary = cls(k=int(state["topk"]["k"]), window_minutes=window_minutes)
        summary.topk = SpaceSavingTopK.from_state(state["topk"], window_minutes)
        summary.cms = WindowedCountMinSketch.from_state(state["cms"], window_minutes)
        for epoch, count in state["sample_epochs"]:
            summary._sample_epochs[int(epoch)] = int(count)
            summary.sample_total += int(count)
        return summary


class ComponentActivitySummary:
    """The ``component`` tier: windowed per-component totals only.

    The cheapest precision level — memory is O(components × window) and
    entirely independent of path cardinality.  ``weights`` divides each
    component's touch count by the exact number of recorded completions,
    matching the ``w_c`` the DCA manager derives from per-path causal
    probabilities (a completion touching a component contributes its
    full probability mass either way).
    """

    __slots__ = ("window_minutes", "_epochs", "_epoch_requests", "_totals", "request_total")

    def __init__(self, window_minutes: float = 60.0) -> None:
        if window_minutes <= 0:
            raise ProfilingError(f"window_minutes must be positive, got {window_minutes}")
        self.window_minutes = float(window_minutes)
        self._epochs: "OrderedDict[int, Dict[str, int]]" = OrderedDict()
        self._epoch_requests: Dict[int, int] = {}
        self._totals: Dict[str, int] = {}
        self.request_total = 0

    def advance(self, time_minutes: float) -> None:
        horizon = time_minutes - self.window_minutes
        while self._epochs:
            oldest = next(iter(self._epochs))
            if oldest >= horizon:
                break
            for comp, count in self._epochs.pop(oldest).items():
                self._totals[comp] -= count
            self.request_total -= self._epoch_requests.pop(oldest)

    def record(self, components: Iterable[str], count: int, time_minutes: float) -> None:
        self.advance(time_minutes)
        epoch = _epoch_of(time_minutes)
        table = self._epochs.get(epoch)
        if table is None:
            table = self._epochs[epoch] = {}
            self._epoch_requests[epoch] = 0
        for comp in components:
            table[comp] = table.get(comp, 0) + count
            self._totals[comp] = self._totals.get(comp, 0) + count
        self._epoch_requests[epoch] += count
        self.request_total += count

    def totals(self, now_minutes: float) -> Dict[str, int]:
        self.advance(now_minutes)
        return {comp: total for comp, total in self._totals.items() if total > 0}

    def totals_between(self, start_minutes: float, end_minutes: float) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for epoch, table in self._epochs.items():
            if start_minutes <= epoch <= end_minutes:
                for comp, count in table.items():
                    out[comp] = out.get(comp, 0) + count
        return out

    def sample_total_between(self, start_minutes: float, end_minutes: float) -> int:
        return sum(
            c for e, c in self._epoch_requests.items() if start_minutes <= e <= end_minutes
        )

    def weights(self, now_minutes: float) -> Dict[str, float]:
        """``w_c`` estimates: fraction of completions touching ``c``."""
        totals = self.totals(now_minutes)
        if self.request_total <= 0:
            return {}
        return {comp: count / self.request_total for comp, count in totals.items()}

    def merge(self, other: "ComponentActivitySummary") -> None:
        """Fold a peer summary in by per-epoch component-table addition."""
        if other.window_minutes != self.window_minutes:
            raise ProfilingError(
                "cannot merge component summaries with different windows: "
                f"{self.window_minutes} vs {other.window_minutes}"
            )
        for epoch, table in other._epochs.items():
            mine = self._epochs.get(epoch)
            if mine is None:
                mine = self._epochs[epoch] = {}
                self._epoch_requests[epoch] = 0
            for comp, count in table.items():
                mine[comp] = mine.get(comp, 0) + count
                self._totals[comp] = self._totals.get(comp, 0) + count
            requests = other._epoch_requests[epoch]
            self._epoch_requests[epoch] += requests
            self.request_total += requests
        self._epochs = OrderedDict(sorted(self._epochs.items()))

    # -- persistence (checkpoint format v2) ------------------------------------

    def to_state(self) -> Dict[str, object]:
        return {
            "epochs": [
                [epoch, sorted(table.items())] for epoch, table in self._epochs.items()
            ],
            "epoch_requests": sorted(self._epoch_requests.items()),
        }

    @classmethod
    def from_state(cls, state: Dict[str, object], window_minutes: float) -> "ComponentActivitySummary":
        summary = cls(window_minutes)
        requests = {int(e): int(c) for e, c in state["epoch_requests"]}
        for epoch, items in state["epochs"]:
            epoch = int(epoch)
            table = {str(comp): int(c) for comp, c in items}
            summary._epochs[epoch] = table
            for comp, c in table.items():
                summary._totals[comp] = summary._totals.get(comp, 0) + c
            summary._epoch_requests[epoch] = requests.get(epoch, 0)
            summary.request_total += summary._epoch_requests[epoch]
        return summary
