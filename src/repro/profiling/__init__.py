"""Path profiling: Ball–Larus numbering and the causal-path profiler."""

from repro.profiling.ball_larus import PathNumbering, ball_larus_numbering
from repro.profiling.profiler import CausalPathProfiler, ProfileSnapshot

__all__ = [
    "CausalPathProfiler",
    "PathNumbering",
    "ProfileSnapshot",
    "ball_larus_numbering",
]
