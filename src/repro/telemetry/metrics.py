"""Dependency-free runtime metrics: counters, gauges, histograms, timers.

The paper's evaluation (Section V) is built on *measured* runtime
behaviour — instrumentation overhead, path-counter time series, agility
and SLA tables — so the runtime layers need a uniform way to expose
their internal counters.  This module is the single mechanism: a
:class:`MetricsRegistry` hands out named, optionally labelled metric
instruments and renders a point-in-time :meth:`~MetricsRegistry.snapshot`
with a stable, schema-versioned JSON shape that the CLI, the benchmark
harness, and CI's regression gate all consume.

Design constraints:

* **No third-party dependencies** — the monitoring host must not be
  heavier than the thing it monitors.
* **Cheap on the hot path** — incrementing a counter is one float add;
  metric instruments are created once and cached on the instrumented
  object, not looked up per event.
* **Monotonic counters + per-instance baselines** — several runtime
  objects (graph stores, trackers) historically exposed per-instance
  tallies (``edge_count`` …).  Those objects capture the counter value
  at construction time and report the delta, so many instances can share
  one registry while keeping their legacy attribute semantics.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ReproError

#: Version of the snapshot JSON shape.  Bump only with a migration note
#: in docs/architecture.md; CI's regression gate checks it.
SCHEMA_VERSION = 1

#: Default histogram bucket upper bounds (seconds-flavoured, Prometheus
#: style).  Callers measuring sizes/depths pass their own boundaries.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelMapping = Optional[Mapping[str, str]]


class TelemetryError(ReproError):
    """Invalid metric declaration or use."""


def _label_key(labels: LabelMapping) -> Tuple[Tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_key(name: str, label_key: Tuple[Tuple[str, str], ...]) -> str:
    if not label_key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in label_key)
    return f"{name}{{{inner}}}"


def _locked(fn, lock):
    def locked_call(*args, **kwargs):
        with lock:
            return fn(*args, **kwargs)
    return locked_call


class Metric:
    """Base: a named instrument with a frozen label set."""

    kind = "metric"
    #: Methods serialised behind a lock by :meth:`_bind_lock`.
    _MUTATORS: Tuple[str, ...] = ()

    def __init__(self, name: str, labels: LabelMapping = None) -> None:
        if not name:
            raise TelemetryError("metric name must be non-empty")
        self.name = name
        label_key = _label_key(labels)
        self.labels: Dict[str, str] = dict(label_key)
        # Labels are frozen after construction, so the rendered key is
        # computed once rather than on every registry/snapshot access.
        self._key = _render_key(name, label_key)

    def _bind_lock(self, lock: "threading.Lock") -> None:
        """Serialise this instrument's mutators behind ``lock``.

        Shadowing the bound methods on the instance keeps the unlocked
        (single-threaded, default) hot path free of any branch or lock
        acquisition — only registries built with ``thread_safe=True`` pay
        for synchronisation.
        """
        self.lock = lock
        for attr in self._MUTATORS:
            setattr(self, attr, _locked(getattr(self, attr), lock))

    @property
    def key(self) -> str:
        """Stable registry key: ``name`` or ``name{k=v,…}`` (sorted labels)."""
        return self._key

    def to_dict(self) -> Dict[str, object]:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


class Counter(Metric):
    """Monotonically increasing count of events."""

    kind = "counter"
    _MUTATORS = ("inc",)

    def __init__(self, name: str, labels: LabelMapping = None) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise TelemetryError(f"counter {self.key} cannot decrease (inc by {amount})")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def to_dict(self) -> Dict[str, object]:
        return {"type": self.kind, "value": self._value, "labels": self.labels}

    def reset(self) -> None:
        self._value = 0.0


class Gauge(Metric):
    """Point-in-time value that can move both ways (depths, sizes)."""

    kind = "gauge"
    _MUTATORS = ("set", "inc", "dec")

    def __init__(self, name: str, labels: LabelMapping = None) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def to_dict(self) -> Dict[str, object]:
        return {"type": self.kind, "value": self._value, "labels": self.labels}

    def reset(self) -> None:
        self._value = 0.0


class Histogram(Metric):
    """Fixed-bucket histogram with percentile estimation.

    Buckets are cumulative-style upper bounds (a sample lands in the
    first bucket whose bound is >= the value; larger samples land in the
    implicit overflow bucket).  Percentiles are estimated from the bucket
    counts, so they are exact to bucket resolution — good enough for
    regression gating, free of per-sample storage.
    """

    kind = "histogram"
    _MUTATORS = ("observe", "merge")

    def __init__(
        self,
        name: str,
        labels: LabelMapping = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, labels)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise TelemetryError(f"histogram {name} needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise TelemetryError(f"histogram {name} has duplicate bucket bounds")
        self.bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # +1 overflow
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self._count += 1
        self._sum += value
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self._bucket_counts[i] += 1
                return
        self._bucket_counts[-1] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def bucket_counts(self) -> Tuple[int, ...]:
        """Read-only bucket tallies, in ``bounds`` order, overflow last."""
        return tuple(self._bucket_counts)

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1]) from bucket counts.

        Returns the upper bound of the bucket holding the quantile,
        clamped to the observed ``[min, max]`` range — so ``q=0`` is the
        observed minimum (not the first bucket's bound, which may lie
        below every sample) and no estimate ever exceeds the observed
        maximum (a bucket bound is only an upper limit on its samples).
        Returns 0.0 when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise TelemetryError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        if q == 0.0:
            # rank 0 would otherwise be satisfied by the first bucket
            # even when that bucket is empty.
            return self._min
        rank = q * self._count
        cumulative = 0
        for i, bound in enumerate(self.bounds):
            cumulative += self._bucket_counts[i]
            if cumulative >= rank:
                return min(max(bound, self._min), self._max)
        return self._max

    def merge(self, data: Mapping[str, object]) -> None:
        """Fold another histogram's :meth:`to_dict` export into this one.

        The bucket boundaries must match exactly; counts, sums and
        extrema combine as if every sample had been observed here.
        """
        buckets = data["buckets"]
        bounds = tuple(sorted(float(b) for b in buckets if b != "+Inf"))
        if bounds != self.bounds:
            raise TelemetryError(
                f"histogram {self.key!r}: cannot merge mismatched buckets "
                f"{bounds} into {self.bounds}"
            )
        for i, bound in enumerate(self.bounds):
            self._bucket_counts[i] += int(buckets[str(bound)])
        self._bucket_counts[-1] += int(buckets.get("+Inf", 0))
        self._count += int(data["count"])
        self._sum += float(data["sum"])
        other_min = data.get("min")
        if other_min is not None:
            self._min = other_min if self._min is None else min(self._min, other_min)
        other_max = data.get("max")
        if other_max is not None:
            self._max = other_max if self._max is None else max(self._max, other_max)

    def to_dict(self) -> Dict[str, object]:
        buckets = {str(b): c for b, c in zip(self.bounds, self._bucket_counts)}
        buckets["+Inf"] = self._bucket_counts[-1]
        return {
            "type": self.kind,
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "buckets": buckets,
            "labels": self.labels,
        }

    def reset(self) -> None:
        self._bucket_counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = None
        self._max = None


class Timer:
    """Context manager recording elapsed wall-clock seconds into a histogram.

    Re-entrant across uses (not nested): one Timer can time many
    successive blocks, e.g. every simulation interval.
    """

    def __init__(self, histogram: Histogram) -> None:
        self.histogram = histogram
        self._started: Optional[float] = None
        self.last_seconds: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._started is not None:
            self.last_seconds = time.perf_counter() - self._started
            self.histogram.observe(self.last_seconds)
            self._started = None


class MetricsRegistry:
    """Get-or-create registry of metric instruments.

    Identity is (name, sorted labels); asking twice for the same identity
    returns the same instrument, so instrumented objects can share
    aggregate metrics across a whole simulation while holding direct
    references for hot-path updates.

    Concurrency: instrument *creation* is always serialised (it is cold
    path — callers cache the handles).  Instrument *updates* are only
    synchronised when the registry is built with ``thread_safe=True``,
    which binds a per-instrument lock around every mutator; the default
    single-threaded registry keeps the zero-overhead hot path.  Process
    workers don't share memory at all — each runs its own registry and
    the parent folds the results together via :meth:`merge_snapshot`.
    """

    def __init__(self, thread_safe: bool = False) -> None:
        self._metrics: Dict[str, Metric] = {}
        self.thread_safe = bool(thread_safe)
        self._create_lock = threading.Lock()

    # -- get-or-create -----------------------------------------------------------

    def _get_or_create(self, cls, name: str, labels: LabelMapping, **kwargs) -> Metric:
        key = _render_key(name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            with self._create_lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = cls(name, labels=labels, **kwargs)
                    if self.thread_safe:
                        metric._bind_lock(threading.Lock())
                    self._metrics[key] = metric
        if not isinstance(metric, cls):
            raise TelemetryError(
                f"metric {key!r} already registered as {metric.kind}, not {cls.kind}"
            )
        return metric

    def counter(self, name: str, labels: LabelMapping = None) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, labels: LabelMapping = None) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        labels: LabelMapping = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, buckets=buckets)

    def timer(
        self,
        name: str,
        labels: LabelMapping = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Timer:
        return Timer(self.histogram(name, labels=labels, buckets=buckets))

    # -- introspection -----------------------------------------------------------

    def get(self, name: str, labels: LabelMapping = None) -> Optional[Metric]:
        return self._metrics.get(_render_key(name, _label_key(labels)))

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    # -- export ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Point-in-time export: ``{"schema": 1, "metrics": {key: {...}}}``."""
        with self._create_lock:
            keys = sorted(self._metrics)
        return {
            "schema": SCHEMA_VERSION,
            "metrics": {key: self._metrics[key].to_dict() for key in keys},
        }

    def merge_snapshot(self, snapshot: Mapping[str, object]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        This is how per-worker registries aggregate: each worker (thread
        or process) records into its own registry, and the coordinator
        merges the exported snapshots.  Counters add; gauges add too (a
        merged gauge is the *sum* of the per-worker last-seen values —
        meaningful for depth-style gauges, document per metric if not);
        histograms require identical bucket boundaries and combine
        bucket-by-bucket.  Timers export as histograms, so they merge as
        histograms.
        """
        schema = snapshot.get("schema")
        if schema != SCHEMA_VERSION:
            raise TelemetryError(
                f"cannot merge snapshot with schema {schema!r} "
                f"(expected {SCHEMA_VERSION})"
            )
        for key, data in snapshot.get("metrics", {}).items():
            name = key.split("{", 1)[0]
            labels = data.get("labels") or None
            kind = data.get("type")
            if kind == Counter.kind:
                self.counter(name, labels).inc(float(data["value"]))
            elif kind == Gauge.kind:
                self.gauge(name, labels).inc(float(data["value"]))
            elif kind == Histogram.kind:
                buckets = data["buckets"]
                bounds = sorted(float(b) for b in buckets if b != "+Inf")
                self.histogram(name, labels, buckets=bounds).merge(data)
            else:
                raise TelemetryError(
                    f"cannot merge metric {key!r} of unknown kind {kind!r}"
                )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        """Zero every registered instrument (identities are kept)."""
        for metric in self._metrics.values():
            metric.reset()

    def clear(self) -> None:
        """Drop every instrument (existing references keep working but
        are no longer exported)."""
        self._metrics.clear()


#: Process-wide default registry: instrumented objects that are not
#: handed an explicit registry report here, so ad-hoc scripts and the
#: ``repro metrics`` CLI see everything without wiring.
_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _DEFAULT_REGISTRY
