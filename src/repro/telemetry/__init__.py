"""Runtime telemetry: the unified metrics layer of the reproduction.

See :mod:`repro.telemetry.metrics` for the instruments and
``docs/architecture.md`` ("Telemetry") for the metric catalogue and the
snapshot JSON schema.
"""

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    TelemetryError,
    Timer,
    get_registry,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "TelemetryError",
    "Timer",
    "get_registry",
]
