"""Exception hierarchy shared across the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries while tests can
assert on the precise subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class IRError(ReproError):
    """Raised when a component program is structurally invalid."""


class AnalysisError(ReproError):
    """Raised when static analysis (CFG, dependence, slicing) fails."""


class InterpreterError(ReproError):
    """Raised when handler execution fails at runtime."""


class GraphStoreError(ReproError):
    """Raised on invalid graph-store operations (unknown uid, bad query)."""


class TransientStoreError(GraphStoreError):
    """A graph-store write failed transiently (injected or real).

    Callers on the write path (the tracker) retry these with bounded
    backoff before dead-lettering the message; any other
    :class:`GraphStoreError` is a programming error and propagates.
    """


class StoreBackendError(GraphStoreError):
    """A graph-store backend artifact is missing, torn, or malformed.

    Raised by the append-only log backend (:mod:`repro.graphstore.backend`)
    when recovery meets a truncated final record, a frame whose crc32
    does not match its payload, or a gap in a rotated segment sequence —
    mirroring :class:`ParityArtifactError`: a damaged persistence
    artifact must surface as a loud failure, never load as a silently
    truncated graph.  Also raised for backend misuse (double close,
    writes after close, opening a fresh store over existing segments).
    """


class FaultPlanError(ReproError):
    """Raised when a fault plan or injector is misconfigured."""


class ProfilingError(ReproError):
    """Raised by the path profiler (unknown path, bad window)."""


class SimulationError(ReproError):
    """Raised by the cluster simulator (bad topology, negative capacity)."""


class WorkloadError(ReproError):
    """Raised when a workload pattern or generator is misconfigured."""


class ElasticityError(ReproError):
    """Raised by elasticity managers (bad allocation, unknown component)."""


class EvaluationError(ReproError):
    """Raised by the evaluation harness (metric misuse, bad experiment)."""


class ParityArtifactError(ReproError):
    """A parity/replay diff artifact is missing, empty, or malformed.

    Raised by the artifact loaders (:mod:`repro.sim.parity`,
    :mod:`repro.chaos`) so a truncated or partially-written
    ``PARITY_DIFF_DIR``/replay-bundle file surfaces as a clear failure
    instead of being silently treated as "no divergence"."""
