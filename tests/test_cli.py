"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestAnalyze:
    def test_analyze_prints_vtr_table(self, capsys):
        assert main(["analyze", "zookeeper"]) == 0
        out = capsys.readouterr().out
        assert "V_tr" in out
        assert "quorum-log" in out
        assert "state variables instrumented" in out

    def test_unknown_scenario_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", "netflix"])


class TestPaths:
    def test_paths_listed_per_request_type(self, capsys):
        assert main(["paths", "hedwig"]) == 0
        out = capsys.readouterr().out
        assert "pub_request: 2 static causal path(s)" in out
        assert "__client__" in out


class TestOverhead:
    def test_overhead_table(self, capsys):
        assert main(["overhead", "hedwig", "--rates", "0.1", "--duration", "30"]) == 0
        out = capsys.readouterr().out
        assert "DCA-10% mean" in out
        assert "hedwig" in out


class TestSimulate:
    def test_simulate_prints_metrics(self, capsys):
        assert main(
            ["simulate", "hedwig", "--manager", "ElasticRMI", "--duration", "20"]
        ) == 0
        out = capsys.readouterr().out
        assert "agility" in out
        assert "SLA violations" in out

    def test_unknown_manager_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "hedwig", "--manager", "Kubernetes"])


class TestMetrics:
    def test_metrics_prints_schema_versioned_snapshot(self, capsys):
        import json

        assert main(["metrics", "hedwig", "--duration", "10"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        keys = payload["metrics"]
        for family in ("graphstore.", "tracker.", "profiler.", "autoscale.", "sim."):
            assert any(k.startswith(family) for k in keys), f"missing {family} metrics"
        assert keys["sim.intervals"]["value"] == 10


class TestTable:
    def test_table_runs_all_managers(self, capsys):
        assert main(["table", "hedwig", "--duration", "12"]) == 0
        out = capsys.readouterr().out
        assert "CloudWatch" in out
        assert "DCA-10%" in out
        assert "Fig. 8" in out


class TestStoreBackendOptions:
    def test_simulate_on_log_backend_leaves_a_journal(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(
            [
                "simulate", "hedwig", "--manager", "DCA-10%", "--duration", "10",
                "--store-backend", "log", "--store-dir", str(store),
            ]
        ) == 0
        assert "agility" in capsys.readouterr().out
        segments = list(store.glob("dca-10/segment-*.log"))
        assert segments, "log backend produced no segments"

    def test_log_backend_without_store_dir_is_an_error(self, capsys):
        assert main(
            [
                "simulate", "hedwig", "--manager", "DCA-10%", "--duration", "10",
                "--store-backend", "log",
            ]
        ) == 1
        assert "store_dir" in capsys.readouterr().err

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "hedwig", "--store-backend", "titan"])


class TestEntryPoint:
    def test_module_is_invocable(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "paths", "marketcetera"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0
        assert "fix_request" in proc.stdout


class TestReport:
    def test_report_written_to_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(["report", "hedwig", "--duration", "12", "-o", str(out)]) == 0
        text = out.read_text()
        assert "Fig. 5" in text
        assert "Fig. 8" in text
        assert "SLA violations" in text
        assert "CloudWatch" in text
