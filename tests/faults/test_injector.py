"""Unit tests for the seeded fault injector."""

from repro.faults import FaultInjector, FaultPlan, NodeCrash
from repro.telemetry import MetricsRegistry


def _drop_decisions(injector, n=200):
    return [injector.should_drop_message() for _ in range(n)]


class TestDeterminism:
    def test_same_plan_same_decisions(self):
        plan = FaultPlan(seed=4, message_drop_rate=0.3)
        a = FaultInjector(plan, registry=MetricsRegistry())
        b = FaultInjector(plan, registry=MetricsRegistry())
        assert _drop_decisions(a) == _drop_decisions(b)

    def test_different_seeds_differ(self):
        a = FaultInjector(FaultPlan(seed=1, message_drop_rate=0.5), registry=MetricsRegistry())
        b = FaultInjector(FaultPlan(seed=2, message_drop_rate=0.5), registry=MetricsRegistry())
        assert _drop_decisions(a) != _drop_decisions(b)

    def test_channels_are_independent(self):
        # Enabling the duplicate channel must not perturb the drop stream.
        base = FaultInjector(
            FaultPlan(seed=4, message_drop_rate=0.3), registry=MetricsRegistry()
        )
        mixed = FaultInjector(
            FaultPlan(seed=4, message_drop_rate=0.3, message_duplicate_rate=0.5),
            registry=MetricsRegistry(),
        )
        decisions = []
        for _ in range(200):
            decisions.append(mixed.should_drop_message())
            mixed.should_duplicate_message()
        assert decisions == _drop_decisions(base)


class TestActiveWindow:
    def test_nothing_fires_outside_window(self):
        plan = FaultPlan(
            seed=0,
            message_drop_rate=1.0,
            store_write_failure_rate=1.0,
            start_minute=10.0,
            end_minute=20.0,
        )
        inj = FaultInjector(plan, registry=MetricsRegistry())
        inj.advance_to(5.0)
        assert not inj.should_drop_message()
        assert not inj.should_fail_store_write()
        inj.advance_to(10.0)
        assert inj.should_drop_message()
        assert inj.should_fail_store_write()
        inj.advance_to(20.0)
        assert not inj.should_drop_message()

    def test_disabled_channel_never_fires(self):
        inj = FaultInjector(FaultPlan(seed=0), registry=MetricsRegistry())
        assert not any(_drop_decisions(inj))
        assert inj.message_delay() is None


class TestTelemetry:
    def test_fired_faults_are_counted(self):
        reg = MetricsRegistry()
        inj = FaultInjector(FaultPlan(seed=0, message_drop_rate=1.0), registry=reg)
        for _ in range(7):
            inj.should_drop_message()
        assert reg.get("faults.messages_dropped").value == 7

    def test_delay_returns_plan_minutes(self):
        inj = FaultInjector(
            FaultPlan(seed=0, message_delay_rate=1.0, message_delay_minutes=2.5),
            registry=MetricsRegistry(),
        )
        assert inj.message_delay() == 2.5


class TestCrashSchedule:
    def test_schedule_consumed_monotonically(self):
        plan = FaultPlan(
            node_crashes=(
                NodeCrash(minute=5.0, component="a", count=2),
                NodeCrash(minute=5.0, component="b", count=1),
                NodeCrash(minute=9.0, component="a", count=1),
            )
        )
        reg = MetricsRegistry()
        inj = FaultInjector(plan, registry=reg)
        assert inj.node_crashes_due(4.0) == {}
        assert inj.node_crashes_due(5.0) == {"a": 2, "b": 1}
        assert inj.node_crashes_due(5.0) == {}  # each crash fires once
        assert inj.node_crashes_due(30.0) == {"a": 1}
        assert reg.get("faults.node_crashes").value == 4

    def test_schedule_ignores_active_window(self):
        plan = FaultPlan(
            start_minute=100.0,
            end_minute=200.0,
            node_crashes=(NodeCrash(minute=5.0, component="a"),),
        )
        inj = FaultInjector(plan, registry=MetricsRegistry())
        inj.advance_to(5.0)
        assert inj.node_crashes_due(5.0) == {"a": 1}
