"""The half-open fault-window contract, pinned at exact boundary minutes.

``FaultPlan.active_at`` is ``[start_minute, end_minute)``: a roll at
exactly ``end_minute`` is outside the outage.  The unit tests pin the
predicate itself; the parity tests pin the part that actually bit
earlier: both engines must agree on *which rolls* happen inside the
window when its edges land exactly on interval boundaries — for any
``interval_minutes``, since the event engine snaps fault-roll
timestamps up to tick boundaries.
"""

import math

import pytest

from repro.faults.plan import FaultPlan, NodeCrash
from repro.sim.parity import run_engine_parity


def _assert_ok(report):
    assert report.ok, "\n".join(
        [report.summary()]
        + report.record_diffs
        + report.snapshot_diffs
        + report.state_diffs
    )


class TestActiveAtSemantics:
    def test_half_open_at_exact_boundaries(self):
        plan = FaultPlan(message_drop_rate=0.5, start_minute=4.0, end_minute=16.0)
        assert plan.active_at(4.0), "start minute is inside (closed left edge)"
        assert not plan.active_at(16.0), "end minute is outside (open right edge)"
        assert plan.active_at(15.999999)
        assert not plan.active_at(16.000001)
        assert not plan.active_at(3.999999)

    def test_default_window_is_always_active(self):
        plan = FaultPlan(message_drop_rate=0.1)
        assert plan.active_at(0.0)
        assert plan.active_at(1e9)
        assert plan.end_minute == math.inf

    def test_zero_length_window_rejected(self):
        from repro.errors import FaultPlanError

        with pytest.raises(FaultPlanError):
            FaultPlan(start_minute=5.0, end_minute=5.0)

    def test_crashes_ignore_the_window(self):
        """Scheduled crashes are events, not rates: the window is not consulted."""
        plan = FaultPlan(
            start_minute=4.0,
            end_minute=16.0,
            node_crashes=(NodeCrash(minute=20.0, component="*", count=1),),
        )
        assert not plan.active_at(20.0)
        assert plan.node_crashes[0].minute == 20.0


class TestEngineBoundaryAgreement:
    """Both engines must make identical rolls when window edges hit ticks."""

    @pytest.mark.parametrize("seed", (7, 23, 41))
    def test_end_on_default_interval_boundary(self, seed):
        report = run_engine_parity(
            "hedwig",
            "DCA-10%",
            duration_minutes=24,
            seed=seed,
            fault_plan=FaultPlan(
                seed=seed,
                message_drop_rate=0.25,
                message_duplicate_rate=0.10,
                start_minute=4.0,
                end_minute=16.0,
            ),
            path_timeout_minutes=5.0,
        )
        _assert_ok(report)

    def test_end_on_coarse_interval_boundary(self):
        """interval=2.0 with the window's edges on even minutes."""
        report = run_engine_parity(
            "hedwig",
            "DCA-10%",
            duration_minutes=24,
            fault_plan=FaultPlan(
                seed=7,
                message_drop_rate=0.30,
                store_write_failure_rate=0.20,
                start_minute=4.0,
                end_minute=16.0,
            ),
            path_timeout_minutes=5.0,
            interval_minutes=2.0,
        )
        _assert_ok(report)

    def test_fractional_interval_boundary(self):
        """interval=1.5: edges at 4.5 and 15.0 are exact tick multiples."""
        report = run_engine_parity(
            "hedwig",
            "DCA-10%",
            duration_minutes=24,
            fault_plan=FaultPlan(
                seed=11,
                message_drop_rate=0.20,
                message_delay_rate=0.15,
                message_delay_minutes=3.0,
                start_minute=4.5,
                end_minute=15.0,
            ),
            path_timeout_minutes=5.0,
            interval_minutes=1.5,
        )
        _assert_ok(report)

    def test_window_ending_at_run_end(self):
        """end_minute == duration: the last tick's rolls are all outside."""
        report = run_engine_parity(
            "hedwig",
            "DCA-10%",
            duration_minutes=20,
            fault_plan=FaultPlan(
                seed=7,
                message_drop_rate=0.25,
                start_minute=0.0,
                end_minute=20.0,
            ),
            path_timeout_minutes=5.0,
        )
        _assert_ok(report)

    def test_crash_at_window_end_boundary(self):
        """A crash scheduled exactly at end_minute still fires (no window)."""
        report = run_engine_parity(
            "zookeeper",
            "DCA-10%",
            duration_minutes=24,
            fault_plan=FaultPlan(
                seed=7,
                message_drop_rate=0.15,
                start_minute=4.0,
                end_minute=12.0,
                node_crashes=(NodeCrash(minute=12.0, component="*", count=1),),
            ),
            path_timeout_minutes=5.0,
        )
        _assert_ok(report)
