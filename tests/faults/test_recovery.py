"""Recovery-mechanism tests: what the system does when faults fire.

Covers the four mechanisms plus the end-to-end acceptance scenario:
retry + dead-letter on store writes, path-timeout abandonment, delayed
delivery, dangling-edge repair, and the staleness fallback of the DCA
manager — all asserted through the same telemetry counters operators
would read.
"""

import pytest

from repro.core.causal_graph import DirectCausalityTracker
from repro.core.dca import analyze_application
from repro.core.elasticity import ProfileStalenessDetector, StalenessPolicy
from repro.core.paths import enumerate_causal_paths
from repro.errors import TransientStoreError
from repro.faults import FaultInjector, FaultPlan
from repro.graphstore.store import GraphStore
from repro.lang.message import MessageUid
from repro.profiling.profiler import CausalPathProfiler
from repro.sim.runtime import ApplicationRuntime
from repro.telemetry import MetricsRegistry
from repro.workloads.generator import RequestClass

REQUEST = RequestClass("go", "start", {"x": 5})


def _pipeline(pipeline_app, plan=None, path_timeout=None, **tracker_kwargs):
    """Runtime + profiler + tracker wired over one fresh registry."""
    registry = MetricsRegistry()
    dca = analyze_application(pipeline_app)
    runtime = ApplicationRuntime(pipeline_app, dca_result=dca)
    profiler = CausalPathProfiler(enumerate_causal_paths(pipeline_app), registry=registry)
    injector = FaultInjector(plan, registry=registry) if plan is not None else None
    tracker = DirectCausalityTracker(
        profiler,
        store=GraphStore(registry=registry, fault_injector=injector),
        registry=registry,
        fault_injector=injector,
        path_timeout_minutes=path_timeout,
        **tracker_kwargs,
    )
    return runtime, profiler, tracker, registry


class TestRetryDeadLetter:
    def test_transient_failures_absorbed_by_retry(self, pipeline_app):
        # ~30% failure per attempt: with 3 retries the chance a message
        # exhausts all 4 attempts is under 1%, so (almost) every message
        # lands and every path completes.
        plan = FaultPlan(seed=1, store_write_failure_rate=0.30)
        runtime, _, tracker, registry = _pipeline(pipeline_app, plan)
        for _ in range(25):
            trace = runtime.execute_request(REQUEST, sampled=True)
            tracker.observe_all(trace.messages)
        assert registry.get("tracker.store_write_retries").value > 0
        assert registry.get("tracker.retry_backoff_ms").value > 0
        assert tracker.completed_paths + registry.get("tracker.dead_letters").value > 0
        assert tracker.completed_paths >= 20

    def test_exhausted_retries_dead_letter_without_crashing(self, pipeline_app):
        plan = FaultPlan(seed=1, store_write_failure_rate=1.0)
        runtime, profiler, tracker, registry = _pipeline(pipeline_app, plan)
        trace = runtime.execute_request(REQUEST, sampled=True)
        tracker.observe_all(trace.messages)  # must not raise
        assert registry.get("tracker.dead_letters").value == len(trace.messages)
        # max_write_retries failed retries per message before dead-lettering
        assert registry.get("tracker.store_write_retries").value == 3 * len(trace.messages)
        assert tracker.completed_paths == 0
        assert tracker.store.node_count() == 0
        assert sum(profiler.counts(0.0).values()) == 0

    def test_non_transient_store_errors_propagate(self, pipeline_app):
        runtime, _, tracker, _ = _pipeline(pipeline_app)
        with pytest.raises(TransientStoreError):
            # Direct injection: retry wraps only the store write; a raise
            # from anywhere else is a programming error and must escape.
            raise TransientStoreError("synthetic")


class TestPathTimeoutAbandonment:
    def test_partial_path_abandoned_and_reclaimed(self, pipeline_app):
        runtime, _, tracker, registry = _pipeline(pipeline_app, path_timeout=5.0)
        trace = runtime.execute_request(REQUEST, sampled=True)
        partial = [m for m in trace.messages if m.dest != "__client__"]
        tracker.advance_to(0.0)
        tracker.observe_all(partial)
        assert tracker.store.node_count() == len(partial)
        tracker.advance_to(4.0)  # within the timeout: still pending
        assert registry.get("tracker.paths_abandoned").value == 0
        tracker.advance_to(6.0)
        assert registry.get("tracker.paths_abandoned").value == 1
        assert registry.get("tracker.abandoned_nodes").value == len(partial)
        assert tracker.store.node_count() == 0

    def test_completed_paths_not_abandoned(self, pipeline_app):
        runtime, _, tracker, registry = _pipeline(pipeline_app, path_timeout=5.0)
        tracker.advance_to(0.0)
        trace = runtime.execute_request(REQUEST, sampled=True)
        tracker.observe_all(trace.messages)
        assert tracker.completed_paths == 1
        tracker.advance_to(100.0)
        assert registry.get("tracker.paths_abandoned").value == 0

    def test_orphans_of_dropped_root_are_reclaimed(self, pipeline_app):
        # The root message is lost: its descendants carry root_uid but
        # nothing connects them, so edge-following eviction cannot reach
        # them — only abandon_root's index scan can.
        runtime, _, tracker, registry = _pipeline(pipeline_app, path_timeout=5.0)
        trace = runtime.execute_request(REQUEST, sampled=True)
        root = trace.messages[0]
        assert root.root_uid is None  # first message is the external request
        orphans = [
            m for m in trace.messages if m.uid != root.uid and m.dest != "__client__"
        ]
        tracker.advance_to(0.0)
        tracker.observe_all(orphans)
        tracker.advance_to(10.0)
        assert registry.get("tracker.paths_abandoned").value == 1
        assert tracker.store.node_count() == 0


class TestDelayedDelivery:
    def test_delayed_messages_complete_late(self, pipeline_app):
        plan = FaultPlan(seed=0, message_delay_rate=1.0, message_delay_minutes=2.0)
        runtime, profiler, tracker, registry = _pipeline(pipeline_app, plan)
        tracker.advance_to(0.0)
        trace = runtime.execute_request(REQUEST, sampled=True)
        tracker.observe_all(trace.messages)
        assert tracker.completed_paths == 0  # everything held back
        tracker.advance_to(1.0)
        assert tracker.completed_paths == 0
        tracker.advance_to(2.0)
        assert registry.get("tracker.delayed_messages_delivered").value == len(trace.messages)
        assert tracker.completed_paths == 1
        # The completion is recorded at delivery time, not send time.
        assert sum(profiler.counts_between(2.0, 2.0).values()) == 1

    def test_delivery_does_not_reroll_delay(self, pipeline_app):
        # Rate 1.0 would delay forever if delivery re-rolled the channel.
        plan = FaultPlan(seed=0, message_delay_rate=1.0, message_delay_minutes=1.0)
        runtime, _, tracker, _ = _pipeline(pipeline_app, plan)
        trace = runtime.execute_request(REQUEST, sampled=True)
        tracker.advance_to(0.0)
        tracker.observe_all(trace.messages)
        tracker.advance_to(1.0)
        assert tracker.completed_paths == 1


class TestEdgeLossAndDuplication:
    def test_edge_loss_strips_causes_but_keeps_messages(self, pipeline_app):
        plan = FaultPlan(seed=0, edge_loss_rate=1.0)
        runtime, _, tracker, registry = _pipeline(pipeline_app, plan)
        trace = runtime.execute_request(REQUEST, sampled=True)
        tracker.observe_all(trace.messages)  # must not raise
        with_causes = sum(1 for m in trace.messages if m.cause_uids)
        assert registry.get("faults.edges_lost").value == with_causes
        assert tracker.store.edge_count == 0

    def test_duplicates_do_not_double_count_paths(self, pipeline_app):
        plan = FaultPlan(seed=0, message_duplicate_rate=1.0)
        runtime, profiler, tracker, registry = _pipeline(pipeline_app, plan)
        trace = runtime.execute_request(REQUEST, sampled=True)
        tracker.observe_all(trace.messages)
        assert registry.get("faults.messages_duplicated").value == len(trace.messages)
        # Same uid stored twice is idempotent at the path-count level.
        assert sum(profiler.counts(0.0).values()) == 1


class TestProfilerFlushLoss:
    def test_lost_flush_counted_and_path_still_evicted(self, pipeline_app):
        plan = FaultPlan(seed=0, profiler_flush_loss_rate=1.0)
        runtime, profiler, tracker, registry = _pipeline(pipeline_app, plan)
        trace = runtime.execute_request(REQUEST, sampled=True)
        tracker.observe_all(trace.messages)
        assert registry.get("tracker.profiler_records_lost").value == 1
        assert sum(profiler.counts(0.0).values()) == 0  # count never landed
        assert tracker.store.node_count() == 0  # but memory was reclaimed


class TestDanglingEdgeRepair:
    def _store_with_graph(self):
        registry = MetricsRegistry()
        store = GraphStore(registry=registry)
        from repro.lang.message import Message, UidFactory

        uids = UidFactory("host", 1)
        root_uid = uids.next_uid()
        store.add_message(Message(root_uid, "start", "__client__", "A"))
        return store, registry, uids, root_uid

    def test_repair_restores_fast_eviction(self):
        store, registry, uids, root_uid = self._store_with_graph()
        ghost = uids.next_uid()
        store.add_edge(root_uid, ghost)  # effect node never arrives
        assert store.repair_dangling_edges() == 1
        assert registry.get("graphstore.dangling_edges_repaired").value == 1
        assert store.successors(root_uid) == set()
        # Second sweep is a no-op.
        assert store.repair_dangling_edges() == 0

    def test_arrived_node_not_treated_as_ghost(self):
        store, registry, uids, root_uid = self._store_with_graph()
        from repro.lang.message import Message

        late = uids.next_uid()
        store.add_edge(root_uid, late)
        store.add_message(
            Message(late, "mid", "A", "B", cause_uids=frozenset([root_uid]), root_uid=root_uid)
        )
        assert store.repair_dangling_edges() == 0
        assert late in store.successors(root_uid)


class TestStalenessDetector:
    def _profiler(self):
        registry = MetricsRegistry()
        from repro.core.paths import PathSignature

        sig = PathSignature("go", (("__client__", "start", "A"),))
        profiler = CausalPathProfiler({"go": [sig]}, registry=registry)
        return profiler, sig, registry

    def test_engages_after_hysteresis_and_recovers(self):
        profiler, sig, registry = self._profiler()
        policy = StalenessPolicy(
            min_recent_samples=5, recent_horizon_minutes=3.0,
            stale_after_intervals=2, fresh_after_intervals=2,
        )
        detector = ProfileStalenessDetector(profiler, policy)
        for minute in range(5):
            profiler.record(sig, float(minute), count=10)
            assert detector.update(float(minute)) is False
        # Outage: no samples for a stretch.
        assert detector.update(10.0) is False  # first stale interval
        assert detector.update(11.0) is True   # hysteresis satisfied
        assert registry.get("elasticity.fallback_engagements").value == 1
        assert registry.get("elasticity.fallback_active").value == 1.0
        # Recovery: samples flow again.
        profiler.record(sig, 12.0, count=10)
        assert detector.update(12.0) is True   # first fresh interval
        profiler.record(sig, 13.0, count=10)
        assert detector.update(13.0) is False  # released
        assert registry.get("elasticity.fallback_recoveries").value == 1
        assert registry.get("elasticity.fallback_active").value == 0.0

    def test_single_stale_interval_does_not_flap(self):
        profiler, sig, _ = self._profiler()
        policy = StalenessPolicy(min_recent_samples=5, recent_horizon_minutes=3.0)
        detector = ProfileStalenessDetector(profiler, policy)
        profiler.record(sig, 0.0, count=10)
        assert detector.update(0.0) is False
        assert detector.update(10.0) is False  # one bad interval: hold
        profiler.record(sig, 11.0, count=10)
        assert detector.update(11.0) is False

    def test_max_record_age_triggers_without_sparse_window(self):
        profiler, sig, _ = self._profiler()
        policy = StalenessPolicy(
            min_recent_samples=1,
            recent_horizon_minutes=60.0,
            max_record_age_minutes=5.0,
            stale_after_intervals=1,
        )
        detector = ProfileStalenessDetector(profiler, policy)
        profiler.record(sig, 0.0, count=100)
        assert detector.update(1.0) is False
        # Window still holds plenty of counts, but the last record is old.
        assert detector.update(10.0) is True
