"""End-to-end fault-scenario tests (the ISSUE 3 acceptance criteria).

Each test drives a full (short) simulation through ``build_simulator``
with a seeded fault plan and asserts the recovery story through the same
telemetry counters the ``repro faults`` CLI prints: (a) store write
failures are retried and dead-lettered without crashing the tracker,
(b) timed-out partial paths are abandoned and counted instead of
accumulating, (c) the DCA manager falls back to regression/utilisation
sizing under profile staleness and re-engages after recovery — and the
whole thing is bit-identical across repeated runs of the same seed.
"""

import pytest

from repro.apps.catalog import load_scenario
from repro.core.elasticity import DCAManagerConfig, StalenessPolicy
from repro.evalx.experiment import ExperimentConfig, build_simulator
from repro.faults import FAULT_SCENARIOS, build_fault_plan
from repro.telemetry import MetricsRegistry


def _run_scenario(fault, seed=7, duration=40, manager="DCA-10%", app="hedwig"):
    scenario = load_scenario(app)
    registry = MetricsRegistry()
    manager_config = DCAManagerConfig(sampling_rate=0.10, staleness=StalenessPolicy())
    simulator = build_simulator(
        scenario,
        manager,
        ExperimentConfig(duration_minutes=duration, seed=seed),
        registry=registry,
        fault_plan=build_fault_plan(fault, seed=seed),
        path_timeout_minutes=5.0,
        manager_config=manager_config,
    )
    result = simulator.run()
    return result, registry, simulator


def _counter_values(registry):
    """Deterministic slice of a snapshot: counters + gauges only (timer
    histograms measure wall-clock seconds and legitimately vary)."""
    snap = registry.snapshot()["metrics"]
    return {
        key: entry["value"]
        for key, entry in snap.items()
        if entry["type"] in ("counter", "gauge")
    }


class TestStoreBrownout:
    def test_writes_retried_and_dead_lettered_without_crash(self):
        result, registry, _ = _run_scenario("store-brownout")
        assert registry.get("faults.store_write_failures").value > 0
        assert registry.get("tracker.store_write_retries").value > 0
        # Retries absorb most failures; the remainder dead-letters and
        # the run still completes end to end.
        assert registry.get("tracker.dead_letters").value >= 0
        assert registry.get("tracker.paths_completed").value > 0
        assert result.sla_violation_percent() < 100.0


class TestLossyNetwork:
    def test_partial_paths_abandoned_not_accumulated(self):
        _, registry, simulator = _run_scenario("lossy-network")
        assert registry.get("faults.messages_dropped").value > 0
        assert registry.get("tracker.paths_abandoned").value > 0
        assert registry.get("tracker.abandoned_nodes").value > 0
        # The store must not retain the partial graphs of lost paths:
        # everything left is younger than the abandonment timeout.
        assert simulator.dca.tracker.store.node_count() < 200

    def test_delayed_messages_eventually_delivered(self):
        _, registry, _ = _run_scenario("lossy-network")
        delayed = registry.get("faults.messages_delayed").value
        delivered = registry.get("tracker.delayed_messages_delivered").value
        assert delayed > 0
        # Everything delayed inside the run is delivered by run end
        # (delays are 2 minutes; the fault window closes 15 min early).
        assert delivered == delayed


class TestProfileOutageFallback:
    def test_fallback_engages_and_recovers(self):
        _, registry, _ = _run_scenario("profile-outage")
        assert registry.get("faults.messages_dropped").value > 0
        assert registry.get("elasticity.stale_intervals").value > 0
        assert registry.get("elasticity.fallback_engagements").value >= 1
        # The outage ends 12 minutes before the run does: the detector
        # must have released the fallback by then.
        assert registry.get("elasticity.fallback_recoveries").value >= 1
        assert registry.get("elasticity.fallback_active").value == 0.0

    def test_engagement_is_bounded_by_hysteresis(self):
        # stale_after_intervals=2 means the manager switches within two
        # intervals of the window going sparse — it must not take the
        # whole outage to notice, nor flap once per stale interval.
        _, registry, _ = _run_scenario("profile-outage")
        engagements = registry.get("elasticity.fallback_engagements").value
        assert 1 <= engagements <= 3


class TestNodeChurn:
    def test_scheduled_crashes_fire_once_each(self):
        _, registry, simulator = _run_scenario("node-churn")
        # 3 schedule entries with counts 2/1/2 over every component group.
        assert registry.get("faults.node_crashes").value == 5
        groups = len(simulator.cluster.groups)
        assert simulator.nodes_failed_total <= 5 * groups
        assert simulator.nodes_failed_total > 0


class TestDeterminism:
    @pytest.mark.parametrize("fault", sorted(FAULT_SCENARIOS))
    def test_identical_counters_across_repeated_runs(self, fault):
        _, first, _ = _run_scenario(fault)
        _, second, _ = _run_scenario(fault)
        assert _counter_values(first) == _counter_values(second)

    def test_different_seed_changes_fault_stream(self):
        _, a, _ = _run_scenario("chaos", seed=7)
        _, b, _ = _run_scenario("chaos", seed=8)
        assert _counter_values(a) != _counter_values(b)


class TestBaselineManagersUnderFaults:
    def test_baseline_sees_only_node_crashes(self):
        # Managers without a DCA pipeline have no tracker/store to
        # disturb; the injector still drives their crash schedule.
        scenario = load_scenario("hedwig")
        registry = MetricsRegistry()
        simulator = build_simulator(
            scenario,
            "CloudWatch",
            ExperimentConfig(duration_minutes=30, seed=7),
            registry=registry,
            fault_plan=build_fault_plan("node-churn", seed=7),
        )
        simulator.run()
        assert registry.get("faults.node_crashes").value == 5
        assert simulator.nodes_failed_total > 0
        assert registry.get("faults.messages_dropped") is None or (
            registry.get("faults.messages_dropped").value == 0
        )


class TestFaultFreePlanIsNeutral:
    def test_empty_plan_matches_no_plan(self):
        # A default FaultPlan must not perturb the run it is attached to:
        # the engine/tracker take the fault-aware paths but no channel
        # ever fires, so every path count matches the injector-free run.
        from repro.faults import FaultPlan

        scenario = load_scenario("hedwig")
        reg_plain = MetricsRegistry()
        build_simulator(
            scenario,
            "DCA-10%",
            ExperimentConfig(duration_minutes=20, seed=7),
            registry=reg_plain,
        ).run()
        reg_faulted = MetricsRegistry()
        build_simulator(
            scenario,
            "DCA-10%",
            ExperimentConfig(duration_minutes=20, seed=7),
            registry=reg_faulted,
            fault_plan=FaultPlan(seed=7),
        ).run()
        plain = _counter_values(reg_plain)
        faulted = {
            k: v
            for k, v in _counter_values(reg_faulted).items()
            if not k.startswith("faults.")
        }
        assert plain == faulted
