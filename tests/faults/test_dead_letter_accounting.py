"""Dead-letter/abandonment accounting: every lost uid counted exactly once.

Three rules, each with a unit test and all three pinned together by a
seeded sharded+batched integration run:

* **Duplicate suppression** — a retry-exhausted write whose uid an
  earlier duplicate copy already delivered (buffered or flushed) is
  redundant, not lost: it must not be dead-lettered a second time.
* **Purge on abandonment** — a parked dead letter whose root is
  abandoned is purged (replaying it would resurrect the root) and moves
  from the queue's depth to ``store.dead_letter_purged``, keeping the
  ledger exact: ``tracker.dead_letters == depth + dropped + purged``.
* **Late-message discard** — a message arriving for an already-abandoned
  root is discarded (``tracker.late_messages_discarded``), never
  re-admitted and never double-counted as abandoned.
"""

import pytest

from repro.graphstore.pipeline import BatchedWritePipeline, DeadLetterQueue
from repro.graphstore.store import GraphStore
from repro.lang.ir import EXTERNAL
from repro.lang.message import Message, MessageUid
from repro.telemetry import MetricsRegistry


def _msg(seq, root_seq=None):
    root = MessageUid("h", 9, root_seq) if root_seq is not None else None
    return Message(
        MessageUid("h", 9, seq),
        "m",
        EXTERNAL if root is None else "A",
        "B",
        root_uid=root,
    )


class _ScriptedInjector:
    """Fails store writes per a scripted sequence, then succeeds."""

    def __init__(self):
        self.script = []

    def fail_next(self, count):
        self.script.extend([True] * count)

    def should_fail_store_write(self):
        return self.script.pop(0) if self.script else False


class TestDeadLetterQueuePurge:
    def test_purge_removes_only_matching_roots(self):
        registry = MetricsRegistry()
        queue = DeadLetterQueue(registry=registry)
        kept = _msg(2, root_seq=1)
        doomed_a = _msg(4, root_seq=3)
        doomed_b = _msg(5, root_seq=3)
        for message in (kept, doomed_a, doomed_b):
            queue.append(message)
        purged = queue.purge_roots({MessageUid("h", 9, 3)})
        assert purged == [doomed_a, doomed_b]
        assert list(queue) == [kept]
        assert registry.get("store.dead_letter_purged").value == 2
        assert registry.get("store.dead_letter_depth").value == 1

    def test_rootless_message_matches_on_own_uid(self):
        """A parked external request is its own root."""
        registry = MetricsRegistry()
        queue = DeadLetterQueue(registry=registry)
        queue.append(_msg(1))
        assert len(queue.purge_roots({MessageUid("h", 9, 1)})) == 1
        assert len(queue) == 0

    def test_empty_roots_is_a_noop(self):
        registry = MetricsRegistry()
        queue = DeadLetterQueue(registry=registry)
        queue.append(_msg(2, root_seq=1))
        assert queue.purge_roots(set()) == []
        assert len(queue) == 1
        assert registry.get("store.dead_letter_purged").value == 0


class TestPipelineDuplicateSuppression:
    def _pipeline(self, registry, injector, batch_size=8):
        store = GraphStore(registry=registry)
        return BatchedWritePipeline(
            store,
            batch_size=batch_size,
            registry=registry,
            fault_injector=injector,
            max_write_retries=3,
        )

    def test_buffered_uid_is_suppressed_not_dead_lettered(self):
        registry = MetricsRegistry()
        injector = _ScriptedInjector()
        pipeline = self._pipeline(registry, injector)
        message = _msg(1)
        assert pipeline.submit(message) is True
        assert pipeline.buffered == 1
        # A duplicate copy of the same uid exhausts its retries...
        injector.fail_next(4)
        assert pipeline.submit(message) is True
        # ...and is suppressed: redundant, not lost.
        assert registry.get("tracker.dead_letters").value == 0
        assert (
            registry.get("tracker.duplicate_dead_letters_suppressed").value == 1
        )
        assert len(pipeline.dead_letters) == 0

    def test_flushed_uid_is_suppressed_via_store_lookup(self):
        registry = MetricsRegistry()
        injector = _ScriptedInjector()
        pipeline = self._pipeline(registry, injector, batch_size=1)
        message = _msg(1)
        pipeline.submit(message)  # batch_size=1: flushed into the store
        assert pipeline.buffered == 0
        injector.fail_next(4)
        assert pipeline.submit(message) is True
        assert registry.get("tracker.dead_letters").value == 0
        assert (
            registry.get("tracker.duplicate_dead_letters_suppressed").value == 1
        )

    def test_fresh_uid_still_dead_letters(self):
        registry = MetricsRegistry()
        injector = _ScriptedInjector()
        pipeline = self._pipeline(registry, injector)
        injector.fail_next(4)
        assert pipeline.submit(_msg(1)) is False
        assert registry.get("tracker.dead_letters").value == 1
        assert registry.get("tracker.duplicate_dead_letters_suppressed").value == 0
        assert len(pipeline.dead_letters) == 1

    def test_dead_letter_emits_tap_event(self):
        from repro.sim.tap import SimTap

        registry = MetricsRegistry()
        injector = _ScriptedInjector()
        pipeline = self._pipeline(registry, injector)
        tap = SimTap()
        pipeline.tap = tap
        injector.fail_next(4)
        message = _msg(2, root_seq=1)
        pipeline.submit(message)
        assert tap.counts == {"dead_letter": 1}
        event = tap.events[0]
        assert event.data["uid"] == repr(message.uid)
        assert event.data["root"] == repr(message.root_uid)


class TestShardedBatchedAccountingPinned:
    """Seeded integration run under ``--shards 4 --batch-size 32``.

    The exact counter values are pinned: any change to fault-roll order,
    suppression, purging, or late-discard behaviour shows up here as a
    diff, not as silent double-accounting.  Both engines must agree.
    """

    PINNED = {
        "tracker.dead_letters": 3,
        "store.dead_letter_depth": 1,
        "store.dead_letter_dropped": 0,
        "store.dead_letter_purged": 2,
        "tracker.duplicate_dead_letters_suppressed": 1,
        "tracker.paths_abandoned": 54,
        "tracker.late_messages_discarded": 25,
        "tracker.store_write_retries": 201,
    }

    def _run(self, engine):
        from repro.apps.catalog import load_scenario
        from repro.core.elasticity import DCAManagerConfig, StalenessPolicy
        from repro.evalx.experiment import (
            DCA_RATES,
            ExperimentConfig,
            build_simulator,
        )
        from repro.faults.plan import FaultPlan

        plan = FaultPlan(
            seed=7,
            store_write_failure_rate=0.30,
            message_drop_rate=0.10,
            message_duplicate_rate=0.15,
            message_delay_rate=0.20,
            message_delay_minutes=8.0,  # > path timeout: forces purges
            start_minute=4.0,
            end_minute=28.0,
        )
        registry = MetricsRegistry()
        config = ExperimentConfig(
            duration_minutes=40,
            seed=7,
            num_shards=4,
            write_batch_size=32,
            engine=engine,
        )
        simulator = build_simulator(
            load_scenario("hedwig"),
            "DCA-10%",
            config,
            registry=registry,
            fault_plan=plan,
            path_timeout_minutes=5.0,
            manager_config=DCAManagerConfig(
                sampling_rate=DCA_RATES["DCA-10%"], staleness=StalenessPolicy()
            ),
        )
        simulator.run()
        return {
            key: int(registry.get(key).value) if registry.get(key) else 0
            for key in self.PINNED
        }

    @pytest.mark.parametrize("engine", ("tick", "event"))
    def test_pinned_counters(self, engine):
        values = self._run(engine)
        assert values == self.PINNED

    def test_ledger_identity(self):
        """tracker.dead_letters == depth + dropped + purged, exactly."""
        values = self._run("tick")
        assert values["tracker.dead_letters"] == (
            values["store.dead_letter_depth"]
            + values["store.dead_letter_dropped"]
            + values["store.dead_letter_purged"]
        )
