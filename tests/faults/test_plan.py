"""Unit tests for fault plans and the scenario registry."""

import math

import pytest

from repro.errors import FaultPlanError
from repro.faults import FAULT_SCENARIOS, FaultPlan, NodeCrash, build_fault_plan


class TestFaultPlanValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(message_drop_rate=-0.1)
        with pytest.raises(FaultPlanError):
            FaultPlan(store_write_failure_rate=1.5)

    def test_delay_must_be_positive(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(message_delay_minutes=0.0)

    def test_window_must_be_ordered(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(start_minute=10.0, end_minute=10.0)
        with pytest.raises(FaultPlanError):
            FaultPlan(start_minute=-1.0)

    def test_defaults_are_fault_free_and_always_active(self):
        plan = FaultPlan()
        assert not plan.any_message_faults
        assert plan.active_at(0.0)
        assert plan.active_at(1e9)
        assert plan.end_minute == math.inf

    def test_active_window_is_half_open(self):
        plan = FaultPlan(start_minute=10.0, end_minute=20.0)
        assert not plan.active_at(9.99)
        assert plan.active_at(10.0)
        assert plan.active_at(19.99)
        assert not plan.active_at(20.0)

    def test_any_message_faults_ignores_store_and_profiler_channels(self):
        assert not FaultPlan(store_write_failure_rate=0.5).any_message_faults
        assert not FaultPlan(profiler_flush_loss_rate=0.5).any_message_faults
        assert FaultPlan(message_drop_rate=0.01).any_message_faults
        assert FaultPlan(edge_loss_rate=0.01).any_message_faults

    def test_crash_schedule_sorted_by_time(self):
        plan = FaultPlan(
            node_crashes=(
                NodeCrash(minute=20.0, component="b"),
                NodeCrash(minute=5.0, component="a"),
                NodeCrash(minute=20.0, component="a"),
            )
        )
        assert [(c.minute, c.component) for c in plan.node_crashes] == [
            (5.0, "a"),
            (20.0, "a"),
            (20.0, "b"),
        ]


class TestNodeCrashValidation:
    def test_bounds(self):
        with pytest.raises(FaultPlanError):
            NodeCrash(minute=-1.0, component="x")
        with pytest.raises(FaultPlanError):
            NodeCrash(minute=0.0, component="")
        with pytest.raises(FaultPlanError):
            NodeCrash(minute=0.0, component="x", count=0)

    def test_wildcard_component_allowed(self):
        assert NodeCrash(minute=1.0, component="*", count=2).component == "*"


class TestScenarios:
    def test_registry_covers_every_recovery_mechanism(self):
        assert {
            "store-brownout",
            "lossy-network",
            "profile-outage",
            "node-churn",
            "chaos",
        } <= set(FAULT_SCENARIOS)

    def test_build_fault_plan_threads_seed(self):
        assert build_fault_plan("chaos", seed=9).seed == 9

    def test_unknown_scenario_rejected(self):
        with pytest.raises(FaultPlanError):
            build_fault_plan("full-moon")

    def test_scenario_plans_are_valid_and_deterministic(self):
        for name in FAULT_SCENARIOS:
            assert build_fault_plan(name, seed=3) == build_fault_plan(name, seed=3)
