"""End-to-end integration tests across the whole stack.

These tie the reproduction's pieces together the way the paper's
evaluation does: DCA instrumentation → graph store → profiler → causal
probability → proportional scaling, measured with Agility and SLA
violations against the baselines.
"""

import pytest

from repro.apps import ecommerce
from repro.apps.catalog import load_scenario
from repro.core.dca import analyze_application
from repro.core.causal_graph import DirectCausalityTracker
from repro.core.paths import enumerate_causal_paths
from repro.core.probability import causal_probabilities, component_weights
from repro.evalx.experiment import ExperimentConfig, run_all_managers
from repro.profiling.profiler import CausalPathProfiler
from repro.sim.runtime import ApplicationRuntime


class TestPaperSectionIVCExample:
    """Reproduces the paper's causal-probability walkthrough: a 69/31
    purchase/simple mix yields P_c = 0.69/0.31 and the corresponding
    component weights."""

    def test_profile_converges_to_request_mix(self, shop_app):
        dca = analyze_application(shop_app)
        runtime = ApplicationRuntime(shop_app, dca_result=dca)
        profiler = CausalPathProfiler(enumerate_causal_paths(shop_app))
        tracker = DirectCausalityTracker(profiler)
        simple, purchase = ecommerce.request_classes()

        for i in range(100):
            cls = purchase if i % 100 < 69 else simple
            trace = runtime.execute_request(cls, sampled=True)
            tracker.observe_all(trace.messages)

        probs = causal_probabilities(profiler.counts(0.0))
        weights = component_weights(probs, profiler.known_paths())
        assert weights["web-frontend"] == pytest.approx(1.0)
        assert weights["payment"] == pytest.approx(0.69, abs=0.01)
        assert weights["customer-tracking"] == pytest.approx(0.31, abs=0.01)
        assert weights["price-db"] == pytest.approx(1.0)

    def test_all_observed_paths_statically_predicted(self, shop_app):
        dca = analyze_application(shop_app)
        runtime = ApplicationRuntime(shop_app, dca_result=dca)
        profiler = CausalPathProfiler(enumerate_causal_paths(shop_app))
        tracker = DirectCausalityTracker(profiler)
        for cls in ecommerce.request_classes():
            trace = runtime.execute_request(cls, sampled=True)
            tracker.observe_all(trace.messages)
        assert profiler.dynamic_registrations == 0


@pytest.mark.slow
class TestHeadlineOrderings:
    """Shortened (150-minute) versions of the paper's headline comparisons.

    The full 450-minute runs live in the benchmark harness; these assert
    the qualitative results the paper leads with.
    """

    @pytest.fixture(scope="class")
    def results(self):
        scenario = load_scenario("hedwig")
        return run_all_managers(
            scenario,
            managers=("CloudWatch", "ElasticRMI", "DCA-10%", "DCA-100%"),
            config=ExperimentConfig(duration_minutes=150),
        )

    def test_dca10_beats_cloudwatch_on_agility(self, results):
        assert results["DCA-10%"].agility() < results["CloudWatch"].agility()

    def test_dca10_beats_elasticrmi_on_agility(self, results):
        assert results["DCA-10%"].agility() < results["ElasticRMI"].agility()

    def test_dca100_overhead_shows_in_agility(self, results):
        assert results["DCA-100%"].agility() > results["DCA-10%"].agility()

    def test_dca100_agility_is_excess_dominated(self, results):
        from repro.evalx.agility import breakdown

        assert breakdown(results["DCA-100%"]).excess_dominated

    def test_dca_sla_below_cloudwatch(self, results):
        assert (
            results["DCA-10%"].sla_violation_percent()
            < results["CloudWatch"].sla_violation_percent()
        )

    def test_overheads_reported_only_for_dca(self, results):
        assert results["CloudWatch"].overhead_mean() == 0.0
        assert results["DCA-100%"].overhead_mean() > results["DCA-10%"].overhead_mean() > 0
