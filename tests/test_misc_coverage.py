"""Edge-case coverage for small public helpers across the package."""

import pytest

from repro.core.paths import signature_from_edges
from repro.graphstore.store import GraphStore
from repro.lang.builder import ComponentBuilder, call
from repro.lang.interpreter import Interpreter, ReplicaState
from repro.lang.ir import (
    Assign,
    BinOp,
    Const,
    EXTERNAL,
    Send,
    UnaryOp,
    Var,
    default_library,
    walk_exprs,
)
from repro.lang.message import Message, MessageUid, UidFactory


class TestWalkExprs:
    def test_walks_nested_expression_nodes(self):
        stmt = Assign("x", BinOp("+", Var("a"), UnaryOp("-", Const(3))))
        nodes = list(walk_exprs(stmt))
        assert any(isinstance(n, Var) and n.name == "a" for n in nodes)
        assert any(isinstance(n, UnaryOp) for n in nodes)
        assert any(isinstance(n, Const) and n.value == 3 for n in nodes)

    def test_walks_send_field_expressions(self):
        stmt = Send("m", "B", {"v": Var("z"), "w": Const(1)})
        nodes = list(walk_exprs(stmt))
        assert any(isinstance(n, Var) and n.name == "z" for n in nodes)


class TestGraphStoreIteration:
    def test_all_uids_covers_partitions(self):
        store = GraphStore(num_partitions=4)
        uids = [MessageUid("h", 1, i) for i in range(1, 21)]
        for uid in uids:
            store.add_message(Message(uid, "m", "A", "B"))
        assert sorted(store.all_uids()) == sorted(uids)


class TestSignatureHelpers:
    def test_length_counts_unique_edges(self):
        sig = signature_from_edges("go", [("A", "x", "B"), ("A", "x", "B"), ("B", "y", "C")])
        assert sig.length == 2


class TestInterpreterOperators:
    def _run(self, expr_builder, fields=None, state=None):
        cb = ComponentBuilder("X")
        for k, v in (state or {}).items():
            cb.state(k, v)
        cb.state("out", 0)
        with cb.on("go", "m") as h:
            h.assign("out", expr_builder())
        comp = cb.build()
        interp = Interpreter(comp, default_library())
        st = ReplicaState.from_component(comp)
        msg = Message(UidFactory("c", 0).next_uid(), "go", EXTERNAL, "X", fields or {})
        interp.handle(st, msg, UidFactory("h", 1))
        return st.values["out"]

    def test_floor_division(self):
        assert self._run(lambda: BinOp("//", Const(7), Const(2))) == 3

    def test_modulo(self):
        assert self._run(lambda: BinOp("%", Const(7), Const(3))) == 1

    def test_floor_division_by_zero(self):
        from repro.errors import InterpreterError

        with pytest.raises(InterpreterError):
            self._run(lambda: BinOp("//", Const(7), Const(0)))

    def test_modulo_by_zero(self):
        from repro.errors import InterpreterError

        with pytest.raises(InterpreterError):
            self._run(lambda: BinOp("%", Const(7), Const(0)))

    def test_min_max_binops(self):
        assert self._run(lambda: BinOp("min", Const(3), Const(9))) == 3
        assert self._run(lambda: BinOp("max", Const(3), Const(9))) == 9

    def test_not_operator(self):
        assert self._run(lambda: UnaryOp("not", Const(0))) is True

    def test_negation_of_non_number_rejected(self):
        from repro.errors import InterpreterError

        with pytest.raises(InterpreterError):
            self._run(lambda: UnaryOp("-", Const("text")))

    def test_comparison_chain(self):
        assert self._run(lambda: (Const(3) < Const(5)).and_(Const(5) >= Const(5))) is True

    def test_short_circuit_or(self):
        # Second operand would divide by zero; `or` must skip it.
        assert (
            self._run(lambda: (Const(1) > Const(0)).or_(Const(1) / Const(0) > Const(0)))
            is True
        )

    def test_library_failure_wrapped(self):
        from repro.errors import InterpreterError

        lib = default_library()
        lib.register("boom", lambda: 1 / 0)
        cb = ComponentBuilder("X").state("out", 0)
        with cb.on("go", "m") as h:
            h.assign("out", call("boom"))
        comp = cb.build()
        interp = Interpreter(comp, lib)
        st = ReplicaState.from_component(comp)
        msg = Message(UidFactory("c", 0).next_uid(), "go", EXTERNAL, "X", {})
        with pytest.raises(InterpreterError, match="boom"):
            interp.handle(st, msg, UidFactory("h", 1))
