"""Unit tests for the windowed sketch structures."""

import pytest

from repro.errors import ProfilingError
from repro.profiling.sketches import (
    ComponentActivitySummary,
    SpaceSavingTopK,
    TopKPathSummary,
    WindowedCountMinSketch,
)


class TestWindowedCountMinSketch:
    def test_estimate_never_underestimates(self):
        cms = WindowedCountMinSketch(60.0, width=64, depth=4)
        truth = {}
        for i in range(200):
            key = f"path-{i % 37}"
            cms.add(key, 1, float(i % 50))
            truth[key] = truth.get(key, 0) + 1
        for key, true_count in truth.items():
            assert cms.estimate(key) >= true_count

    def test_exact_when_no_collisions(self):
        cms = WindowedCountMinSketch(60.0, width=512, depth=4)
        cms.add("only-key", 5, 1.0)
        assert cms.estimate("only-key") == 5

    def test_window_ages_out(self):
        cms = WindowedCountMinSketch(60.0, width=64, depth=2)
        cms.add("k", 10, 0.0)
        assert cms.estimate("k") == 10
        cms.advance(61.0)  # horizon 1.0 > epoch 0
        assert cms.estimate("k") == 0
        assert cms.total == 0

    def test_horizon_epoch_kept(self):
        cms = WindowedCountMinSketch(60.0, width=64, depth=2)
        cms.add("k", 10, 0.0)
        cms.advance(60.0)  # horizon 0.0; epoch 0 not strictly older
        assert cms.estimate("k") == 10

    def test_estimate_between(self):
        cms = WindowedCountMinSketch(60.0, width=128, depth=4)
        cms.add("k", 3, 5.0)
        cms.add("k", 4, 10.0)
        assert cms.estimate_between("k", 5.0, 5.9) == 3
        assert cms.estimate_between("k", 0.0, 20.0) == 7
        assert cms.estimate_between("k", 6.0, 9.0) == 0

    def test_deterministic_across_instances(self):
        a = WindowedCountMinSketch(60.0, width=64, depth=4)
        b = WindowedCountMinSketch(60.0, width=64, depth=4)
        for i in range(100):
            a.add(f"k{i % 11}", 1, float(i % 30))
            b.add(f"k{i % 11}", 1, float(i % 30))
        for i in range(11):
            assert a.estimate(f"k{i}") == b.estimate(f"k{i}")

    def test_state_round_trip(self):
        cms = WindowedCountMinSketch(60.0, width=64, depth=3)
        for i in range(50):
            cms.add(f"k{i % 7}", 2, float(i))
        restored = WindowedCountMinSketch.from_state(cms.to_state(), 60.0)
        assert restored.total == cms.total
        for i in range(7):
            assert restored.estimate(f"k{i}") == cms.estimate(f"k{i}")

    def test_invalid_geometry(self):
        with pytest.raises(ProfilingError):
            WindowedCountMinSketch(60.0, width=4)
        with pytest.raises(ProfilingError):
            WindowedCountMinSketch(60.0, depth=0)
        with pytest.raises(ProfilingError):
            WindowedCountMinSketch(0.0)


class TestSpaceSavingTopK:
    def test_increment_only_monitored(self):
        ss = SpaceSavingTopK(4, 60.0)
        assert not ss.increment("k", 1, 0.0)
        ss.insert("k", 1, 0, 0.0)
        assert ss.increment("k", 2, 0.0)
        assert ss.get("k").total == 3

    def test_min_entry_deterministic_tiebreak(self):
        ss = SpaceSavingTopK(3, 60.0)
        ss.insert("b", 5, 0, 0.0)
        ss.insert("a", 5, 0, 0.0)
        ss.insert("c", 9, 0, 0.0)
        assert ss.min_entry().key == "a"

    def test_eviction_counts(self):
        ss = SpaceSavingTopK(2, 60.0)
        ss.insert("a", 1, 0, 0.0)
        ss.insert("b", 2, 0, 0.0)
        ss.evict(ss.min_entry().key)
        assert ss.evictions == 1
        assert ss.get("a") is None

    def test_window_pruning_touches_only_expired_epochs(self):
        ss = SpaceSavingTopK(4, 60.0)
        ss.insert("a", 10, 0, 0.0)
        ss.insert("b", 5, 0, 30.0)
        ss.advance(61.0)  # horizon 1: epoch 0 expires, epoch 30 stays
        assert ss.get("a").total == 0
        assert ss.get("b").total == 5

    def test_total_between(self):
        ss = SpaceSavingTopK(4, 60.0)
        ss.insert("a", 3, 0, 5.0)
        ss.increment("a", 4, 20.0)
        entry = ss.get("a")
        assert entry.total_between(0.0, 10.0) == 3
        assert entry.total_between(0.0, 30.0) == 7

    def test_state_round_trip(self):
        ss = SpaceSavingTopK(4, 60.0)
        ss.insert("a", 3, 1, 5.0)
        ss.increment("a", 4, 20.0)
        ss.evictions = 9
        restored = SpaceSavingTopK.from_state(ss.to_state(), 60.0)
        assert restored.evictions == 9
        assert restored.get("a").total == 7
        assert restored.get("a").error == 1
        # Pruning still works on the restored epoch rings.
        restored.advance(70.0)
        assert restored.get("a").total == 4


class TestTopKPathSummary:
    def test_heavy_hitter_is_monitored_exactly(self):
        summary = TopKPathSummary(k=4, window_minutes=60.0)
        for t in range(30):
            summary.record("hot", 10, float(t))
            summary.record(f"cold-{t}", 1, float(t))
        entry = summary.topk.get("hot")
        assert entry is not None
        # 'hot' was admitted on first sight (capacity available) and
        # counted exactly thereafter.
        assert entry.total == 300

    def test_counts_sum_pinned_to_exact_total(self):
        summary = TopKPathSummary(k=2, window_minutes=60.0)
        keys = [f"p{i}" for i in range(20)]
        for t, key in enumerate(keys):
            summary.record(key, 3, float(t % 10))
        out = summary.counts(keys, 10.0)
        assert sum(out.values()) == pytest.approx(summary.sample_total, abs=len(keys))

    def test_promotion_from_tail(self):
        summary = TopKPathSummary(k=2, window_minutes=60.0)
        summary.record("a", 1, 0.0)
        summary.record("b", 1, 0.0)
        for _ in range(50):
            summary.record("c", 1, 0.0)
        assert summary.topk.get("c") is not None
        assert summary.evictions >= 1

    def test_sample_total_between_is_exact(self):
        summary = TopKPathSummary(k=2, window_minutes=60.0)
        summary.record("a", 5, 5.0)
        summary.record("b", 7, 20.0)
        assert summary.sample_total_between(0.0, 10.0) == 5
        assert summary.sample_total_between(0.0, 30.0) == 12

    def test_state_round_trip(self):
        summary = TopKPathSummary(k=3, window_minutes=60.0)
        for t in range(40):
            summary.record(f"p{t % 9}", 1 + t % 3, float(t % 20))
        restored = TopKPathSummary.from_state(summary.to_state(), 60.0)
        assert restored.sample_total == summary.sample_total
        assert restored.evictions == summary.evictions
        keys = [f"p{i}" for i in range(9)]
        assert restored.counts(keys, 20.0) == summary.counts(keys, 20.0)


class TestComponentActivitySummary:
    def test_totals_and_weights(self):
        summary = ComponentActivitySummary(60.0)
        summary.record(("A", "B"), 3, 0.0)
        summary.record(("B",), 1, 1.0)
        totals = summary.totals(1.0)
        assert totals == {"A": 3, "B": 4}
        weights = summary.weights(1.0)
        assert weights["A"] == pytest.approx(3 / 4)
        assert weights["B"] == pytest.approx(1.0)

    def test_window_ages_out(self):
        summary = ComponentActivitySummary(60.0)
        summary.record(("A",), 5, 0.0)
        summary.record(("A",), 2, 40.0)
        assert summary.totals(61.0) == {"A": 2}
        assert summary.request_total == 2

    def test_totals_between(self):
        summary = ComponentActivitySummary(60.0)
        summary.record(("A",), 5, 0.0)
        summary.record(("A", "B"), 2, 40.0)
        assert summary.totals_between(0.0, 10.0) == {"A": 5}
        assert summary.sample_total_between(0.0, 50.0) == 7

    def test_state_round_trip(self):
        summary = ComponentActivitySummary(60.0)
        summary.record(("A", "B"), 3, 5.0)
        summary.record(("B", "C"), 2, 30.0)
        restored = ComponentActivitySummary.from_state(summary.to_state(), 60.0)
        assert restored.totals(30.0) == summary.totals(30.0)
        assert restored.request_total == summary.request_total
        restored.advance(70.0)
        assert restored.totals(70.0) == {"B": 2, "C": 2}
