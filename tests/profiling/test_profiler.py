"""Unit tests for the sliding-window causal-path profiler."""

import pytest

from repro.core.paths import signature_from_edges
from repro.errors import ProfilingError
from repro.lang.ir import CLIENT, EXTERNAL
from repro.profiling.profiler import CausalPathProfiler


def _sig(tag):
    return signature_from_edges(
        "go", [(EXTERNAL, "go", "A"), ("A", tag, "B"), ("B", "done", CLIENT)]
    )


@pytest.fixture()
def profiler():
    return CausalPathProfiler({"go": [_sig("x"), _sig("y")]}, window_minutes=60.0)


class TestSeeding:
    def test_static_paths_start_at_zero(self, profiler):
        counts = profiler.counts(0.0)
        assert len(counts) == 2
        assert all(c == 0 for c in counts.values())

    def test_invalid_window(self):
        with pytest.raises(ProfilingError):
            CausalPathProfiler({}, window_minutes=0)

    def test_paths_for_request(self, profiler):
        assert len(profiler.paths_for_request("go")) == 2
        assert profiler.paths_for_request("other") == []

    def test_paths_for_request_sorted_by_edges(self, profiler):
        sigs = profiler.paths_for_request("go")
        assert sigs == sorted(sigs, key=lambda s: s.edges)

    def test_dynamic_registration_appears_in_request_index(self, profiler):
        # The per-request-type index must be kept current by _register,
        # not just seeded at construction.
        dynamic = _sig("z")
        profiler.record(dynamic, 1.0)
        sigs = profiler.paths_for_request("go")
        assert len(sigs) == 3
        assert dynamic in sigs
        assert sigs == sorted(sigs, key=lambda s: s.edges)
        other = signature_from_edges(
            "new_rt", [(EXTERNAL, "new_rt", "A"), ("A", "done", CLIENT)]
        )
        profiler.record(other, 2.0)
        assert profiler.paths_for_request("new_rt") == [other]


class TestRecording:
    def test_record_increments(self, profiler):
        pid = profiler.record(_sig("x"), 5.0)
        assert profiler.counts(5.0)[pid] == 1

    def test_record_with_count(self, profiler):
        pid = profiler.record(_sig("x"), 5.0, count=10)
        assert profiler.counts(5.0)[pid] == 10

    def test_zero_count_rejected(self, profiler):
        with pytest.raises(ProfilingError):
            profiler.record(_sig("x"), 5.0, count=0)

    def test_unknown_signature_registered_dynamically(self, profiler):
        new_sig = _sig("z")
        profiler.record(new_sig, 1.0)
        assert profiler.dynamic_registrations == 1
        assert new_sig.path_id in profiler.known_paths()

    def test_static_signature_matches_without_dynamic_registration(self, profiler):
        profiler.record(_sig("x"), 1.0)
        assert profiler.dynamic_registrations == 0


class TestWindow:
    def test_counts_age_out(self, profiler):
        pid = profiler.record(_sig("x"), 0.0)
        assert profiler.counts(59.0)[pid] == 1
        assert profiler.counts(61.0)[pid] == 0

    def test_counts_between(self, profiler):
        pid_x = profiler.record(_sig("x"), 5.0)
        profiler.record(_sig("x"), 30.0)
        recent = profiler.counts_between(20.0, 40.0)
        assert recent[pid_x] == 1

    def test_counts_between_invalid_interval(self, profiler):
        with pytest.raises(ProfilingError):
            profiler.counts_between(10.0, 5.0)

    def test_bucket_accumulation_within_minute(self, profiler):
        pid = profiler.record(_sig("x"), 7.2)
        profiler.record(_sig("x"), 7.9)
        assert profiler.counts(8.0)[pid] == 2

    def test_snapshot_totals(self, profiler):
        profiler.record(_sig("x"), 1.0, count=3)
        profiler.record(_sig("y"), 1.0, count=2)
        snap = profiler.snapshot(1.0)
        assert snap.total == 5
        assert snap.window_minutes == 60.0


class TestWindowBoundary:
    """Pin the sliding-window boundary semantics.

    A bucket lying *exactly* on the horizon is inside the window: reads
    use ``horizon <= minute`` and ``_prune`` deletes only ``oldest <
    horizon``.  These inclusive bounds are load-bearing — the staleness
    detector's ``counts_between(now - horizon, now)`` read and the
    60-minute causal-probability window both assume a sample recorded
    exactly ``window_minutes`` ago still counts.
    """

    def test_bucket_exactly_at_horizon_is_counted(self, profiler):
        pid = profiler.record(_sig("x"), 0.0)
        # horizon = 60 - 60 = 0; bucket 0 satisfies horizon <= minute.
        assert profiler.counts(60.0)[pid] == 1

    def test_bucket_just_past_horizon_is_excluded(self, profiler):
        pid = profiler.record(_sig("x"), 0.0)
        assert profiler.counts(60.5)[pid] == 0

    def test_prune_keeps_bucket_at_horizon(self, profiler):
        pid = profiler.record(_sig("x"), 0.0)
        # Recording at minute 60 prunes with horizon 0; bucket 0 is not
        # strictly older (0 < 0 is false) and must survive.
        profiler.record(_sig("x"), 60.0)
        assert profiler.counts(60.0)[pid] == 2

    def test_prune_drops_bucket_strictly_past_horizon(self, profiler):
        pid = profiler.record(_sig("x"), 0.0)
        profiler.record(_sig("x"), 61.0)
        # horizon = 1; bucket 0 < 1 is gone from the backing store, so
        # even a read windowed far enough back cannot resurrect it.
        assert profiler.counts_between(0.0, 0.5)[pid] == 0
        assert profiler.counts(61.0)[pid] == 1

    def test_counts_between_bounds_are_inclusive(self, profiler):
        pid = profiler.record(_sig("x"), 10.0)
        profiler.record(_sig("x"), 20.0)
        assert profiler.counts_between(10.0, 20.0)[pid] == 2
        assert profiler.counts_between(10.5, 19.5)[pid] == 0


class TestPersistence:
    def test_round_trip_preserves_counts(self, profiler):
        profiler.record(_sig("x"), 5.0, count=7)
        profiler.record(_sig("y"), 12.0, count=3)
        restored = CausalPathProfiler.from_json(profiler.to_json())
        assert restored.counts(12.0) == profiler.counts(12.0)
        assert restored.window_minutes == profiler.window_minutes

    def test_round_trip_preserves_paths(self, profiler):
        restored = CausalPathProfiler.from_json(profiler.to_json())
        assert set(restored.known_paths()) == set(profiler.known_paths())

    def test_round_trip_preserves_dynamic_registrations(self, profiler):
        profiler.record(_sig("z"), 1.0)  # dynamic path
        restored = CausalPathProfiler.from_json(profiler.to_json())
        assert restored.dynamic_registrations == 1
        assert _sig("z").path_id in restored.known_paths()

    def test_restored_profiler_keeps_recording(self, profiler):
        pid = profiler.record(_sig("x"), 5.0)
        restored = CausalPathProfiler.from_json(profiler.to_json())
        restored.record(_sig("x"), 6.0)
        assert restored.counts(6.0)[pid] == 2

    def test_round_trip_preserves_last_record_minutes(self, profiler):
        # A restored checkpoint must not reset staleness detection: the
        # detector's max_record_age check reads last_record_minutes.
        profiler.record(_sig("x"), 37.5)
        restored = CausalPathProfiler.from_json(profiler.to_json())
        assert restored.last_record_minutes == 37.5

    def test_round_trip_last_record_none(self, profiler):
        restored = CausalPathProfiler.from_json(profiler.to_json())
        assert restored.last_record_minutes is None
