"""Mergeable-sketch property tests (the parallel runner's foundation).

The parallel experiment runner splits one record stream over N workers,
each feeding its own sketch, and merges the per-worker summaries on the
way back.  These tests pin the contract that makes that sound:

* count-min merge is *exact* (linearity — cell-wise table addition of
  same-geometry sketches equals the sketch of the concatenated stream);
* the merged ``topk`` tier stays within the documented
  :data:`~repro.profiling.sketches.HOT_PATH_PROBABILITY_EPSILON` of
  both the single-sketch run and the exact ground truth, across 25
  seeds of Zipf and flash-crowd traffic;
* :meth:`~repro.profiling.profiler.CausalPathProfiler.merge` composes
  in every precision mode (exact buckets bit-identical to a serial
  union) and refuses mismatched modes/windows/geometry.
"""

import random

import pytest

from repro.core.paths import PathSignature
from repro.errors import ProfilingError
from repro.profiling.profiler import CausalPathProfiler
from repro.profiling.sketches import (
    HOT_PATH_PROBABILITY_EPSILON,
    ComponentActivitySummary,
    SpaceSavingTopK,
    TopKPathSummary,
    WindowedCountMinSketch,
)
from repro.telemetry import MetricsRegistry
from repro.workloads.patterns import zipf_weights

SEEDS = range(25)
WINDOW = 60.0
NUM_KEYS = 300
NUM_WORKERS = 4
STREAM_LEN = 8000


def _keys():
    return [f"path-{i:03d}" for i in range(NUM_KEYS)]


def _zipf_stream(seed):
    """(key, time) pairs with Zipf-distributed keys over 120 minutes."""
    rng = random.Random(seed)
    keys = _keys()
    weights = zipf_weights(keys, exponent=1.1)
    population = list(weights)
    cum_weights = []
    acc = 0.0
    for key in population:
        acc += weights[key]
        cum_weights.append(acc)
    times = sorted(rng.uniform(0.0, 120.0) for _ in range(STREAM_LEN))
    picks = rng.choices(population, cum_weights=cum_weights, k=STREAM_LEN)
    return list(zip(picks, times))


def _flash_crowd_stream(seed):
    """Zipf background with one tail key taking 75% of mid-run traffic."""
    rng = random.Random(seed)
    keys = _keys()
    hot = keys[-1]  # coldest background key becomes the crowd target
    weights = zipf_weights(keys, exponent=1.1)
    population = list(weights)
    weight_list = [weights[k] for k in population]
    stream = []
    times = sorted(rng.uniform(0.0, 120.0) for _ in range(STREAM_LEN))
    for t in times:
        if 60.0 <= t < 90.0 and rng.random() < 0.75:
            stream.append((hot, t))
        else:
            stream.append((rng.choices(population, weights=weight_list, k=1)[0], t))
    return stream


def _partition(stream, workers):
    """Round-robin split (what a per-worker fan-out of one stream sees)."""
    parts = [[] for _ in range(workers)]
    for i, item in enumerate(stream):
        parts[i % workers].append(item)
    return parts


def _exact_window_counts(stream, now):
    horizon = now - WINDOW
    counts = {}
    for key, t in stream:
        if horizon <= int(t) <= now:
            counts[key] = counts.get(key, 0) + 1
    return counts


class TestCountMinMerge:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_merge_is_exact_by_linearity(self, seed):
        stream = _zipf_stream(seed)
        single = WindowedCountMinSketch(WINDOW)
        parts = [WindowedCountMinSketch(WINDOW) for _ in range(NUM_WORKERS)]
        for worker, part in enumerate(_partition(stream, NUM_WORKERS)):
            for key, t in part:
                parts[worker].add(key, 1, t)
        for key, t in stream:
            single.add(key, 1, t)
        merged = parts[0]
        for part in parts[1:]:
            merged.merge(part)
        now = stream[-1][1]
        merged.advance(now)
        single.advance(now)
        assert merged._agg == single._agg
        assert merged.total == single.total
        for key in _keys():
            assert merged.estimate(key) == single.estimate(key)

    def test_merge_preserves_window_expiry(self):
        a = WindowedCountMinSketch(WINDOW)
        b = WindowedCountMinSketch(WINDOW)
        a.add("new", 5, 100.0)
        b.add("old", 3, 10.0)  # far outside the window at minute 100
        a.merge(b)
        a.advance(100.0)
        assert a.estimate("old") == 0
        assert a.estimate("new") >= 5

    def test_geometry_mismatch_refused(self):
        a = WindowedCountMinSketch(WINDOW, width=512, depth=4)
        b = WindowedCountMinSketch(WINDOW, width=256, depth=4)
        with pytest.raises(ProfilingError):
            a.merge(b)
        c = WindowedCountMinSketch(30.0, width=512, depth=4)
        with pytest.raises(ProfilingError):
            a.merge(c)


class TestTopKMerge:
    def test_union_reevicts_to_k_deterministically(self):
        a = SpaceSavingTopK(2, WINDOW)
        b = SpaceSavingTopK(2, WINDOW)
        a.insert("x", 10, 0, 50.0)
        a.insert("y", 5, 0, 50.0)
        b.insert("x", 7, 0, 50.0)
        b.insert("z", 6, 0, 50.0)
        a.merge(b)
        assert len(a) == 2
        assert a.get("x").total == 17
        # y(5, +floor err) loses to z(6): deterministic (total, key) evict
        assert a.get("z") is not None and a.get("y") is None

    def test_absent_side_floor_lands_in_error_not_total(self):
        a = SpaceSavingTopK(2, WINDOW)
        b = SpaceSavingTopK(2, WINDOW)
        a.insert("x", 10, 0, 50.0)
        a.insert("y", 9, 0, 50.0)  # a is full; floor = 9
        b.insert("z", 20, 0, 50.0)
        a.merge(b)
        z = a.get("z")
        assert z.total == 20  # no phantom mass in the epoch rings
        assert z.error == 9  # but the absent side's floor bounds the miss

    def test_absent_underfull_side_is_exact(self):
        a = SpaceSavingTopK(8, WINDOW)
        b = SpaceSavingTopK(8, WINDOW)
        a.insert("x", 10, 0, 50.0)
        b.insert("z", 20, 0, 50.0)
        a.merge(b)
        assert a.get("z").error == 0 and a.get("x").error == 0

    def test_k_mismatch_refused(self):
        with pytest.raises(ProfilingError):
            SpaceSavingTopK(4, WINDOW).merge(SpaceSavingTopK(8, WINDOW))


class TestTopKPathSummaryMerge:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_zipf_merged_matches_single_within_epsilon(self, seed):
        self._check_stream(_zipf_stream(seed))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_flash_crowd_merged_matches_single_within_epsilon(self, seed):
        self._check_stream(_flash_crowd_stream(seed))

    def _check_stream(self, stream):
        single = TopKPathSummary(k=128, window_minutes=WINDOW)
        parts = [
            TopKPathSummary(k=128, window_minutes=WINDOW) for _ in range(NUM_WORKERS)
        ]
        for worker, part in enumerate(_partition(stream, NUM_WORKERS)):
            for key, t in part:
                parts[worker].record(key, 1, t)
        for key, t in stream:
            single.record(key, 1, t)
        merged = parts[0]
        for part in parts[1:]:
            merged.merge(part)
        now = stream[-1][1]
        keys = _keys()
        merged_counts = merged.counts(keys, now)
        single_counts = single.counts(keys, now)
        exact = _exact_window_counts(stream, now)
        # The exact scalar denominator merges exactly.
        assert merged.sample_total == single.sample_total == sum(exact.values())
        total = max(1, merged.sample_total)
        for key in keys:
            p_merged = merged_counts[key] / total
            p_single = single_counts[key] / total
            p_exact = exact.get(key, 0) / total
            assert abs(p_merged - p_single) <= HOT_PATH_PROBABILITY_EPSILON
            assert abs(p_merged - p_exact) <= HOT_PATH_PROBABILITY_EPSILON

    def test_window_mismatch_refused(self):
        a = TopKPathSummary(k=8, window_minutes=60.0)
        b = TopKPathSummary(k=8, window_minutes=30.0)
        with pytest.raises(ProfilingError):
            a.merge(b)


def _signatures():
    return {
        f"req{i}": [
            PathSignature(f"req{i}", (("fe", "m1", "svc"), ("svc", f"m{i}", "db")))
        ]
        for i in range(6)
    }


def _record_partitioned(profilers, sigs, seed):
    rng = random.Random(seed)
    names = sorted(sigs)
    for j in range(600):
        name = names[rng.randrange(len(names)) if rng.random() < 0.3 else 0]
        profilers[j % len(profilers)].record(sigs[name][0], 10.0 + j * 0.1)


class TestProfilerMerge:
    @pytest.mark.parametrize("mode", ["exact", "topk", "component"])
    def test_merge_equals_serial_union(self, mode):
        sigs = _signatures()
        serial = CausalPathProfiler(sigs, registry=MetricsRegistry(), mode=mode)
        workers = [
            CausalPathProfiler(sigs, registry=MetricsRegistry(), mode=mode)
            for _ in range(3)
        ]
        _record_partitioned([serial], sigs, seed=5)
        _record_partitioned(workers, sigs, seed=5)
        base = workers[0]
        base.merge(workers[1])
        base.merge(workers[2])
        assert base.counts(75.0) == serial.counts(75.0)
        assert base.sample_total_between(10.0, 75.0) == serial.sample_total_between(
            10.0, 75.0
        )

    def test_exact_merge_unions_dynamic_paths(self):
        sigs = _signatures()
        a = CausalPathProfiler(sigs, registry=MetricsRegistry())
        b = CausalPathProfiler(sigs, registry=MetricsRegistry())
        novel = PathSignature("req0", (("fe", "mx", "svc"),))
        b.record(novel, 20.0)
        a.merge(b)
        assert novel.path_id in a.known_paths()
        assert a.counts(30.0)[novel.path_id] == 1
        assert a.dynamic_registrations == 1

    def test_merge_carries_last_record_minutes(self):
        sigs = _signatures()
        a = CausalPathProfiler(sigs, registry=MetricsRegistry())
        b = CausalPathProfiler(sigs, registry=MetricsRegistry())
        a.record(sigs["req0"][0], 12.0)
        b.record(sigs["req1"][0], 44.0)
        a.merge(b)
        assert a.last_record_minutes == 44.0

    def test_mode_mismatch_refused(self):
        sigs = _signatures()
        a = CausalPathProfiler(sigs, registry=MetricsRegistry(), mode="exact")
        b = CausalPathProfiler(sigs, registry=MetricsRegistry(), mode="topk")
        with pytest.raises(ProfilingError):
            a.merge(b)

    def test_topk_k_mismatch_refused(self):
        sigs = _signatures()
        a = CausalPathProfiler(sigs, registry=MetricsRegistry(), mode="topk", topk=64)
        b = CausalPathProfiler(sigs, registry=MetricsRegistry(), mode="topk", topk=128)
        with pytest.raises(ProfilingError):
            a.merge(b)

    def test_component_merge_is_exact(self):
        sigs = _signatures()
        serial = ComponentActivitySummary(WINDOW)
        parts = [ComponentActivitySummary(WINDOW) for _ in range(2)]
        events = [(("fe", "svc"), 30.0), (("svc", "db"), 40.0), (("fe", "db"), 50.0)]
        for i, (comps, t) in enumerate(events):
            serial.record(comps, 2, t)
            parts[i % 2].record(comps, 2, t)
        parts[0].merge(parts[1])
        assert parts[0].totals(55.0) == serial.totals(55.0)
        assert parts[0].request_total == serial.request_total
