"""Unit tests for Ball–Larus path numbering."""

import pytest

from repro.errors import ProfilingError
from repro.lang.cfg import ENTRY, EXIT, build_cfg
from repro.lang.ir import Assign, Handler, If, Var, While
from repro.profiling.ball_larus import ball_larus_numbering


def _cfg(body):
    return build_cfg(Handler("go", "m", body))


class TestNumbering:
    def test_straight_line_single_path(self):
        cfg = _cfg([Assign("x", 1), Assign("y", 2)])
        numbering = ball_larus_numbering(cfg)
        assert numbering.num_paths == 1

    def test_if_else_two_paths(self):
        cfg = _cfg([If(Var("c") > 0, [Assign("x", 1)], [Assign("x", 2)])])
        assert ball_larus_numbering(cfg).num_paths == 2

    def test_if_without_else_two_paths(self):
        cfg = _cfg([If(Var("c") > 0, [Assign("x", 1)])])
        assert ball_larus_numbering(cfg).num_paths == 2

    def test_sequential_ifs_multiply(self):
        cfg = _cfg(
            [
                If(Var("a") > 0, [Assign("x", 1)], [Assign("x", 2)]),
                If(Var("b") > 0, [Assign("y", 1)], [Assign("y", 2)]),
            ]
        )
        assert ball_larus_numbering(cfg).num_paths == 4

    def test_nested_if_three_paths(self):
        cfg = _cfg(
            [
                If(
                    Var("a") > 0,
                    [If(Var("b") > 0, [Assign("x", 1)], [Assign("x", 2)])],
                    [Assign("x", 3)],
                )
            ]
        )
        assert ball_larus_numbering(cfg).num_paths == 3

    def test_loop_back_edge_removed(self):
        body = Assign("i", Var("i") + 1)
        cfg = _cfg([While(Var("i") < 3, [body])])
        numbering = ball_larus_numbering(cfg)
        assert (body.sid, [s for s in cfg.succ[body.sid]][0]) in numbering.back_edges or numbering.back_edges
        # Acyclic segments: enter-loop-once-exit and skip-loop.
        assert numbering.num_paths >= 1


class TestPathIds:
    def test_ids_unique_per_path(self):
        t1, e1 = Assign("x", 1), Assign("x", 2)
        t2, e2 = Assign("y", 1), Assign("y", 2)
        s1 = If(Var("a") > 0, [t1], [e1])
        s2 = If(Var("b") > 0, [t2], [e2])
        cfg = _cfg([s1, s2])
        numbering = ball_larus_numbering(cfg)
        paths = [
            [ENTRY, s1.sid, t1.sid, s2.sid, t2.sid, EXIT],
            [ENTRY, s1.sid, t1.sid, s2.sid, e2.sid, EXIT],
            [ENTRY, s1.sid, e1.sid, s2.sid, t2.sid, EXIT],
            [ENTRY, s1.sid, e1.sid, s2.sid, e2.sid, EXIT],
        ]
        ids = [numbering.path_id(p) for p in paths]
        assert sorted(ids) == [0, 1, 2, 3]

    def test_path_must_start_at_entry(self):
        cfg = _cfg([Assign("x", 1)])
        numbering = ball_larus_numbering(cfg)
        with pytest.raises(ProfilingError):
            numbering.path_id([EXIT])

    def test_unknown_edge_rejected(self):
        s = Assign("x", 1)
        cfg = _cfg([s])
        numbering = ball_larus_numbering(cfg)
        with pytest.raises(ProfilingError):
            numbering.path_id([ENTRY, 424242])

    def test_edge_values_non_negative(self):
        cfg = _cfg([If(Var("a") > 0, [Assign("x", 1)], [Assign("x", 2)])])
        numbering = ball_larus_numbering(cfg)
        assert all(v >= 0 for v in numbering.edge_values.values())
