"""Precision-mode tests: switching, checkpoints, and the ε property.

The 25-seed property classes are the acceptance gate for the sketch
tiers: under Zipf and flash-crowd workloads (built from
:mod:`repro.workloads.patterns`), ``topk`` hot-path causal probabilities
must stay within :data:`HOT_PATH_PROBABILITY_EPSILON` of exact mode, and
``exact`` mode must stay bit-identical to the pre-optimisation read.
"""

import json

import numpy as np
import pytest

from repro.core.elasticity import ProfileStalenessDetector, StalenessPolicy
from repro.core.paths import signature_from_edges
from repro.errors import ElasticityError, ProfilingError
from repro.lang.ir import CLIENT, EXTERNAL
from repro.profiling.profiler import PROFILER_MODES, CausalPathProfiler
from repro.profiling.sketches import HOT_PATH_PROBABILITY_EPSILON
from repro.telemetry import MetricsRegistry
from repro.workloads.patterns import flash_crowd_mix, zipf_weights


def _sig(tag, request_type="go"):
    return signature_from_edges(
        request_type,
        [(EXTERNAL, request_type, "A"), ("A", tag, "B"), ("B", "done", CLIENT)],
    )


def _path_population(n):
    """``n`` distinct signatures spread over a handful of request types."""
    return [_sig(f"m{i}", request_type=f"rt{i % 5}") for i in range(n)]


def _profiler(mode="exact", topk=32, paths=None, registry=None):
    paths = paths if paths is not None else [_sig("x"), _sig("y")]
    by_request = {}
    for sig in paths:
        by_request.setdefault(sig.request_type, []).append(sig)
    return CausalPathProfiler(
        by_request,
        window_minutes=60.0,
        registry=registry if registry is not None else MetricsRegistry(),
        mode=mode,
        topk=topk,
    )


class TestModeValidation:
    def test_modes_tuple(self):
        assert PROFILER_MODES == ("exact", "topk", "component")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ProfilingError):
            _profiler(mode="fuzzy")

    def test_bad_topk_rejected(self):
        with pytest.raises(ProfilingError):
            _profiler(mode="topk", topk=0)

    def test_set_mode_unknown_rejected(self):
        profiler = _profiler()
        with pytest.raises(ProfilingError):
            profiler.set_mode("fuzzy")

    def test_component_weights_require_component_mode(self):
        profiler = _profiler()
        with pytest.raises(ProfilingError):
            profiler.component_weight_estimates(0.0)

    def test_downshift_mode_validated(self):
        with pytest.raises(ElasticityError):
            StalenessPolicy(downshift_mode="exact")


class TestModeSwitching:
    def test_exact_to_topk_carries_window(self):
        profiler = _profiler()
        pid = profiler.record(_sig("x"), 5.0, count=40)
        profiler.record(_sig("y"), 6.0, count=10)
        exact = profiler.counts(6.0)
        profiler.set_mode("topk")
        assert profiler.mode == "topk"
        approx = profiler.counts(6.0)
        assert approx[pid] == exact[pid]
        assert sum(approx.values()) == sum(exact.values())

    def test_topk_back_to_exact_materialises_monitored(self):
        profiler = _profiler(mode="topk", topk=8)
        pid = profiler.record(_sig("x"), 5.0, count=40)
        profiler.set_mode("exact")
        assert profiler.mode == "exact"
        assert profiler.counts(5.0)[pid] == 40

    def test_exact_to_component_collapses_paths(self):
        profiler = _profiler()
        profiler.record(_sig("x"), 5.0, count=4)
        profiler.set_mode("component")
        totals = profiler.counts(5.0)
        assert totals == {"A": 4, "B": 4}
        weights = profiler.component_weight_estimates(5.0)
        assert weights["A"] == pytest.approx(1.0)

    def test_component_to_exact_starts_cold(self):
        profiler = _profiler(mode="component")
        pid = profiler.record(_sig("x"), 5.0, count=4)
        profiler.set_mode("exact")
        assert profiler.counts(5.0)[pid] == 0

    def test_component_mode_uniform_before_traffic(self):
        profiler = _profiler(mode="component")
        assert profiler.component_weight_estimates(0.0) == {}

    def test_sample_total_exact_in_every_mode(self):
        for mode in PROFILER_MODES:
            profiler = _profiler(mode=mode)
            profiler.record(_sig("x"), 5.0, count=7)
            profiler.record(_sig("y"), 20.0, count=3)
            assert profiler.sample_total_between(0.0, 10.0) == 7
            assert profiler.sample_total_between(0.0, 30.0) == 10

    def test_topk_resize_keeps_monitored(self):
        profiler = _profiler(mode="topk", topk=8)
        pid = profiler.record(_sig("x"), 5.0, count=40)
        profiler.set_mode("topk", topk=4)
        assert profiler.topk_k == 4
        assert profiler.counts(5.0)[pid] == 40


class TestCheckpointV2:
    def test_topk_round_trip(self):
        paths = _path_population(30)
        profiler = _profiler(mode="topk", topk=8, paths=paths)
        rng = np.random.default_rng(7)
        for t in range(120):
            profiler.record(paths[int(rng.integers(0, 30))], float(t % 50))
        restored = CausalPathProfiler.from_json(profiler.to_json())
        assert restored.mode == "topk"
        assert restored.topk_k == 8
        assert restored.counts(50.0) == profiler.counts(50.0)
        assert restored.sketch_evictions == profiler.sketch_evictions

    def test_component_round_trip(self):
        profiler = _profiler(mode="component")
        profiler.record(_sig("x"), 5.0, count=4)
        restored = CausalPathProfiler.from_json(profiler.to_json())
        assert restored.mode == "component"
        assert restored.counts(5.0) == profiler.counts(5.0)
        assert restored.component_weight_estimates(5.0) == (
            profiler.component_weight_estimates(5.0)
        )

    def test_restored_topk_keeps_recording(self):
        profiler = _profiler(mode="topk", topk=8)
        pid = profiler.record(_sig("x"), 5.0, count=3)
        restored = CausalPathProfiler.from_json(profiler.to_json())
        restored.record(_sig("x"), 6.0, count=2)
        assert restored.counts(6.0)[pid] == 5

    def test_v1_payload_reads_as_exact(self):
        # A checkpoint written before the sketch tiers existed: no
        # "version" key, no mode/sketch/last_record fields.
        profiler = _profiler()
        pid = profiler.record(_sig("x"), 5.0, count=7)
        payload = json.loads(profiler.to_json())
        for key in ("version", "mode", "topk", "last_record_minutes", "sketch", "components"):
            del payload[key]
        restored = CausalPathProfiler.from_json(json.dumps(payload))
        assert restored.mode == "exact"
        assert restored.last_record_minutes is None
        assert restored.counts(5.0)[pid] == 7

    def test_v2_payload_has_version(self):
        payload = json.loads(_profiler().to_json())
        assert payload["version"] == 2
        assert payload["mode"] == "exact"


class TestStalenessDownshift:
    def _detector(self, downshift_mode="topk"):
        registry = MetricsRegistry()
        profiler = _profiler(registry=registry)
        policy = StalenessPolicy(
            min_recent_samples=5,
            recent_horizon_minutes=3.0,
            stale_after_intervals=2,
            fresh_after_intervals=2,
            downshift_mode=downshift_mode,
        )
        return ProfileStalenessDetector(profiler, policy), profiler, registry

    def test_engage_downshifts_and_release_restores(self):
        detector, profiler, registry = self._detector("topk")
        for minute in range(5):
            profiler.record(_sig("x"), float(minute), count=10)
            assert detector.update(float(minute)) is False
        assert profiler.mode == "exact"
        detector.update(10.0)
        assert detector.update(11.0) is True
        assert profiler.mode == "topk"
        assert registry.get("elasticity.precision_downshifts").value == 1
        # Recovery: the exact scalar ring keeps feeding the detector even
        # in the downshifted tier.
        profiler.record(_sig("x"), 12.0, count=10)
        detector.update(12.0)
        profiler.record(_sig("x"), 13.0, count=10)
        assert detector.update(13.0) is False
        assert profiler.mode == "exact"
        assert registry.get("elasticity.precision_restores").value == 1

    def test_component_downshift(self):
        detector, profiler, _ = self._detector("component")
        for minute in range(5):
            profiler.record(_sig("x"), float(minute), count=10)
            detector.update(float(minute))
        detector.update(10.0)
        detector.update(11.0)
        assert profiler.mode == "component"

    def test_no_downshift_by_default(self):
        detector, profiler, _ = self._detector(None)
        for minute in range(5):
            profiler.record(_sig("x"), float(minute), count=10)
            detector.update(float(minute))
        detector.update(10.0)
        assert detector.update(11.0) is True
        assert profiler.mode == "exact"


def _hot_path_errors(paths, streams, topk=32):
    """Feed identical streams to exact and topk profilers; return the
    worst absolute hot-path probability deviation."""
    exact = _profiler(paths=paths)
    approx = _profiler(mode="topk", topk=topk, paths=paths)
    last = 0.0
    for t, idx, count in streams:
        exact.record(paths[idx], t, count=count)
        approx.record(paths[idx], t, count=count)
        last = max(last, t)
    exact_counts = exact.counts(last)
    approx_counts = approx.counts(last)
    n_exact = sum(exact_counts.values())
    n_approx = sum(approx_counts.values())
    assert n_exact > 0
    # The estimate denominator is pinned to the exact windowed total; it
    # can only overshoot by the monitored entries' inherited error.
    max_error = sum(entry.error for entry in approx._sketch.topk.entries())
    assert n_exact <= n_approx <= n_exact + max_error
    hot = sorted(exact_counts, key=lambda pid: (-exact_counts[pid], pid))[:10]
    return max(
        abs(approx_counts[pid] / n_approx - exact_counts[pid] / n_exact) for pid in hot
    )


@pytest.mark.parametrize("seed", range(25))
class TestTopKEpsilonProperty:
    """ISSUE acceptance: topk hot-path probabilities within ε of exact."""

    def test_zipf_workload(self, seed):
        paths = _path_population(120)
        weights = zipf_weights([f"m{i}" for i in range(120)], exponent=1.1)
        p = np.asarray(list(weights.values()))
        p = p / p.sum()
        rng = np.random.default_rng(seed)
        draws = rng.choice(120, size=2500, p=p)
        streams = [(float(i % 55), int(idx), 1) for i, idx in enumerate(draws)]
        assert _hot_path_errors(paths, streams) <= HOT_PATH_PROBABILITY_EPSILON

    def test_flash_crowd_workload(self, seed):
        names = [f"m{i}" for i in range(120)]
        paths = _path_population(120)
        rng = np.random.default_rng(1000 + seed)
        # The hot class starts deep in the Zipf tail and spikes to 75 %
        # of traffic mid-stream — the shift case the sketch must track.
        mix = flash_crowd_mix(
            names,
            hot_class=names[90],
            start_minute=20.0,
            ramp_minutes=2.0,
            hold_minutes=15.0,
        )
        streams = []
        for minute in range(55):
            weights = mix.mix(float(minute))
            p = np.asarray([weights.get(name, 0.0) for name in names])
            p = p / p.sum()
            for idx in rng.choice(120, size=40, p=p):
                streams.append((float(minute), int(idx), 1))
        assert _hot_path_errors(paths, streams) <= HOT_PATH_PROBABILITY_EPSILON


@pytest.mark.parametrize("seed", range(25))
class TestExactBitIdentity:
    """ISSUE acceptance: the optimised exact read is bit-identical to the
    pre-optimisation O(paths × window) scan (retained as
    ``_scan_counts``) over randomised monotonic record/read sequences."""

    def test_counts_match_reference_scan(self, seed):
        paths = _path_population(40)
        profiler = _profiler(paths=paths)
        rng = np.random.default_rng(seed)
        t = 0.0
        for _ in range(300):
            t += float(rng.uniform(0.0, 1.5))
            idx = int(rng.integers(0, 40))
            profiler.record(paths[idx], t, count=int(rng.integers(1, 4)))
            if rng.uniform() < 0.2:
                now = t + float(rng.uniform(0.0, 5.0))
                expected = profiler._scan_counts(now)
                assert profiler.counts(now) == expected

    def test_reads_into_past_match_reference_scan(self, seed):
        paths = _path_population(20)
        profiler = _profiler(paths=paths)
        rng = np.random.default_rng(500 + seed)
        t = 0.0
        for _ in range(150):
            t += float(rng.uniform(0.0, 1.0))
            profiler.record(paths[int(rng.integers(0, 20))], t)
        for _ in range(10):
            # Reads earlier than the newest bucket take the fallback
            # path; they must agree with the reference scan too.
            now = float(rng.uniform(0.0, t))
            assert profiler.counts(now) == profiler._scan_counts(now)
