"""Unit tests for the Agility metric helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EvaluationError
from repro.evalx.agility import agility_from_series, breakdown, rank_managers
from repro.sim.metrics import SimulationResult
from tests.sim.test_metrics import _comp, _record


class TestAgilityFromSeries:
    def test_spec_formula(self):
        # Excess of 2 in one interval, shortage of 3 in another: (2+3)/4.
        capacity = [10, 12, 10, 7]
        required = [10, 10, 10, 10]
        assert agility_from_series(capacity, required) == pytest.approx(1.25)

    def test_perfect_provisioning_is_zero(self):
        assert agility_from_series([5, 5, 5], [5, 5, 5]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(EvaluationError):
            agility_from_series([1], [1, 2])

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            agility_from_series([], [])

    def test_negative_rejected(self):
        with pytest.raises(EvaluationError):
            agility_from_series([-1], [1])

    @given(
        st.lists(st.tuples(st.floats(0, 100), st.floats(0, 100)), min_size=1, max_size=50)
    )
    def test_non_negative_property(self, pairs):
        cap = [p[0] for p in pairs]
        req = [p[1] for p in pairs]
        assert agility_from_series(cap, req) >= 0.0

    @given(st.lists(st.floats(0, 100), min_size=1, max_size=50))
    def test_zero_iff_exact_match(self, series):
        assert agility_from_series(series, series) == 0.0


class TestBreakdown:
    def _result(self, records):
        res = SimulationResult(manager_name="m", application="a")
        for r in records:
            res.append(r)
        return res

    def test_excess_dominated_flag(self):
        res = self._result([_record(comps={"a": _comp(provisioned=9, req=5)})])
        b = breakdown(res)
        assert b.excess_dominated
        assert b.agility == pytest.approx(4.0)

    def test_shortage_dominated(self):
        res = self._result([_record(comps={"a": _comp(provisioned=2, ready=2, req=6)})])
        assert not breakdown(res).excess_dominated

    def test_empty_raises(self):
        with pytest.raises(EvaluationError):
            breakdown(self._result([]))


class TestRanking:
    def test_rank_orders_by_agility(self):
        good = SimulationResult("good", "a")
        good.append(_record(comps={"a": _comp(provisioned=5, req=5)}))
        bad = SimulationResult("bad", "a")
        bad.append(_record(comps={"a": _comp(provisioned=9, req=5)}))
        ranked = rank_managers({"good": good, "bad": bad})
        assert [name for name, _ in ranked] == ["good", "bad"]

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            rank_managers({})
