"""Unit tests for SLA reports, overhead measurement, and table rendering."""

import pytest

from repro.errors import EvaluationError
from repro.evalx.overhead import OverheadMeasurement, measure_overhead
from repro.evalx.reporting import fig5_table, fig8_table, format_table, sla_table, sparkline
from repro.evalx.sla import rank_managers, sla_report
from repro.sim.metrics import SimulationResult
from tests.sim.test_metrics import _comp, _record


def _result(records, name="m"):
    res = SimulationResult(manager_name=name, application="a")
    for r in records:
        res.append(r)
    return res


class TestSLAReport:
    def test_report_fields(self):
        res = _result(
            [
                _record(arrivals=100, sla_frac=0.1),
                _record(arrivals=100, sla_frac=0.0, decreasing=True),
            ]
        )
        report = sla_report(res)
        assert report.violation_percent == pytest.approx(5.0)
        assert report.violation_percent_while_decreasing == 0.0
        assert report.worst_interval_percent == pytest.approx(10.0)
        assert report.violating_intervals == 1
        assert report.total_intervals == 2
        assert report.decreasing_is_safe

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            sla_report(_result([]))

    def test_rank(self):
        a = _result([_record(sla_frac=0.0)], "a")
        b = _result([_record(sla_frac=0.5)], "b")
        assert [n for n, _ in rank_managers({"a": a, "b": b})] == ["a", "b"]


class TestOverheadMeasurement:
    def test_short_measurement_sane(self):
        from repro.apps.catalog import load_scenario

        scenario = load_scenario("hedwig")
        m = measure_overhead(scenario, 0.10, duration_minutes=60)
        assert 0.0 < m.mean < 0.3
        assert m.low_95 <= m.mean <= m.high_95

    def test_rate_validation(self):
        from repro.apps.catalog import load_scenario

        scenario = load_scenario("hedwig")
        with pytest.raises(EvaluationError):
            measure_overhead(scenario, 1.5)

    def test_percent_row_format(self):
        m = OverheadMeasurement("app", 0.1, mean=0.0539, low_95=0.039, high_95=0.062)
        rng, mean = m.as_percent_row()
        assert rng == "3.9–6.2%"
        assert mean == "5.39%"


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_table_width_mismatch(self):
        with pytest.raises(EvaluationError):
            format_table(["a"], [["1", "2"]])

    def test_fig5_table_includes_all_rates(self):
        m = OverheadMeasurement("hedwig", 0.05, 0.03, 0.02, 0.04)
        text = fig5_table({"hedwig": {0.05: m}})
        assert "DCA-5% mean" in text
        assert "hedwig" in text
        assert "3.00%" in text

    def test_fig8_table(self):
        res = _result([_record(comps={"a": _comp(provisioned=7, req=5)})], "CloudWatch")
        text = fig8_table({"hedwig": {"CloudWatch": res}})
        assert "CloudWatch" in text
        assert "2.00" in text

    def test_sla_table(self):
        res = _result([_record(sla_frac=0.1)], "CloudWatch")
        text = sla_table({"hedwig": {"CloudWatch": res}})
        assert "10.00%" in text

    def test_sparkline(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert len(line) == 4
        assert line[0] != line[-1]

    def test_sparkline_constant_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_sparkline_empty_rejected(self):
        with pytest.raises(EvaluationError):
            sparkline([])
