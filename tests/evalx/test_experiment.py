"""Tests for the experiment runner (manager construction + short runs)."""

import pytest

from repro.apps.catalog import load_scenario
from repro.errors import EvaluationError
from repro.evalx.experiment import (
    DCA_RATES,
    MANAGER_NAMES,
    ExperimentConfig,
    build_simulator,
    run_all_managers,
    run_manager,
)


@pytest.fixture(scope="module")
def scenario():
    return load_scenario("hedwig")


class TestConstruction:
    def test_all_seven_managers_build(self, scenario):
        for name in MANAGER_NAMES:
            sim = build_simulator(scenario, name, ExperimentConfig(duration_minutes=5))
            assert sim.manager.name == name

    def test_unknown_manager_rejected(self, scenario):
        with pytest.raises(EvaluationError):
            build_simulator(scenario, "Kubernetes")

    def test_dca_rates_table(self):
        assert DCA_RATES["DCA-10%"] == 0.10
        assert DCA_RATES["DCA-100%"] == 1.0

    def test_dca_simulator_has_bundle(self, scenario):
        sim = build_simulator(scenario, "DCA-10%", ExperimentConfig(duration_minutes=5))
        assert sim.dca is not None
        assert sim.dca.sampling_rate == 0.10

    def test_htrace_simulator_has_collector(self, scenario):
        sim = build_simulator(scenario, "HTrace+CW", ExperimentConfig(duration_minutes=5))
        assert sim.htrace is not None

    def test_baselines_have_no_dca(self, scenario):
        sim = build_simulator(scenario, "CloudWatch", ExperimentConfig(duration_minutes=5))
        assert sim.dca is None

    def test_config_validation(self):
        with pytest.raises(EvaluationError):
            ExperimentConfig(duration_minutes=0)


class TestShortRuns:
    def test_run_manager_produces_result(self, scenario):
        result = run_manager(scenario, "ElasticRMI", ExperimentConfig(duration_minutes=20))
        assert len(result.records) == 20
        assert result.manager_name == "ElasticRMI"
        assert result.agility() >= 0

    def test_run_all_selected_managers(self, scenario):
        results = run_all_managers(
            scenario,
            managers=("CloudWatch", "DCA-10%"),
            config=ExperimentConfig(duration_minutes=15),
        )
        assert set(results) == {"CloudWatch", "DCA-10%"}

    def test_same_seed_same_result(self, scenario):
        cfg = ExperimentConfig(duration_minutes=15, seed=3)
        r1 = run_manager(scenario, "ElasticRMI", cfg)
        cfg2 = ExperimentConfig(duration_minutes=15, seed=3)
        r2 = run_manager(scenario, "ElasticRMI", cfg2)
        assert r1.agility() == r2.agility()
        assert r1.sla_violation_percent() == r2.sla_violation_percent()

    def test_dca_run_counts_paths(self, scenario):
        sim = build_simulator(scenario, "DCA-100%", ExperimentConfig(duration_minutes=10))
        result = sim.run()
        assert sim.dca.tracker.completed_paths > 0
        counts = sim.dca.profiler.counts(9.0)
        assert sum(counts.values()) > 0


class TestParallelRunner:
    def test_workers_match_serial_results(self, scenario):
        """Process workers must reproduce the serial runner bit-for-bit."""
        from repro.telemetry import MetricsRegistry

        managers = ("CloudWatch", "DCA-10%", "ElasticRMI")
        cfg = ExperimentConfig(duration_minutes=15, seed=7)
        serial = run_all_managers(scenario, managers=managers, config=cfg)
        registry = MetricsRegistry()
        parallel = run_all_managers(
            scenario, managers=managers, config=cfg, workers=3, registry=registry
        )
        assert set(parallel) == set(serial)
        for name in managers:
            assert parallel[name].agility() == serial[name].agility()
            assert (
                parallel[name].sla_violation_percent()
                == serial[name].sla_violation_percent()
            )
        # Worker telemetry was merged back into the parent registry.
        assert registry.counter("tracker.paths_completed").value > 0

    def test_sharded_batched_config_travels_to_workers(self, scenario):
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        cfg = ExperimentConfig(
            duration_minutes=15, seed=7, num_shards=4, write_batch_size=16
        )
        results = run_all_managers(
            scenario,
            managers=("DCA-10%", "DCA-100%"),
            config=cfg,
            workers=2,
            registry=registry,
        )
        assert set(results) == {"DCA-10%", "DCA-100%"}
        assert registry.counter("store.write_batches").value > 0
