"""Unit and property tests for the Fig. 7 workload patterns."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import WorkloadError
from repro.workloads.patterns import (
    RUN_MINUTES,
    MixPhase,
    ScaledPattern,
    StepMixSchedule,
    abrupt_pattern,
    cyclic_pattern,
    paper_pattern,
    stepwise_cyclic_pattern,
    uniform_mix,
)


class TestPatterns:
    @given(st.floats(0, RUN_MINUTES))
    def test_paper_pattern_bounded(self, t):
        assert 0.0 <= paper_pattern(t) <= 1.0

    @given(st.floats(0, 250))
    def test_abrupt_pattern_bounded(self, t):
        assert 0.0 <= abrupt_pattern(t) <= 1.0

    @given(st.floats(0, 1000))
    def test_cyclic_pattern_bounded(self, t):
        assert 0.0 <= cyclic_pattern(t) <= 1.0

    def test_paper_pattern_has_cyclic_head(self):
        values = [paper_pattern(float(t)) for t in range(0, 100)]
        assert max(values) > 0.7
        assert min(values) < 0.2

    def test_paper_pattern_stepwise_increase_phase(self):
        assert paper_pattern(238.0) > paper_pattern(182.0)

    def test_paper_pattern_abrupt_decrease(self):
        assert paper_pattern(256.0) < paper_pattern(254.0) - 0.2

    def test_paper_pattern_continuous_ramp(self):
        assert paper_pattern(329.0) > paper_pattern(271.0) + 0.5

    def test_paper_pattern_rapid_fall(self):
        assert paper_pattern(389.0) < paper_pattern(361.0) - 0.5

    def test_stepwise_is_quantised(self):
        a = stepwise_cyclic_pattern(3.0, step_minutes=10.0)
        b = stepwise_cyclic_pattern(9.0, step_minutes=10.0)
        assert a == b

    def test_negative_time_rejected(self):
        with pytest.raises(WorkloadError):
            paper_pattern(-1.0)

    def test_determinism(self):
        assert paper_pattern(123.4) == paper_pattern(123.4)


class TestScaledPattern:
    def test_scaling_range(self):
        sp = ScaledPattern(paper_pattern, 100.0, 500.0)
        rates = [sp.rate(float(t)) for t in range(450)]
        assert min(rates) >= 100.0
        assert max(rates) <= 500.0

    def test_invalid_range(self):
        with pytest.raises(WorkloadError):
            ScaledPattern(paper_pattern, 100.0, 50.0)
        with pytest.raises(WorkloadError):
            ScaledPattern(paper_pattern, -1.0, 50.0)


class TestMixSchedules:
    def test_step_mode_is_piecewise_constant(self):
        mix = StepMixSchedule(
            [MixPhase(0.0, {"a": 1, "b": 1}), MixPhase(100.0, {"a": 3, "b": 1})],
            interpolate=False,
        )
        assert mix.mix(50.0) == {"a": 0.5, "b": 0.5}
        assert mix.mix(150.0) == {"a": 0.75, "b": 0.25}

    def test_interpolation_blends_linearly(self):
        mix = StepMixSchedule(
            [MixPhase(0.0, {"a": 1, "b": 0.0001}), MixPhase(100.0, {"a": 0.0001, "b": 1})],
        )
        mid = mix.mix(50.0)
        assert mid["a"] == pytest.approx(0.5, abs=0.01)
        assert mid["b"] == pytest.approx(0.5, abs=0.01)

    def test_mix_always_normalised(self):
        mix = StepMixSchedule(
            [MixPhase(0.0, {"a": 2, "b": 3}), MixPhase(60.0, {"a": 5, "b": 1})]
        )
        for t in range(0, 120, 7):
            assert sum(mix.mix(float(t)).values()) == pytest.approx(1.0)

    def test_beyond_last_phase_holds(self):
        mix = StepMixSchedule([MixPhase(0.0, {"a": 1}), MixPhase(10.0, {"a": 1, "b": 1})])
        assert mix.mix(9_999.0) == {"a": 0.5, "b": 0.5}

    def test_first_phase_must_start_at_zero(self):
        with pytest.raises(WorkloadError):
            StepMixSchedule([MixPhase(5.0, {"a": 1})])

    def test_negative_weights_rejected(self):
        with pytest.raises(WorkloadError):
            StepMixSchedule([MixPhase(0.0, {"a": -1, "b": 2})])

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            StepMixSchedule([])

    def test_class_names_union(self):
        mix = StepMixSchedule([MixPhase(0.0, {"a": 1}), MixPhase(10.0, {"b": 1})])
        assert mix.class_names() == ["a", "b"]

    def test_uniform_mix(self):
        mix = uniform_mix(["x", "y"])
        assert mix.mix(0.0) == {"x": 0.5, "y": 0.5}
        with pytest.raises(WorkloadError):
            uniform_mix([])
