"""Unit tests for the workload generator."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.generator import RequestClass, WorkloadGenerator
from repro.workloads.patterns import MixPhase, ScaledPattern, StepMixSchedule


CLASSES = [RequestClass("a", "ra", {}), RequestClass("b", "rb", {})]


def _generator(seed=0, deterministic=False, low=100.0, high=100.0):
    return WorkloadGenerator(
        ScaledPattern(lambda t: 1.0, low, high),
        StepMixSchedule([MixPhase(0.0, {"a": 3, "b": 1})]),
        CLASSES,
        seed=seed,
        deterministic=deterministic,
    )


class TestValidation:
    def test_request_class_requires_name_and_type(self):
        with pytest.raises(WorkloadError):
            RequestClass("", "t")
        with pytest.raises(WorkloadError):
            RequestClass("n", "")

    def test_duplicate_classes_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadGenerator(
                ScaledPattern(lambda t: 1.0, 1, 1),
                StepMixSchedule([MixPhase(0.0, {"a": 1})]),
                [RequestClass("a", "t"), RequestClass("a", "t")],
            )

    def test_mix_must_reference_known_classes(self):
        with pytest.raises(WorkloadError, match="unknown"):
            WorkloadGenerator(
                ScaledPattern(lambda t: 1.0, 1, 1),
                StepMixSchedule([MixPhase(0.0, {"ghost": 1})]),
                CLASSES,
            )


class TestArrivals:
    def test_expected_arrivals_follow_mix(self):
        g = _generator()
        expected = g.expected_arrivals(0.0)
        assert expected["a"] == pytest.approx(75.0)
        assert expected["b"] == pytest.approx(25.0)

    def test_deterministic_mode_rounds_expectation(self):
        g = _generator(deterministic=True)
        assert g.arrivals(0.0) == {"a": 75, "b": 25}

    def test_poisson_draws_are_seeded(self):
        g1 = _generator(seed=5)
        g2 = _generator(seed=5)
        assert [g1.arrivals(float(t)) for t in range(10)] == [
            g2.arrivals(float(t)) for t in range(10)
        ]

    def test_different_seeds_differ(self):
        g1 = _generator(seed=1)
        g2 = _generator(seed=2)
        draws1 = [g1.arrivals(float(t)) for t in range(20)]
        draws2 = [g2.arrivals(float(t)) for t in range(20)]
        assert draws1 != draws2

    def test_poisson_mean_tracks_rate(self):
        g = _generator(seed=9)
        total = sum(sum(g.arrivals(float(t)).values()) for t in range(300))
        assert total == pytest.approx(300 * 100.0, rel=0.05)

    def test_class_list_sorted(self):
        assert [c.name for c in _generator().class_list()] == ["a", "b"]


class TestArrivalsSeries:
    """The event engine precomputes arrivals; the batch API must match."""

    def test_series_equals_per_call_draws(self):
        times = [float(t) for t in range(30)]
        series = _generator(seed=5).arrivals_series(times)
        g = _generator(seed=5)
        per_call = [g.arrivals(t) for t in times]
        assert series == per_call

    def test_series_consumes_rng_in_order(self):
        """Drawing the series leaves the RNG where sequential calls would."""
        g1 = _generator(seed=8)
        g2 = _generator(seed=8)
        g1.arrivals_series([float(t) for t in range(10)])
        for t in range(10):
            g2.arrivals(float(t))
        assert g1.arrivals(10.0) == g2.arrivals(10.0)

    def test_empty_series(self):
        assert _generator().arrivals_series([]) == []
