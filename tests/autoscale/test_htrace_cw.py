"""Unit tests for the HTrace+CloudWatch baseline."""

import pytest

from repro.autoscale.htrace_cw import HTraceCloudWatchManager, HTraceConfig
from repro.autoscale.manager import ClusterObservation, ComponentObservation
from repro.core.regression import MachineSpec
from repro.errors import ElasticityError
from repro.tracing.htrace import HTraceCollector

MACHINE = MachineSpec(capacity_ms_per_minute=1_000.0)


def _obs(comps, time=0.0):
    return ClusterObservation(
        time_minutes=time,
        external_arrivals_per_min=100.0,
        components=comps,
        machine=MACHINE,
        sla_latency_ms=200.0,
    )


def _comp(name, nodes=10, util=0.5, pending=0):
    return ComponentObservation(component=name, nodes=nodes, pending_nodes=pending, utilization=util)


def _collector_with_weights():
    collector = HTraceCollector()
    collector.observe_interval(
        {"hot_class": 80.0, "cold_class": 20.0},
        {"hot_class": {"hot": 50.0}, "cold_class": {"cold": 10.0}},
    )
    return collector


class TestConfig:
    def test_negative_overhead_rejected(self):
        with pytest.raises(ElasticityError):
            HTraceConfig(span_overhead_fraction=-0.1)


class TestPolicy:
    def test_span_overhead_reported(self):
        manager = HTraceCloudWatchManager(HTraceCollector())
        assert manager.runtime_overhead_fraction() == pytest.approx(0.02)

    def test_distribution_follows_span_weights(self):
        manager = HTraceCloudWatchManager(_collector_with_weights())
        obs = _obs({"hot": _comp("hot"), "cold": _comp("cold")})
        decision = manager.decide(obs)
        assert decision.targets["hot"] > decision.targets["cold"]

    def test_uniform_fallback_without_weights(self):
        manager = HTraceCloudWatchManager(HTraceCollector())
        obs = _obs({"a": _comp("a"), "b": _comp("b")})
        decision = manager.decide(obs)
        assert decision.targets["a"] == decision.targets["b"]

    def test_pending_nodes_preserved(self):
        """Redistribution must not cancel in-flight provisioning."""
        manager = HTraceCloudWatchManager(_collector_with_weights())
        obs = _obs({"hot": _comp("hot", nodes=10, pending=6, util=0.5), "cold": _comp("cold", util=0.5)})
        decision = manager.decide(obs)
        assert sum(decision.targets.values()) >= 26

    def test_infrastructure_node_charged(self):
        manager = HTraceCloudWatchManager(HTraceCollector())
        obs = _obs({"a": _comp("a")})
        assert manager.decide(obs).infrastructure_nodes == 1

    def test_zero_nodes_rejected(self):
        manager = HTraceCloudWatchManager(HTraceCollector())
        with pytest.raises(ElasticityError):
            manager.decide(_obs({"a": _comp("a", nodes=0)}))

    def test_scale_up_when_hot(self):
        manager = HTraceCloudWatchManager(_collector_with_weights())
        obs = _obs({"hot": _comp("hot", util=0.9), "cold": _comp("cold", util=0.9)})
        decision = manager.decide(obs)
        assert sum(decision.targets.values()) > 20
