"""Unit tests for the manager interface primitives."""

import pytest

from repro.autoscale.manager import (
    ClusterObservation,
    ComponentObservation,
    ScalingDecision,
    clamp_targets,
)
from repro.core.regression import MachineSpec
from repro.errors import ElasticityError


class TestScalingDecision:
    def test_negative_target_rejected(self):
        with pytest.raises(ElasticityError):
            ScalingDecision(targets={"a": -1})

    def test_negative_infra_rejected(self):
        with pytest.raises(ElasticityError):
            ScalingDecision(targets={}, infrastructure_nodes=-1)

    def test_valid_decision(self):
        d = ScalingDecision(targets={"a": 3}, infrastructure_nodes=1)
        assert d.targets["a"] == 3


class TestClampTargets:
    def test_clamps_both_ends(self):
        out = clamp_targets({"a": 0, "b": 999}, min_nodes=1, max_nodes=100)
        assert out == {"a": 1, "b": 100}

    def test_invalid_range(self):
        with pytest.raises(ElasticityError):
            clamp_targets({}, min_nodes=5, max_nodes=1)

    def test_identity_within_range(self):
        assert clamp_targets({"a": 7}) == {"a": 7}


class TestClusterObservation:
    def test_total_nodes_includes_pending(self):
        obs = ClusterObservation(
            time_minutes=0.0,
            external_arrivals_per_min=10.0,
            components={
                "a": ComponentObservation(component="a", nodes=3, pending_nodes=2),
                "b": ComponentObservation(component="b", nodes=4),
            },
            machine=MachineSpec(),
            sla_latency_ms=100.0,
        )
        assert obs.total_nodes() == 9
