"""Unit tests for the CloudWatch baseline."""

import pytest

from repro.autoscale.cloudwatch import CloudWatchConfig, CloudWatchManager
from repro.autoscale.manager import ClusterObservation, ComponentObservation
from repro.core.regression import MachineSpec
from repro.errors import ElasticityError

MACHINE = MachineSpec(capacity_ms_per_minute=1_000.0)


def _obs(time=0.0, comps=None, arrivals=100.0):
    return ClusterObservation(
        time_minutes=time,
        external_arrivals_per_min=arrivals,
        components=comps or {},
        machine=MACHINE,
        sla_latency_ms=200.0,
        app_latency_ms=50.0,
        app_throughput_per_min=arrivals,
    )


def _comp(name, nodes=10, util=0.5, pending=0):
    return ComponentObservation(component=name, nodes=nodes, pending_nodes=pending, utilization=util)


class TestConfig:
    def test_threshold_ordering_enforced(self):
        with pytest.raises(ElasticityError):
            CloudWatchConfig(high_utilization=0.3, low_utilization=0.5)


class TestPolicy:
    def test_steady_state_holds(self):
        manager = CloudWatchManager()
        obs = _obs(comps={"a": _comp("a", util=0.5), "b": _comp("b", util=0.5)})
        decision = manager.decide(obs)
        assert decision.targets == {"a": 10, "b": 10}

    def test_scale_up_above_high_threshold(self):
        manager = CloudWatchManager()
        obs = _obs(comps={"a": _comp("a", util=0.9), "b": _comp("b", util=0.9)})
        decision = manager.decide(obs)
        assert sum(decision.targets.values()) > 20

    def test_scale_down_below_low_threshold(self):
        manager = CloudWatchManager()
        obs = _obs(comps={"a": _comp("a", util=0.1), "b": _comp("b", util=0.1)})
        decision = manager.decide(obs)
        assert sum(decision.targets.values()) < 20

    def test_uniform_scaling_preserves_proportions(self):
        """CloudWatch scales all components by the same factor — the
        paper's core criticism (Section IV-C example)."""
        manager = CloudWatchManager()
        obs = _obs(comps={"big": _comp("big", nodes=20, util=0.9), "small": _comp("small", nodes=5, util=0.9)})
        decision = manager.decide(obs)
        ratio = decision.targets["big"] / decision.targets["small"]
        assert ratio == pytest.approx(4.0, rel=0.25)

    def test_cooldown_blocks_consecutive_actions(self):
        manager = CloudWatchManager(CloudWatchConfig(cooldown_minutes=5.0))
        hot = _obs(time=0.0, comps={"a": _comp("a", util=0.9)})
        first = manager.decide(hot)
        assert sum(first.targets.values()) > 10
        hot2 = _obs(time=1.0, comps={"a": _comp("a", util=0.9)})
        second = manager.decide(hot2)
        assert second.targets["a"] == 10  # in cooldown: hold

    def test_action_allowed_after_cooldown(self):
        manager = CloudWatchManager(CloudWatchConfig(cooldown_minutes=5.0))
        manager.decide(_obs(time=0.0, comps={"a": _comp("a", util=0.9)}))
        later = manager.decide(_obs(time=6.0, comps={"a": _comp("a", util=0.9)}))
        assert later.targets["a"] > 10

    def test_scale_up_jump_capped(self):
        manager = CloudWatchManager()
        obs = _obs(comps={"a": _comp("a", nodes=10, util=5.0)})
        decision = manager.decide(obs)
        cap = 10 * (1 + manager.config.max_scale_up_fraction)
        assert decision.targets["a"] <= cap + 1

    def test_zero_node_cluster_rejected(self):
        manager = CloudWatchManager()
        with pytest.raises(ElasticityError):
            manager.decide(_obs(comps={"a": _comp("a", nodes=0)}))

    def test_capacity_model_trains_on_intervals(self):
        manager = CloudWatchManager()
        for t in range(10):
            manager.on_interval_end(_obs(time=float(t), comps={"a": _comp("a", util=0.6)}))
        assert manager.capacity_model.ready()

    def test_no_overhead(self):
        assert CloudWatchManager().runtime_overhead_fraction() == 0.0
