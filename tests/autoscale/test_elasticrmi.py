"""Unit tests for the ElasticRMI baseline."""

import pytest

from repro.autoscale.elasticrmi import ElasticRMIConfig, ElasticRMIManager
from repro.autoscale.manager import ClusterObservation, ComponentObservation
from repro.core.regression import MachineSpec
from repro.errors import ElasticityError

MACHINE = MachineSpec(capacity_ms_per_minute=1_000.0)


def _obs(comps):
    return ClusterObservation(
        time_minutes=0.0,
        external_arrivals_per_min=100.0,
        components=comps,
        machine=MACHINE,
        sla_latency_ms=200.0,
    )


def _comp(name, nodes=5, demand=2_000.0, queue=0.0, contention=0.0, arrivals=100.0, pending=0):
    return ComponentObservation(
        component=name,
        nodes=nodes,
        pending_nodes=pending,
        utilization=demand / (nodes * 1_000.0),
        arrivals_per_min=arrivals,
        queue_depth=queue,
        service_demand_ms=demand,
        lock_contention=contention,
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ElasticityError):
            ElasticRMIConfig(target_utilization=0)
        with pytest.raises(ElasticityError):
            ElasticRMIConfig(demand_ewma_alpha=0)


class TestSizing:
    def test_per_component_sizing_from_internal_demand(self):
        manager = ElasticRMIManager(ElasticRMIConfig(demand_ewma_alpha=1.0))
        obs = _obs({"hot": _comp("hot", nodes=2, demand=4_000.0)})
        decision = manager.decide(obs)
        # 4000ms / (1000 × 0.93) ≈ 4.3 → 5, capped by the ramp limiter.
        assert decision.targets["hot"] > 2

    def test_ramp_limiter_caps_single_step(self):
        manager = ElasticRMIManager(ElasticRMIConfig(demand_ewma_alpha=1.0, max_scale_up_fraction=0.15))
        obs = _obs({"hot": _comp("hot", nodes=10, demand=50_000.0)})
        decision = manager.decide(obs)
        assert decision.targets["hot"] <= 12  # +15% of 10, rounded up

    def test_queue_backlog_adds_demand(self):
        manager = ElasticRMIManager(ElasticRMIConfig(demand_ewma_alpha=1.0))
        calm = manager.decide(_obs({"a": _comp("a", nodes=4, demand=2_000.0)}))
        manager2 = ElasticRMIManager(ElasticRMIConfig(demand_ewma_alpha=1.0))
        backlogged = manager2.decide(
            _obs({"a": _comp("a", nodes=4, demand=2_000.0, queue=200.0)})
        )
        assert backlogged.targets["a"] >= calm.targets["a"]

    def test_hysteresis_holds_on_moderate_drop(self):
        manager = ElasticRMIManager(ElasticRMIConfig(demand_ewma_alpha=1.0))
        obs = _obs({"a": _comp("a", nodes=10, demand=5_000.0)})  # needs ~6
        decision = manager.decide(obs)
        assert decision.targets["a"] == 10  # within hysteresis band: hold

    def test_release_on_deep_drop(self):
        manager = ElasticRMIManager(ElasticRMIConfig(demand_ewma_alpha=1.0))
        obs = _obs({"a": _comp("a", nodes=10, demand=500.0)})  # needs ~1
        decision = manager.decide(obs)
        assert decision.targets["a"] < 10


class TestLockAwareness:
    def test_contended_component_not_scaled(self):
        manager = ElasticRMIManager()
        obs = _obs({"lock": _comp("lock", nodes=3, demand=30_000.0, contention=0.9)})
        decision = manager.decide(obs)
        assert decision.targets["lock"] == 3

    def test_below_threshold_scales_normally(self):
        manager = ElasticRMIManager(ElasticRMIConfig(demand_ewma_alpha=1.0))
        obs = _obs({"a": _comp("a", nodes=3, demand=30_000.0, contention=0.2)})
        decision = manager.decide(obs)
        assert decision.targets["a"] > 3


class TestSmoothing:
    def test_ewma_lags_demand_spikes(self):
        """No workload history ⇒ the manager trails a sudden spike."""
        manager = ElasticRMIManager(ElasticRMIConfig(demand_ewma_alpha=0.35, max_scale_up_fraction=10.0))
        calm = _obs({"a": _comp("a", nodes=4, demand=1_000.0)})
        for _ in range(5):
            manager.decide(calm)
        spike = _obs({"a": _comp("a", nodes=4, demand=8_000.0)})
        first = manager.decide(spike)
        # Instant reaction would ask for ceil(8000/930) = 9; the EWMA sees
        # far less on the first spike interval.
        assert first.targets["a"] < 9
        for _ in range(8):
            last = manager.decide(spike)
        assert last.targets["a"] >= 9  # converges eventually
