"""Unit tests for Lamport and vector clocks."""

import pytest

from repro.errors import ReproError
from repro.tracing.clocks import LamportClock, VectorClock, VectorTimestamp


class TestLamportClock:
    def test_tick_monotonic(self):
        c = LamportClock()
        assert [c.tick() for _ in range(3)] == [1, 2, 3]

    def test_receive_advances_past_sender(self):
        c = LamportClock()
        c.tick()
        assert c.receive(10) == 11

    def test_receive_below_local_still_ticks(self):
        c = LamportClock()
        for _ in range(5):
            c.tick()
        assert c.receive(2) == 6

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ReproError):
            LamportClock().receive(-1)


class TestVectorClock:
    def test_happens_before_on_message_chain(self):
        a, b = VectorClock("a"), VectorClock("b")
        ts_send = a.send()
        ts_recv = b.receive(ts_send)
        assert ts_send.happens_before(ts_recv)
        assert not ts_recv.happens_before(ts_send)

    def test_concurrent_events(self):
        a, b = VectorClock("a"), VectorClock("b")
        ts_a = a.tick()
        ts_b = b.tick()
        assert ts_a.concurrent_with(ts_b)
        assert ts_b.concurrent_with(ts_a)

    def test_not_concurrent_with_self(self):
        a = VectorClock("a")
        ts = a.tick()
        assert not ts.concurrent_with(ts)

    def test_merge_takes_componentwise_max(self):
        t1 = VectorTimestamp({"a": 3, "b": 1})
        t2 = VectorTimestamp({"a": 1, "b": 5, "c": 2})
        merged = t1.merged(t2)
        assert merged.clocks == {"a": 3, "b": 5, "c": 2}

    def test_transitivity_through_chain(self):
        a, b, c = VectorClock("a"), VectorClock("b"), VectorClock("c")
        ts1 = a.send()
        ts2 = b.receive(ts1)
        ts3 = b.send()
        ts4 = c.receive(ts3)
        assert ts1.happens_before(ts4)

    def test_requires_process_name(self):
        with pytest.raises(ReproError):
            VectorClock("")

    def test_negative_component_rejected(self):
        a = VectorClock("a")
        with pytest.raises(ReproError):
            a.receive(VectorTimestamp({"b": -1}))


class TestFig3Scenario:
    """The paper's Fig. 3: temporal causality over-approximates.

    msgA and msgB arrive at a payment component concurrently; msgC (the
    response to msgA) is 'caused' by both under happens-before, though
    only msgA actually caused it.
    """

    def test_happens_before_overapproximates(self):
        client_a, client_b, server = VectorClock("ca"), VectorClock("cb"), VectorClock("srv")
        ts_msg_a = client_a.send()
        ts_msg_b = client_b.send()
        server.receive(ts_msg_a)
        server.receive(ts_msg_b)
        ts_msg_c = server.send()  # response to msgA only
        # Temporal causality cannot exclude msgB:
        assert ts_msg_a.happens_before(ts_msg_c)
        assert ts_msg_b.happens_before(ts_msg_c)  # the false positive
