"""Unit tests for the mesoscale HTrace collector."""

import pytest

from repro.errors import ReproError
from repro.tracing.htrace import HTraceCollector


COSTS = {
    "hot_class": {"frontend": 10.0, "hot": 50.0},
    "cold_class": {"frontend": 10.0, "cold": 30.0},
}


class TestValidation:
    def test_window_positive(self):
        with pytest.raises(ReproError):
            HTraceCollector(attribution_window_ms=0)

    def test_alpha_range(self):
        with pytest.raises(ReproError):
            HTraceCollector(ewma_alpha=0)


class TestBlur:
    def test_blur_has_floor(self):
        c = HTraceCollector()
        assert c.overlap_probability(0) == pytest.approx(c.base_blur)

    def test_blur_grows_with_load(self):
        c = HTraceCollector()
        assert c.overlap_probability(5_000) > c.overlap_probability(100)

    def test_blur_bounded_by_max(self):
        c = HTraceCollector()
        assert c.overlap_probability(10**9) <= c.max_blur + 1e-9


class TestWeights:
    def test_weights_track_span_time(self):
        c = HTraceCollector()
        c.observe_interval({"hot_class": 90.0, "cold_class": 10.0}, COSTS)
        weights = c.component_weights()
        assert weights["hot"] > weights["cold"]
        assert weights["frontend"] > 0

    def test_cross_attribution_bleeds_weight(self):
        """Even a class-exclusive component picks up weight from the other
        class's spans under temporal attribution."""
        c = HTraceCollector()
        c.observe_interval({"hot_class": 50.0, "cold_class": 50.0}, COSTS)
        weights = c.component_weights()
        # `cold` would be 15.0 with exact attribution (0.5 × 30); the bleed
        # adds hot-class span time on top of it relative to a no-blur run.
        exact_cold = 0.5 * 30.0
        assert weights["cold"] > exact_cold * 0.9
        # And the hot component's weight is diluted relative to exact.
        assert weights["hot"] < 0.5 * 50.0 * (1 + c.overlap_probability(100.0))

    def test_idle_interval_ignored(self):
        c = HTraceCollector()
        c.observe_interval({"hot_class": 0.0}, COSTS)
        assert c.component_weights() == {}
        assert c.observations == 0

    def test_stale_components_decay(self):
        c = HTraceCollector(ewma_alpha=0.5)
        c.observe_interval({"hot_class": 100.0}, COSTS)
        before = c.component_weights()["hot"]
        c.observe_interval({"cold_class": 100.0}, COSTS)
        after = c.component_weights()["hot"]
        assert after < before

    def test_ewma_smooths_changes(self):
        c = HTraceCollector(ewma_alpha=0.3)
        c.observe_interval({"hot_class": 100.0, "cold_class": 0.0}, COSTS)
        c.observe_interval({"hot_class": 0.0, "cold_class": 100.0}, COSTS)
        weights = c.component_weights()
        # One interval of cold traffic must not erase the hot history.
        assert weights["hot"] > 0
