"""Unit and property tests for Interval Tree Clocks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.tracing.itc import (
    Stamp,
    join_event,
    leq_event,
    max_event,
    min_event,
    norm_event,
    norm_id,
    split_id,
    sum_id,
)


class TestIdTrees:
    def test_norm_collapses(self):
        assert norm_id((0, 0)) == 0
        assert norm_id((1, 1)) == 1
        assert norm_id(((1, 1), 0)) == (1, 0)

    def test_invalid_leaf_rejected(self):
        with pytest.raises(ReproError):
            norm_id(2)

    def test_split_seed(self):
        assert split_id(1) == ((1, 0), (0, 1))

    def test_split_zero(self):
        assert split_id(0) == (0, 0)

    def test_split_then_sum_is_identity(self):
        for i in (1, (1, 0), (0, 1), ((1, 0), 1)):
            a, b = split_id(i)
            assert sum_id(a, b) == norm_id(i)

    def test_sum_overlapping_rejected(self):
        with pytest.raises(ReproError):
            sum_id(1, 1)


class TestEventTrees:
    def test_norm_collapses_equal_leaves(self):
        assert norm_event((2, 1, 1)) == 3

    def test_norm_sinks_minimum(self):
        assert norm_event((1, 2, 3)) == (3, 0, 1)

    def test_min_max(self):
        e = (1, (0, 1, 2), 4)
        assert min_event(e) == 2
        assert max_event(e) == 5

    def test_leq_reflexive(self):
        e = (1, 0, (1, 0, 2))
        assert leq_event(e, e)

    def test_leq_int_cases(self):
        assert leq_event(2, 5)
        assert not leq_event(5, 2)
        assert leq_event(2, (2, 0, 1))
        assert not leq_event((2, 0, 1), 2)

    def test_join_is_upper_bound(self):
        e1 = (1, 2, 0)
        e2 = (2, 0, 1)
        j = join_event(e1, e2)
        assert leq_event(e1, j)
        assert leq_event(e2, j)


class TestStampBasics:
    def test_seed(self):
        s = Stamp.seed()
        assert s.id_tree == 1
        assert s.event_tree == 0

    def test_event_strictly_inflates(self):
        s = Stamp.seed()
        s2 = s.event()
        assert s.happens_before(s2)

    def test_anonymous_stamp_cannot_event(self):
        with pytest.raises(ReproError):
            Stamp.seed().peek().event()

    def test_fork_preserves_history(self):
        s = Stamp.seed().event().event()
        a, b = s.fork()
        assert a.event_tree == s.event_tree
        assert b.event_tree == s.event_tree
        assert sum_id(a.id_tree, b.id_tree) == s.id_tree

    def test_fork_event_concurrency(self):
        a, b = Stamp.seed().fork()
        a2, b2 = a.event(), b.event()
        assert a2.concurrent_with(b2)

    def test_join_after_fork_restores_seed_id(self):
        a, b = Stamp.seed().fork()
        joined = a.join(b)
        assert joined.id_tree == 1

    def test_message_passing_creates_happens_before(self):
        sender, receiver = Stamp.seed().fork()
        sender = sender.event()           # local event at the sender
        msg_ts = sender.peek()            # timestamp attached to a message
        receiver = receiver.join(msg_ts).event()
        assert sender.leq(receiver)
        assert not receiver.leq(sender)

    def test_equality_and_hash(self):
        assert Stamp.seed() == Stamp.seed()
        assert hash(Stamp.seed()) == hash(Stamp.seed())
        assert Stamp.seed() != Stamp.seed().event()


class TestFig3:
    """ITCs are temporal, so the paper's Fig. 3 false positive persists."""

    def test_itc_cannot_exclude_unrelated_predecessor(self):
        server, rest = Stamp.seed().fork()
        client_a, client_b = rest.fork()
        msg_a = client_a.event().peek()
        msg_b = client_b.event().peek()
        server = server.join(msg_a).join(msg_b).event()
        response = server.peek()
        assert leq_event(msg_a.event_tree, response.event_tree)
        # msgB did not cause the response, but happens-before says it might:
        assert leq_event(msg_b.event_tree, response.event_tree)


@st.composite
def stamp_pair_after_random_ops(draw):
    """Run a random fork/event/join schedule over a small stamp population."""
    stamps = list(Stamp.seed().fork())
    for _ in range(draw(st.integers(1, 12))):
        op = draw(st.integers(0, 2))
        idx = draw(st.integers(0, len(stamps) - 1))
        if op == 0:
            stamps[idx] = stamps[idx].event()
        elif op == 1 and len(stamps) < 6:
            a, b = stamps[idx].fork()
            stamps[idx] = a
            stamps.append(b)
        elif op == 2 and len(stamps) > 2:
            other = draw(st.integers(0, len(stamps) - 1))
            if other != idx:
                merged = stamps[idx].join(stamps[other])
                keep = [s for k, s in enumerate(stamps) if k not in (idx, other)]
                stamps = keep + [merged]
    i = draw(st.integers(0, len(stamps) - 1))
    j = draw(st.integers(0, len(stamps) - 1))
    return stamps[i], stamps[j]


class TestStampProperties:
    @given(stamp_pair_after_random_ops())
    @settings(max_examples=200, deadline=None)
    def test_leq_is_a_partial_order(self, pair):
        a, b = pair
        assert a.leq(a)
        if a.leq(b) and b.leq(a):
            assert a.event_tree == b.event_tree

    @given(stamp_pair_after_random_ops())
    @settings(max_examples=200, deadline=None)
    def test_event_dominates_and_join_is_lub(self, pair):
        a, b = pair
        if a.id_tree != 0:
            assert a.happens_before(a.event())
        try:
            joined_events = join_event(a.event_tree, b.event_tree)
        except ReproError:
            return
        assert leq_event(a.event_tree, joined_events)
        assert leq_event(b.event_tree, joined_events)

    @given(stamp_pair_after_random_ops())
    @settings(max_examples=100, deadline=None)
    def test_normalisation_is_idempotent(self, pair):
        a, _ = pair
        assert norm_event(a.event_tree) == a.event_tree
        assert norm_id(a.id_tree) == a.id_tree
