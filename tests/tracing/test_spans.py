"""Unit tests for the temporal span tracer (Fig. 3's false positives)."""

import pytest

from repro.errors import ReproError
from repro.tracing.spans import TemporalSpanTracer


class TestSpanBasics:
    def test_receive_opens_span(self):
        tracer = TemporalSpanTracer()
        span = tracer.record_receive("payment", "charge", 100.0, 20.0, trace_root=1)
        assert span.component == "payment"
        assert span.end_ms == 120.0
        assert span.span_id in tracer.spans

    def test_invalid_window(self):
        with pytest.raises(ReproError):
            TemporalSpanTracer(attribution_window_ms=0)


class TestTemporalParenting:
    def test_fig3_false_positive(self):
        """msgA and msgB both precede msgC temporally; the tracer blames both."""
        tracer = TemporalSpanTracer(attribution_window_ms=50.0)
        span_a = tracer.record_receive("payment", "process_card", 100.0, 30.0, trace_root=1)
        span_b = tracer.record_receive("payment", "get_orders", 110.0, 30.0, trace_root=2)
        emitted = tracer.record_emit(
            "payment", "card_ok", 130.0, 10.0, "frontend", trace_root=1, true_parent=span_a.span_id
        )
        assert span_a.span_id in emitted.parents
        assert span_b.span_id in emitted.parents  # the false positive

    def test_old_spans_outside_window_excluded(self):
        tracer = TemporalSpanTracer(attribution_window_ms=50.0)
        old = tracer.record_receive("c", "x", 0.0, 10.0, trace_root=1)
        emitted = tracer.record_emit("c", "y", 200.0, 5.0, "d", trace_root=2)
        assert old.span_id not in emitted.parents

    def test_isolated_request_attributed_precisely(self):
        tracer = TemporalSpanTracer(attribution_window_ms=50.0)
        parent = tracer.record_receive("c", "x", 100.0, 10.0, trace_root=1)
        emitted = tracer.record_emit(
            "c", "y", 105.0, 5.0, "d", trace_root=1, true_parent=parent.span_id
        )
        assert emitted.parents == (parent.span_id,)


class TestPrecision:
    def test_perfect_precision_when_isolated(self):
        tracer = TemporalSpanTracer()
        p = tracer.record_receive("c", "x", 0.0, 10.0, trace_root=1)
        tracer.record_emit("c", "y", 5.0, 5.0, "d", trace_root=1, true_parent=p.span_id)
        assert tracer.attribution_precision() == 1.0

    def test_precision_degrades_under_concurrency(self):
        tracer = TemporalSpanTracer(attribution_window_ms=100.0)
        # Many concurrent requests at the same component.
        parents = [
            tracer.record_receive("c", "x", float(t), 50.0, trace_root=t) for t in range(0, 50, 5)
        ]
        for i, p in enumerate(parents):
            tracer.record_emit(
                "c", "y", 50.0 + i, 5.0, "d", trace_root=i, true_parent=p.span_id
            )
        assert tracer.attribution_precision() < 0.5

    def test_precision_without_ground_truth_is_one(self):
        tracer = TemporalSpanTracer()
        tracer.record_receive("c", "x", 0.0, 10.0, trace_root=1)
        assert tracer.attribution_precision() == 1.0
