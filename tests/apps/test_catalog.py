"""Tests for the scenario catalog and overhead calibration."""

import pytest

from repro.apps import marketcetera
from repro.apps.catalog import (
    SCENARIOS,
    average_mix,
    calibrate_overhead_model,
    load_scenario,
)
from repro.errors import SimulationError


class TestAverageMix:
    def test_weights_sum_to_one(self):
        avg = average_mix(marketcetera.mix_schedule())
        assert sum(avg.values()) == pytest.approx(1.0)

    def test_duration_validation(self):
        with pytest.raises(SimulationError):
            average_mix(marketcetera.mix_schedule(), duration_minutes=0)


class TestCalibration:
    def test_marketcetera_hits_fig5_anchors(self):
        """The calibrated model reproduces the paper's overhead anchors for
        this app's actual instruction mix."""
        app = marketcetera.build()
        classes = marketcetera.request_classes()
        weights = average_mix(marketcetera.mix_schedule())
        model = calibrate_overhead_model(
            app, classes, class_weights=weights,
            full_overhead=0.378, marginal_overhead_at_5pct=0.578,
        )
        # Recompute aggregate overhead from the model at both anchors.
        from repro.core.dca import analyze_application
        from repro.sim.runtime import ApplicationRuntime

        def aggregate(rate):
            runtime = ApplicationRuntime(
                app, dca_result=analyze_application(app),
                overhead_model=model, sampling_rate=rate,
            )
            base = instr = 0.0
            for cls in classes:
                w = weights[cls.name]
                trace = runtime.execute_request(cls, sampled=True)
                base += w * sum(
                    msgs * app.components[c].service_cost
                    for c, msgs in trace.component_messages.items()
                )
                instr += w * sum(trace.component_instr_ms.values())
            return instr / base

        assert aggregate(1.0) == pytest.approx(0.378, rel=0.05)
        assert 0.05 * aggregate(0.05) == pytest.approx(0.05 * 0.578, rel=0.08)

    def test_infeasible_anchor_rejected(self):
        app = marketcetera.build()
        with pytest.raises(SimulationError):
            calibrate_overhead_model(
                app, marketcetera.request_classes(),
                full_overhead=0.6, marginal_overhead_at_5pct=0.5,
            )

    def test_fixed_fraction_bound(self):
        app = marketcetera.build()
        with pytest.raises(SimulationError):
            calibrate_overhead_model(
                app, marketcetera.request_classes(),
                full_overhead=0.3, marginal_overhead_at_5pct=0.6,
                fixed_fraction=0.4,
            )


class TestScenarios:
    def test_all_scenarios_load(self):
        for name in SCENARIOS:
            scenario = load_scenario(name)
            assert scenario.name == name
            assert set(scenario.deployments) == set(scenario.app.components)
            assert scenario.magnitudes[0] < scenario.magnitudes[1]

    def test_unknown_scenario(self):
        with pytest.raises(SimulationError):
            load_scenario("nope")

    def test_request_class_lookup(self):
        scenario = load_scenario("hedwig")
        assert scenario.request_class("publish").request_type == "pub_request"
        with pytest.raises(SimulationError):
            scenario.request_class("ghost")
