"""Tests for the three evaluation applications (Marketcetera, Hedwig,
Zookeeper) and their scenario configurations."""

import pytest

from repro.apps import hedwig, marketcetera, zookeeper
from repro.apps.hedwig import DELIVERY_FANOUT
from repro.apps.zookeeper import QUORUM
from repro.core.dca import analyze_application
from repro.core.elasticity import detect_serialization_suspects
from repro.core.paths import enumerate_causal_paths
from repro.sim.runtime import ApplicationRuntime


class TestMarketcetera:
    def test_four_request_classes(self):
        assert len(marketcetera.request_classes()) == 4

    def test_order_submit_path(self, trading_app):
        runtime = ApplicationRuntime(trading_app)
        trace = runtime.execute_request(marketcetera.request_classes()[0])
        assert {"fix-gateway", "risk-engine", "order-router", "matching-engine",
                "position-tracker", "settlement"} <= trace.components
        assert trace.responses == 1

    def test_cancel_path_is_cheap(self, trading_app):
        runtime = ApplicationRuntime(trading_app)
        submit = runtime.execute_request(marketcetera.request_classes()[0])
        cancel = runtime.execute_request(marketcetera.request_classes()[1])
        assert cancel.total_messages() < submit.total_messages()
        assert "risk-engine" not in cancel.components

    def test_strategy_eval_reenters_risk_path(self, trading_app):
        runtime = ApplicationRuntime(trading_app)
        trace = runtime.execute_request(marketcetera.request_classes()[3])
        assert "strategy-engine" in trace.components
        assert "risk-engine" in trace.components

    def test_risk_exposure_is_tracked(self, trading_app):
        result = analyze_application(trading_app)
        assert "exposure" in result.per_component["risk-engine"].v_tr

    def test_deployments_cover_all_components(self, trading_app):
        assert set(marketcetera.deployments()) == set(trading_app.components)

    def test_magnitudes_ordered(self):
        low, high = marketcetera.magnitudes()
        assert 0 < low < high


class TestHedwig:
    def test_publish_fans_out_to_subscribers(self, pubsub_app):
        runtime = ApplicationRuntime(pubsub_app)
        trace = runtime.execute_request(hedwig.request_classes()[0])
        assert trace.responses == DELIVERY_FANOUT
        assert {"hub", "topic-manager", "persistence", "delivery"} <= trace.components

    def test_subscribe_and_unsubscribe_share_path_shape(self, pubsub_app):
        runtime = ApplicationRuntime(pubsub_app)
        sub = runtime.execute_request(hedwig.request_classes()[1])
        unsub = runtime.execute_request(hedwig.request_classes()[2])
        assert sub.components == unsub.components
        assert sub.signature != unsub.signature  # different message types

    def test_consume_reads_through_persistence(self, pubsub_app):
        runtime = ApplicationRuntime(pubsub_app)
        trace = runtime.execute_request(hedwig.request_classes()[3])
        assert "persistence" in trace.components
        assert "topic-manager" not in trace.components

    def test_deployments_cover_all_components(self, pubsub_app):
        assert set(hedwig.deployments()) == set(pubsub_app.components)


class TestZookeeper:
    def test_write_path_hits_quorum(self, coord_app):
        runtime = ApplicationRuntime(coord_app)
        trace = runtime.execute_request(zookeeper.request_classes()[1])
        # QUORUM appends + 1 commit.
        assert trace.component_messages["quorum-log"] == QUORUM + 1
        assert trace.responses == 2  # write_response + watch_event

    def test_read_path_avoids_leader(self, coord_app):
        runtime = ApplicationRuntime(coord_app)
        trace = runtime.execute_request(zookeeper.request_classes()[0])
        assert "leader" not in trace.components
        assert "quorum-log" not in trace.components

    def test_quorum_log_is_serialization_suspect(self, coord_app):
        assert detect_serialization_suspects(coord_app) == {"quorum-log"}

    def test_quorum_log_deployment_serial_limit(self):
        spec = zookeeper.deployments()["quorum-log"]
        assert spec.serial_limit is not None

    def test_static_paths_per_request_type(self, coord_app):
        paths = enumerate_causal_paths(coord_app)
        assert set(paths) == {"zk_read", "zk_write", "zk_session"}


class TestMixSchedules:
    @pytest.mark.parametrize("module", [marketcetera, hedwig, zookeeper])
    def test_mix_references_declared_classes(self, module):
        class_names = {c.name for c in module.request_classes()}
        assert set(module.mix_schedule().class_names()) <= class_names
