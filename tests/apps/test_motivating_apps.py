"""Tests for the motivating applications: Universal Search (Fig. 1) and
E-Commerce (Fig. 2)."""


from repro.apps import ecommerce, universal_search
from repro.apps.universal_search import NEWS_SHARDS, WEB_SHARDS
from repro.core.dca import analyze_application
from repro.core.paths import enumerate_causal_paths
from repro.sim.runtime import ApplicationRuntime


class TestUniversalSearch:
    def test_three_query_classes(self, search_app):
        classes = universal_search.request_classes()
        assert {c.name for c in classes} == {"web_search", "news_search", "image_search"}

    def test_web_search_fans_out_to_all_shards(self, search_app):
        runtime = ApplicationRuntime(search_app)
        trace = runtime.execute_request(universal_search.request_classes()[0])
        assert trace.component_messages["query-index"] == WEB_SHARDS
        assert trace.component_messages["ad-system"] == 1
        assert trace.component_messages["spell-checker"] == 1
        assert "news-service" not in trace.component_messages

    def test_news_search_uses_narrow_scan(self, search_app):
        runtime = ApplicationRuntime(search_app)
        trace = runtime.execute_request(universal_search.request_classes()[1])
        assert trace.component_messages["query-index"] == NEWS_SHARDS
        assert trace.component_messages["news-service"] == 1
        assert "ad-system" not in trace.component_messages

    def test_image_search_touches_image_service_only(self, search_app):
        runtime = ApplicationRuntime(search_app)
        trace = runtime.execute_request(universal_search.request_classes()[2])
        assert trace.component_messages["image-service"] == 1
        assert "query-index" not in trace.component_messages

    def test_every_class_reaches_the_client(self, search_app):
        runtime = ApplicationRuntime(search_app)
        for cls in universal_search.request_classes():
            assert runtime.execute_request(cls).responses >= 1

    def test_dca_tracks_aggregator_sum(self, search_app):
        result = analyze_application(search_app)
        assert "partial_sum" in result.per_component["aggregator"].v_tr


class TestEcommerce:
    def test_two_conditional_flows_are_disjoint_midtier(self, shop_app):
        runtime = ApplicationRuntime(shop_app)
        simple, purchase = ecommerce.request_classes()
        t_simple = runtime.execute_request(simple)
        t_purchase = runtime.execute_request(purchase)
        assert "payment" not in t_simple.component_messages
        assert "customer-tracking" not in t_purchase.component_messages
        # Both flows share the front end and the price DB (Fig. 2).
        shared = t_simple.components & t_purchase.components
        assert shared == {"web-frontend", "price-db"}

    def test_purchase_path_components(self, shop_app):
        runtime = ApplicationRuntime(shop_app)
        _, purchase = ecommerce.request_classes()
        trace = runtime.execute_request(purchase)
        assert {"payment", "fulfillment", "inventory"} <= trace.components

    def test_fraud_branch_short_circuits(self, shop_app):
        from repro.workloads.generator import RequestClass

        runtime = ApplicationRuntime(shop_app)
        big = RequestClass(
            "big", "visit", {"kind": "purchase", "page": "x", "amount": 999_999, "sku": "gold"}
        )
        trace = runtime.execute_request(big)
        assert "fulfillment" not in trace.component_messages
        assert trace.responses == 1  # declined directly by payment

    def test_static_paths_cover_all_flows(self, shop_app):
        paths = enumerate_causal_paths(shop_app)
        assert len(paths["visit"]) == 3  # simple, purchase, declined
