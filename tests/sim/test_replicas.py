"""Tests for replica-level routing (hot shards, per-replica state)."""

import pytest

from repro.core.dca import analyze_application
from repro.errors import SimulationError
from repro.sim.replicas import ReplicaSpec, ReplicatedApplicationRuntime
from repro.workloads.generator import RequestClass


def _runtime(pipeline_app, b_replicas=4, routing_field=None, dca=False):
    specs = {"B": ReplicaSpec(count=b_replicas, routing_field=routing_field)}
    return ReplicatedApplicationRuntime(
        pipeline_app,
        specs,
        dca_result=analyze_application(pipeline_app) if dca else None,
    )


class TestSpecs:
    def test_count_validation(self):
        with pytest.raises(SimulationError):
            ReplicaSpec(count=0)

    def test_unknown_component_rejected(self, pipeline_app):
        with pytest.raises(SimulationError, match="unknown components"):
            ReplicatedApplicationRuntime(pipeline_app, {"ghost": ReplicaSpec()})


class TestRoundRobin:
    def test_spreads_messages_evenly(self, pipeline_app):
        runtime = _runtime(pipeline_app, b_replicas=4)
        totals = [0, 0, 0, 0]
        for i in range(40):
            trace = runtime.execute_request(RequestClass("go", "start", {"x": i}))
            for idx, c in enumerate(trace.replica_messages["B"]):
                totals[idx] += c
        assert totals == [10, 10, 10, 10]

    def test_rr_cursor_cycles(self, pipeline_app):
        runtime = _runtime(pipeline_app, b_replicas=3)
        picks = [
            runtime.execute_request(
                RequestClass("go", "start", {"x": i})
            ).replica_messages["B"].index(1)
            for i in range(6)
        ]
        assert picks == [0, 1, 2, 0, 1, 2]


class TestHashRouting:
    def test_same_key_same_replica(self, pipeline_app):
        runtime = _runtime(pipeline_app, b_replicas=8, routing_field="v")
        # A forwards field v = acc; with a fresh runtime per request the
        # key is deterministic. Use identical payloads → identical replica.
        t1 = runtime.execute_request(RequestClass("go", "start", {"x": 0}))
        t2 = runtime.execute_request(RequestClass("go", "start", {"x": 0}))
        assert t1.replica_messages["B"] == t2.replica_messages["B"]

    def test_hot_key_concentrates_load(self, pipeline_app):
        """Section II-A: spikes on one key land on one shard."""
        runtime = _runtime(pipeline_app, b_replicas=8, routing_field="v")
        counts = [0] * 8
        for _ in range(50):
            trace = runtime.execute_request(RequestClass("go", "start", {"x": 0}))
            for idx, c in enumerate(trace.replica_messages["B"]):
                counts[idx] += c
        # x=0 keeps A's accumulator at 0, so every request carries the same
        # key and the same shard receives all 50 messages.
        assert max(counts) == 50
        assert sum(1 for c in counts if c > 0) == 1

    def test_diverse_keys_spread_load(self, pipeline_app):
        runtime = _runtime(pipeline_app, b_replicas=8, routing_field="v")
        counts = [0] * 8
        for i in range(200):
            trace = runtime.execute_request(RequestClass("go", "start", {"x": i + 1}))
            for idx, c in enumerate(trace.replica_messages["B"]):
                counts[idx] += c
        assert sum(1 for c in counts if c > 0) >= 5  # most shards hit

    def test_missing_routing_field_rejected(self, pipeline_app):
        specs = {"A": ReplicaSpec(count=2, routing_field="nope")}
        runtime = ReplicatedApplicationRuntime(pipeline_app, specs)
        with pytest.raises(SimulationError, match="routing"):
            runtime.execute_request(RequestClass("go", "start", {"x": 1}))


class TestPerReplicaState:
    def test_state_isolated_between_replicas(self, pipeline_app):
        runtime = _runtime(pipeline_app, b_replicas=2)
        runtime.execute_request(RequestClass("go", "start", {"x": 5}))
        runtime.execute_request(RequestClass("go", "start", {"x": 7}))
        # Round-robin: replica 0 saw acc=5, replica 1 saw acc=12.
        assert runtime.replica_state("B", 0).values["last"] == 5
        assert runtime.replica_state("B", 1).values["last"] == 12

    def test_provenance_isolated_when_instrumented(self, pipeline_app):
        runtime = _runtime(pipeline_app, b_replicas=2, dca=True)
        runtime.execute_request(RequestClass("go", "start", {"x": 5}))
        a0 = runtime.replica_state("A", 0)
        assert "acc" in a0.provenance  # A has one replica and tracked acc

    def test_unknown_replica_lookup(self, pipeline_app):
        runtime = _runtime(pipeline_app)
        with pytest.raises(SimulationError):
            runtime.replica_state("B", 99)

    def test_responses_counted(self, pipeline_app):
        runtime = _runtime(pipeline_app)
        trace = runtime.execute_request(RequestClass("go", "start", {"x": 1}))
        assert trace.responses == 1

    def test_hottest_replica_share(self, pipeline_app):
        runtime = _runtime(pipeline_app, b_replicas=2)
        trace = runtime.execute_request(RequestClass("go", "start", {"x": 1}))
        assert trace.hottest_replica_share("B") == 1.0
        assert trace.hottest_replica_share("missing") == 0.0
