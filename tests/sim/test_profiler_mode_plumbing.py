"""Profiler precision-mode plumbing: config, CLI, and replay eligibility.

The sketch tiers change what the event engine may replay: batched
replayed record ops are additive for exact buckets but would change
space-saving promotion order, so any non-exact profiler (or a manager
that can downshift into one mid-run) must cleanly disable the
converged-replay cutover while still running under the event engine.
"""

import pytest

from repro.apps.catalog import load_scenario
from repro.cli import main
from repro.core.elasticity import ProfileStalenessDetector, StalenessPolicy
from repro.errors import EvaluationError, SimulationError
from repro.evalx.experiment import ExperimentConfig, build_simulator
from repro.sim.engine import SimulationConfig
from repro.sim.events import ReplayIngestor
from repro.sim.parity import diff_results
from repro.telemetry import MetricsRegistry


def _build(manager="DCA-10%", engine="tick", scenario="hedwig", **cfg_kwargs):
    config = ExperimentConfig(duration_minutes=40, seed=7, engine=engine, **cfg_kwargs)
    registry = MetricsRegistry()
    sim = build_simulator(
        load_scenario(scenario), manager, config=config, registry=registry
    )
    return sim, registry


class TestConfigValidation:
    def test_sim_config_rejects_unknown_mode(self):
        with pytest.raises(SimulationError):
            SimulationConfig(profiler_mode="fuzzy")

    def test_sim_config_rejects_bad_topk(self):
        with pytest.raises(SimulationError):
            SimulationConfig(profiler_topk=0)

    def test_experiment_config_rejects_unknown_mode(self):
        with pytest.raises(EvaluationError):
            ExperimentConfig(profiler_mode="fuzzy")

    def test_experiment_config_propagates_to_sim(self):
        config = ExperimentConfig(profiler_mode="topk", profiler_topk=64)
        assert config.sim.profiler_mode == "topk"
        assert config.sim.profiler_topk == 64

    def test_default_is_exact(self):
        assert ExperimentConfig().sim.profiler_mode == "exact"


class TestBuildSimulator:
    def test_dca_profiler_gets_mode(self):
        sim, _ = _build(profiler_mode="topk", profiler_topk=64)
        assert sim.dca.profiler.mode == "topk"
        assert sim.dca.profiler.topk_k == 64

    def test_component_mode(self):
        sim, _ = _build(profiler_mode="component")
        assert sim.dca.profiler.mode == "component"

    def test_baseline_manager_unaffected(self):
        sim, _ = _build(manager="CloudWatch", profiler_mode="topk")
        assert sim.dca is None


class TestCLI:
    def test_simulate_accepts_profiler_mode(self, capsys):
        assert main(
            [
                "simulate",
                "hedwig",
                "--manager",
                "DCA-10%",
                "--duration",
                "10",
                "--profiler-mode",
                "topk",
                "--profiler-topk",
                "64",
            ]
        ) == 0
        assert "agility" in capsys.readouterr().out

    def test_unknown_mode_rejected(self):
        with pytest.raises(SystemExit):
            main(
                ["simulate", "hedwig", "--manager", "DCA-10%", "--profiler-mode", "fuzzy"]
            )


class TestReplayEligibility:
    def test_sketch_mode_disables_cutover(self):
        # Long enough that an exact-mode run would engage replay
        # (~80 intervals to converge); topk must run full fidelity.
        config = ExperimentConfig(
            duration_minutes=160, seed=7, engine="event", profiler_mode="topk"
        )
        sim = build_simulator(
            load_scenario("marketcetera"),
            "DCA-100%",
            config=config,
            registry=MetricsRegistry(),
        )
        sim.run()
        assert sim.event_runner.ingestor is None

    def test_exact_mode_still_engages(self):
        config = ExperimentConfig(duration_minutes=160, seed=7, engine="event")
        sim = build_simulator(
            load_scenario("marketcetera"),
            "DCA-100%",
            config=config,
            registry=MetricsRegistry(),
        )
        sim.run()
        assert sim.event_runner.ingestor is not None
        assert sim.event_runner.ingestor.replaying

    def test_ingestor_rejects_sketch_profiler(self):
        sim, _ = _build(engine="event", profiler_mode="topk")
        with pytest.raises(ValueError):
            ReplayIngestor(sim)

    def test_ingestor_rejects_downshift_capable_manager(self):
        sim, registry = _build(engine="event")
        sim.manager.staleness_detector = ProfileStalenessDetector(
            sim.dca.profiler,
            StalenessPolicy(downshift_mode="topk"),
            registry,
        )
        with pytest.raises(ValueError):
            ReplayIngestor(sim)

    def test_downshift_capable_manager_disables_eligibility(self):
        sim, registry = _build(engine="event")
        sim.manager.staleness_detector = ProfileStalenessDetector(
            sim.dca.profiler,
            StalenessPolicy(downshift_mode="component"),
            registry,
        )
        sim.run()
        assert sim.event_runner.ingestor is None


class TestTopKEngineSmoke:
    def test_tick_and_event_agree_in_topk_mode(self):
        """With replay disabled, both engines drive the same full-fidelity
        ingestion — interval records must match exactly."""
        results = {}
        for engine in ("tick", "event"):
            sim, _ = _build(engine=engine, profiler_mode="topk", profiler_topk=64)
            results[engine] = sim.run()
        diffs = diff_results(results["tick"], results["event"])
        assert not diffs, diffs
