"""Hardened parity-artifact loading and the ``--parity-diffs`` reporter.

A CI job that points at ``$PARITY_DIFF_DIR`` and finds a truncated or
malformed artifact must fail loudly — an empty diff JSON read as "no
diffs" would convert a crashed parity run into a silent pass.  Mirrors
the ``check_regression`` input gates for ``BENCH_*.json``.
"""

import json

import pytest

from repro.errors import ParityArtifactError, ReproError
from repro.sim.parity import (
    ParityReport,
    _dump_report,
    load_parity_report,
    scan_parity_diff_dir,
)


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(payload if isinstance(payload, str) else json.dumps(payload))
    return str(path)


def _report(**overrides):
    base = dict(scenario="hedwig", manager="DCA-10%", seed=7, duration_minutes=10)
    base.update(overrides)
    return ParityReport(**base)


class TestLoadParityReport:
    def test_roundtrip_of_dumped_report(self, tmp_path):
        report = _report(record_diffs=["interval[3].arrivals: tick=1 event=2"])
        path = _dump_report(report, str(tmp_path))
        data = load_parity_report(path)
        assert data["ok"] is False
        assert data["scenario"] == "hedwig"
        assert data["record_diffs"] == report.record_diffs

    def test_missing_file(self, tmp_path):
        with pytest.raises(ParityArtifactError, match="not found"):
            load_parity_report(str(tmp_path / "parity-none.json"))

    def test_empty_file_is_an_error_not_a_pass(self, tmp_path):
        path = _write(tmp_path, "parity-empty.json", "")
        with pytest.raises(ParityArtifactError, match="empty"):
            load_parity_report(path)

    def test_whitespace_only_file(self, tmp_path):
        path = _write(tmp_path, "parity-blank.json", "  \n\t\n")
        with pytest.raises(ParityArtifactError, match="empty"):
            load_parity_report(path)

    def test_truncated_json(self, tmp_path):
        path = _write(tmp_path, "parity-trunc.json", '{"scenario": "hed')
        with pytest.raises(ParityArtifactError, match="not valid JSON"):
            load_parity_report(path)

    def test_non_object_json(self, tmp_path):
        path = _write(tmp_path, "parity-list.json", "[]")
        with pytest.raises(ParityArtifactError, match="JSON object"):
            load_parity_report(path)

    def test_missing_required_keys(self, tmp_path):
        path = _write(tmp_path, "parity-partial.json", {"scenario": "hedwig"})
        with pytest.raises(ParityArtifactError, match="missing required keys"):
            load_parity_report(path)

    def test_non_list_diff_field(self, tmp_path):
        payload = json.loads(json.dumps(_report().to_dict(), default=str))
        payload["record_diffs"] = "oops"
        path = _write(tmp_path, "parity-bad.json", payload)
        with pytest.raises(ParityArtifactError, match="must be a list"):
            load_parity_report(path)

    def test_ok_true_with_diffs_is_inconsistent(self, tmp_path):
        payload = json.loads(json.dumps(_report().to_dict(), default=str))
        payload["ok"] = True
        payload["snapshot_diffs"] = ["metric x: tick=1 event=2"]
        path = _write(tmp_path, "parity-lie.json", payload)
        with pytest.raises(ParityArtifactError, match="inconsistent"):
            load_parity_report(path)


class TestScanParityDiffDir:
    def test_unset_and_empty_target_rejected(self, monkeypatch):
        monkeypatch.delenv("PARITY_DIFF_DIR", raising=False)
        with pytest.raises(ParityArtifactError, match="unset"):
            scan_parity_diff_dir()

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ParityArtifactError, match="not found"):
            scan_parity_diff_dir(str(tmp_path / "nope"))

    def test_empty_directory_is_a_legitimate_pass(self, tmp_path):
        assert scan_parity_diff_dir(str(tmp_path)) == []

    def test_ignores_non_artifact_files(self, tmp_path):
        _write(tmp_path, "notes.txt", "not an artifact")
        _write(tmp_path, "parity.json.bak", "{}")
        assert scan_parity_diff_dir(str(tmp_path)) == []

    def test_loads_all_artifacts_sorted(self, tmp_path):
        _dump_report(_report(scenario="zookeeper", record_diffs=["d"]), str(tmp_path))
        _dump_report(_report(scenario="hedwig", record_diffs=["d"]), str(tmp_path))
        reports = scan_parity_diff_dir(str(tmp_path))
        assert [r["scenario"] for r in reports] == ["hedwig", "zookeeper"]

    def test_one_bad_artifact_poisons_the_scan(self, tmp_path):
        _dump_report(_report(record_diffs=["d"]), str(tmp_path))
        _write(tmp_path, "parity-bad.json", "")
        with pytest.raises(ParityArtifactError):
            scan_parity_diff_dir(str(tmp_path))

    def test_env_var_names_the_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv("PARITY_DIFF_DIR", str(tmp_path))
        _dump_report(_report(record_diffs=["d"]), str(tmp_path))
        assert len(scan_parity_diff_dir()) == 1


class TestCliParityDiffReporter:
    """``repro faults --parity-diffs DIR`` surfaces artifacts correctly."""

    def test_empty_dir_reports_all_passed(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["faults", "--parity-diffs", str(tmp_path)]) == 0
        assert "all parity runs passed" in capsys.readouterr().out

    def test_divergence_exits_nonzero_with_details(self, tmp_path, capsys):
        from repro.cli import main

        _dump_report(
            _report(record_diffs=["interval[0].arrivals: tick=1 event=2"]),
            str(tmp_path),
        )
        assert main(["faults", "--parity-diffs", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "DIVERGED" in out
        assert "interval[0].arrivals" in out
        assert "1/1 artifact(s) record a divergence" in out

    def test_malformed_artifact_is_a_cli_error(self, tmp_path, capsys):
        from repro.cli import main

        _write(tmp_path, "parity-empty.json", "")
        assert main(["faults", "--parity-diffs", str(tmp_path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_dir_is_a_cli_error(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["faults", "--parity-diffs", str(tmp_path / "gone")]) == 1
        assert "error:" in capsys.readouterr().err


def test_parity_artifact_error_is_a_repro_error():
    """The CLI's top-level handler must catch artifact failures."""
    assert issubclass(ParityArtifactError, ReproError)
