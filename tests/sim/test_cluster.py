"""Unit tests for the provisioning state machine."""

import pytest

from repro.errors import SimulationError
from repro.sim.cluster import Cluster, ComponentGroup, DeploymentSpec


class TestDeploymentSpec:
    def test_validation(self):
        with pytest.raises(SimulationError):
            DeploymentSpec(min_nodes=0)
        with pytest.raises(SimulationError):
            DeploymentSpec(initial_nodes=0, min_nodes=1)
        with pytest.raises(SimulationError):
            DeploymentSpec(initial_nodes=600, max_nodes=500)
        with pytest.raises(SimulationError):
            DeploymentSpec(serial_limit=0)


class TestComponentGroup:
    def _group(self, **kwargs):
        return ComponentGroup("x", DeploymentSpec(**kwargs))

    def test_scale_up_goes_pending_then_ready(self):
        g = self._group(initial_nodes=5)
        g.apply_target(8, now_minutes=0.0, provision_delay_minutes=2.0, deprovision_delay_minutes=1.0)
        assert g.ready == 5
        assert g.pending == 3
        g.advance(1.0)
        assert g.ready == 5
        g.advance(2.0)
        assert g.ready == 8
        assert g.pending == 0

    def test_scale_down_drains(self):
        g = self._group(initial_nodes=8)
        g.apply_target(5, 0.0, 2.0, 1.0)
        assert g.ready == 5
        assert g.draining == 3
        assert g.provisioned == 8  # still paying for draining nodes
        g.advance(1.0)
        assert g.draining == 0
        assert g.provisioned == 5

    def test_scale_down_cancels_pending_first(self):
        g = self._group(initial_nodes=5)
        g.apply_target(10, 0.0, 5.0, 1.0)
        assert g.pending == 5
        g.apply_target(7, 0.5, 5.0, 1.0)
        assert g.pending == 2
        assert g.ready == 5  # no ready node was drained

    def test_min_nodes_respected(self):
        g = self._group(initial_nodes=3, min_nodes=2)
        g.apply_target(0, 0.0, 2.0, 1.0)
        assert g.ready >= 2

    def test_max_nodes_respected(self):
        g = self._group(initial_nodes=3, max_nodes=5)
        g.apply_target(100, 0.0, 2.0, 1.0)
        assert g.ready + g.pending == 5

    def test_serial_limit_caps_effective_nodes(self):
        g = self._group(initial_nodes=10, serial_limit=3)
        assert g.effective_nodes() == 3
        assert g.provisioned == 10

    def test_no_serial_limit(self):
        g = self._group(initial_nodes=10)
        assert g.effective_nodes() == 10

    def test_idempotent_target(self):
        g = self._group(initial_nodes=5)
        g.apply_target(5, 0.0, 2.0, 1.0)
        assert g.pending == 0
        assert g.draining == 0


class TestCluster:
    def test_requires_deployments(self):
        with pytest.raises(SimulationError):
            Cluster({})

    def test_negative_delays_rejected(self):
        with pytest.raises(SimulationError):
            Cluster({"a": DeploymentSpec()}, provision_delay_minutes=-1)

    def test_unknown_target_rejected(self):
        cluster = Cluster({"a": DeploymentSpec()})
        with pytest.raises(SimulationError):
            cluster.apply_targets({"ghost": 5}, 0.0)

    def test_total_provisioned(self):
        cluster = Cluster({"a": DeploymentSpec(initial_nodes=4), "b": DeploymentSpec(initial_nodes=6)})
        assert cluster.total_provisioned() == 10

    def test_advance_applies_to_all_groups(self):
        cluster = Cluster(
            {"a": DeploymentSpec(initial_nodes=2), "b": DeploymentSpec(initial_nodes=2)},
            provision_delay_minutes=1.0,
        )
        cluster.apply_targets({"a": 4, "b": 5}, 0.0)
        cluster.advance(1.0)
        assert cluster.group("a").ready == 4
        assert cluster.group("b").ready == 5

    def test_unknown_group_lookup(self):
        cluster = Cluster({"a": DeploymentSpec()})
        with pytest.raises(SimulationError):
            cluster.group("zzz")
