"""Failure-injection tests: elasticity under node churn."""

import pytest

from repro.errors import SimulationError
from repro.autoscale.elasticrmi import ElasticRMIManager
from repro.core.regression import MachineSpec
from repro.sim.cluster import ComponentGroup, DeploymentSpec
from repro.sim.engine import ClusterSimulator, SimulationConfig
from repro.workloads.generator import RequestClass, WorkloadGenerator
from repro.workloads.patterns import MixPhase, ScaledPattern, StepMixSchedule

MACHINE = MachineSpec(capacity_ms_per_minute=1_000.0)


class TestFailNodes:
    def test_fail_reduces_ready(self):
        g = ComponentGroup("x", DeploymentSpec(initial_nodes=5))
        assert g.fail_nodes(2) == 2
        assert g.ready == 3

    def test_cannot_fail_more_than_ready(self):
        g = ComponentGroup("x", DeploymentSpec(initial_nodes=2))
        assert g.fail_nodes(10) == 2
        assert g.ready == 0

    def test_negative_count_rejected(self):
        g = ComponentGroup("x", DeploymentSpec(initial_nodes=2))
        with pytest.raises(SimulationError):
            g.fail_nodes(-1)

    def test_failed_nodes_not_refunded(self):
        g = ComponentGroup("x", DeploymentSpec(initial_nodes=5))
        g.fail_nodes(2)
        assert g.provisioned == 3  # no draining entry for crashed nodes


def _sim(pipeline_app, manager, failure_rate, duration=60, rate=100.0):
    classes = [RequestClass("go", "start", {"x": 5})]
    generator = WorkloadGenerator(
        ScaledPattern(lambda t: 1.0, rate, rate),
        StepMixSchedule([MixPhase(0.0, {"go": 1.0})]),
        classes,
        deterministic=True,
    )
    deployments = {name: DeploymentSpec(initial_nodes=3) for name in pipeline_app.components}
    return ClusterSimulator(
        pipeline_app,
        generator,
        deployments,
        MACHINE,
        manager,
        config=SimulationConfig(
            duration_minutes=duration,
            node_failure_rate_per_min=failure_rate,
            failure_seed=3,
        ),
    )


class TestFailureInjection:
    def test_rate_validation(self, pipeline_app):
        with pytest.raises(SimulationError):
            SimulationConfig(node_failure_rate_per_min=1.0)

    def test_failures_occur_at_configured_rate(self, pipeline_app):
        # 500 req/min × 5 ms keeps each component at ~3 nodes, so the
        # population under churn stays near 9 ready nodes:
        # 9 × 60 min × 5% ≈ 27 expected failures.
        sim = _sim(pipeline_app, ElasticRMIManager(), failure_rate=0.05, rate=500.0)
        sim.run()
        assert 12 < sim.nodes_failed_total < 60

    def test_no_failures_when_disabled(self, pipeline_app):
        sim = _sim(pipeline_app, ElasticRMIManager(), failure_rate=0.0)
        sim.run()
        assert sim.nodes_failed_total == 0

    def test_manager_replaces_failed_capacity(self, pipeline_app):
        """A reactive manager must hold the cluster near its requirement
        despite continuous node churn."""
        sim = _sim(pipeline_app, ElasticRMIManager(), failure_rate=0.05)
        result = sim.run()
        late = result.records[20:]
        mean_ready = sum(
            sum(c.ready_nodes for c in r.components.values()) for r in late
        ) / len(late)
        mean_req = sum(
            sum(c.req_min_nodes for c in r.components.values()) for r in late
        ) / len(late)
        assert mean_ready >= 0.8 * mean_req

    def test_churn_degrades_sla_but_not_catastrophically(self, pipeline_app):
        calm = _sim(pipeline_app, ElasticRMIManager(), failure_rate=0.0).run()
        churn = _sim(pipeline_app, ElasticRMIManager(), failure_rate=0.05).run()
        assert churn.sla_violation_percent() >= calm.sla_violation_percent()
        assert churn.sla_violation_percent() < 60.0

    def test_failures_are_deterministic_per_seed(self, pipeline_app):
        a = _sim(pipeline_app, ElasticRMIManager(), failure_rate=0.05)
        a.run()
        b = _sim(pipeline_app, ElasticRMIManager(), failure_rate=0.05)
        b.run()
        assert a.nodes_failed_total == b.nodes_failed_total

    def test_pinned_failure_count_for_seeded_run(self, pipeline_app):
        # Pins the exact seeded outcome so the per-interval probability
        # derivation (p = 1 - (1 - rate) ** INTERVAL_MINUTES, which must
        # equal the raw rate while intervals are one minute) can never
        # drift silently: any change to the conversion, the RNG stream,
        # or the tick length shows up as a different total.
        sim = _sim(pipeline_app, ElasticRMIManager(), failure_rate=0.05, rate=500.0)
        sim.run()
        assert sim.nodes_failed_total == 30

    def test_per_interval_probability_matches_rate_at_unit_interval(self):
        from repro.sim.engine import INTERVAL_MINUTES

        rate = 0.05
        assert INTERVAL_MINUTES == 1.0
        assert 1.0 - (1.0 - rate) ** INTERVAL_MINUTES == pytest.approx(rate)
