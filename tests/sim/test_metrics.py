"""Unit tests for interval records and run-level metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EvaluationError
from repro.sim.metrics import ComponentInterval, IntervalRecord, SimulationResult


def _comp(name="a", base=1000.0, overhead=0.0, provisioned=5, ready=5, req=5, pending=0):
    return ComponentInterval(
        component=name,
        base_demand_ms=base,
        overhead_ms=overhead,
        capacity_ms=ready * 1000.0,
        utilization=base / max(1.0, ready * 1000.0),
        backlog_ms=0.0,
        ready_nodes=ready,
        pending_nodes=pending,
        provisioned_nodes=provisioned,
        req_min_nodes=req,
        latency_inflation=1.5,
    )


def _record(time=0.0, comps=None, arrivals=100.0, sla_frac=0.0, infra=0, decreasing=False):
    comps = comps if comps is not None else {"a": _comp()}
    return IntervalRecord(
        time_minutes=time,
        external_arrivals=arrivals,
        class_arrivals={"c": int(arrivals)},
        components=comps,
        infra_nodes=infra,
        sla_violation_fraction=sla_frac,
        app_latency_ms=100.0,
        workload_decreasing=decreasing,
        sampled_requests=0,
    )


class TestComponentInterval:
    def test_excess(self):
        c = _comp(provisioned=8, req=5)
        assert c.excess_nodes == 3
        assert c.shortage_nodes == 0

    def test_shortage_vs_provisioned(self):
        c = _comp(provisioned=3, ready=3, req=5)
        assert c.shortage_nodes == 2
        assert c.excess_nodes == 0

    def test_pending_counts_toward_provisioned(self):
        c = _comp(provisioned=5, ready=3, pending=2, req=5)
        assert c.shortage_nodes == 0

    def test_exact_match_is_zero(self):
        c = _comp(provisioned=5, req=5)
        assert c.excess_nodes == 0
        assert c.shortage_nodes == 0


class TestIntervalRecord:
    def test_aggregation_over_components(self):
        r = _record(comps={"a": _comp("a", provisioned=8, req=5), "b": _comp("b", provisioned=2, ready=2, req=4)})
        assert r.excess == 3
        assert r.shortage == 2
        assert r.agility_contribution == 5

    def test_infra_counts_as_excess(self):
        r = _record(infra=2)
        assert r.excess == 2

    def test_overhead_fraction(self):
        r = _record(comps={"a": _comp(base=1000.0, overhead=100.0)})
        assert r.overhead_fraction == pytest.approx(0.1)


class TestSimulationResult:
    def _result(self, records):
        res = SimulationResult(manager_name="m", application="app")
        for r in records:
            res.append(r)
        return res

    def test_empty_result_raises(self):
        with pytest.raises(EvaluationError):
            self._result([]).agility()

    def test_agility_is_mean_contribution(self):
        records = [
            _record(comps={"a": _comp(provisioned=7, req=5)}),
            _record(comps={"a": _comp(provisioned=5, req=5)}),
        ]
        assert self._result(records).agility() == pytest.approx(1.0)

    def test_sla_percent_request_weighted(self):
        records = [
            _record(arrivals=900, sla_frac=0.0),
            _record(arrivals=100, sla_frac=1.0),
        ]
        assert self._result(records).sla_violation_percent() == pytest.approx(10.0)

    def test_zero_agility_fraction(self):
        records = [
            _record(comps={"a": _comp(provisioned=5, req=5)}),
            _record(comps={"a": _comp(provisioned=6, req=5)}),
        ]
        assert self._result(records).zero_agility_fraction() == 0.5

    def test_overhead_stats(self):
        records = [_record(comps={"a": _comp(base=1000, overhead=f)}) for f in (50.0, 100.0, 150.0)]
        res = self._result(records)
        assert res.overhead_mean() == pytest.approx(0.1)
        lo, hi = res.overhead_range_95()
        assert lo <= res.overhead_mean() <= hi

    def test_series_lengths(self):
        res = self._result([_record(time=float(t)) for t in range(5)])
        assert len(res.agility_series()) == 5
        assert len(res.sla_violation_series()) == 5
        assert len(res.workload_series()) == 5
        assert len(res.provisioned_series()) == 5
        assert len(res.required_series()) == 5

    def test_decreasing_interval_violations(self):
        records = [
            _record(sla_frac=0.5, decreasing=False),
            _record(sla_frac=0.0, decreasing=True),
        ]
        assert self._result(records).decreasing_interval_violations() == 0.0

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), min_size=1, max_size=30))
    def test_agility_non_negative_and_zero_iff_exact(self, pairs):
        records = [
            _record(comps={"a": _comp(provisioned=prov, ready=max(1, prov), req=req)})
            for prov, req in pairs
        ]
        res = self._result(records)
        assert res.agility() >= 0
        if all(p == r for p, r in pairs):
            assert res.agility() == 0
