"""Integration tests for the cluster simulation engine."""

import pytest

from repro.autoscale.manager import ElasticityManager, ScalingDecision
from repro.core.regression import MachineSpec
from repro.errors import SimulationError
from repro.sim.cluster import DeploymentSpec
from repro.sim.engine import ClusterSimulator, DCABundle, SimulationConfig
from repro.workloads.generator import RequestClass, WorkloadGenerator
from repro.workloads.patterns import MixPhase, ScaledPattern, StepMixSchedule


class HoldManager(ElasticityManager):
    """Keeps every component at its current allocation (for engine tests)."""

    name = "hold"

    def __init__(self):
        self.observations = []

    def decide(self, observation):
        self.observations.append(observation)
        return ScalingDecision(
            targets={c: o.nodes + o.pending_nodes for c, o in observation.components.items()}
        )


MACHINE = MachineSpec(capacity_ms_per_minute=1_000.0)


def _generator(pipeline_app, rate=100.0):
    classes = [RequestClass("go", "start", {"x": 5})]
    return WorkloadGenerator(
        ScaledPattern(lambda t: 1.0, rate, rate),
        StepMixSchedule([MixPhase(0.0, {"go": 1.0})]),
        classes,
        deterministic=True,
    )


def _deployments(pipeline_app, nodes=2):
    return {name: DeploymentSpec(initial_nodes=nodes) for name in pipeline_app.components}


def _simulator(pipeline_app, manager=None, duration=5, rate=100.0, nodes=2, **cfg_kwargs):
    config = SimulationConfig(duration_minutes=duration, **cfg_kwargs)
    return ClusterSimulator(
        pipeline_app,
        _generator(pipeline_app, rate),
        _deployments(pipeline_app, nodes),
        MACHINE,
        manager or HoldManager(),
        config=config,
    )


class TestEngineBasics:
    def test_missing_deployment_rejected(self, pipeline_app):
        config = SimulationConfig(duration_minutes=5)
        with pytest.raises(SimulationError, match="missing"):
            ClusterSimulator(
                pipeline_app,
                _generator(pipeline_app),
                {"A": DeploymentSpec()},
                MACHINE,
                HoldManager(),
                config=config,
            )

    def test_run_produces_one_record_per_minute(self, pipeline_app):
        result = _simulator(pipeline_app, duration=7).run()
        assert len(result.records) == 7
        assert [r.time_minutes for r in result.records] == [float(t) for t in range(7)]

    def test_sla_auto_derived_from_path_cost(self, pipeline_app):
        sim = _simulator(pipeline_app)
        # Path cost: 3 components × 5ms + 4 hops × 2ms network = 23ms; ×10.
        assert sim.sla_latency_ms == pytest.approx(230.0)

    def test_sla_override(self, pipeline_app):
        sim = _simulator(pipeline_app, sla_latency_ms=99.0)
        assert sim.sla_latency_ms == 99.0

    def test_demand_matches_hand_computation(self, pipeline_app):
        result = _simulator(pipeline_app, rate=100.0).run()
        record = result.records[0]
        # 100 requests × 1 message × 5ms at each component.
        for comp in ("A", "B", "C"):
            assert record.components[comp].base_demand_ms == pytest.approx(500.0)

    def test_utilization_reflects_capacity(self, pipeline_app):
        result = _simulator(pipeline_app, rate=100.0, nodes=2).run()
        record = result.records[0]
        # 500ms demand over 2 × 1000ms capacity.
        assert record.components["A"].utilization == pytest.approx(0.25)

    def test_manager_sees_observations(self, pipeline_app):
        manager = HoldManager()
        _simulator(pipeline_app, manager=manager, duration=4).run()
        assert len(manager.observations) == 4
        obs = manager.observations[0]
        assert set(obs.components) == {"A", "B", "C"}
        assert obs.external_arrivals_per_min == pytest.approx(100.0)

    def test_saturation_causes_sla_violations(self, pipeline_app):
        # 1000 req/min × 5ms = 5000ms demand over 1 node × 1000ms.
        result = _simulator(pipeline_app, rate=1000.0, nodes=1).run()
        assert result.sla_violation_percent() > 50.0

    def test_workload_decreasing_flag(self, pipeline_app):
        """The flag follows the smoothed trend: it turns on only after a
        sustained drop (3-minute window means), never on a single noisy
        minute."""
        classes = [RequestClass("go", "start", {"x": 5})]
        generator = WorkloadGenerator(
            # High for 5 minutes, then a sustained 50% drop.
            ScaledPattern(lambda t: 1.0 if t < 5 else 0.5, 0.0, 100.0),
            StepMixSchedule([MixPhase(0.0, {"go": 1.0})]),
            classes,
            deterministic=True,
        )
        sim = ClusterSimulator(
            pipeline_app,
            generator,
            _deployments(pipeline_app),
            MACHINE,
            HoldManager(),
            config=SimulationConfig(duration_minutes=10),
        )
        result = sim.run()
        assert not any(r.workload_decreasing for r in result.records[:5])
        assert any(r.workload_decreasing for r in result.records[5:9])


class TestDCAIntegration:
    def test_bundle_wires_profiler(self, pipeline_app):
        bundle = DCABundle.create(pipeline_app, sampling_rate=1.0)
        sim = ClusterSimulator(
            pipeline_app,
            _generator(pipeline_app, rate=50.0),
            _deployments(pipeline_app),
            MACHINE,
            HoldManager(),
            config=SimulationConfig(duration_minutes=3),
            dca=bundle,
        )
        result = sim.run()
        counts = bundle.profiler.counts(2.0)
        # 100% sampling: every arrival in the window is counted.
        assert sum(counts.values()) == sum(r.sampled_requests for r in result.records)
        assert sum(counts.values()) > 0

    def test_sampled_requests_recorded(self, pipeline_app):
        bundle = DCABundle.create(pipeline_app, sampling_rate=0.1, seed=3)
        sim = ClusterSimulator(
            pipeline_app,
            _generator(pipeline_app, rate=200.0),
            _deployments(pipeline_app),
            MACHINE,
            HoldManager(),
            config=SimulationConfig(duration_minutes=5),
            dca=bundle,
        )
        result = sim.run()
        total_sampled = sum(r.sampled_requests for r in result.records)
        assert 0 < total_sampled < 1000 * 0.5  # roughly 10% of 1000

    def test_overhead_demand_positive_when_instrumented(self, pipeline_app):
        bundle = DCABundle.create(pipeline_app, sampling_rate=1.0)
        sim = ClusterSimulator(
            pipeline_app,
            _generator(pipeline_app, rate=50.0),
            _deployments(pipeline_app),
            MACHINE,
            HoldManager(),
            config=SimulationConfig(duration_minutes=2),
            dca=bundle,
        )
        result = sim.run()
        assert result.overhead_mean() > 0

    def test_infrastructure_not_counted_by_default(self, pipeline_app):
        class InfraManager(HoldManager):
            def decide(self, observation):
                decision = super().decide(observation)
                return ScalingDecision(targets=decision.targets, infrastructure_nodes=3)

        result = _simulator(pipeline_app, manager=InfraManager(), duration=3).run()
        assert all(r.infra_nodes == 0 for r in result.records)

    def test_infrastructure_counted_when_enabled(self, pipeline_app):
        class InfraManager(HoldManager):
            def decide(self, observation):
                decision = super().decide(observation)
                return ScalingDecision(targets=decision.targets, infrastructure_nodes=3)

        result = _simulator(
            pipeline_app, manager=InfraManager(), duration=3, count_infrastructure=True
        ).run()
        # The first interval records the infra of the previous decision (0).
        assert result.records[0].infra_nodes == 0
        assert all(r.infra_nodes == 3 for r in result.records[1:])
