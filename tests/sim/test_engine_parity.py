"""Seeded tick-vs-event equivalence over the scenario suite.

These tests *are* the parity oracle gate: for each seeded
configuration the tick loop and the discrete-event engine must produce
bit-identical ``IntervalRecord`` streams, telemetry snapshots (modulo
the documented volatile keys) and fault counters.  CI's
``engine-parity`` job runs them with ``PARITY_DURATION=450`` (the full
paper workload) and all seven managers; the local default keeps the
matrix small enough for the tier-1 run while still crossing the
converged-replay cutover (~80 intervals).

Environment knobs:

* ``PARITY_DURATION`` — simulated minutes per check (default 120).
* ``PARITY_MANAGERS`` — comma-separated manager subset (default a
  representative trio; CI passes all seven).
* ``PARITY_DIFF_DIR`` — where diverging runs dump their JSON diff
  artifact (uploaded by CI on failure).
"""

import os

import pytest

from repro.evalx.experiment import MANAGER_NAMES, ExperimentConfig, run_all_managers
from repro.faults import FAULT_SCENARIOS, build_fault_plan
from repro.sim.parity import diff_results, diff_snapshots, run_engine_parity
from repro.telemetry import MetricsRegistry

SCENARIO_NAMES = ("marketcetera", "hedwig", "zookeeper")

PARITY_DURATION = int(os.environ.get("PARITY_DURATION", "120"))
_default_managers = "CloudWatch,DCA-100%,DCA-10%"
PARITY_MANAGERS = tuple(
    name.strip()
    for name in os.environ.get("PARITY_MANAGERS", _default_managers).split(",")
    if name.strip()
)


def _assert_ok(report):
    assert report.ok, "\n".join(
        [report.summary()]
        + report.record_diffs
        + report.snapshot_diffs
        + report.state_diffs
    )


class TestScenarioParity:
    @pytest.mark.parametrize("scenario", SCENARIO_NAMES)
    @pytest.mark.parametrize("manager", PARITY_MANAGERS)
    def test_tick_event_equivalence(self, scenario, manager):
        assert manager in MANAGER_NAMES
        report = run_engine_parity(scenario, manager, duration_minutes=PARITY_DURATION)
        _assert_ok(report)

    def test_alternate_seed(self):
        report = run_engine_parity(
            "hedwig", "DCA-100%", duration_minutes=PARITY_DURATION, seed=23
        )
        _assert_ok(report)


class TestFaultParity:
    """Every fault channel must behave identically under both engines."""

    @pytest.mark.parametrize("fault_scenario", sorted(FAULT_SCENARIOS))
    def test_fault_scenarios(self, fault_scenario):
        report = run_engine_parity(
            "hedwig",
            "DCA-10%",
            duration_minutes=40,
            fault_plan=build_fault_plan(fault_scenario, seed=7),
            path_timeout_minutes=5.0,
        )
        _assert_ok(report)

    def test_node_churn_baseline_manager(self):
        """Baseline managers see only the crash schedule — still parity."""
        report = run_engine_parity(
            "zookeeper",
            "ElasticRMI",
            duration_minutes=40,
            fault_plan=build_fault_plan("node-churn", seed=7),
        )
        _assert_ok(report)


class TestStoreConfigParity:
    """--engine event must compose bit-identically with --shards/--batch-size."""

    @pytest.mark.parametrize(
        "num_shards,write_batch_size", [(2, 1), (1, 8), (4, 16), (4, 32)]
    )
    def test_sharded_batched(self, num_shards, write_batch_size):
        report = run_engine_parity(
            "marketcetera",
            "DCA-100%",
            duration_minutes=60,
            num_shards=num_shards,
            write_batch_size=write_batch_size,
        )
        _assert_ok(report)

    def test_production_config_engages_replay_cutover(self):
        """The newly eligible fast-path config: sharded *and* batched,
        cutover engaged, still bit-identical to the tick oracle.
        ``max_live_traces_per_class=16`` compresses the warmup so the
        convergence streak lands inside a tier-1-sized run."""
        report = run_engine_parity(
            "marketcetera",
            "DCA-100%",
            duration_minutes=60,
            num_shards=4,
            write_batch_size=32,
            max_live_traces_per_class=16,
        )
        _assert_ok(report)
        assert report.replay_engaged
        assert report.replayed_executions > 0


class TestProfilerModeParity:
    """--profiler-mode topk must be engine-agnostic too.

    Sketch modes disable the converged-replay cutover, so both engines
    drive full-fidelity ingestion through the same sketch state machine;
    the parity oracle pins that the space-saving promotion order (and
    everything downstream of the estimated counts) matches bit for bit.
    """

    def test_topk_mode(self):
        report = run_engine_parity(
            "hedwig",
            "DCA-10%",
            duration_minutes=PARITY_DURATION,
            profiler_mode="topk",
            profiler_topk=64,
        )
        _assert_ok(report)


class TestParallelRunnerParity:
    def test_workers_compose_with_event_engine(self, tmp_path):
        """run_all_managers(workers=2) is engine-agnostic, bit for bit."""
        from repro.apps.catalog import load_scenario

        managers = ("CloudWatch", "DCA-10%")
        runs = {}
        snapshots = {}
        for engine in ("tick", "event"):
            registry = MetricsRegistry()
            config = ExperimentConfig(
                duration_minutes=40, seed=7, engine=engine
            )
            runs[engine] = run_all_managers(
                load_scenario("hedwig"),
                managers=managers,
                config=config,
                workers=2,
                registry=registry,
            )
            snapshots[engine] = registry.snapshot()
        for name in managers:
            diffs = diff_results(runs["tick"][name], runs["event"][name])
            assert not diffs, f"{name}: {diffs}"
        diffs = diff_snapshots(snapshots["tick"], snapshots["event"])
        assert not diffs, diffs


class TestDiffArtifact:
    def test_divergence_dumps_json(self, tmp_path, monkeypatch):
        """A diverging run must leave an inspectable artifact behind."""
        import json

        from repro.sim import parity as parity_mod

        report = parity_mod.ParityReport(
            scenario="hedwig",
            manager="DCA-10%",
            seed=7,
            duration_minutes=10,
            record_diffs=["interval[0].external_arrivals: tick=1.0 event=2.0"],
        )
        path = parity_mod._dump_report(report, str(tmp_path))
        assert path is not None and os.path.exists(path)
        payload = json.loads(open(path).read())
        assert payload["ok"] is False
        assert payload["record_diffs"]

    def test_env_var_controls_dump_dir(self, tmp_path, monkeypatch):
        from repro.sim import parity as parity_mod

        monkeypatch.setenv(parity_mod.PARITY_DIFF_DIR_ENV, str(tmp_path))
        report = parity_mod.ParityReport(
            scenario="zookeeper",
            manager="HTrace+CW",
            seed=3,
            duration_minutes=5,
            snapshot_diffs=["metric x: tick=1 event=2"],
        )
        path = parity_mod._dump_report(report, None)
        assert path is not None
        assert path.startswith(str(tmp_path))
        # Manager name must be filesystem-safe.
        assert "%" not in os.path.basename(path)
        assert "+" not in os.path.basename(path)

    def test_clean_report_is_ok(self):
        from repro.sim.parity import ParityReport

        report = ParityReport(
            scenario="hedwig", manager="DCA-10%", seed=7, duration_minutes=10
        )
        assert report.ok
        assert "OK" in report.summary()
