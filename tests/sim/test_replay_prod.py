"""Production-config fast paths, seeded across the board.

Two fast paths ship together and these are their acceptance gates:

* **Converged replay over sharded/batched stores** — 25 seeds of the
  fault-free DCA scenario at ``--shards 4 --batch-size 32 --engine
  event`` must each engage the cutover *and* stay bit-identical to the
  tick oracle (the :func:`~repro.sim.parity.run_engine_parity` report
  is the oracle).
* **Merged per-worker sketches** — ``--workers 4 --profiler-mode
  topk`` must run without any exact-mode fallback, and the merged
  top-k counts must sit within
  :data:`~repro.profiling.sketches.HOT_PATH_PROBABILITY_EPSILON` of
  the per-run reference sketches.

``max_live_traces_per_class=16`` compresses the warmup (16 executions
per tick per class) so the 48-identical-execution streak lands within a
24-minute run; the eligibility and soundness story is identical to the
default configuration.
"""

import pytest

from repro.apps.catalog import load_scenario
from repro.evalx.experiment import ExperimentConfig, MergedProfile, run_all_managers
from repro.profiling.sketches import HOT_PATH_PROBABILITY_EPSILON
from repro.sim.parity import run_engine_parity
from repro.telemetry import MetricsRegistry

SEEDS = range(25)


def _assert_ok(report):
    assert report.ok, "\n".join(
        [report.summary()]
        + report.record_diffs
        + report.snapshot_diffs
        + report.state_diffs
    )


class TestShardedBatchedReplayBitIdentity:
    """The tentpole gate: replay over production store configs."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_cutover_engages_and_matches_tick_oracle(self, seed):
        report = run_engine_parity(
            "marketcetera",
            "DCA-100%",
            duration_minutes=24,
            seed=seed,
            num_shards=4,
            write_batch_size=32,
            max_live_traces_per_class=16,
        )
        _assert_ok(report)
        assert report.replay_engaged, "cutover must engage on the fast-path config"
        assert report.replayed_executions > 0

    def test_batched_unsharded_also_engages(self):
        report = run_engine_parity(
            "marketcetera",
            "DCA-100%",
            duration_minutes=24,
            seed=7,
            num_shards=1,
            write_batch_size=32,
            max_live_traces_per_class=16,
        )
        _assert_ok(report)
        assert report.replay_engaged

    def test_sharded_unbatched_also_engages(self):
        report = run_engine_parity(
            "marketcetera",
            "DCA-100%",
            duration_minutes=24,
            seed=7,
            num_shards=4,
            write_batch_size=1,
            max_live_traces_per_class=16,
        )
        _assert_ok(report)
        assert report.replay_engaged


def _topk_sweep(workers):
    managers = ("DCA-100%", "DCA-20%", "DCA-10%", "DCA-5%")
    profile = MergedProfile()
    config = ExperimentConfig(
        duration_minutes=40,
        seed=7,
        engine="event",
        num_shards=4,
        write_batch_size=32,
        profiler_mode="topk",
        profiler_topk=128,
    )
    run_all_managers(
        load_scenario("hedwig"),
        managers=managers,
        config=config,
        workers=workers,
        registry=MetricsRegistry(),
        profile=profile,
    )
    return profile


class TestWorkersTopkMerge:
    """--workers 4 --profiler-mode topk: merged sketches, no fallback."""

    def test_merged_counts_within_epsilon_of_per_run_reference(self):
        profile = _topk_sweep(workers=4)
        assert profile.profiler is not None
        # No exact-mode fallback anywhere: the sweep profiler and every
        # per-manager checkpoint stay in the sketch tier.
        assert profile.profiler.mode == "topk"
        assert len(profile.by_manager) == 4
        assert all(p.mode == "topk" for p in profile.by_manager.values())

        now = max(p.last_record_minutes for p in profile.by_manager.values())
        merged = profile.profiler.counts(now)
        reference = {}
        for run_profiler in profile.by_manager.values():
            for path_id, count in run_profiler.counts(now).items():
                reference[path_id] = reference.get(path_id, 0) + count
        total = max(1, sum(reference.values()))
        assert merged, "merged profile saw no paths"
        for path_id, ref_count in reference.items():
            p_merged = merged.get(path_id, 0) / total
            p_ref = ref_count / total
            assert abs(p_merged - p_ref) <= HOT_PATH_PROBABILITY_EPSILON, path_id

    def test_pool_merge_matches_serial_merge(self):
        """Worker fan-out must not change the merged profile at all."""
        pooled = _topk_sweep(workers=4)
        serial = _topk_sweep(workers=1)
        now = max(p.last_record_minutes for p in pooled.by_manager.values())
        assert pooled.profiler.counts(now) == serial.profiler.counts(now)
        assert pooled.profiler.sample_total_between(
            0.0, now
        ) == serial.profiler.sample_total_between(0.0, now)
