"""Pipeline-drain ↔ cutover-freeze ordering (the durability contract).

``ReplayIngestor._freeze_all`` stops ingestion from ever feeding the
store again, so any write still buffered in the
:class:`~repro.graphstore.pipeline.BatchedWritePipeline` at that moment
would be stranded forever.  The contract (documented in the freeze's
docstring, pinned here): the tracker's pipeline is drained — journal
flush included — *before* any class delta is frozen, and the drain
lands at the log backend's durability point (bytes fsynced, not just
buffered in the process).
"""

import inspect

from repro.apps.catalog import load_scenario
from repro.core.causal_graph import DirectCausalityTracker
from repro.evalx.experiment import ExperimentConfig, build_simulator
from repro.graphstore.backend import LogBackend
from repro.graphstore.store import GraphStore
from repro.lang.ir import CLIENT, EXTERNAL
from repro.lang.message import Message, MessageUid
from repro.profiling.profiler import CausalPathProfiler
from repro.sim.engine import SimulationConfig
from repro.sim.events import ReplayIngestor
from repro.telemetry import MetricsRegistry


def _chain(n=6, seq_base=1):
    root = Message(MessageUid("h", 1, seq_base), "req", EXTERNAL, "A")
    msgs = [root]
    for i in range(n):
        prev = msgs[-1]
        dest = CLIENT if i == n - 1 else f"C{i}"
        msgs.append(
            Message(
                MessageUid("h", 1, seq_base + 1 + i), f"m{i}", prev.dest, dest,
                cause_uids=frozenset({prev.uid}), root_uid=root.uid,
            )
        )
    return msgs


class TestFreezeOrdering:
    def test_drain_happens_before_first_replayed_execution(self, monkeypatch):
        """Behavioral pin on a real sharded/batched cutover run.

        ``drain_pipeline`` has exactly one production caller —
        ``_freeze_all`` — so the call log proves the ordering: one
        drain, with nothing buffered (every warmup ``observe_all`` ends
        in a flush), strictly before the first replayed execution.
        """
        log = []
        orig_drain = DirectCausalityTracker.drain_pipeline
        orig_apply = ReplayIngestor._apply

        def spy_drain(self):
            log.append(("drain", self.buffered_writes))
            return orig_drain(self)

        def spy_apply(self, state, live, remainder, now):
            log.append(("apply", None))
            return orig_apply(self, state, live, remainder, now)

        monkeypatch.setattr(DirectCausalityTracker, "drain_pipeline", spy_drain)
        monkeypatch.setattr(ReplayIngestor, "_apply", spy_apply)

        sim_config = SimulationConfig(max_live_traces_per_class=16)
        config = ExperimentConfig(
            duration_minutes=40,
            seed=11,
            sim=sim_config,
            engine="event",
            num_shards=4,
            write_batch_size=32,
        )
        simulator = build_simulator(
            load_scenario("marketcetera"), "DCA-100%", config=config
        )
        simulator.run()

        ingestor = simulator.event_runner.ingestor
        assert ingestor is not None and ingestor.replaying
        drains = [entry for entry in log if entry[0] == "drain"]
        assert len(drains) == 1
        assert drains[0][1] == 0  # warmup left nothing buffered
        assert log.index(drains[0]) < log.index(("apply", None))

    def test_freeze_source_drains_before_reading_deltas(self):
        """Source-order pin: a refactor that freezes first, drains later
        would still pass the behavioral test on happy paths (buffers are
        empty there); this catches the reordering itself."""
        source = inspect.getsource(ReplayIngestor._freeze_all)
        assert source.index("drain_pipeline") < source.index("reference_delta")


class TestLogBackendDurabilityPoint:
    def test_drain_reaches_fsynced_journal_without_close(self, tmp_path):
        """Crash-after-drain must lose nothing: ``drain_pipeline`` on a
        batched tracker over the log backend flushes the journal (the
        default ``fsync='flush'`` policy syncs it), so a reopen that
        never saw ``close()`` recovers every drained record."""
        registry = MetricsRegistry()
        backend = LogBackend(str(tmp_path), registry=registry)
        store = GraphStore(registry=registry, backend=backend)
        profiler = CausalPathProfiler({}, registry=registry)
        tracker = DirectCausalityTracker(
            profiler, store=store, registry=registry, write_batch_size=1000
        )
        msgs = _chain(6)
        for msg in msgs:
            tracker.observe_message(msg)
        assert tracker.buffered_writes == len(msgs)
        assert store.node_count() == 0  # nothing journaled yet

        written = tracker.drain_pipeline()
        assert written == len(msgs)
        assert tracker.buffered_writes == 0

        # Simulated crash: no close() on the writing store.
        recovery_registry = MetricsRegistry()
        recovered = GraphStore(
            registry=recovery_registry,
            backend=LogBackend(
                str(tmp_path), create=False, registry=recovery_registry
            ),
        )
        recovered.recover()
        assert recovered.node_count() == len(msgs)
        assert sorted(recovered.all_uids()) == sorted(m.uid for m in msgs)

    def test_unbatched_drain_still_flushes_journal(self, tmp_path):
        """batch_size=1 trackers have no pipeline; the drain must fall
        through to ``store.flush_journal`` so the freeze's durability
        point holds for every eligible-adjacent configuration."""
        registry = MetricsRegistry()
        backend = LogBackend(str(tmp_path), fsync="close", registry=registry)
        store = GraphStore(registry=registry, backend=backend)
        profiler = CausalPathProfiler({}, registry=registry)
        tracker = DirectCausalityTracker(profiler, store=store, registry=registry)
        tracker.observe_all(_chain(4))
        before = registry.counter("graphstore.backend_flushes").value
        tracker.drain_pipeline()
        assert registry.counter("graphstore.backend_flushes").value >= before


class TestJournalingBackendsStayIneligible:
    """Relaxed eligibility covers sharded/batched *memory* stores only;
    a journaling backend must still refuse the replay fast path (the
    freeze would silently stop feeding the durable log)."""

    def test_log_backend_refused_even_when_batched(self, tmp_path):
        registry = MetricsRegistry()
        backend = LogBackend(str(tmp_path), registry=registry)
        store = GraphStore(registry=registry, backend=backend)
        profiler = CausalPathProfiler({}, registry=registry)
        tracker = DirectCausalityTracker(
            profiler, store=store, registry=registry, write_batch_size=32
        )
        assert not tracker.supports_snapshot_replay
